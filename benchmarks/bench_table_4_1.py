"""Table 4.1 — Performance of UDP, TCP, and Circus (ms per call).

Regenerates the paper's table: the UDP echo lower bound, the TCP echo
baseline, and Circus replicated procedure calls at degrees 1-5, reporting
real time, total/user/kernel CPU time per call.

Shape claims verified:
- TCP total CPU < UDP total CPU (the read/write interface is leaner than
  scatter/gather sendmsg/recvmsg);
- Circus(1) costs roughly twice a raw UDP exchange;
- each extra troupe member adds 10-20 ms of real time per call.
"""

import pytest

from repro.bench.echo import (
    PAPER_TABLE_4_1,
    run_circus_series,
    run_tcp_echo,
    run_udp_echo,
)
from repro.bench.report import Table, register_table

ITERATIONS = 40
DEGREES = (1, 2, 3, 4, 5)


def run_table_4_1():
    rows = {"UDP": run_udp_echo(ITERATIONS), "TCP": run_tcp_echo(ITERATIONS)}
    for result in run_circus_series(DEGREES, ITERATIONS):
        degree = int(result.label[len("Circus("):-1])
        rows[degree] = result
    return rows


@pytest.fixture(scope="module")
def results():
    return run_table_4_1()


def test_table_4_1(benchmark, results):
    benchmark.pedantic(lambda: run_udp_echo(5), rounds=1, iterations=1)

    table = Table(
        "Table 4.1: Performance of UDP, TCP, and Circus (ms/rpc)",
        ["workload", "real(paper)", "real(sim)", "total(paper)",
         "total(sim)", "user(paper)", "user(sim)", "kernel(paper)",
         "kernel(sim)"],
        notes=("Simulated hosts charge the Table 4.2 syscall costs; "
               "absolute agreement is calibration, the claims under test "
               "are the orderings and the per-member increment."))
    for key in ["UDP", "TCP", 1, 2, 3, 4, 5]:
        paper = PAPER_TABLE_4_1[key]
        sim = results[key]
        label = key if isinstance(key, str) else "Circus(%d)" % key
        table.add_row(label, paper["real"], sim.real, paper["total"],
                      sim.total, paper["user"], sim.user,
                      paper["kernel"], sim.kernel)
        benchmark.extra_info[str(label)] = {
            "real": sim.real, "total": sim.total,
            "user": sim.user, "kernel": sim.kernel}
    register_table(table)

    udp, tcp = results["UDP"], results["TCP"]
    # TCP echo beats UDP echo on CPU and real time, as in the paper.
    assert tcp.total < udp.total
    assert tcp.real < udp.real
    # An unreplicated Circus call costs roughly twice a UDP exchange.
    circus1 = results[1]
    assert 1.3 * udp.total < circus1.total < 2.5 * udp.total
    assert 1.2 * udp.real < circus1.real < 2.5 * udp.real
    # Each additional member adds 10-20 ms of real time (§4.4.1).
    for degree in (2, 3, 4, 5):
        increment = results[degree].real - results[degree - 1].real
        assert 8.0 <= increment <= 22.0, (degree, increment)
    # All components increase monotonically with troupe size.
    for metric in ("real", "user", "kernel"):
        series = [getattr(results[d], metric) for d in DEGREES]
        assert series == sorted(series)
