"""Wall-clock throughput of the simulator itself (not virtual time).

Every other benchmark in this suite reports *virtual-time* results —
the paper's milliseconds, identical on every machine.  This one measures
how fast the simulator's wall clock spins: kernel events/sec, paired
message packets/sec, end-to-end replicated calls/sec, and the cost of
attaching the invariant monitors.

Wall-clock rows are machine-dependent and are **never** compared against
a committed baseline.  The CI gate uses the deterministic proxy table
instead (kernel callbacks + handle allocations per replicated call —
identical on every machine), compared against ``BENCH_PERF.json``:

    PYTHONPATH=src python -m pytest benchmarks/bench_wallclock.py -q \
        --bench-json perf_results.json
    PYTHONPATH=src python benchmarks/compare.py perf_results.json \
        --baseline BENCH_PERF.json --threshold 5 --require-all
"""

import pytest

from repro.bench import perf
from repro.bench.report import Table, register_table


def test_proxy_metric_is_deterministic_and_gated():
    """The CI-gated table: kernel work per replicated call.

    The seed row is frozen data from the unoptimized kernel, so the
    table itself documents the optimization trajectory; the live row is
    what ``BENCH_PERF.json`` gates at 5%.
    """
    metrics = perf.proxy_metrics(iterations=200)
    again = perf.proxy_metrics(iterations=200)
    assert metrics == again, "proxy metric must be deterministic"

    table = Table(
        "Kernel hot-path proxy metric (work per replicated call)",
        ["workload", "callbacks/call", "allocs/call",
         "proxy (callbacks+allocs)"],
        formats=[None, "%.2f", "%.2f", "%.2f"],
        notes="Deterministic (machine-independent); CI gates the live "
              "row against BENCH_PERF.json at 5%.  The seed row is the "
              "unoptimized kernel, kept as the trajectory reference.")
    seed = perf.SEED_PROXY["circus-200"]
    table.add_row("circus-200 (seed)", seed["callbacks_per_call"],
                  seed["allocs_per_call"], seed["proxy"])
    table.add_row("circus-200", metrics["callbacks_per_call"],
                  metrics["allocs_per_call"], metrics["proxy"])
    register_table(table)

    # The message-path pass swapped per-transfer retransmit daemons for
    # one scheduler and its wake signals — a near-exact callback wash
    # (±0.1% of the seed), while the allocation savings must hold.
    assert (abs(metrics["callbacks_per_call"] - seed["callbacks_per_call"])
            <= 0.001 * seed["callbacks_per_call"])
    # The acceptance criterion for the hot-path pass: >= 20% less kernel
    # work per call than the seed (the freelist alone removes ~50%).
    assert metrics["proxy"] <= 0.8 * seed["proxy"]


def test_message_path_proxy_metric_is_deterministic_and_gated():
    """The second CI-gated table: message-path work per replicated call.

    ``msg_proxy`` (segment encodes + endpoint daemons spawned per call)
    is what the encode-once/scheduler pass optimizes; the packets column
    is pinned to the seed because the pass must not change what goes on
    the wire (the virtual-time tables gate that too).
    """
    metrics = perf.message_path_metrics(iterations=200)
    again = perf.message_path_metrics(iterations=200)
    assert metrics == again, "message-path metric must be deterministic"

    table = Table(
        "Message-path proxy metric (work per replicated call)",
        ["workload", "encodes/call", "daemons/call", "packets/call",
         "msg proxy (encodes+daemons)"],
        formats=[None, "%.2f", "%.2f", "%.2f", "%.2f"],
        notes="Deterministic (machine-independent); CI gates the live "
              "row against BENCH_PERF.json at 5%.  The seed row is the "
              "pre-optimization protocol stack: one encode per "
              "transmission and one retransmit daemon per transfer.")
    seed = perf.SEED_MESSAGE_PATH["circus-200"]
    table.add_row("circus-200 (seed)", seed["encodes_per_call"],
                  seed["daemons_per_call"], seed["packets_per_call"],
                  seed["msg_proxy"])
    table.add_row("circus-200", metrics["encodes_per_call"],
                  metrics["daemons_per_call"], metrics["packets_per_call"],
                  metrics["msg_proxy"])
    register_table(table)

    # Wire-faithfulness: the same packets at the same times.
    assert metrics["packets_per_call"] == seed["packets_per_call"]
    # The acceptance criterion for the message-path pass: >= 40% less
    # encode + daemon work per call than the seed.
    assert metrics["msg_proxy"] <= 0.6 * seed["msg_proxy"]


def test_delayed_ack_coalescing_row():
    """Deterministic delayed-acks ablation on the lossy paired-message
    exchange: coalescing must cut ack packets without breaking delivery
    (the default row is pinned to the seed numbers — delayed acks stay
    opt-in and change nothing when off)."""
    off = perf.lossy_transfer_metrics(delayed_acks=False)
    on = perf.lossy_transfer_metrics(delayed_acks=True)

    table = Table(
        "Message-path: delayed-ack coalescing (pm-loss15, deterministic)",
        ["configuration", "ms/transfer", "packets/transfer",
         "acks/transfer", "acks coalesced/transfer"],
        formats=[None, "%.4f", "%.3f", "%.3f", "%.3f"],
        notes="13-segment (6 KB) calls at 15% seeded loss.  delayed_acks "
              "holds the highest cumulative ack per message and flushes "
              "one batch per 10 ms interval; probe replies stay "
              "immediate so crash detection is unchanged.")
    for label, row in (("immediate-acks", off), ("delayed-acks", on)):
        table.add_row(label, row["ms_per_transfer"],
                      row["packets_per_transfer"], row["acks_per_transfer"],
                      row["acks_coalesced_per_transfer"])
    register_table(table)

    seed = perf.SEED_MESSAGE_PATH["pm-loss15"]
    assert off["packets_per_transfer"] == seed["packets_per_transfer"]
    assert off["ms_per_transfer"] == seed["ms_per_transfer"]
    assert on["acks_per_transfer"] < off["acks_per_transfer"]
    assert on["packets_per_transfer"] < off["packets_per_transfer"]


def test_kernel_events_per_sec():
    """Raw kernel throughput on the three canonical waitable shapes."""
    table = Table(
        "Wall-clock: kernel events/sec (machine-dependent, not gated)",
        ["workload", "events/sec", "allocs", "callbacks"],
        formats=[None, "%.0f", None, None],
        notes="timer = Sleep wake-ups; pingpong = queue put/get pairs; "
              "select = AnyOf(event, timeout) with a cancelled branch "
              "per round.  Best of 3 runs.")
    for kind in ("timer", "pingpong", "select"):
        rate, snapshot = perf.kernel_events_per_sec(
            kind, procs=100, steps=500)
        table.add_row(kind, rate, snapshot.get("calls_allocated", 0),
                      snapshot.get("callbacks_run", 0))
        assert rate > 0
    register_table(table)


def test_paired_message_packets_per_sec():
    rate = perf.paired_message_packets_per_sec(transfers=100)
    table = Table(
        "Wall-clock: paired-message packets/sec (machine-dependent)",
        ["workload", "packets/sec"], formats=[None, "%.0f"],
        notes="2 KB calls through the segmented paired-message protocol "
              "(acks, windowing, retransmission timers armed and "
              "cancelled per transfer).")
    table.add_row("pm-2KB", rate)
    register_table(table)
    assert rate > 0


def test_replicated_calls_and_monitor_overhead():
    plain, watched, ratio = perf.monitor_overhead_ratio(iterations=60)
    table = Table(
        "Wall-clock: replicated calls/sec (machine-dependent)",
        ["configuration", "calls/sec", "overhead ratio"],
        formats=[None, "%.0f", "%.2f"],
        notes="Circus(3) echo troupe.  The ratio is unobserved time "
              "over monitored time spent per call: what the full "
              "invariant-monitor suite costs when attached.")
    table.add_row("unobserved", plain, 1.0)
    table.add_row("with-monitors", watched, ratio)
    register_table(table)
    assert plain > 0 and watched > 0
    # Monitors cost something but must stay within an order of magnitude.
    assert ratio < 10.0


def test_observability_work_is_deterministic_and_budgeted():
    """The third CI-gated table: telemetry work per replicated call.

    The counters (bus events delivered, time-series cell updates,
    critical-path milestones per call) and the attribution quality are
    deterministic and gated at 5%; the wall-clock overhead ratio rides
    along informationally (``gate_columns`` keeps it out of the gate).
    ``virtual end (ms)`` is pinned to the unobserved run — a telemetry
    subscriber that perturbs the simulation moves it and fails the gate
    even if its work counters happen to match.
    """
    work = perf.obs_work_metrics(iterations=200)
    again = perf.obs_work_metrics(iterations=200)
    assert work == again, "observability work metric must be deterministic"

    history = perf.history_work_metrics(iterations=200)
    # The history recorder is a pure reader: attaching it must leave
    # every deterministic telemetry counter (and virtual time) alone.
    assert history == work, (
        "the history recorder perturbed the telemetry counters")

    plain, active, observed, ratio = perf.observability_overhead_ratio(
        iterations=60)
    _active_h, _recorded_h, history_ratio = perf.history_overhead_ratio(
        iterations=60)

    table = Table(
        "Observability telemetry (work per replicated call + overhead)",
        ["workload", "events/call", "ts updates/call", "milestones/call",
         "attributed %", "residual %", "virtual end (ms)",
         "overhead ratio (wall)"],
        formats=[None, "%.2f", "%.2f", "%.2f", "%.2f", "%.2f", "%.3f",
                 "%.3f"],
        gate_columns=["events/call", "ts updates/call", "milestones/call",
                      "attributed %", "residual %", "virtual end (ms)"],
        notes="Time-series collector + critical-path analyzer attached "
              "to the circus workload.  Work columns are deterministic "
              "and CI-gated at 5%; the wall ratio (telemetry time over "
              "active-bus time per call) is machine-dependent and "
              "informational.  virtual end (ms) must equal the "
              "unobserved run's — subscribers never move virtual time.  "
              "The +history row adds the operation-history recorder; its "
              "work columns must equal the base row exactly (the "
              "recorder is a pure reader) and its wall ratio is the "
              "recorder's incremental cost on an active bus.")
    table.add_row("circus-200", work["events_per_call"],
                  work["ts_updates_per_call"], work["milestones_per_call"],
                  work["attributed_pct"], work["residual_pct"],
                  work["virtual_end_ms"], ratio)
    table.add_row("circus-200+history", history["events_per_call"],
                  history["ts_updates_per_call"],
                  history["milestones_per_call"],
                  history["attributed_pct"], history["residual_pct"],
                  history["virtual_end_ms"], history_ratio)
    register_table(table)

    wall = Table(
        "Wall-clock: telemetry overhead (machine-dependent, not gated)",
        ["configuration", "calls/sec"],
        formats=[None, "%.0f"],
        notes="active-bus = one no-op subscriber (the shared price of "
              "publishing events at all); with-telemetry adds the "
              "time-series collector and critical-path analyzer.")
    wall.add_row("unobserved", plain)
    wall.add_row("active-bus", active)
    wall.add_row("with-telemetry", observed)
    register_table(wall)

    # Critical-path acceptance: >= 95% of latency lands in named stages.
    assert work["attributed_pct"] >= 95.0
    assert work["residual_pct"] < 5.0
    # The telemetry budget: <10% incremental wall cost on an active bus
    # in steady state; allow slack for noisy shared CI runners.
    assert plain > 0 and active > 0 and observed > 0
    assert ratio < 1.5
    # The recorder's correlation is two dict lookups per rpc event.
    assert history_ratio < 1.5


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
