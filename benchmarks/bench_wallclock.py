"""Wall-clock throughput of the simulator itself (not virtual time).

Every other benchmark in this suite reports *virtual-time* results —
the paper's milliseconds, identical on every machine.  This one measures
how fast the simulator's wall clock spins: kernel events/sec, paired
message packets/sec, end-to-end replicated calls/sec, and the cost of
attaching the invariant monitors.

Wall-clock rows are machine-dependent and are **never** compared against
a committed baseline.  The CI gate uses the deterministic proxy table
instead (kernel callbacks + handle allocations per replicated call —
identical on every machine), compared against ``BENCH_PERF.json``:

    PYTHONPATH=src python -m pytest benchmarks/bench_wallclock.py -q \
        --bench-json perf_results.json
    PYTHONPATH=src python benchmarks/compare.py perf_results.json \
        --baseline BENCH_PERF.json --threshold 5 --require-all
"""

import pytest

from repro.bench import perf
from repro.bench.report import Table, register_table


def test_proxy_metric_is_deterministic_and_gated():
    """The CI-gated table: kernel work per replicated call.

    The seed row is frozen data from the unoptimized kernel, so the
    table itself documents the optimization trajectory; the live row is
    what ``BENCH_PERF.json`` gates at 5%.
    """
    metrics = perf.proxy_metrics(iterations=200)
    again = perf.proxy_metrics(iterations=200)
    assert metrics == again, "proxy metric must be deterministic"

    table = Table(
        "Kernel hot-path proxy metric (work per replicated call)",
        ["workload", "callbacks/call", "allocs/call",
         "proxy (callbacks+allocs)"],
        formats=[None, "%.2f", "%.2f", "%.2f"],
        notes="Deterministic (machine-independent); CI gates the live "
              "row against BENCH_PERF.json at 5%.  The seed row is the "
              "unoptimized kernel, kept as the trajectory reference.")
    seed = perf.SEED_PROXY["circus-200"]
    table.add_row("circus-200 (seed)", seed["callbacks_per_call"],
                  seed["allocs_per_call"], seed["proxy"])
    table.add_row("circus-200", metrics["callbacks_per_call"],
                  metrics["allocs_per_call"], metrics["proxy"])
    register_table(table)

    # The callback count is pinned by determinism: the optimization pass
    # must not change *what* the kernel executes, only what it costs.
    assert metrics["callbacks_per_call"] == seed["callbacks_per_call"]
    # The acceptance criterion for the hot-path pass: >= 20% less kernel
    # work per call than the seed (the freelist alone removes ~50%).
    assert metrics["proxy"] <= 0.8 * seed["proxy"]


def test_kernel_events_per_sec():
    """Raw kernel throughput on the three canonical waitable shapes."""
    table = Table(
        "Wall-clock: kernel events/sec (machine-dependent, not gated)",
        ["workload", "events/sec", "allocs", "callbacks"],
        formats=[None, "%.0f", None, None],
        notes="timer = Sleep wake-ups; pingpong = queue put/get pairs; "
              "select = AnyOf(event, timeout) with a cancelled branch "
              "per round.  Best of 3 runs.")
    for kind in ("timer", "pingpong", "select"):
        rate, snapshot = perf.kernel_events_per_sec(
            kind, procs=100, steps=500)
        table.add_row(kind, rate, snapshot.get("calls_allocated", 0),
                      snapshot.get("callbacks_run", 0))
        assert rate > 0
    register_table(table)


def test_paired_message_packets_per_sec():
    rate = perf.paired_message_packets_per_sec(transfers=100)
    table = Table(
        "Wall-clock: paired-message packets/sec (machine-dependent)",
        ["workload", "packets/sec"], formats=[None, "%.0f"],
        notes="2 KB calls through the segmented paired-message protocol "
              "(acks, windowing, retransmission timers armed and "
              "cancelled per transfer).")
    table.add_row("pm-2KB", rate)
    register_table(table)
    assert rate > 0


def test_replicated_calls_and_monitor_overhead():
    plain, watched, ratio = perf.monitor_overhead_ratio(iterations=60)
    table = Table(
        "Wall-clock: replicated calls/sec (machine-dependent)",
        ["configuration", "calls/sec", "overhead ratio"],
        formats=[None, "%.0f", "%.2f"],
        notes="Circus(3) echo troupe.  The ratio is unobserved time "
              "over monitored time spent per call: what the full "
              "invariant-monitor suite costs when attached.")
    table.add_row("unobserved", plain, 1.0)
    table.add_row("with-monitors", watched, ratio)
    register_table(table)
    assert plain > 0 and watched > 0
    # Monitors cost something but must stay within an order of magnitude.
    assert ratio < 10.0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
