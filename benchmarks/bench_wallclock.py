"""Wall-clock throughput of the simulator itself (not virtual time).

Every other benchmark in this suite reports *virtual-time* results —
the paper's milliseconds, identical on every machine.  This one measures
how fast the simulator's wall clock spins: kernel events/sec, paired
message packets/sec, end-to-end replicated calls/sec, and the cost of
attaching the invariant monitors.

Wall-clock rows are machine-dependent and are **never** compared against
a committed baseline.  The CI gate uses the deterministic tables
(built once, in ``repro.bench.gated``, shared with ``repro perf
--compare``) compared against ``BENCH_PERF.json``:

    PYTHONPATH=src python -m pytest benchmarks/bench_wallclock.py -q \
        --bench-json perf_results.json
    PYTHONPATH=src python benchmarks/compare.py perf_results.json \
        --baseline BENCH_PERF.json --threshold 5 --require-all

or, in one command:

    PYTHONPATH=src python -m repro perf --compare
"""

import pytest

from repro.bench import gated, perf
from repro.bench.report import Table, register_table


def test_proxy_metric_is_deterministic_and_gated():
    """The CI-gated table: kernel work per replicated call.

    The seed row is frozen data from the unoptimized kernel, so the
    table itself documents the optimization trajectory; the live row is
    what ``BENCH_PERF.json`` gates at 5%.
    """
    table, aux = gated.kernel_proxy_table(iterations=200)
    metrics, seed = aux["metrics"], aux["seed"]
    assert metrics == aux["again"], "proxy metric must be deterministic"
    register_table(table)

    # The message-path pass swapped per-transfer retransmit daemons for
    # one scheduler and its wake signals — a near-exact callback wash
    # (±0.1% of the seed), while the allocation savings must hold.
    assert (abs(metrics["callbacks_per_call"] - seed["callbacks_per_call"])
            <= 0.001 * seed["callbacks_per_call"])
    # The acceptance criterion for the hot-path pass: >= 20% less kernel
    # work per call than the seed (the freelist alone removes ~50%).
    assert metrics["proxy"] <= 0.8 * seed["proxy"]


def test_batched_dispatch_is_deterministic_and_gated():
    """The batched-dispatch table: same-timestamp callbacks drain
    through the ready lane (no heap push+pop per entry) while the total
    callback count stays pinned — batching cheapens dispatch, it never
    reorders or adds work.
    """
    table, aux = gated.dispatch_table(iterations=200)
    metrics, seed = aux["metrics"], aux["seed"]
    assert metrics == aux["again"], "dispatch metric must be deterministic"
    register_table(table)

    # Batching must not change how many callbacks run per call.
    assert metrics["callbacks_per_call"] == seed["callbacks_per_call"]
    # The lane must actually be used: a meaningful share of dispatches
    # bypasses the heap on the circus workload.
    assert metrics["ready_per_call"] > 0
    assert metrics["lane_share_pct"] >= 10.0


def test_message_path_proxy_metric_is_deterministic_and_gated():
    """The second CI-gated table: message-path work per replicated call.

    ``msg_proxy`` (segment encodes + endpoint daemons spawned per call)
    is what the encode-once/scheduler pass optimizes; the packets column
    is pinned to the seed because the pass must not change what goes on
    the wire (the virtual-time tables gate that too).
    """
    table, aux = gated.message_path_table(iterations=200)
    metrics, seed = aux["metrics"], aux["seed"]
    assert metrics == aux["again"], "message-path metric must be deterministic"
    register_table(table)

    # Wire-faithfulness: the same packets at the same times.
    assert metrics["packets_per_call"] == seed["packets_per_call"]
    # The acceptance criterion for the message-path pass: >= 40% less
    # encode + daemon work per call than the seed.
    assert metrics["msg_proxy"] <= 0.6 * seed["msg_proxy"]


def test_delayed_ack_coalescing_row():
    """Deterministic delayed-acks ablation on the lossy paired-message
    exchange: coalescing must cut ack packets without breaking delivery
    (the default row is pinned to the seed numbers — delayed acks stay
    opt-in and change nothing when off)."""
    table, aux = gated.delayed_ack_table()
    off, on, seed = aux["off"], aux["on"], aux["seed"]
    register_table(table)

    assert off["packets_per_transfer"] == seed["packets_per_transfer"]
    assert off["ms_per_transfer"] == seed["ms_per_transfer"]
    assert on["acks_per_transfer"] < off["acks_per_transfer"]
    assert on["packets_per_transfer"] < off["packets_per_transfer"]


def test_zero_copy_bytes_are_deterministic_and_gated():
    """The zero-copy table: payload+header bytes materialized on the
    message path per call must sit far below the recorded seed rows
    (the copying path measured before this pass).
    """
    table, aux = gated.zero_copy_table(iterations=200)
    metrics = aux["metrics"]
    assert metrics == aux["again"], "bytes_copied must be deterministic"
    register_table(table)

    # The zero-copy acceptance criterion: at least 40% fewer bytes
    # materialized per call than the copying path on both workloads.
    circus_seed = perf.SEED_ZERO_COPY["circus-200"]["bytes_copied_per_call"]
    lossy_seed = perf.SEED_ZERO_COPY["pm-loss15"]["bytes_copied_per_transfer"]
    assert metrics["bytes_copied_per_call"] <= 0.6 * circus_seed
    assert aux["lossy"]["bytes_copied_per_transfer"] <= 0.6 * lossy_seed


def test_kernel_events_per_sec():
    """Raw kernel throughput on the three canonical waitable shapes."""
    table = Table(
        "Wall-clock: kernel events/sec (machine-dependent, not gated)",
        ["workload", "events/sec", "allocs", "callbacks"],
        formats=[None, "%.0f", None, None],
        notes="timer = Sleep wake-ups; pingpong = queue put/get pairs; "
              "select = AnyOf(event, timeout) with a cancelled branch "
              "per round.  Best of 3 runs.")
    for kind in ("timer", "pingpong", "select"):
        rate, snapshot = perf.kernel_events_per_sec(
            kind, procs=100, steps=500)
        table.add_row(kind, rate, snapshot.get("calls_allocated", 0),
                      snapshot.get("callbacks_run", 0))
        assert rate > 0
    register_table(table)


def test_paired_message_packets_per_sec():
    rate = perf.paired_message_packets_per_sec(transfers=100)
    table = Table(
        "Wall-clock: paired-message packets/sec (machine-dependent)",
        ["workload", "packets/sec"], formats=[None, "%.0f"],
        notes="2 KB calls through the segmented paired-message protocol "
              "(acks, windowing, retransmission timers armed and "
              "cancelled per transfer).")
    table.add_row("pm-2KB", rate)
    register_table(table)
    assert rate > 0


def test_replicated_calls_and_monitor_overhead():
    plain, watched, ratio = perf.monitor_overhead_ratio(iterations=60)
    table = Table(
        "Wall-clock: replicated calls/sec (machine-dependent)",
        ["configuration", "calls/sec", "overhead ratio"],
        formats=[None, "%.0f", "%.2f"],
        notes="Circus(3) echo troupe.  The ratio is unobserved time "
              "over monitored time spent per call: what the full "
              "invariant-monitor suite costs when attached.")
    table.add_row("unobserved", plain, 1.0)
    table.add_row("with-monitors", watched, ratio)
    register_table(table)
    assert plain > 0 and watched > 0
    # Monitors cost something but must stay within an order of magnitude.
    assert ratio < 10.0


def test_observability_work_is_deterministic_and_budgeted():
    """The telemetry CI-gated table: work per replicated call.

    The counters (bus events delivered, time-series cell updates,
    critical-path milestones per call) and the attribution quality are
    deterministic and gated at 5%; the wall-clock overhead ratio rides
    along informationally (``gate_columns`` keeps it out of the gate).
    ``virtual end (ms)`` is pinned to the unobserved run — a telemetry
    subscriber that perturbs the simulation moves it and fails the gate
    even if its work counters happen to match.
    """
    table, aux = gated.observability_table(iterations=200,
                                           overhead_iterations=60)
    work, history = aux["work"], aux["history"]
    assert work == aux["again"], "observability work must be deterministic"
    # The history recorder is a pure reader: attaching it must leave
    # every deterministic telemetry counter (and virtual time) alone.
    assert history == work, (
        "the history recorder perturbed the telemetry counters")
    register_table(table)

    wall = Table(
        "Wall-clock: telemetry overhead (machine-dependent, not gated)",
        ["configuration", "calls/sec"],
        formats=[None, "%.0f"],
        notes="active-bus = one no-op subscriber (the shared price of "
              "publishing events at all); with-telemetry adds the "
              "time-series collector and critical-path analyzer.")
    wall.add_row("unobserved", aux["plain"])
    wall.add_row("active-bus", aux["active"])
    wall.add_row("with-telemetry", aux["observed"])
    register_table(wall)

    # Critical-path acceptance: >= 95% of latency lands in named stages.
    assert work["attributed_pct"] >= 95.0
    assert work["residual_pct"] < 5.0
    # The telemetry budget: <10% incremental wall cost on an active bus
    # in steady state; allow slack for noisy shared CI runners.
    assert aux["plain"] > 0 and aux["active"] > 0 and aux["observed"] > 0
    assert aux["ratio"] < 1.5
    # The recorder's correlation is two dict lookups per rpc event.
    assert aux["history_ratio"] < 1.5


def test_sharded_exchange_is_deterministic_and_gated():
    """The sharded-simulation table: 1, 2 and 4 shard kernels must
    produce byte-identical packet digests, identical completed calls,
    and identical wire traffic on the same seed — determinism is the
    acceptance criterion, the cross-shard columns document the exchange
    cost the lookahead protocol pays for it.
    """
    table, aux = gated.sharded_exchange_table()
    rows, again = aux["rows"], aux["again"]
    assert rows[2] == again, "sharded exchange must be deterministic"
    register_table(table)

    reference = rows[1]["digest"]
    for shards, metrics in rows.items():
        assert metrics["digest"] == reference, (
            "shards=%d diverged from the single-process run" % shards)
        assert metrics["calls"] == rows[1]["calls"] > 0
        assert metrics["windows"] == rows[1]["windows"]
    # The partition must actually be exercised: traffic crosses shard
    # boundaries when there is more than one shard, never with one.
    assert rows[1]["cross_shard_per_call"] == 0.0
    assert rows[2]["cross_shard_per_call"] > 0.0
    assert rows[4]["cross_shard_per_call"] > rows[2]["cross_shard_per_call"]


def test_sharded_speedup_curve():
    """The informational wall-clock speedup curve on the 1000-host
    world.  Only the deterministic columns (calls, p99) are asserted
    and gated; the speedup itself scales with the runner's core count
    and is recorded, not asserted.
    """
    table, aux = gated.sharded_speedup_table()
    rows = aux["rows"]
    register_table(table)

    reference = rows[1]["digest"]
    for metrics in rows.values():
        assert metrics["digest"] == reference
        assert metrics["calls"] == rows[1]["calls"] > 0
        assert metrics["p99_ms"] == rows[1]["p99_ms"]
        assert metrics["calls_per_sec"] > 0


def test_elastic_grow_shrink_is_deterministic_and_gated():
    """The elastic grow-shrink table: the autoscaled §6.4.2 availability
    experiment must land the same calls, the same membership churn, and
    the same troupe uptime on every machine (virtual time only), and
    the autoscaler must actually reconfigure — joins beyond the two
    founding members, removes beyond zero.
    """
    table, aux = gated.elastic_table()
    metrics = aux["metrics"]
    assert metrics == aux["again"], "elastic metrics must be deterministic"
    register_table(table)

    assert metrics["calls_ok"] > 0
    # Churn happened: the founding bootstrap+join plus at least one
    # load- or failure-driven reconfiguration in each direction.
    assert metrics["joins"] > 2
    assert metrics["removes"] > 0
    assert 0.0 < metrics["troupe_availability"] <= 1.0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
