"""Equation 5.1 — deadlock probability of the troupe commit protocol.

P[deadlock] = 1 - (1/k!)^(n-1) for k conflicting transactions and an
n-member troupe whose members serialize independently and uniformly.

Two experiments:

1. a Monte-Carlo run of the protocol's decision structure: each member
   serializes the k conflicting transactions in an independent random
   order (lock-table arrival order); the coordinators' gathers succeed
   only if all members chose the same order — measured frequency vs the
   closed form;
2. a full-stack spot check at k=2, n=2: two clients run conflicting
   transactions through the real commit protocol with randomized
   arrival; aborted transactions retry with binary exponential back-off
   and eventually both commit (the §5.3.1 starvation remedy).
"""

import itertools

import pytest

from repro.analysis import deadlock_probability
from repro.bench.report import Table, register_table
from repro.sim.rng import RandomStream

TRIALS = 4000


def monte_carlo_deadlock(k: int, n: int, trials: int = TRIALS,
                         seed: int = 13) -> float:
    """Sample the §5.3.1 model: n members independently pick one of the
    k! serialization orders; deadlock-free iff all orders agree."""
    rng = RandomStream(seed, "eq51-k%d-n%d" % (k, n))
    orders = list(itertools.permutations(range(k)))
    deadlocks = 0
    for _ in range(trials):
        picks = {rng.choice(orders) for _ in range(n)}
        if len(picks) > 1:
            deadlocks += 1
    return deadlocks / trials


def test_equation_5_1_monte_carlo(benchmark):
    benchmark.pedantic(lambda: monte_carlo_deadlock(2, 2, 100),
                       rounds=1, iterations=1)
    table = Table(
        "Eq 5.1: troupe commit deadlock probability, measured vs analytic",
        ["k (txns)", "n (members)", "analytic", "measured"],
        notes="P[deadlock] = 1 - (1/k!)^(n-1); approaches certainty as "
              "conflicts grow, the starvation argument of Sec 5.3.1.")
    for k in (1, 2, 3, 4):
        for n in (1, 2, 3):
            analytic = deadlock_probability(k, n)
            measured = monte_carlo_deadlock(k, n)
            table.add_row(k, n, analytic, measured)
            assert measured == pytest.approx(analytic, abs=0.03), (k, n)
    register_table(table)


def test_full_protocol_conflict_resolves_with_backoff(benchmark):
    """The end-to-end behaviour behind the equation: conflicting
    transactions may abort (the protocol turned divergent orders into a
    deadlock, broken by timeout), and back-off retry makes progress."""
    from repro.core import ExportedModule, RuntimeConfig
    from repro.harness import World
    from repro.rpc import RemoteError
    from repro.sim import Sleep
    from repro.transactions import (
        BinaryExponentialBackoff,
        CommitCoordinator,
        CommitParticipant,
        TransactionManager,
        TransactionalStore,
    )
    from repro.transactions.commit import TXN_ABORTED_ERROR

    def run_conflict(seed):
        world = World(machines=8, seed=seed)
        stores = []

        def factory():
            return ExportedModule("kv", {})

        troupe, runtimes = world.make_troupe(
            "kv", factory, degree=2,
            runtime_config=RuntimeConfig(execution="parallel"))
        for runtime, module in zip(runtimes,
                                   [r.exports[0] for r in runtimes]):
            manager = TransactionManager(world.sim)
            store = TransactionalStore(manager)
            stores.append(store)
            participant = CommitParticipant(runtime, manager, store)

            def make_increment(participant=participant, store=store):
                def increment(ctx, args):
                    def body(txn):
                        value = yield from store.read(txn, "counter")
                        yield Sleep(5.0)  # widen the conflict window
                        yield from store.write(txn, "counter",
                                               (value or 0) + 1)
                        return b"ok"
                    return (yield from participant.run_transaction(ctx, body))
                return increment

            module.define(0, make_increment())

        outcomes = []

        def make_client(tag, delay):
            client = world.make_client()
            CommitCoordinator(client)

            def body():
                yield Sleep(delay)
                backoff = BinaryExponentialBackoff(
                    RandomStream(seed * 100 + ord(tag), tag),
                    initial_mean=150.0)
                aborts = 0
                for _ in range(10):
                    try:
                        yield from client.call_troupe(troupe, 0, 0, b"")
                        outcomes.append((tag, aborts))
                        return
                    except RemoteError as exc:
                        if exc.kind != TXN_ABORTED_ERROR:
                            raise
                        aborts += 1
                        yield Sleep(backoff.next_delay())
                outcomes.append((tag, -1))
            return body

        world.spawn(make_client("A", 0.0)())
        world.spawn(make_client("B", 2.0)())
        world.sim.run(until=120000.0)
        final = {store.committed_get("counter") for store in stores}
        return outcomes, final

    total_aborts = 0
    committed_clients = 0
    for seed in range(4):
        outcomes, final = run_conflict(seed)
        for _tag, aborts in outcomes:
            assert aborts >= 0, "a client starved despite back-off"
            total_aborts += aborts
            committed_clients += 1
        # Troupe consistency: both members converged to the same value,
        # equal to the number of committed increments.
        assert len(final) == 1
        assert final.pop() == len(outcomes)
    assert committed_clients == 8
    benchmark.extra_info["aborts"] = total_aborts
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    table = Table(
        "Eq 5.1 (full stack): conflicting transactions under the troupe "
        "commit protocol",
        ["runs", "clients committed", "protocol aborts observed"],
        notes="Aborts are the protocol converting divergent serialization "
              "orders into deadlocks; binary exponential back-off retries "
              "them to completion.")
    table.add_row(4, committed_clients, total_aborts)
    register_table(table)
