"""Figure 6.3 / Equations 6.1-6.2 — troupe availability.

The birth-death model: n members, exponential lifetimes (mean 1/lambda),
exponential repairs (mean 1/mu), failing and repaired independently.

    A = 1 - (lambda / (lambda + mu))^n                (Eq 6.1)
    1/mu = (1/lambda) (1-A)^(1/n) / (1-(1-A)^(1/n))   (Eq 6.2)

The experiment drives real machine crash/repair cycles and measures the
fraction of time at least one member was up, against the closed form;
it also reproduces the paper's worked example (3 members, one-hour
lifetime, 99.9% availability => replacement within 6 minutes 40 seconds).
"""

import pytest

from repro.analysis import availability, required_repair_time
from repro.bench.report import Table, register_table
from repro.harness import World
from repro.host import FailureModel


def measure_availability(n: int, failure_rate: float, repair_rate: float,
                         horizon: float = 600000.0, seed: int = 5) -> float:
    world = World(machines=n, seed=seed)
    model = FailureModel(world.sim, world.machines, failure_rate,
                         repair_rate, seed=seed)
    model.start()
    world.sim.run(until=horizon)
    return model.measured_availability()


def test_equation_6_1_availability(benchmark):
    benchmark.pedantic(
        lambda: measure_availability(1, 1 / 50.0, 1 / 10.0, 5000.0),
        rounds=1, iterations=1)
    table = Table(
        "Eq 6.1 / Fig 6.3: troupe availability, birth-death simulation",
        ["n", "lifetime 1/λ", "repair 1/μ", "analytic A", "measured A"],
        notes="Measured over a long crash/repair simulation of real "
              "machines; troupe availability = P[not all members down].")
    cases = [
        (1, 50.0, 25.0),
        (2, 50.0, 25.0),
        (3, 50.0, 25.0),
        (5, 50.0, 25.0),
        (3, 50.0, 50.0),
    ]
    for n, lifetime, repair in cases:
        analytic = availability(n, 1.0 / lifetime, 1.0 / repair)
        measured = measure_availability(n, 1.0 / lifetime, 1.0 / repair)
        table.add_row(n, lifetime, repair, analytic, measured)
        assert measured == pytest.approx(analytic, abs=0.05), (n, lifetime)
    register_table(table)

    # Replication helps: availability strictly improves with n.
    series = [availability(n, 1 / 50.0, 1 / 25.0) for n in (1, 2, 3, 5)]
    assert series == sorted(series)


def test_equation_6_2_worked_example(benchmark):
    benchmark.pedantic(lambda: required_repair_time(3, 60.0, 0.999),
                       rounds=1, iterations=1)
    table = Table(
        "Eq 6.2: replacement time for a target availability "
        "(the paper's worked example)",
        ["n", "lifetime", "target A", "required repair time",
         "paper's value"],
        notes="'If each troupe member has an average lifetime of one "
              "hour, the average replacement time must be no longer than "
              "6 minutes 40 seconds' (n=3); with n=5 it may be 20 minutes.")
    # Lifetimes in minutes; the paper's example: one hour = 60 min.
    repair3 = required_repair_time(3, 60.0, 0.999)
    repair5 = required_repair_time(5, 60.0, 0.999)
    table.add_row(3, "60 min", 0.999, "%.2f min" % repair3, "6 min 40 s")
    table.add_row(5, "60 min", 0.999, "%.2f min" % repair5, "20 min")
    register_table(table)
    assert repair3 == pytest.approx(60.0 / 9.0)        # 6:40
    assert repair5 == pytest.approx(20.0, rel=0.01)    # 20 minutes

    # Close the loop in simulation at a measurable target: pick A = 0.9,
    # derive the repair time from Eq 6.2, measure availability near 0.9.
    target = 0.90
    lifetime = 40.0
    repair = required_repair_time(3, lifetime, target)
    measured = measure_availability(3, 1.0 / lifetime, 1.0 / repair,
                                    horizon=1200000.0)
    assert measured == pytest.approx(target, abs=0.05)
