"""Benchmark-suite plumbing: print every registered paper-vs-measured
table in the terminal summary, so the reproduction's rows appear in the
output of ``pytest benchmarks/ --benchmark-only``."""

from repro.bench.report import registered_tables


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = registered_tables()
    if not tables:
        return
    write = terminalreporter.write_line
    write("")
    write("################################################################")
    write("# Reproduction results: paper values vs this simulation        #")
    write("################################################################")
    for table in tables:
        for line in table.render().splitlines():
            write(line)
    write("")
