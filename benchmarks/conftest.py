"""Benchmark-suite plumbing: print every registered paper-vs-measured
table in the terminal summary, so the reproduction's rows appear in the
output of ``pytest benchmarks/ --benchmark-only``, and write the same
tables as machine-readable JSON (``--bench-json=PATH``)."""

import json

from repro.bench.report import registered_tables


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", default="BENCH_RESULTS.json",
        metavar="PATH",
        help="write registered benchmark tables as JSON to PATH "
             "(default: %(default)s; empty string disables)")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = registered_tables()
    if not tables:
        return
    write = terminalreporter.write_line
    write("")
    write("################################################################")
    write("# Reproduction results: paper values vs this simulation        #")
    write("################################################################")
    for table in tables:
        for line in table.render().splitlines():
            write(line)
    write("")
    path = config.getoption("--bench-json")
    if path:
        with open(path, "w") as fh:
            json.dump({"tables": [t.to_dict() for t in tables]}, fh,
                      indent=2)
            fh.write("\n")
        write("benchmark tables written to %s" % path)
