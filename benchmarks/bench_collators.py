"""Ablation — wait policies and collators (§4.3.4, §4.3.6).

Unanimous waiting pins a call to the *slowest* troupe member and buys
error detection; first-come runs at the speed of the *fastest* member and
forfeits it; majority sits in between and tolerates one divergent member.
This bench quantifies the latency spread under skewed member execution
rates, and measures the §4.3.4 buffering cost: with first-come, returns
from slow members accumulate at the client until they arrive.
"""

import pytest

from repro.bench.report import Table, register_table
from repro.core import (
    FirstComeCollator,
    MajorityCollator,
    UnanimousCollator,
)
from repro.core.runtime import ExportedModule, RuntimeConfig
from repro.harness import World
from repro.pairedmsg.endpoint import PairedMessageConfig
from repro.sim import Sleep

#: Skewed member execution times (ms): one fast, one middling, one slow —
#: the "variation in execution rate" of §4.3.4.
MEMBER_DELAYS = [5.0, 40.0, 120.0]
CALLS = 30


def run_with_collator(make_collator, calls: int = CALLS, seed: int = 3):
    paired = PairedMessageConfig(retransmit_interval=1000.0,
                                 probe_interval=2000.0,
                                 crash_timeout=10000.0)
    world = World(machines=4, seed=seed,
                  runtime_config=RuntimeConfig(paired=paired))
    index = [0]

    def factory():
        delay = MEMBER_DELAYS[index[0]]
        index[0] += 1

        def serve(ctx, args, _delay=delay):
            yield Sleep(_delay)
            return b"result"
        return ExportedModule("skewed", {0: serve})

    troupe, _ = world.make_troupe("skewed", factory,
                                  degree=len(MEMBER_DELAYS))
    client = world.make_client()

    def body():
        start = world.sim.now
        for _ in range(calls):
            yield from client.call_troupe(troupe, 0, 0, b"",
                                          collator=make_collator())
        mean_latency = (world.sim.now - start) / calls
        # §4.3.4 buffering: returns nobody consumed yet sit in the
        # endpoint (client-side buffering of early/slow responses).
        buffered = len(client.endpoint._completed_returns)
        return mean_latency, buffered

    return world.run(body())


def test_collator_latency_spread(benchmark):
    benchmark.pedantic(lambda: run_with_collator(FirstComeCollator, 3),
                       rounds=1, iterations=1)
    unanimous, buf_u = run_with_collator(UnanimousCollator)
    first_come, buf_f = run_with_collator(FirstComeCollator)
    majority, buf_m = run_with_collator(MajorityCollator)

    table = Table(
        "Ablation (Sec 4.3.4): wait policy vs per-call latency",
        ["policy", "mean ms/call", "decides after", "error detection"],
        notes="Member execution times skewed %s ms.  Unanimous is paced "
              "by the slowest member, first-come by the fastest." %
              MEMBER_DELAYS)
    table.add_row("unanimous", unanimous, "all members", "full")
    table.add_row("majority", majority, "majority agree", "partial")
    table.add_row("first-come", first_come, "first response", "none")
    register_table(table)

    assert first_come < majority < unanimous
    # Unanimous is paced by the slowest member (120 ms + protocol).
    assert unanimous > MEMBER_DELAYS[-1]
    # First-come is paced by the fastest (5 ms + protocol) — far below
    # the middle member's delay.
    assert first_come < MEMBER_DELAYS[1] + 30.0


def test_first_come_discards_straggler_returns(benchmark):
    """Early decision must not leak: stragglers' returns are discarded by
    the endpoint (forget_return), so buffering stays bounded."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _latency, buffered = run_with_collator(FirstComeCollator, calls=30)
    assert buffered <= len(MEMBER_DELAYS)
