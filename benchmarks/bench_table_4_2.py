"""Table 4.2 — CPU time for the Berkeley 4.2BSD system calls used in Circus.

The simulation charges these costs by construction (they are the
calibration), so this bench *measures them back* through the accounting
machinery — a self-check that the cost model, the per-syscall profile,
and the clock all agree — and prints them against the paper's column.
"""

import pytest

from repro.bench.echo import PAPER_TABLE_4_2
from repro.bench.report import Table, register_table
from repro.harness import World


def measure_syscall(name: str, repetitions: int = 100) -> float:
    world = World(machines=1)
    proc = world.machines[0].spawn_process("measure")

    def body():
        start = world.sim.now
        for _ in range(repetitions):
            yield from proc.syscall(name)
        return (world.sim.now - start) / repetitions

    elapsed = world.run(body())
    # Clock advance, kernel accounting, and the profile must agree.
    assert elapsed == pytest.approx(proc.kernel_time / repetitions)
    assert proc.syscall_times[name] == pytest.approx(proc.kernel_time)
    assert proc.syscall_counts[name] == repetitions
    return elapsed


def test_table_4_2(benchmark):
    benchmark.pedantic(lambda: measure_syscall("sendmsg", 10),
                       rounds=1, iterations=1)
    table = Table(
        "Table 4.2: CPU time for 4.2BSD system calls used in Circus (ms)",
        ["syscall", "paper", "simulated"],
        notes="These costs are the calibration inputs of the whole "
              "reproduction (see DESIGN.md).")
    measured = {}
    for name, paper_cost in PAPER_TABLE_4_2.items():
        cost = measure_syscall(name)
        measured[name] = cost
        table.add_row(name, paper_cost, cost)
        assert cost == pytest.approx(paper_cost), name
    register_table(table)
    benchmark.extra_info["costs"] = measured
    # The paper's ordering: sendmsg is by far the most expensive.
    assert measured["sendmsg"] == max(measured.values())
    assert measured["sendmsg"] > 2.5 * measured["recvmsg"]
