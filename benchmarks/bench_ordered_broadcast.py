"""Figure 5.1 / §5.5 — ordered broadcast, and the concurrency-control
trade-off.

The ordered broadcast protocol is starvation-free: concurrent broadcasts
are never interleaved and every member delivers them in the same order.
The §5.5 discussion weighs it against the optimistic troupe commit
protocol: ordered broadcast restricts concurrency (deliveries are
serialized) but never aborts; the commit protocol is optimistic and
aborts under contention.

Measured here: (a) order agreement across members under heavy concurrent
broadcasting, (b) throughput of the ordered-broadcast pipeline, and (c)
a head-to-head with the commit protocol on a contended counter.
"""

import pytest

from repro.bench.report import Table, register_table
from repro.core import ExportedModule, RuntimeConfig
from repro.harness import World
from repro.sim import Sleep
from repro.transactions import OrderedBroadcastServer, atomic_broadcast


def run_broadcast_storm(broadcasters: int = 4, each: int = 8,
                        degree: int = 3, seed: int = 9):
    world = World(machines=broadcasters + degree + 1, seed=seed)
    troupe, runtimes = world.make_troupe(
        "ob", lambda: ExportedModule("placeholder", {}), degree=degree,
        runtime_config=RuntimeConfig(execution="parallel"))
    logs = []
    servers = []
    for runtime in runtimes:
        log = []
        logs.append(log)
        servers.append(OrderedBroadcastServer(runtime, log.append))
    module = servers[0].module_addr.module

    def make_broadcaster(tag, delay):
        client = world.make_client()

        def body():
            yield Sleep(delay)
            for i in range(each):
                yield from atomic_broadcast(
                    client, troupe, module,
                    b"%s-%d" % (tag, i), b"%s:%d" % (tag, i))
        return body

    start = world.sim.now
    for b in range(broadcasters):
        world.spawn(make_broadcaster(b"b%d" % b, float(b))())
    world.sim.run()
    elapsed = world.sim.now - start
    total = broadcasters * each
    return logs, total, elapsed


def test_all_members_deliver_in_identical_order(benchmark):
    benchmark.pedantic(lambda: run_broadcast_storm(2, 2, 2),
                       rounds=1, iterations=1)
    logs, total, elapsed = run_broadcast_storm()
    assert all(len(log) == total for log in logs)
    assert all(log == logs[0] for log in logs[1:])

    table = Table(
        "Fig 5.1: ordered broadcast under concurrent senders",
        ["broadcasters", "messages", "members", "identical order",
         "ms/broadcast"],
        notes="The Sec 5.4 guarantee: concurrent broadcasts are never "
              "interleaved; every member accepts them in the same order.")
    table.add_row(4, total, len(logs), "yes", elapsed / total)
    register_table(table)


def test_ordered_broadcast_vs_commit_protocol_under_contention(benchmark):
    """§5.5: ordered broadcast never aborts (starvation-free) where the
    optimistic commit protocol thrashes; the price is serialization."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Ordered-broadcast counter: every increment succeeds, exactly once,
    # in the same order everywhere.
    world = World(machines=10, seed=21)
    troupe, runtimes = world.make_troupe(
        "ctr", lambda: ExportedModule("placeholder", {}), degree=2,
        runtime_config=RuntimeConfig(execution="parallel"))
    counters = []
    servers = []
    for runtime in runtimes:
        state = {"count": 0}
        counters.append(state)

        def deliver(payload, state=state):
            state["count"] += 1

        servers.append(OrderedBroadcastServer(runtime, deliver))
    module = servers[0].module_addr.module
    clients = 4
    increments = 5

    def make_client(tag):
        client = world.make_client()

        def body():
            for i in range(increments):
                yield from atomic_broadcast(
                    client, troupe, module,
                    b"%s/%d" % (tag, i), b"inc")
        return body

    start = world.sim.now
    for c in range(clients):
        world.spawn(make_client(b"c%d" % c)())
    world.sim.run()
    ob_elapsed = world.sim.now - start
    total = clients * increments
    assert all(state["count"] == total for state in counters)

    table = Table(
        "Sec 5.5: ordered broadcast vs troupe commit under contention",
        ["scheme", "operations", "aborts/retries", "outcome"],
        notes="Ordered broadcast serializes and never aborts; the "
              "optimistic commit protocol aborts conflicting "
              "serialization orders and retries with back-off "
              "(see bench_eq_5_1 for its abort counts).")
    table.add_row("ordered-broadcast", total, 0,
                  "all members at %d, %.0f ms total" % (total, ob_elapsed))
    table.add_row("troupe-commit", "see bench_eq_5_1", ">0 under conflict",
                  "progress via exponential back-off")
    register_table(table)
