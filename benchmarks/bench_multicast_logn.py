"""§4.4.2 — The theoretical analysis: E[T] = H_n * r with multicast.

"Suppose that each T_i is exponentially distributed with mean r.  Then
E[T] = H_n r = r log n + O(r): the expected time per call increases only
logarithmically with the size of the troupe", versus linearly when
multicast is simulated by repeated sends.

The experiment: a troupe whose members' execution times are iid
exponential with mean r; the client waits for all members (unanimous).
With hardware multicast and negligible protocol cost, the measured mean
call time should track H_n * r; with point-to-point simulation of
multicast it grows linearly because each sendmsg serializes.
"""

import pytest

from repro.analysis import expected_max_exponential, harmonic
from repro.bench.report import Table, register_table
from repro.bench.echo import linear_fit
from repro.core.runtime import ExportedModule, RuntimeConfig
from repro.harness import World
from repro.host.syscalls import SyscallCostModel, TABLE_4_2_COSTS
from repro.pairedmsg.endpoint import PairedMessageConfig
from repro.sim import Sleep
from repro.sim.rng import RandomStream

ROUND_TRIP_MEAN = 50.0   # ms: r, the exponential round-trip mean
CALLS = 120
DEGREES = (1, 2, 4, 8, 16)


def run_multicast_calls(degree: int, use_multicast: bool,
                        calls: int = CALLS, seed: int = 7,
                        cheap_syscalls: bool = True) -> float:
    """Mean call time to a troupe with exponential member service times.

    With ``cheap_syscalls`` the protocol CPU is negligible, as the §4.4.2
    model assumes ("an efficient multicast implementation"); without it,
    the Table 4.2 sendmsg cost applies and the Circus-style linear term
    reappears.
    """
    scale = 0.001 if cheap_syscalls else 1.0
    cost_model = SyscallCostModel(TABLE_4_2_COSTS, scale=scale)
    paired = PairedMessageConfig(retransmit_interval=3000.0,
                                 probe_interval=6000.0,
                                 crash_timeout=30000.0,
                                 user_cost_send=0.0, user_cost_receive=0.0)
    world = World(machines=degree + 1, seed=seed,
                  runtime_config=RuntimeConfig(use_multicast=use_multicast,
                                               paired=paired),
                  cost_model=cost_model)
    member_index = [0]

    def factory():
        rng = RandomStream(seed, "service-%d" % member_index[0])
        member_index[0] += 1

        def serve(ctx, args):
            yield Sleep(rng.expovariate(1.0 / ROUND_TRIP_MEAN))
            return b"done"
        return ExportedModule("expsvc", {0: serve})

    troupe, _ = world.make_troupe("expsvc", factory, degree=degree)
    client = world.make_client()

    def body():
        start = world.sim.now
        for _ in range(calls):
            yield from client.call_troupe(troupe, 0, 0, b"")
        return (world.sim.now - start) / calls

    return world.run(body())


@pytest.fixture(scope="module")
def measured():
    multicast = {n: run_multicast_calls(n, use_multicast=True)
                 for n in DEGREES}
    # The point-to-point runs pay the full Table 4.2 sendmsg cost — the
    # "two orders of magnitude slower than the network" argument that
    # makes Circus linear (§4.4.2).
    point_to_point = {n: run_multicast_calls(n, use_multicast=False,
                                             calls=40,
                                             cheap_syscalls=False)
                      for n in DEGREES}
    return multicast, point_to_point


def test_multicast_expected_time_is_harmonic(benchmark, measured):
    benchmark.pedantic(lambda: run_multicast_calls(2, True, calls=5),
                       rounds=1, iterations=1)
    multicast, point_to_point = measured
    table = Table(
        "Sec 4.4.2: multicast call time vs H_n * r (r = %.0f ms)"
        % ROUND_TRIP_MEAN,
        ["degree", "H_n*r (theory)", "multicast (sim)", "ratio",
         "point-to-point (sim)"],
        notes="Theory: E[T] = H_n * r (Theorem 4.3). Multicast grows like "
              "log n; simulating multicast by repeated sends grows "
              "linearly (the Circus measurement).")
    for degree in DEGREES:
        theory = expected_max_exponential(degree, ROUND_TRIP_MEAN)
        sim = multicast[degree]
        ratio = sim / theory
        table.add_row(degree, theory, sim, ratio, point_to_point[degree])
        # Within sampling tolerance of the closed form.
        assert 0.8 < ratio < 1.25, (degree, ratio)
    register_table(table)

    # Logarithmic vs linear growth: going 1 -> 16 members multiplies the
    # multicast time by about H_16 ~ 3.4, far below 16.
    growth = multicast[16] / multicast[1]
    assert growth < 6.0
    assert growth == pytest.approx(harmonic(16), rel=0.3)


def test_point_to_point_grows_linearly(benchmark, measured):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    _multicast, point_to_point = measured
    xs = list(DEGREES)
    ys = [point_to_point[n] for n in xs]
    slope, _intercept, r_squared = linear_fit(xs, ys)
    # The waiting component H_n*r is concave, but the per-member
    # serialized sends add a dominant linear term; check super-harmonic
    # growth relative to the multicast case.
    assert ys[-1] / ys[0] > (harmonic(16) * 1.2)
