"""Figure 4.8 — Performance of Circus replicated procedure calls.

The figure plots the Table 4.1 measurements against troupe size and shows
every component growing *linearly* — the consequence of simulating
multicast with successive point-to-point sendmsg operations.  This bench
regenerates the series, fits a line, asserts the fit, and renders an
ASCII version of the plot.
"""

import pytest

from repro.bench.echo import linear_fit, run_circus_series
from repro.bench.report import Table, register_table

DEGREES = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def results():
    return run_circus_series(DEGREES, iterations=30)


def sparkline(values, width=40):
    top = max(values)
    return ["%s %6.1f" % ("#" * max(1, int(width * v / top)), v)
            for v in values]


def test_figure_4_8(benchmark, results):
    benchmark.pedantic(lambda: run_circus_series((1,), 5),
                       rounds=1, iterations=1)
    xs = list(DEGREES)
    series = {
        "real": [r.real for r in results],
        "total cpu": [r.total for r in results],
        "user cpu": [r.user for r in results],
        "kernel cpu": [r.kernel for r in results],
    }
    table = Table(
        "Figure 4.8: Circus call time vs degree of replication (ms/rpc)",
        ["component", "n=1", "n=2", "n=3", "n=4", "n=5",
         "slope(ms/member)", "R^2"],
        notes="Point-to-point sends make every component linear in troupe "
              "size; compare bench_multicast_logn for the multicast case.")
    for name, ys in series.items():
        slope, _intercept, r_squared = linear_fit(xs, ys)
        table.add_row(name, *ys, slope, r_squared)
        # Linear growth with an excellent fit, as the figure shows.
        assert r_squared > 0.98, (name, r_squared)
        assert slope > 0.0
    register_table(table)

    plot = Table("Figure 4.8 (ASCII): real time per call",
                 ["degree", "bar"])
    for degree, line in zip(DEGREES, sparkline(series["real"])):
        plot.add_row(degree, line)
    register_table(plot)

    # The real-time slope is the paper's 10-20 ms per member.
    slope, _, _ = linear_fit(xs, series["real"])
    assert 8.0 <= slope <= 22.0
