"""Compare a --bench-json run against the committed baseline.

    PYTHONPATH=src python benchmarks/compare.py BENCH_RESULTS.json
    PYTHONPATH=src python benchmarks/compare.py results.json \
        --baseline BENCH_BASELINE.json --threshold 25

Both files hold the ``{"tables": [Table.to_dict(), ...]}`` shape written
by ``pytest benchmarks/ --bench-json=PATH``.  Tables are matched by
title and rows by their first column (the workload label); every shared
numeric cell gets a delta.  Exit status is 1 when any |delta| exceeds
``--threshold`` percent (0 disables the gate — report only).

The simulation is deterministic, so most columns should match the
baseline exactly; drift means the protocol's behaviour changed, which is
exactly what a PR reviewer wants surfaced.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_tables(path):
    """title -> (columns, {row_label -> row}, gate_columns).

    ``gate_columns`` is ``None`` when the table gates every numeric
    column (the default), else the subset of column names the gate
    enforces — the rest are reported informationally."""
    with open(path) as fh:
        payload = json.load(fh)
    tables = {}
    for table in payload.get("tables", []):
        rows = {str(row[0]): row for row in table.get("rows", []) if row}
        tables[table["title"]] = (table.get("columns", []), rows,
                                  table.get("gate_columns"))
    return tables


def percent_delta(base, new):
    if base == 0:
        return None if new == 0 else float("inf")
    return (new - base) / abs(base) * 100.0


def compare(baseline, results, threshold, require_all=False):
    """Yield (table, row, column, base, new, delta%) for every shared
    numeric cell; collect regressions past the threshold.

    With ``require_all``, a baseline table or row missing from the
    results is itself a regression (the perf gate uses this so a deleted
    benchmark cannot silently pass)."""
    regressions = []
    lines = []
    for title, (columns, base_rows, gate_columns) in sorted(baseline.items()):
        if title not in results:
            lines.append("MISSING table in results: %s" % title)
            if require_all:
                regressions.append((title, None, None, None, None, None))
            continue
        _new_columns, new_rows, _ = results[title]
        header_shown = False
        for label, base_row in base_rows.items():
            new_row = new_rows.get(label)
            if new_row is None:
                lines.append("  MISSING row %r in %s" % (label, title))
                if require_all:
                    regressions.append((title, label, None, None, None,
                                        None))
                continue
            for i, (b, n) in enumerate(zip(base_row, new_row)):
                if i == 0 or not isinstance(b, (int, float)) \
                        or not isinstance(n, (int, float)) \
                        or isinstance(b, bool):
                    continue
                delta = percent_delta(b, n)
                if delta is None or delta == 0.0:
                    continue
                if not header_shown:
                    lines.append(title)
                    header_shown = True
                column = columns[i] if i < len(columns) else "col%d" % i
                gated = gate_columns is None or column in gate_columns
                flag = "" if gated else "  (informational, not gated)"
                if gated and threshold and abs(delta) > threshold:
                    flag = "  <-- exceeds %.0f%%" % threshold
                    regressions.append((title, label, column, b, n, delta))
                lines.append("  %-20s %-18s %12g -> %-12g %+8.2f%%%s"
                             % (label, column, b, n, delta, flag))
    for title in sorted(set(results) - set(baseline)):
        lines.append("NEW table (not in baseline): %s" % title)
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="report per-benchmark deltas against the committed "
                    "baseline")
    parser.add_argument("results", help="a --bench-json output file")
    parser.add_argument("--baseline", default="BENCH_BASELINE.json",
                        help="baseline file (default BENCH_BASELINE.json)")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="fail when any |delta| exceeds this percent "
                             "(default 0: report only)")
    parser.add_argument("--require-all", action="store_true",
                        help="also fail when a baseline table or row is "
                             "missing from the results")
    args = parser.parse_args(argv)
    baseline = load_tables(args.baseline)
    results = load_tables(args.results)
    lines, regressions = compare(baseline, results, args.threshold,
                                 require_all=args.require_all)
    if lines:
        print("\n".join(lines))
    else:
        print("no deltas: results match the baseline exactly")
    if regressions:
        print("\n%d regression(s) against %s (threshold %.0f%%)"
              % (len(regressions), args.baseline, args.threshold))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
