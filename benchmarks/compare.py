"""Compare a --bench-json run against the committed baseline.

    PYTHONPATH=src python benchmarks/compare.py BENCH_RESULTS.json
    PYTHONPATH=src python benchmarks/compare.py results.json \
        --baseline BENCH_BASELINE.json --threshold 25

Thin CLI wrapper: the comparison logic lives in
``repro.bench.compare`` so that ``repro perf --compare`` runs the exact
same gate locally in one command.  See that module for the semantics
(table/row matching, gate_columns, --require-all).
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.bench.compare import (  # noqa: E402  (path bootstrap above)
    compare,
    load_tables,
    main,
    percent_delta,
)

__all__ = ["compare", "load_tables", "main", "percent_delta"]


if __name__ == "__main__":
    sys.exit(main())
