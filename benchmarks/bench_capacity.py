"""Extension — troupe capacity under open-loop load.

Not a table from the paper: the dissertation measures closed-loop latency
only and lists performance evaluation of alternatives as future work
(§8.2).  This bench characterizes what a 1985 reviewer would have asked
next: how does a replicated service behave as offered load rises?  The
syscall cost model bounds a member's service capacity (a call costs
~15 ms of server CPU), so latency should stay flat well below saturation
and grow sharply near it.

The sweep is overridable from the environment so the sharded capacity
driver (``repro shard``) and ad-hoc runs can reuse it at other scales:

- ``REPRO_CAPACITY_RATES``  — comma-separated offered loads (calls/s);
- ``REPRO_CAPACITY_CALLS``  — calls per rate (default 120: enough
  samples per rate for a stable tail estimate — the old 30-call sweep
  made the p99 column a coin flip);
- ``REPRO_CAPACITY_ARRIVAL`` — ``fixed`` | ``poisson`` | ``pareto``.
"""

import os

import pytest

from repro.bench.report import Table, register_table
from repro.bench.workloads import ARRIVAL_KINDS, run_load_sweep


def _env_rates(default):
    raw = os.environ.get("REPRO_CAPACITY_RATES")
    if not raw:
        return default
    return [float(rate) for rate in raw.split(",") if rate.strip()]


RATES = _env_rates([5.0, 20.0, 40.0, 80.0])   # calls/second offered
TOTAL_CALLS = int(os.environ.get("REPRO_CAPACITY_CALLS", "120"))
ARRIVAL = os.environ.get("REPRO_CAPACITY_ARRIVAL", "poisson")
DEGREE = 3

assert ARRIVAL in ARRIVAL_KINDS, "REPRO_CAPACITY_ARRIVAL=%s" % ARRIVAL


@pytest.fixture(scope="module")
def sweep():
    return run_load_sweep(RATES, degree=DEGREE, total_calls=TOTAL_CALLS,
                          arrival=ARRIVAL)


def test_capacity_sweep(benchmark, sweep):
    benchmark.pedantic(lambda: run_load_sweep([5.0], degree=1,
                                              total_calls=3),
                       rounds=1, iterations=1)
    table = Table(
        "Extension: open-loop load sweep (3-member troupe)",
        ["offered calls/s", "throughput calls/s", "mean latency ms",
         "p90 latency ms", "p99 latency ms"],
        notes="Closed-loop measurements (Table 4.1) hide queueing; this "
              "sweep shows the latency knee as offered load approaches "
              "the per-member CPU capacity.  %d %s-arrival calls per "
              "rate." % (TOTAL_CALLS, ARRIVAL))
    for result in sweep:
        table.add_row(result.offered_rate, result.throughput,
                      result.mean_latency, result.percentile_latency(0.9),
                      result.percentile_latency(0.99))
    register_table(table)

    latencies = [r.mean_latency for r in sweep]
    # Low-load latency is near the closed-loop per-call time...
    assert latencies[0] < 120.0
    # ...and latency grows monotonically toward saturation.
    assert latencies[-1] > 1.5 * latencies[0]
    # Throughput is monotone non-decreasing until saturation.
    throughputs = [r.throughput for r in sweep]
    assert throughputs[1] > throughputs[0]
