"""Table 4.3 — Execution profile for Circus replicated procedure calls.

The paper profiled the client and found six system calls account for more
than half of total CPU, with sendmsg the largest consumer (27-33%) —
"most of the time ... is spent in the simulation of multicasting by means
of successive sendmsg operations."  This bench reruns the echo workload
with the per-syscall accounting enabled and reports the same percentages.
"""

import pytest

from repro.bench.echo import PAPER_TABLE_4_3, run_circus_series
from repro.bench.report import Table, register_table

DEGREES = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def results():
    return run_circus_series(DEGREES, iterations=30)


def test_table_4_3(benchmark, results):
    benchmark.pedantic(lambda: run_circus_series((1,), 5),
                       rounds=1, iterations=1)
    table = Table(
        "Table 4.3: Execution profile (% of total CPU per call)",
        ["degree", "sendmsg(paper)", "sendmsg(sim)", "select(paper)",
         "select(sim)", "recvmsg(paper)", "recvmsg(sim)", "six-calls(sim)"],
        notes="six-calls(sim): share of total CPU spent in the six "
              "Table 4.2 syscalls; the paper reports 'more than half'.")
    for result in results:
        degree = int(result.label[len("Circus("):-1])
        pcts = result.profile_percentages()
        paper = PAPER_TABLE_4_3[degree]
        six = sum(pcts.get(name, 0.0) for name in (
            "sendmsg", "recvmsg", "select", "setitimer", "gettimeofday",
            "sigblock"))
        table.add_row(degree, paper["sendmsg"], pcts.get("sendmsg", 0.0),
                      paper["select"], pcts.get("select", 0.0),
                      paper["recvmsg"], pcts.get("recvmsg", 0.0), six)
        # The headline findings of §4.4.1:
        # 1. sendmsg is the single largest consumer;
        assert pcts["sendmsg"] == max(pcts.values())
        # 2. in the paper's ballpark (a quarter to a half of all CPU);
        assert 20.0 <= pcts["sendmsg"] <= 50.0
        # 3. the six profiled syscalls account for more than half.
        assert six > 50.0
    register_table(table)
