"""Ablation — Circus windowed segments vs the PARC stop-and-wait (§4.2.5).

"The Xerox PARC protocol requires an explicit acknowledgment of every
segment but the last.  This doubles the number of segments sent, but ...
only one segment's worth of buffer space is required per connection.
The Circus protocol allows multiple segments to be sent before one is
acknowledged, which reduces the number of segments sent to the minimum."

The experiment transfers multi-segment messages under both schemes, at
several loss rates, and reports packets on the wire and transfer latency.
"""

import pytest

from repro.bench.report import Table, register_table
from repro.harness import World
from repro.net.network import NetworkConfig
from repro.pairedmsg import PairedEndpoint, PairedMessageConfig

MESSAGE = bytes(range(256)) * 24          # 6144 bytes -> 13 segments
SEGMENT_DATA = 512


def run_transfer(stop_and_wait: bool, loss: float, transfers: int = 8,
                 seed: int = 11):
    world = World(machines=2, seed=seed,
                  net_config=NetworkConfig(loss_probability=loss))
    config = PairedMessageConfig(max_segment_data=SEGMENT_DATA,
                                 stop_and_wait=stop_and_wait,
                                 retransmit_interval=30.0)
    client_proc = world.machines[0].spawn_process("pm-client")
    server_proc = world.machines[1].spawn_process("pm-server")
    client = PairedEndpoint(client_proc, config=config)
    server = PairedEndpoint(server_proc, port=600, config=config)

    def server_loop():
        while True:
            msg = yield from server.next_call()
            yield from server.send_return(msg.peer, msg.call_number, b"ok")

    server_proc.spawn(server_loop(), daemon=True)

    def body():
        start = world.sim.now
        for number in range(1, transfers + 1):
            yield from client.call(server.addr, number, MESSAGE)
        return (world.sim.now - start) / transfers

    latency = world.run(body())
    return latency, world.net.packets_sent / transfers


def test_windowing_vs_stop_and_wait(benchmark):
    benchmark.pedantic(lambda: run_transfer(False, 0.0, 1),
                       rounds=1, iterations=1)
    table = Table(
        "Ablation (Sec 4.2.5): Circus windowing vs PARC stop-and-wait",
        ["scheme", "loss", "ms/transfer", "packets/transfer"],
        notes="13-segment (6 KB) call messages.  Stop-and-wait roughly "
              "doubles the packets and serializes on round trips; "
              "windowing needs more buffering (unbounded in Circus).")
    results = {}
    for loss in (0.0, 0.05, 0.15):
        for scheme, saw in (("circus-window", False), ("stop-and-wait", True)):
            latency, packets = run_transfer(saw, loss)
            results[(scheme, loss)] = (latency, packets)
            table.add_row(scheme, loss, latency, packets)
    register_table(table)

    for loss in (0.0, 0.05, 0.15):
        window_latency, window_packets = results[("circus-window", loss)]
        saw_latency, saw_packets = results[("stop-and-wait", loss)]
        # Stop-and-wait sends substantially more packets (acks per
        # segment) and is slower (a round trip per segment).  Loss narrows
        # the packet gap because windowing pays retransmissions too.
        floor = 1.5 if loss == 0.0 else 1.2
        assert saw_packets > floor * window_packets, loss
        assert saw_latency > window_latency, loss


def test_reliability_holds_at_high_loss(benchmark):
    """Both schemes still deliver correctly at 25% loss."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for saw in (False, True):
        latency, _packets = run_transfer(saw, 0.25, transfers=3, seed=17)
        assert latency > 0  # completed without protocol failure
