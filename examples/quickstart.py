"""Quickstart: a replicated echo service that survives machine crashes.

This is the paper's headline demonstration: a module replicated as a
three-member troupe keeps answering replicated procedure calls while its
machines crash underneath it, with exactly-once execution at every
surviving replica and no replication code in either the module or the
client (replication transparency, §3.5).

Run:  python examples/quickstart.py
"""

from repro.core import ExportedModule, TroupeFailure
from repro.harness import World


def echo_module():
    """The module being replicated: it has no idea troupes exist."""
    calls = {"count": 0}

    def echo(ctx, args):
        calls["count"] += 1
        return b"echo[%d]: %s" % (calls["count"], args)

    return ExportedModule("echo", {0: echo})


def main():
    world = World(machines=5, seed=42)
    troupe, members = world.make_troupe("echo-service", echo_module,
                                        degree=3)
    client = world.make_client()
    print("troupe %r: %d members on %s" % (
        troupe.name, troupe.degree,
        [m.process.host for m in troupe.members]))

    def scenario():
        reply = yield from client.call_troupe(troupe, 0, 0, b"hello")
        print("t=%6.1fms  all 3 up      -> %s" % (world.sim.now, reply))

        # Crash one member's machine: a partial failure (§1.1).
        victim = troupe.members[0].process.host
        world.machine(victim).crash()
        print("t=%6.1fms  crashed %s" % (world.sim.now, victim))

        reply = yield from client.call_troupe(troupe, 0, 0, b"still there?")
        print("t=%6.1fms  2 of 3 up     -> %s" % (world.sim.now, reply))

        # Crash another: one survivor is still a functioning troupe.
        victim2 = troupe.members[1].process.host
        world.machine(victim2).crash()
        print("t=%6.1fms  crashed %s" % (world.sim.now, victim2))

        reply = yield from client.call_troupe(troupe, 0, 0, b"last one?")
        print("t=%6.1fms  1 of 3 up     -> %s" % (world.sim.now, reply))

        # Total failure: every member gone (§3.5.1's only fatal case).
        victim3 = troupe.members[2].process.host
        world.machine(victim3).crash()
        print("t=%6.1fms  crashed %s (total failure)" % (
            world.sim.now, victim3))
        try:
            yield from client.call_troupe(troupe, 0, 0, b"anyone?")
        except TroupeFailure as exc:
            print("t=%6.1fms  TroupeFailure -> %s" % (world.sim.now, exc))

    world.run(scenario())
    executed = [r.calls_executed for r in members]
    print("calls executed per member (exactly-once while up):", executed)


if __name__ == "__main__":
    main()
