"""Programming-in-the-large: the troupe configuration language (§7.5).

An operator describes *what kind* of machines each troupe member needs —
not which machines — and the configuration manager solves the rest:

- instantiation: find machines satisfying the specification, start a
  member on each, register the troupe;
- reconfiguration after a crash: solve the troupe extension problem
  (minimum change from the current configuration) and start a member on
  the chosen replacement machine only.

Run:  python examples/configuration_manager.py
"""

from repro.binding import BindingClient, start_ringmaster
from repro.config import ConfigurationManager, parse_specification
from repro.core import ExportedModule, TroupeRuntime
from repro.host import Machine
from repro.net import Network
from repro.sim import Simulator

SPEC_TEXT = """
troupe(x, y, z) where
        x.memory >= 16 and x.has-floating-point
    and y.memory >= 16 and y.has-floating-point
    and z.memory >= 8
    and not z.site = "colo"
"""

INVENTORY = [
    ("UCB-Monet", {"memory": 32, "has-floating-point": True,
                   "site": "evans"}),
    ("UCB-Degas", {"memory": 16, "has-floating-point": True,
                   "site": "evans"}),
    ("UCB-Renoir", {"memory": 16, "has-floating-point": True,
                    "site": "colo"}),
    ("UCB-Ernie", {"memory": 8, "has-floating-point": False,
                   "site": "evans"}),
    ("UCB-Bert", {"memory": 4, "has-floating-point": False,
                  "site": "evans"}),
    ("UCB-Arpa", {"memory": 8, "has-floating-point": False,
                  "site": "cory"}),
]


def echo_module():
    def echo(ctx, args):
        return b"served"
    return ExportedModule("svc", {0: echo})


def main():
    sim = Simulator()
    net = Network(sim, seed=19)
    machines = [Machine(sim, net, name, attributes=attrs)
                for name, attrs in INVENTORY]

    ringmaster, _ = start_ringmaster(machines[:2])
    manager = ConfigurationManager(machines)
    spec = parse_specification(SPEC_TEXT)
    print("specification:", spec)

    bindings = {}

    def start_member(machine):
        process = machine.spawn_process("svc")
        holder = {}
        runtime = TroupeRuntime(
            process,
            resolver=lambda tid: holder["binding"].make_resolver()(tid))
        binding = BindingClient(runtime, ringmaster)
        holder["binding"] = binding
        member = runtime.export(echo_module())
        runtime.start_server()
        bindings[machine.name] = binding
        yield from binding.export_module("svc", member)

    def deploy():
        return (yield from manager.deploy(spec, "svc", start_member))

    chosen = sim.run_process(deploy())
    print("instantiated on:", [m.name for m in chosen])

    client_rt = TroupeRuntime(machines[0].spawn_process("client"))
    client_binding = BindingClient(client_rt, ringmaster)

    def call_once():
        return (yield from client_binding.call("svc", 0, b""))

    print("replicated call ->", sim.run_process(call_once()))

    # A crash in the z slot forces reconfiguration under the constraints.
    crashed = chosen[2]
    crashed.crash()
    print("crashed", crashed.name)

    def reconfigure():
        current = [m for m in chosen if m.up]
        return (yield from manager.deploy(spec, "svc", start_member,
                                          current=current))

    new_set = sim.run_process(reconfigure())
    print("reconfigured to:", [m.name for m in new_set])
    kept = {m.name for m in chosen if m.up} & {m.name for m in new_set}
    print("members kept (troupe extension minimizes change):",
          sorted(kept))

    def call_again():
        return (yield from client_binding.call("svc", 0, b""))

    print("replicated call after reconfiguration ->",
          sim.run_process(call_again()))


if __name__ == "__main__":
    main()
