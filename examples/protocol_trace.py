"""Watch the wire: a message sequence chart of one replicated call.

Generates the paper's Figures 4.3/4.4 from a live run — a one-to-many
call from a client to a 2-member troupe, every datagram labelled with its
decoded paired-message meaning (CALL/RET segments, acks, probes).

Both observers here are subscribers of the same observability event bus
(``world.sim.bus``, see docs/OBSERVABILITY.md): the packet trace listens
for ``net.send`` events and the metrics collector aggregates every layer's
events into counters and virtual-time histograms.

Run:  python examples/protocol_trace.py
"""

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import MetricsCollector
from repro.tools import render_msc, trace_network


def echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def main():
    world = World(machines=3, seed=5,
                  machine_names=["client", "server-1", "server-2"])
    troupe, _ = world.make_troupe("echo", echo_module, degree=2,
                                  on_machines=["server-1", "server-2"])
    client = world.make_client("client")

    def body():
        reply = yield from client.call_troupe(troupe, 0, 0, b"hi")
        return reply

    with trace_network(world.net) as trace, \
            MetricsCollector(world.sim.bus) as collector:
        reply = world.run(body())

    print("replicated call returned:", reply)
    print()
    print("Figure 4.3, live — a one-to-many call and its return traffic")
    print("(! marks please-ack retransmissions; *-ACK are explicit acks)")
    print()
    print(render_msc(trace, hosts=["client", "server-1", "server-2"]))
    print()
    print("Metrics snapshot of the same run (every layer, one event bus):")
    print()
    print(collector.registry.render())


if __name__ == "__main__":
    main()
