"""Reconfiguration: detecting crashes, replacing members, rebinding.

The Chapter 6 lifecycle, end to end:

1. a stateful counter troupe (3 members) registers with the Ringmaster;
2. one member's machine crashes — a partial failure the clients mask;
3. the janitor's garbage-collection sweep probes the members, finds the
   corpse, and deletes it from the registry (§6.1), changing the troupe
   ID so cached bindings invalidate (§6.2);
4. a replacement member joins via get_state + add_troupe_member
   (§6.4.1), inheriting the counter value;
5. a client with a stale cache transparently rebinds and keeps going.

Equation 6.2 tells the operator how fast step 4 must happen: it is
printed at the end for this troupe's parameters.

Run:  python examples/reconfiguration.py
"""

from repro.analysis import availability, required_repair_time
from repro.binding import (
    BindingClient,
    Janitor,
    ReplaceableModule,
    join_troupe,
    start_ringmaster,
)
from repro.core import TroupeRuntime
from repro.harness import World


def counter_module():
    state = {"count": 0}

    def increment(ctx, args):
        state["count"] += 1
        return b"%d" % state["count"]

    module = ReplaceableModule(
        "counter", {0: increment},
        externalize=lambda: b"%d" % state["count"],
        internalize=lambda raw: state.__setitem__("count", int(raw)))
    return module, state


def start_member(world, machine, ringmaster):
    process = machine.spawn_process("counter")
    holder = {}
    runtime = TroupeRuntime(
        process,
        resolver=lambda tid: holder["binding"].make_resolver()(tid))
    binding = BindingClient(runtime, ringmaster)
    holder["binding"] = binding
    module, state = counter_module()
    member = runtime.export(module)
    runtime.start_server()
    return runtime, binding, module, member, state


def main():
    world = World(machines=10, seed=11)
    ringmaster, rm_members = start_ringmaster(world.machines[:2])
    members = []

    def deploy():
        for machine in world.machines[2:5]:
            entry = start_member(world, machine, ringmaster)
            members.append(entry)
            yield from entry[1].export_module("counter", entry[3])

    world.run(deploy())
    print("counter troupe: 3 members registered")

    client_rt = world.make_client()
    client_binding = BindingClient(client_rt, ringmaster)

    def increments(n):
        def body():
            reply = None
            for _ in range(n):
                reply = yield from client_binding.call("counter", 0, b"")
            return reply
        return body

    print("counter after 4 increments:",
          world.run(increments(4)()).decode())

    # A partial failure.
    victim = members[1]
    victim_host = victim[3].process.host
    world.machine(victim_host).crash()
    print("crashed %s; calls still succeed (replication masks it):"
          % victim_host)
    print("counter after 1 more increment:",
          world.run(increments(1)()).decode())

    # The janitor notices and deletes the corpse from the registry.
    janitor_rt = world.make_client()
    janitor = Janitor(janitor_rt, BindingClient(janitor_rt, ringmaster))

    def sweep():
        return (yield from janitor.sweep())

    removed = world.run(sweep())
    print("janitor removed:", [(name, str(member.process))
                               for name, member in removed])

    # A replacement joins: state transfer + registration (§6.4.1).
    replacement = start_member(world, world.machines[5], ringmaster)
    members.append(replacement)

    def join():
        return (yield from join_troupe(
            replacement[0], replacement[2], replacement[3], "counter",
            replacement[1]))

    world.run(join())
    print("replacement on %s joined with state=%d (transferred)" % (
        replacement[3].process.host, replacement[4]["count"]))

    # The client's cache is stale twice over (removal + addition); the
    # binding layer rebinds transparently.
    print("counter after 1 more increment:",
          world.run(increments(1)()).decode())
    print("client performed %d rebinds along the way"
          % client_binding.rebinds)
    live_counts = [entry[4]["count"] for entry in members
                   if world.machine(entry[3].process.host).up]
    print("state at live members:", live_counts)
    assert len(set(live_counts)) == 1

    # §6.4.2: what replacement speed keeps this troupe at 99.9%?
    lifetime_hours = 1.0
    repair = required_repair_time(3, lifetime_hours * 60, 0.999)
    print("Eq 6.2: with 1-hour lifetimes, a 3-member troupe needs "
          "replacement within %.1f minutes for 99.9%% availability "
          "(A with that repair rate: %.4f)" % (
              repair, availability(3, 1 / 60.0, 1 / repair)))


if __name__ == "__main__":
    main()
