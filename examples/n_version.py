"""N-version programming on troupes (§2.1.3).

"A methodology known as N-version programming uses multiple
implementations of the same module specification to mask software faults.
This technique can be used in conjunction with the replicated modules
proposed in the present work by using independently implemented modules
instead of exact replicas, thereby increasing software as well as
hardware fault tolerance."

Three *independently written* integer-square-root implementations form
one troupe.  One has a classic off-by-one boundary bug.  A majority
collator over the replicated call masks it — hardware fault tolerance
(crash masking) and software fault tolerance (vote masking) from the same
mechanism.

Run:  python examples/n_version.py
"""

from repro.core import CollationError, ExportedModule, MajorityCollator
from repro.harness import World


def isqrt_newton():
    """Version 1: Newton's method."""
    def isqrt(ctx, args):
        n = int(args)
        if n < 2:
            return b"%d" % n
        x = n
        y = (x + 1) // 2
        while y < x:
            x = y
            y = (x + n // x) // 2
        return b"%d" % x
    return ExportedModule("isqrt-newton", {0: isqrt})


def isqrt_bisect():
    """Version 2: bisection."""
    def isqrt(ctx, args):
        n = int(args)
        lo, hi = 0, n + 1
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if mid * mid <= n:
                lo = mid
            else:
                hi = mid
        return b"%d" % lo
    return ExportedModule("isqrt-bisect", {0: isqrt})


def isqrt_buggy():
    """Version 3: linear scan with an off-by-one fault at exact squares."""
    def isqrt(ctx, args):
        n = int(args)
        r = 0
        while r * r < n:     # BUG: should be (r+1)*(r+1) <= n
            r += 1
        return b"%d" % r
    return ExportedModule("isqrt-scan", {0: isqrt})


def main():
    world = World(machines=5, seed=2)
    versions = iter([isqrt_newton, isqrt_bisect, isqrt_buggy])
    troupe, _ = world.make_troupe("isqrt", lambda: next(versions)(),
                                  degree=3)
    client = world.make_client()

    def query(n, collator):
        def body():
            return (yield from client.call_troupe(
                troupe, 0, 0, b"%d" % n, collator=collator))
        return body

    print("independently implemented versions: newton, bisect, "
          "scan (scan has an off-by-one bug at non-squares)")
    for n in (15, 16, 99, 100):
        answer = world.run(query(n, MajorityCollator())())
        print("isqrt(%3d) by majority vote = %s" % (n, answer.decode()))

    # The unanimous collator *detects* the software fault instead.
    try:
        world.run(query(99, None)())  # default collator: unanimous
    except CollationError as exc:
        print("unanimous collation detects the divergent version:")
        print("   ", str(exc)[:90], "...")


if __name__ == "__main__":
    main()
