"""A fault-tolerant key-value store: troupes + transactions + binding.

The full production shape of the paper's architecture:

- the store is defined once in an IDL interface (§7.1) and compiled into
  client stubs and a server skeleton;
- three replicas form a troupe registered with the Ringmaster binding
  agent (§6.3), imported by name, with stale-binding rebinds handled
  transparently;
- every update runs as a replicated lightweight transaction under the
  troupe commit protocol (§5.3), so all replicas commit in the same
  order; conflicting clients abort and retry with binary exponential
  back-off (§5.3.1).

Run:  python examples/replicated_kv_store.py
"""

from repro.binding import BindingClient, start_ringmaster
from repro.core import ExportedModule, TroupeRuntime
from repro.core.runtime import RuntimeConfig
from repro.harness import World
from repro.rpc import RemoteError
from repro.sim import Sleep
from repro.sim.rng import RandomStream
from repro.transactions import (
    BinaryExponentialBackoff,
    CommitCoordinator,
    CommitParticipant,
    TransactionManager,
    TransactionalStore,
)
from repro.transactions.commit import TXN_ABORTED_ERROR

PUT, GET, INCR = 0, 1, 2


def make_member(world, machine, ringmaster):
    """One store replica: runtime + transactional store + participant."""
    process = machine.spawn_process("kv")
    holder = {}
    runtime = TroupeRuntime(
        process, config=RuntimeConfig(execution="parallel"),
        resolver=lambda tid: holder["binding"].make_resolver()(tid))
    binding = BindingClient(runtime, ringmaster)
    holder["binding"] = binding
    manager = TransactionManager(world.sim)
    store = TransactionalStore(manager)
    participant = CommitParticipant(runtime, manager, store)

    def put(ctx, args):
        key, _, value = args.partition(b"=")

        def body(txn):
            yield from store.write(txn, key, value)
            return b"ok"
        return (yield from participant.run_transaction(ctx, body))

    def get(ctx, args):
        def body(txn):
            value = yield from store.read(txn, args)
            return value if value is not None else b"<missing>"
        return (yield from participant.run_transaction(ctx, body))

    def incr(ctx, args):
        def body(txn):
            value = yield from store.read(txn, args)
            yield Sleep(2.0)  # widen the conflict window for the demo
            count = int(value or b"0") + 1
            yield from store.write(txn, args, b"%d" % count)
            return b"%d" % count
        return (yield from participant.run_transaction(ctx, body))

    module = ExportedModule("kv", {PUT: put, GET: get, INCR: incr})
    member_addr = runtime.export(module)
    runtime.start_server()
    return runtime, binding, member_addr, store


def make_client(world, ringmaster, name):
    runtime = world.make_client()
    CommitCoordinator(runtime)   # exported as module 0, per convention
    return runtime, BindingClient(runtime, ringmaster)


def main():
    world = World(machines=10, seed=7)
    ringmaster, _ = start_ringmaster(world.machines[:2])
    replicas = []

    def deploy():
        for machine in world.machines[2:5]:
            runtime, binding, member, store = make_member(
                world, machine, ringmaster)
            replicas.append((runtime, store))
            yield from binding.export_module("kv-store", member)

    world.run(deploy())
    print("kv-store troupe: 3 replicas registered with the Ringmaster")

    client_rt, client_binding = make_client(world, ringmaster, "writer")

    def basic_ops():
        reply = yield from client_binding.call("kv-store", PUT, b"color=blue")
        print("put color=blue       ->", reply)
        reply = yield from client_binding.call("kv-store", GET, b"color")
        print("get color            ->", reply)
        reply = yield from client_binding.call("kv-store", GET, b"shape")
        print("get shape (missing)  ->", reply)

    world.run(basic_ops())

    # Concurrent increments on one key: the troupe commit protocol keeps
    # all replicas in the same serialization order; conflicts abort and
    # retry under back-off.
    outcomes = []

    def make_incrementer(tag, delay, seed):
        runtime, binding = make_client(world, ringmaster, tag)

        def body():
            yield Sleep(delay)
            backoff = BinaryExponentialBackoff(
                RandomStream(seed, tag), initial_mean=120.0)
            retries = 0
            while True:
                try:
                    reply = yield from binding.call("kv-store", INCR,
                                                    b"hits")
                    outcomes.append((tag, retries, reply))
                    return
                except RemoteError as exc:
                    if exc.kind != TXN_ABORTED_ERROR:
                        raise
                    retries += 1
                    yield Sleep(backoff.next_delay())
        return body

    for index, tag in enumerate(["alice", "bob", "carol"]):
        world.spawn(make_incrementer(tag, index * 1.5, index + 1)())
    world.sim.run(until=world.sim.now + 120000.0)

    for tag, retries, reply in outcomes:
        print("%-6s incremented hits to %s (%d aborts/retries)" % (
            tag, reply.decode(), retries))
    finals = {store.committed_get(b"hits") for _rt, store in replicas}
    print("replica agreement on 'hits':", finals)
    assert finals == {b"3"}, "replicas diverged!"
    print("all 3 replicas agree after concurrent transactions")


if __name__ == "__main__":
    main()
