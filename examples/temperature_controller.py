"""Explicit replication: the Figure 7.6/7.7 temperature controller.

Sometimes replication transparency should be sacrificed for
application-specific knowledge (§7.4):

- A *client troupe* of three sensors calls ``SetTemperature`` — each with
  a *different* reading.  The controller uses the explicit-replication
  server stub and receives an argument generator over all three readings,
  which it averages (Figure 7.7): replica divergence is a feature here,
  not an error.
- A client of a replicated read-only store uses the explicit-replication
  client stub and a result generator to accept the *first* plausible
  response (Figure 7.6), plus the majority collator (Figure 7.10)
  programmed over the same generator.

Run:  python examples/temperature_controller.py
"""

from repro.core import MajorityCollator
from repro.harness import World
from repro.sim import Sleep
from repro.stubs import (
    ReplicatedClientStub,
    explicit_server_module,
    parse_interface,
)
from repro.stubs.compiler import compile_interface
from repro.stubs.explicit import collate

CONTROLLER_IDL = """
Controller: PROGRAM 9 VERSION 1 =
BEGIN
    SetTemperature: PROCEDURE [temperature: INTEGER]
        RETURNS [accepted: INTEGER] = 0;
END.
"""

SENSOR_IDL = """
SensorArchive: PROGRAM 10 VERSION 1 =
BEGIN
    LastReading: PROCEDURE [sensor: STRING]
        RETURNS [temperature: INTEGER] = 0;
END.
"""


def main():
    world = World(machines=12, seed=3)

    # -- Figure 7.7: the collating server -------------------------------
    controller_spec = parse_interface(CONTROLLER_IDL)
    history = []

    class ControllerImpl:
        def SetTemperature(self, ctx, arguments):
            readings = [args["temperature"] for args in arguments.values()]
            average = sum(readings) // len(readings)
            history.append((sorted(readings), average))
            return average

    controller_troupe, _ = world.make_troupe(
        "controller",
        explicit_server_module(controller_spec, ControllerImpl()),
        degree=1)

    sensor_troupe, sensor_runtimes = world.make_client_troupe(
        "sensors", degree=3)
    set_temp = controller_spec.procedures["SetTemperature"]
    readings = [18, 22, 20]
    replies = []

    def make_sensor(index, runtime):
        def body():
            args = set_temp.arg_record.externalize(
                {"temperature": readings[index]})
            raw = yield from runtime.call_troupe(controller_troupe, None,
                                                 0, args)
            accepted = set_temp.result_record.internalize(raw)["accepted"]
            replies.append((index, accepted))
        return body

    for index, runtime in enumerate(sensor_runtimes):
        world.spawn(make_sensor(index, runtime)())
    world.sim.run()
    print("sensor readings %s -> controller accepted %d (the average)" % (
        readings, history[0][1]))
    assert history == [(sorted(readings), 20)]
    assert sorted(replies) == [(0, 20), (1, 20), (2, 20)]

    # -- Figure 7.6: the early-exit client --------------------------------
    archive_spec = parse_interface(SENSOR_IDL)
    member_index = [0]

    def archive_factory():
        index = member_index[0]
        member_index[0] += 1

        class ArchiveImpl:
            def LastReading(self, ctx, sensor, _index=index):
                # Replicas answer at very different speeds.
                yield Sleep(15.0 * (_index + 1))
                return 19 + _index  # one replica is slightly stale

        return compile_interface(archive_spec, ArchiveImpl())

    archive_troupe, _ = world.make_troupe("archive", archive_factory,
                                          degree=3)
    client = world.make_client()
    stub = ReplicatedClientStub(archive_spec, client, archive_troupe)

    def first_acceptable():
        results = yield from stub.LastReading(sensor="roof")
        while True:
            result = yield from results.next()
            if result is None:
                return None
            if result.status == "ok" and result.value is not None:
                results.cancel()  # early loop exit (§7.4)
                return result.value

    value = world.run(first_acceptable())
    print("first archive response accepted: %d (fastest replica)" % value)
    assert value == 19

    def majority_reading():
        results = yield from stub.LastReading(sensor="roof")
        try:
            return (yield from collate(results, MajorityCollator(), 3))
        except Exception as exc:
            return "no majority (%s)" % type(exc).__name__

    print("majority over divergent replicas:",
          world.run(majority_reading()))


if __name__ == "__main__":
    main()
