"""Repository-root pytest configuration.

Registers the fault-schedule explorer's plugin (the ``fuzz`` fixture and
the ``--fuzz-artifacts`` option) for the whole test tree — see
docs/TESTING.md.
"""

pytest_plugins = ("repro.explore.pytest_plugin",)
