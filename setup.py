"""Setuptools shim so `pip install -e .` works without the `wheel` package
(this environment is offline and cannot fetch PEP 517 build dependencies).

Optional accelerated build: set ``REPRO_ACCEL=1`` to compile the three
hot modules (``sim.kernel``, ``sim.events``, ``pairedmsg.segments``)
with mypyc::

    REPRO_ACCEL=1 pip install -e .[accel]

When mypy[c] or a C toolchain is missing the build falls back to
pure-Python with a warning — the interpreted modules are always the
source of truth, and virtual time is byte-identical under both builds
(CI runs the ``benchmarks/compare.py`` zero-delta gate under each).
"""

import os

from setuptools import setup

#: the hot modules the accel build compiles (mirrored in repro.accel).
ACCEL_MODULES = [
    "src/repro/sim/kernel.py",
    "src/repro/sim/events.py",
    "src/repro/pairedmsg/segments.py",
]


def _accel_ext_modules():
    if os.environ.get("REPRO_ACCEL") != "1":
        return []
    try:
        from mypyc.build import mypycify
    except ImportError:
        import warnings

        warnings.warn(
            "REPRO_ACCEL=1 but mypyc is not installed; building "
            "pure-Python instead (install the accel extra: "
            "pip install -e .[accel])")
        return []
    return mypycify(ACCEL_MODULES, opt_level="3")


setup(ext_modules=_accel_ext_modules())
