"""Regression tests for the kernel hot-path optimizations.

These pin the *observable guarantees* of the optimization pass (see
docs/PERFORMANCE.md): O(1) pending-event counting, bounded heap growth
under lazily-cancelled timers, freelist reuse, and the determinism of
the perf counters the CI gate reads.
"""

import pytest

from repro.sim import AnyOf, Event, Queue, Simulator, Sleep
from repro.sim.events import QueueClosed


# ---------------------------------------------------------------------------
# Queue.push_front on a closed queue (bug fix)
# ---------------------------------------------------------------------------

def test_push_front_on_closed_queue_raises():
    sim = Simulator()
    queue = Queue(sim, "q")
    queue.close()
    with pytest.raises(QueueClosed):
        queue.push_front("item")


def test_put_on_closed_queue_still_raises():
    sim = Simulator()
    queue = Queue(sim, "q")
    queue.close()
    with pytest.raises(QueueClosed):
        queue.put("item")


def test_shared_get_waitable_serves_multiple_getters():
    """get() returns one shared waitable per queue; concurrent getters
    must still each receive their own item, in FIFO order."""
    sim = Simulator()
    queue = Queue(sim, "q")
    got = []

    def getter(tag):
        item = yield queue.get()
        got.append((tag, item))

    sim.spawn(getter("a"))
    sim.spawn(getter("b"))
    sim.run()
    queue.put(1)
    queue.put(2)
    sim.run()
    assert got == [("a", 1), ("b", 2)]


# ---------------------------------------------------------------------------
# O(1) pending_events
# ---------------------------------------------------------------------------

def test_pending_events_counts_live_entries():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), (lambda: None).__call__)
               for i in range(10)]
    assert sim.pending_events() == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sim.pending_events() == 6
    sim.run()
    assert sim.pending_events() == 0


def test_pending_events_settles_after_each_run_slice():
    sim = Simulator()
    seen = []

    def worker():
        for _ in range(5):
            yield Sleep(1.0)
        seen.append(1)

    sim.spawn(worker())
    sim.run(until=2.5)
    # one timer (the next wake-up) remains armed
    assert sim.pending_events() == 1
    sim.run()
    assert seen == [1]
    assert sim.pending_events() == 0


# ---------------------------------------------------------------------------
# Bounded heap under lazily-cancelled timers
# ---------------------------------------------------------------------------

def test_cancelled_timers_do_not_bloat_the_heap():
    """Each cancel is O(1) (lazy), but compaction must keep the heap
    proportional to the *live* entries, not the cancellation history."""
    sim = Simulator()

    def churner():
        for _ in range(2000):
            handle = sim.schedule(10_000.0, lambda _=None: None, None)
            handle.cancel()
            yield Sleep(0.01)

    sim.run_process(churner())
    assert len(sim._queue) < 200          # 2000 cancels, bounded residue
    assert sim.pending_events() == 0


def test_retransmit_pattern_keeps_queue_bounded():
    """The protocol shape that motivated compaction: every transfer arms
    a retransmission timeout that is cancelled when the ack wins the
    AnyOf race.  Hundreds of acked transfers must not grow the heap."""
    sim = Simulator()

    def transfer():
        done = Event(sim, "ack")
        sim.schedule(0.5, done.fire)               # the "ack" arrives
        index, _value = yield AnyOf(done, Sleep(1_000.0))
        assert index == 0                          # ack, not timeout

    def client():
        for _ in range(500):
            yield from transfer()

    sim.run_process(client())
    assert len(sim._queue) < 200
    assert sim.pending_events() == 0


# ---------------------------------------------------------------------------
# Freelist reuse and perf-counter determinism
# ---------------------------------------------------------------------------

def test_steady_state_scheduling_reuses_handles():
    sim = Simulator()

    def worker():
        for _ in range(1000):
            yield Sleep(1.0)

    for _ in range(10):
        sim.spawn(worker())
    sim.run()
    snapshot = sim.perf_snapshot()
    assert snapshot["callbacks_run"] == 10 * 1000 + 10
    # One handle per concurrent process covers the whole run: the
    # freelist recycles them, so allocations stay at the concurrency
    # plateau instead of one per event.
    assert snapshot["calls_allocated"] <= 20


def test_perf_counters_are_deterministic():
    def run_once():
        sim = Simulator()
        queue = Queue(sim, "q")

        def producer():
            for i in range(50):
                queue.put(i)
                yield Sleep(1.0)

        def consumer():
            total = 0
            for _ in range(50):
                total += yield queue.get()
            return total

        sim.spawn(producer())
        proc = sim.spawn(consumer())
        sim.run()
        snap = sim.perf_snapshot()
        return proc.result, snap["callbacks_run"], snap["calls_allocated"]

    assert run_once() == run_once()


def test_cancel_is_idempotent_before_execution():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    handle.cancel()                                # second cancel: no-op
    sim.run()
    assert seen == []
    assert sim.pending_events() == 0
