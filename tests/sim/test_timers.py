"""Tests for the multiplexed timer package (§4.2.4)."""

from repro.sim import Simulator, TimerService


def test_single_timer_fires_once():
    sim = Simulator()
    svc = TimerService(sim)
    fired = []
    svc.after(5.0, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 5.0


def test_many_timers_fire_in_deadline_order():
    sim = Simulator()
    svc = TimerService(sim)
    fired = []
    svc.after(3.0, lambda: fired.append((sim.now, "b")))
    svc.after(1.0, lambda: fired.append((sim.now, "a")))
    svc.after(7.0, lambda: fired.append((sim.now, "c")))
    sim.run()
    assert fired == [(1.0, "a"), (3.0, "b"), (7.0, "c")]


def test_stop_prevents_firing():
    sim = Simulator()
    svc = TimerService(sim)
    fired = []
    timer = svc.after(5.0, fired.append, "x")
    sim.schedule(1.0, timer.stop)
    sim.run()
    assert fired == []
    assert svc.active_count() == 0


def test_restart_extends_deadline():
    sim = Simulator()
    svc = TimerService(sim)
    fired = []
    timer = svc.after(5.0, lambda: fired.append(sim.now))
    sim.schedule(4.0, timer.restart)
    sim.run()
    assert fired == [9.0]


def test_periodic_retransmission_pattern():
    """The paper's retransmission loop: re-arm the timer in the callback."""
    sim = Simulator()
    svc = TimerService(sim)
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) < 4:
            svc.after(2.0, tick)

    svc.after(2.0, tick)
    sim.run()
    assert fired == [2.0, 4.0, 6.0, 8.0]


def test_on_arm_hook_counts_rearming():
    """Every re-aim of the single underlying alarm is observable (the host
    layer charges a setitimer syscall there)."""
    sim = Simulator()
    arms = []
    svc = TimerService(sim, on_arm=lambda: arms.append(sim.now))
    svc.after(5.0, lambda: None)
    # A nearer deadline forces a re-arm.
    svc.after(2.0, lambda: None)
    sim.run()
    assert len(arms) >= 2


def test_same_deadline_timers_all_fire():
    sim = Simulator()
    svc = TimerService(sim)
    fired = []
    for tag in range(3):
        svc.after(4.0, fired.append, tag)
    sim.run()
    assert sorted(fired) == [0, 1, 2]


def test_cancel_all():
    sim = Simulator()
    svc = TimerService(sim)
    fired = []
    for tag in range(3):
        svc.after(4.0, fired.append, tag)
    svc.cancel_all()
    sim.run()
    assert fired == []
