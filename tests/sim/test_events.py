"""Tests for Condition and Queue primitives."""

import pytest

from repro.sim import Condition, Queue, QueueClosed, Simulator, Sleep
from repro.sim.events import is_closed_marker


def test_condition_wakes_current_waiters_only():
    sim = Simulator()
    cond = Condition(sim, "c")
    woken = []

    def waiter(tag):
        value = yield cond
        woken.append((tag, value, sim.now))

    sim.spawn(waiter("early"))

    def signaller():
        yield Sleep(1.0)
        cond.signal("first")
        yield Sleep(1.0)
        cond.signal("second")  # nobody waiting; signal is lost

    sim.spawn(signaller())
    sim.run()
    assert woken == [("early", "first", 1.0)]


def test_condition_reusable_across_signals():
    sim = Simulator()
    cond = Condition(sim, "c")
    values = []

    def waiter():
        for _ in range(3):
            value = yield cond
            values.append(value)

    def signaller():
        for i in range(3):
            yield Sleep(1.0)
            cond.signal(i)

    sim.spawn(waiter())
    sim.spawn(signaller())
    sim.run()
    assert values == [0, 1, 2]


def test_queue_put_then_get():
    sim = Simulator()
    q = Queue(sim, "q")
    q.put("a")
    q.put("b")

    def body():
        x = yield q.get()
        y = yield q.get()
        return [x, y]

    assert sim.run_process(body()) == ["a", "b"]


def test_queue_get_blocks_until_put():
    sim = Simulator()
    q = Queue(sim, "q")

    def consumer():
        item = yield q.get()
        return item, sim.now

    def producer():
        yield Sleep(4.0)
        q.put("late")

    sim.spawn(producer())
    assert sim.run_process(consumer()) == ("late", 4.0)


def test_queue_fifo_order_for_getters():
    sim = Simulator()
    q = Queue(sim, "q")
    got = []

    def consumer(tag):
        item = yield q.get()
        got.append((tag, item))

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))

    def producer():
        yield Sleep(1.0)
        q.put("x")
        q.put("y")

    sim.spawn(producer())
    sim.run()
    assert got == [("first", "x"), ("second", "y")]


def test_queue_get_nowait():
    sim = Simulator()
    q = Queue(sim, "q")
    with pytest.raises(LookupError):
        q.get_nowait()
    q.put(1)
    assert q.get_nowait() == 1


def test_queue_len():
    sim = Simulator()
    q = Queue(sim, "q")
    assert len(q) == 0
    q.put(1)
    q.put(2)
    assert len(q) == 2


def test_queue_close_delivers_marker():
    sim = Simulator()
    q = Queue(sim, "q")

    def consumer():
        item = yield q.get()
        return is_closed_marker(item)

    def closer():
        yield Sleep(1.0)
        q.close()

    sim.spawn(closer())
    assert sim.run_process(consumer()) is True


def test_queue_put_after_close_rejected():
    sim = Simulator()
    q = Queue(sim, "q")
    q.close()
    with pytest.raises(QueueClosed):
        q.put(1)
