"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AnyOf,
    Event,
    Interrupted,
    ProcessKilled,
    SimulationError,
    Simulator,
    Sleep,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(9.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 9.0


def test_schedule_ties_break_by_insertion_order():
    sim = Simulator()
    seen = []
    for tag in range(10):
        sim.schedule(1.0, seen.append, tag)
    sim.run()
    assert seen == list(range(10))


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_cancelled_call_does_not_run():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, "late")
    sim.run(until=5.0)
    assert seen == []
    assert sim.now == 5.0
    sim.run()
    assert seen == ["late"]


def test_process_sleep_advances_clock():
    sim = Simulator()

    def body():
        yield Sleep(3.0)
        yield Sleep(4.0)
        return sim.now

    result = sim.run_process(body())
    assert result == 7.0


def test_process_return_value():
    sim = Simulator()

    def body():
        yield Sleep(1.0)
        return 42

    assert sim.run_process(body()) == 42


def test_zero_sleep_yields_control():
    sim = Simulator()
    order = []

    def a():
        order.append("a1")
        yield Sleep(0.0)
        order.append("a2")

    def b():
        order.append("b1")
        yield Sleep(0.0)
        order.append("b2")

    sim.spawn(a())
    sim.spawn(b())
    sim.run()
    assert order == ["a1", "b1", "a2", "b2"]


def test_event_wakes_waiter_with_value():
    sim = Simulator()
    ev = Event(sim, "e")
    results = []

    def waiter():
        value = yield ev
        results.append((sim.now, value))

    def firer():
        yield Sleep(2.5)
        ev.fire("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert results == [(2.5, "payload")]


def test_event_already_fired_resumes_immediately():
    sim = Simulator()
    ev = Event(sim, "e")
    ev.fire(7)

    def waiter():
        value = yield ev
        return value

    assert sim.run_process(waiter()) == 7


def test_event_fire_twice_is_error():
    sim = Simulator()
    ev = Event(sim, "e")
    ev.fire()
    with pytest.raises(RuntimeError):
        ev.fire()


def test_event_wakes_multiple_waiters():
    sim = Simulator()
    ev = Event(sim, "e")
    woken = []

    def waiter(tag):
        yield ev
        woken.append(tag)

    for tag in range(3):
        sim.spawn(waiter(tag))

    def firer():
        yield Sleep(1.0)
        ev.fire()

    sim.spawn(firer())
    sim.run()
    assert sorted(woken) == [0, 1, 2]


def test_anyof_returns_first_fired_index():
    sim = Simulator()
    ev = Event(sim, "e")

    def body():
        index, value = yield AnyOf(ev, Sleep(10.0))
        return index, value, sim.now

    def firer():
        yield Sleep(3.0)
        ev.fire("fast")

    sim.spawn(firer())
    assert sim.run_process(body()) == (0, "fast", 3.0)


def test_anyof_timeout_branch():
    sim = Simulator()
    ev = Event(sim, "never")

    def body():
        index, _ = yield AnyOf(ev, Sleep(2.0))
        return index, sim.now

    assert sim.run_process(body()) == (1, 2.0)


def test_anyof_loser_subscription_cancelled():
    """The losing sleep of an AnyOf must not resume the process later."""
    sim = Simulator()
    ev = Event(sim, "e")
    resumes = []

    def body():
        index, _ = yield AnyOf(ev, Sleep(1.0))
        resumes.append(index)
        yield Sleep(100.0)
        resumes.append("end")

    def firer():
        yield Sleep(0.5)
        ev.fire()

    sim.spawn(body())
    sim.spawn(firer())
    sim.run()
    assert resumes == [0, "end"]


def test_join_returns_child_result():
    sim = Simulator()

    def child():
        yield Sleep(2.0)
        return "done"

    def parent():
        proc = sim.spawn(child())
        value = yield proc
        return value, sim.now

    assert sim.run_process(parent()) == ("done", 2.0)


def test_join_already_dead_process():
    sim = Simulator()

    def child():
        return "early"
        yield  # pragma: no cover

    def parent():
        proc = sim.spawn(child())
        yield Sleep(5.0)
        value = yield proc
        return value

    assert sim.run_process(parent()) == "early"


def test_child_exception_propagates_to_joiner():
    sim = Simulator()

    def child():
        yield Sleep(1.0)
        raise ValueError("boom")

    def parent():
        proc = sim.spawn(child())
        try:
            yield proc
        except ValueError as exc:
            return "caught %s" % exc

    assert sim.run_process(parent()) == "caught boom"


def test_unjoined_exception_fails_the_run():
    sim = Simulator()

    def body():
        yield Sleep(1.0)
        raise RuntimeError("unattended")

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_kill_stops_process_and_runs_finally():
    sim = Simulator()
    log = []

    def body():
        try:
            yield Sleep(100.0)
            log.append("never")
        except ProcessKilled:
            log.append("killed")
            raise
        finally:
            log.append("finally")

    proc = sim.spawn(body())

    def killer():
        yield Sleep(1.0)
        proc.kill()

    sim.spawn(killer())
    sim.run()
    assert log == ["killed", "finally"]
    assert not proc.alive
    assert proc.killed


def test_killed_process_does_not_fail_run():
    sim = Simulator()

    def body():
        yield Sleep(100.0)

    proc = sim.spawn(body())
    sim.schedule(1.0, proc.kill)
    sim.run()
    assert not proc.alive


def test_interrupt_raises_in_waiting_process():
    sim = Simulator()

    def body():
        try:
            yield Sleep(100.0)
        except Interrupted as exc:
            return ("interrupted", exc.cause, sim.now)

    proc = sim.spawn(body())
    sim.schedule(2.0, proc.interrupt, "reason")
    sim.run()
    assert proc.result == ("interrupted", "reason", 2.0)


def test_yield_from_composition():
    sim = Simulator()

    def helper(n):
        total = 0
        for _ in range(n):
            yield Sleep(1.0)
            total += 1
        return total

    def body():
        a = yield from helper(2)
        b = yield from helper(3)
        return a + b, sim.now

    assert sim.run_process(body()) == (5, 5.0)


def test_non_waitable_yield_is_an_error():
    sim = Simulator()

    def body():
        yield 12345

    sim.spawn(body())
    with pytest.raises(SimulationError):
        sim.run()


def test_run_process_unfinished_raises():
    sim = Simulator()

    def body():
        yield Event(sim, "never-fires")

    with pytest.raises(SimulationError):
        sim.run_process(body())


def test_many_processes_deterministic():
    def run_once():
        sim = Simulator()
        log = []

        def body(tag, delay):
            yield Sleep(delay)
            log.append(tag)
            yield Sleep(delay)
            log.append(tag)

        for tag in range(20):
            sim.spawn(body(tag, (tag * 7) % 5 + 1))
        sim.run()
        return log

    assert run_once() == run_once()
