"""Tests for the sharded parallel simulation.

The contract under test: a sharded run is *byte-identical in behaviour*
to the single-process run of the same seed — equal canonical packet
digests, equal endpoint counters, equal workload counters — for any
shard count and either coordinator mode.
"""

import multiprocessing

import pytest

from repro.bench.workloads import capacity_builder
from repro.net.addresses import ProcessAddress
from repro.net.network import LinkFault, NetworkConfig
from repro.sim.kernel import Simulator
from repro.sim.sharded import (
    Envelope,
    decode_envelopes,
    encode_envelopes,
    merge_digests,
    partition_hosts,
    run_sharded,
    shard_of_host,
)

WORKLOAD = dict(machines=8, cells=4, sessions=12, calls_per_session=2,
                rate=30.0, degree=2, seed=11)


def _small_builder(**overrides):
    spec = dict(WORKLOAD)
    spec.update(overrides)
    spec.pop("machines")
    return capacity_builder(**spec)


def _run(shards, mode="inproc", builder=None, **overrides):
    spec = dict(machines=WORKLOAD["machines"], horizon=2000.0,
                seed=WORKLOAD["seed"])
    spec.update(overrides)
    return run_sharded(builder or _small_builder(), shards=shards,
                       mode=mode, **spec)


# -- partitioning -----------------------------------------------------------

def test_partition_hosts_contiguous_and_balanced():
    names = ["host%d" % i for i in range(10)]
    blocks = partition_hosts(names, 3)
    assert [b for block in blocks for b in block] == names  # contiguous
    sizes = [len(block) for block in blocks]
    assert sum(sizes) == 10
    assert max(sizes) - min(sizes) <= 1
    assert partition_hosts(names, 1) == [names]
    assert partition_hosts(names, 10) == [[n] for n in names]


def test_partition_hosts_validates():
    names = ["a", "b"]
    with pytest.raises(ValueError):
        partition_hosts(names, 0)
    with pytest.raises(ValueError):
        partition_hosts(names, 3)


def test_shard_of_host_covers_every_host_once():
    names = ["host%d" % i for i in range(7)]
    owner = shard_of_host(names, 3)
    assert sorted(owner) == sorted(names)
    assert set(owner.values()) == {0, 1, 2}


# -- envelope codec ---------------------------------------------------------

def test_envelope_codec_roundtrip():
    envs = [
        Envelope(12.5, ProcessAddress("host0", 7), ProcessAddress("host5", 9),
                 b"payload"),
        Envelope(13.0, ProcessAddress("a", 1), ProcessAddress("b", 2), b""),
        Envelope(99.25, ProcessAddress("host10", 65535),
                 ProcessAddress("host2", 0), bytes(range(256))),
    ]
    decoded = decode_envelopes(encode_envelopes(envs))
    assert decoded == envs
    assert decoded[0].deliver_at == 12.5
    assert decoded[0].src == ProcessAddress("host0", 7)
    assert decoded[0].dst == ProcessAddress("host5", 9)
    assert decoded[0].payload == b"payload"
    assert decode_envelopes(b"") == []


def test_merge_digests_is_order_insensitive():
    parts = [3, 5, (1 << 256) - 2]
    assert merge_digests(parts) == merge_digests(list(reversed(parts)))


# -- kernel peek ------------------------------------------------------------

def test_next_event_time_sees_heap_and_ready_lane():
    sim = Simulator()
    assert sim.next_event_time() is None
    sim.schedule(5.0, lambda: None)
    assert sim.next_event_time() == 5.0
    sim.schedule(2.0, lambda: None)
    assert sim.next_event_time() == 2.0
    # An immediate callback lands in the ready lane at the current time.
    sim.schedule(0.0, lambda: None)
    assert sim.next_event_time() == 0.0
    sim.run(until=10.0)
    assert sim.next_event_time() is None


def test_schedule_at_pins_exact_timestamps():
    """``schedule(t - now)`` recomputes ``now + (t - now)``, which can
    drift by an ulp; ``schedule_at`` must preserve the caller's float
    bit-for-bit (cross-shard injection depends on it)."""
    sim = Simulator()
    # now + (t - now) is exact for now >= t/2 (Sterbenz), but loses an
    # ulp below it: 257.32... + (852.19...49 - 257.32...) == 852.19...48.
    sim.run(until=257.32760669352643)
    target = 852.1909863818449
    assert sim.now + (target - sim.now) != target
    fired = []
    sim.schedule_at(target, lambda: fired.append(sim.now))
    sim.run(until=1000.0)
    assert fired == [target]
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_next_event_time_skips_cancelled_events():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(4.0, lambda: None)
    handle.cancel()
    assert sim.next_event_time() == 4.0


# -- the determinism contract -----------------------------------------------

def test_sharded_digest_matches_single_process():
    reference = _run(1)
    assert reference.counters["calls_completed"] > 0
    for shards in (2, 4):
        result = _run(shards)
        assert result.digest == reference.digest
        assert result.events == reference.events
        assert result.counters == reference.counters
        assert result.endpoint_stats == reference.endpoint_stats
        assert result.network == reference.network
        assert result.samples == reference.samples
    # More shards cut more links: strictly more cross-shard traffic.
    assert _run(2).cross_shard_messages > 0
    assert reference.cross_shard_messages == 0


def test_sharded_run_is_repeatable():
    first = _run(2)
    second = _run(2)
    assert first.to_json_dict() == second.to_json_dict()


def test_link_fault_across_shard_boundary():
    """A loss window on a link that crosses the 2-shard boundary (host0
    is on shard 0, host4 on shard 1 of 8 machines) must produce the same
    drops — and the same digest — at every shard count, because the loss
    draw happens on the source shard from the per-link stream."""
    fault = LinkFault(loss=1.0, src="host0", dst="host4")

    def faulty_builder(world):
        _small_builder()(world)
        world.sim.schedule(100.0, world.net.add_fault, fault)
        world.sim.schedule(900.0, world.net.remove_fault, fault)

    results = {shards: _run(shards, builder=faulty_builder)
               for shards in (1, 2, 4)}
    reference = results[1]
    assert reference.network["packets_dropped"] > 0
    for result in results.values():
        assert result.digest == reference.digest
        assert result.network == reference.network


def test_process_mode_matches_inproc():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    inproc = _run(2)
    forked = _run(2, mode="process")
    assert forked.mode == "process"
    assert forked.to_json_dict() == inproc.to_json_dict()


# -- guard rails ------------------------------------------------------------

def test_run_sharded_validates_arguments():
    builder = _small_builder()
    with pytest.raises(ValueError):
        run_sharded(builder, machines=8, horizon=0.0, shards=2)
    with pytest.raises(ValueError):
        run_sharded(builder, machines=8, horizon=100.0, shards=2,
                    mode="threads")


def test_sharding_requires_positive_latency():
    builder = _small_builder()
    with pytest.raises(ValueError):
        run_sharded(builder, machines=8, horizon=100.0, shards=2,
                    net_config=NetworkConfig(latency=0.0))
