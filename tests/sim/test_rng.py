"""Tests for seeded random streams (the common-random-numbers discipline)."""

from repro.sim import RandomStream


def test_same_seed_same_stream():
    a = RandomStream(7, "net")
    b = RandomStream(7, "net")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    a = RandomStream(7, "net")
    b = RandomStream(7, "failures")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_fork_derives_deterministic_substream():
    a1 = RandomStream(3, "root").fork("child")
    a2 = RandomStream(3, "root").fork("child")
    assert a1.name == "root/child"
    assert [a1.random() for _ in range(3)] == [a2.random() for _ in range(3)]


def test_fork_consumes_parent_state():
    parent = RandomStream(3, "root")
    parent.fork("x")
    one = parent.random()
    fresh = RandomStream(3, "root")
    assert fresh.random() != one  # fork advanced the parent


def test_chance_extremes():
    rng = RandomStream(1, "c")
    assert rng.chance(0.0) is False
    assert rng.chance(1.0) is True
    assert rng.chance(-0.5) is False
    assert rng.chance(1.5) is True


def test_expovariate_mean():
    rng = RandomStream(5, "exp")
    samples = [rng.expovariate(1 / 10.0) for _ in range(5000)]
    assert 9.0 < sum(samples) / len(samples) < 11.0


def test_sample_and_choice_and_shuffle():
    rng = RandomStream(2, "s")
    population = list(range(10))
    picked = rng.sample(population, 3)
    assert len(picked) == 3 and len(set(picked)) == 3
    assert rng.choice(population) in population
    shuffled = list(population)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == population
