"""Regression tests for batched same-timestamp dispatch (the ready lane).

The kernel drains all entries sharing the current timestamp through a
FIFO lane that bypasses the heap (no push+pop per immediate callback).
These tests pin the guarantees that make the optimization invisible:
seq order is preserved exactly across batch boundaries and across the
lane/heap split, handles keep the cancel-at-most-once + freelist
contract, and the bounded ``run()`` variants (``until``/``max_events``/
``stop_when``) behave exactly as before.
"""

from repro.sim import Event, Simulator, Sleep


def _now(sim, fn, *args):
    """Schedule on the ready lane (what event fires / process wakes use)."""
    return sim._schedule_now(fn, *args)


# ---------------------------------------------------------------------------
# Ordering: seq order across the lane/heap split and batch boundaries
# ---------------------------------------------------------------------------

def _interleaved_world(order):
    """Same-timestamp callbacks created alternately through the heap
    (schedule at delay 0) and the lane (_schedule_now), plus nested
    same-time scheduling from inside a callback (a batch boundary)."""
    sim = Simulator()

    def tag(label):
        order.append(label)

    def nest(label):
        order.append(label)
        # scheduled mid-batch, still at the same timestamp: must run
        # after everything already queued at this time, in seq order.
        _now(sim, tag, ("nested-lane", label))
        sim.schedule(0.0, tag, ("nested-heap", label))

    for i in range(12):
        if i % 3 == 0:
            sim.schedule(0.0, tag, ("heap", i))
        elif i % 3 == 1:
            _now(sim, tag, ("lane", i))
        else:
            _now(sim, nest, ("mixed", i))
    return sim


def test_same_timestamp_seq_order_is_creation_order():
    order = []
    sim = _interleaved_world(order)
    sim.run()

    first = [label for label in order if label[0] in ("heap", "lane", "mixed")]
    assert first == [("heap", 0), ("lane", 1), ("mixed", 2),
                     ("heap", 3), ("lane", 4), ("mixed", 5),
                     ("heap", 6), ("lane", 7), ("mixed", 8),
                     ("heap", 9), ("lane", 10), ("mixed", 11)]
    # Nested same-time work runs after the first wave, still in the
    # order it was created (lane before heap for each nest call, nests
    # in their creation order).
    nested = [label for label in order if label[0].startswith("nested")]
    assert nested == [("nested-lane", ("mixed", 2)),
                      ("nested-heap", ("mixed", 2)),
                      ("nested-lane", ("mixed", 5)),
                      ("nested-heap", ("mixed", 5)),
                      ("nested-lane", ("mixed", 8)),
                      ("nested-heap", ("mixed", 8)),
                      ("nested-lane", ("mixed", 11)),
                      ("nested-heap", ("mixed", 11))]


def test_same_timestamp_order_is_deterministic():
    runs = []
    for _ in range(2):
        order = []
        sim = _interleaved_world(order)
        sim.run()
        runs.append(order)
    assert runs[0] == runs[1]


def test_batches_at_later_timestamps_preserve_order():
    """Sleep wake-ups land on the heap; event fires land on the lane.
    When both hit the same later timestamp the creation (seq) order
    still decides."""
    sim = Simulator()
    order = []
    event = Event(sim, "evt")

    def sleeper(tag):
        yield Sleep(5.0)
        order.append(("sleep", tag))

    def waiter(tag):
        value = yield event
        order.append(("event", tag, value))

    def firer():
        yield Sleep(5.0)
        event.fire("v")

    sim.spawn(sleeper("a"))
    sim.spawn(waiter("w1"))
    sim.spawn(firer())
    sim.spawn(sleeper("b"))
    sim.spawn(waiter("w2"))
    sim.run()
    # At t=5: sleeper a wakes, firer wakes and fires (waking w1, w2 on
    # the lane), sleeper b wakes — in spawn/seq order throughout.
    assert order == [("sleep", "a"), ("sleep", "b"),
                     ("event", "w1", "v"), ("event", "w2", "v")]
    assert sim.ready_dispatched > 0


# ---------------------------------------------------------------------------
# Freelist + cancellation under batching
# ---------------------------------------------------------------------------

def test_lane_cancellation_is_at_most_once_and_skips_execution():
    sim = Simulator()
    ran = []
    handles = [_now(sim, ran.append, i) for i in range(100)]
    for handle in handles[::2]:
        handle.cancel()
        handle.cancel()          # idempotent before execution
    sim.run()
    assert ran == list(range(1, 100, 2))


def test_lane_handles_are_recycled_through_the_freelist():
    sim = Simulator()
    sink = []
    for _ in range(3):
        for i in range(50):
            _now(sim, sink.append, i)
        sim.run()
    baseline = sim.calls_allocated
    # Steady state: the same 50-immediate burst must allocate nothing.
    for _ in range(5):
        for i in range(50):
            _now(sim, sink.append, i)
        sim.run()
    assert sim.calls_allocated == baseline


def test_cancelled_lane_entries_are_compacted():
    """Mass-cancelling lane entries must not leave the lane bloated
    (the compactor sweeps the lane like the heap)."""
    sim = Simulator()
    handles = [_now(sim, (lambda: None)) for _ in range(600)]
    for handle in handles:
        handle.cancel()
    # Compaction is triggered from cancel() once dead entries dominate.
    assert len(sim._ready) < 600
    assert sim.pending_events() == 0
    sim.run()
    assert sim.now == 0.0


# ---------------------------------------------------------------------------
# Bounded run() variants: the slow path is behaviour-identical
# ---------------------------------------------------------------------------

def test_run_until_stops_between_events_with_lane_pending():
    sim = Simulator()
    ran = []
    sim.schedule(5.0, ran.append, "t5")
    sim.schedule(10.0, ran.append, "t10")
    _now(sim, ran.append, "immediate")
    end = sim.run(until=7.0)
    assert ran == ["immediate", "t5"]
    assert end == 7.0 and sim.now == 7.0
    sim.run()
    assert ran == ["immediate", "t5", "t10"]


def test_run_max_events_counts_lane_and_heap_dispatches():
    sim = Simulator()
    order = []
    for i in range(4):
        _now(sim, order.append, i)
    sim.schedule(0.0, order.append, "heap")
    sim.run(max_events=3)
    assert order == [0, 1, 2]
    sim.run()
    assert order == [0, 1, 2, 3, "heap"]


def test_run_stop_when_checks_after_each_callback():
    sim = Simulator()
    order = []
    for i in range(6):
        _now(sim, order.append, i)
    sim.run(stop_when=lambda: len(order) >= 2)
    assert order == [0, 1]
    sim.run()
    assert order == [0, 1, 2, 3, 4, 5]


def test_run_until_then_unbounded_drains_stale_lane_entries():
    """A bounded run can leave same-time entries on the lane with the
    clock stopped past their timestamp; the next run must still drain
    them before any later heap work, in seq order."""
    sim = Simulator()
    order = []

    def at_five():
        order.append("t5")
        _now(sim, order.append, "t5-immediate-1")
        _now(sim, order.append, "t5-immediate-2")

    sim.schedule(5.0, at_five)
    sim.schedule(9.0, order.append, "t9")
    sim.run(max_events=1)
    assert order == ["t5"]
    sim.run(until=7.0)
    assert order == ["t5", "t5-immediate-1", "t5-immediate-2"]
    assert sim.now == 7.0
    # New immediate work at t=7 goes behind nothing; heap work at t=9
    # still runs last.
    _now(sim, order.append, "t7-immediate")
    sim.run()
    assert order == ["t5", "t5-immediate-1", "t5-immediate-2",
                     "t7-immediate", "t9"]


def test_schedule_now_after_clock_rewind_falls_back_to_heap():
    """run(until=...) can stop the clock *before* pending lane entries'
    timestamps ever existed; a subsequent _schedule_now at an earlier
    now must not break lane monotonicity (it detours via the heap)."""
    sim = Simulator()
    order = []

    def at_five():
        order.append("t5")
        _now(sim, order.append, "t5-immediate")

    sim.schedule(5.0, at_five)
    sim.run(max_events=1)          # lane now holds an entry stamped t=5
    assert sim.now == 5.0
    # The lane's tail is t=5; an immediate at t=5 appends in seq order.
    _now(sim, order.append, "second-immediate")
    sim.run()
    assert order == ["t5", "t5-immediate", "second-immediate"]
    assert sim.pending_events() == 0
