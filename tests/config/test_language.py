"""Tests for the troupe configuration language (§7.5.2)."""

import pytest

from repro.config import ConfigParseError, parse_specification
from repro.host import Machine
from repro.net import Network
from repro.sim import Simulator


def make_machines(specs):
    sim = Simulator()
    net = Network(sim)
    return [Machine(sim, net, name, attributes=attrs)
            for name, attrs in specs]


def test_paper_example_formula():
    """The §7.5.2 example: name, memory, and floating point."""
    spec = parse_specification(
        'troupe(x) where x.name = "UCB-Monet" and x.memory = 10 '
        'and x.has-floating-point')
    monet, other = make_machines([
        ("UCB-Monet", {"memory": 10, "has-floating-point": True}),
        ("UCB-Ernie", {"memory": 4, "has-floating-point": False}),
    ])
    assert spec.satisfied_by([monet])
    assert not spec.satisfied_by([other])


def test_degree_from_variables():
    spec = parse_specification("troupe(x, y, z) where x.memory > 0 "
                               "and y.memory > 0 and z.memory > 0")
    assert spec.degree == 3
    assert spec.variables == ["x", "y", "z"]


def test_members_must_be_distinct():
    spec = parse_specification("troupe(x, y) where x.memory > 0 "
                               "and y.memory > 0")
    (m,) = make_machines([("m", {"memory": 8})])
    assert not spec.satisfied_by([m, m])


def test_comparison_operators():
    (m,) = make_machines([("m", {"memory": 8})])
    for formula, expected in [
        ("x.memory = 8", True),
        ("x.memory # 8", False),
        ("x.memory < 9", True),
        ("x.memory <= 8", True),
        ("x.memory > 8", False),
        ("x.memory >= 8", True),
    ]:
        spec = parse_specification("troupe(x) where " + formula)
        assert spec.satisfied_by([m]) is expected, formula


def test_boolean_connectives_and_precedence():
    (m,) = make_machines([("m", {"memory": 8, "fast-disk": True})])
    spec = parse_specification(
        "troupe(x) where x.memory > 100 or x.fast-disk and x.memory > 4")
    # 'and' binds tighter than 'or': false or (true and true) = true.
    assert spec.satisfied_by([m])
    spec2 = parse_specification(
        "troupe(x) where (x.memory > 100 or x.fast-disk) and x.memory > 10")
    assert not spec2.satisfied_by([m])


def test_negation():
    monet, ernie = make_machines([
        ("UCB-Monet", {}), ("UCB-Ernie", {})])
    spec = parse_specification('troupe(x) where not x.name = "UCB-Monet"')
    assert not spec.satisfied_by([monet])
    assert spec.satisfied_by([ernie])


def test_missing_attribute_is_false():
    (m,) = make_machines([("m", {})])
    spec = parse_specification("troupe(x) where x.memory > 0")
    assert not spec.satisfied_by([m])
    prop = parse_specification("troupe(x) where x.has-floating-point")
    assert not prop.satisfied_by([m])


def test_type_mismatch_comparison_is_false():
    (m,) = make_machines([("m", {"memory": "lots"})])
    spec = parse_specification("troupe(x) where x.memory > 4")
    assert not spec.satisfied_by([m])


def test_string_and_float_literals():
    (m,) = make_machines([("m", {"site": "berkeley", "load": 0.5})])
    spec = parse_specification(
        'troupe(x) where x.site = "berkeley" and x.load < 0.75')
    assert spec.satisfied_by([m])


def test_cross_variable_formula():
    """Constraints may couple variables (both at the same site, say)."""
    a, b, c = make_machines([
        ("a", {"site": "evans"}), ("b", {"site": "evans"}),
        ("c", {"site": "cory"})])
    spec = parse_specification(
        'troupe(x, y) where x.site = "evans" and y.site = "evans"')
    assert spec.satisfied_by([a, b])
    assert not spec.satisfied_by([a, c])


def test_parse_errors():
    for bad in [
        "where x.memory > 0",                    # missing troupe(...)
        "troupe() where x.a",                    # no variables? -> bad name ')'
        "troupe(x) x.a",                         # missing where
        "troupe(x) where y.a",                   # unknown variable
        "troupe(x, x) where x.a",                # duplicate variable
        "troupe(x) where x.a > ",                # missing literal
        "troupe(x) where x.a @ 3",               # bad character
        "troupe(x) where x.a = 3 extra",         # trailing tokens
    ]:
        with pytest.raises(ConfigParseError):
            parse_specification(bad)


def test_wrong_cardinality_not_satisfied():
    spec = parse_specification("troupe(x, y) where x.memory >= 0 "
                               "and y.memory >= 0")
    (m,) = make_machines([("m", {"memory": 1})])
    assert not spec.satisfied_by([m])
