"""Tests for the configuration manager and the troupe extension problem."""

import pytest

from repro.config import (
    ConfigurationError,
    ConfigurationManager,
    parse_specification,
)
from repro.host import Machine
from repro.net import Network
from repro.sim import Simulator


def make_universe(specs):
    sim = Simulator()
    net = Network(sim)
    machines = [Machine(sim, net, name, attributes=attrs)
                for name, attrs in specs]
    return sim, machines


def test_instantiate_picks_satisfying_machines():
    sim, machines = make_universe([
        ("big1", {"memory": 16}),
        ("small", {"memory": 2}),
        ("big2", {"memory": 32}),
    ])
    manager = ConfigurationManager(machines)
    spec = parse_specification(
        "troupe(x, y) where x.memory >= 16 and y.memory >= 16")
    chosen = manager.instantiate(spec)
    assert sorted(m.name for m in chosen) == ["big1", "big2"]


def test_instantiate_unsatisfiable_raises():
    sim, machines = make_universe([("small", {"memory": 2})])
    manager = ConfigurationManager(machines)
    spec = parse_specification("troupe(x) where x.memory >= 16")
    with pytest.raises(ConfigurationError):
        manager.instantiate(spec)


def test_extend_prefers_keeping_existing_members():
    sim, machines = make_universe([
        ("a", {"ok": True}), ("b", {"ok": True}),
        ("c", {"ok": True}), ("d", {"ok": True}),
    ])
    manager = ConfigurationManager(machines)
    spec = parse_specification(
        "troupe(x, y, z) where x.ok and y.ok and z.ok")
    old = [machines[0], machines[1]]  # a, b
    chosen = manager.extend_troupe(spec, old=old)
    names = {m.name for m in chosen}
    # The closest 3-member extension of {a, b} keeps both.
    assert {"a", "b"} <= names
    assert len(names) == 3


def test_extend_replaces_crashed_member():
    sim, machines = make_universe([
        ("a", {"ok": True}), ("b", {"ok": True}), ("c", {"ok": True}),
    ])
    manager = ConfigurationManager(machines)
    spec = parse_specification("troupe(x, y) where x.ok and y.ok")
    old = [machines[0], machines[1]]
    machines[1].crash()
    chosen = manager.extend_troupe(spec, old=old)
    names = {m.name for m in chosen}
    assert names == {"a", "c"}  # b is down; keep a, add c


def test_crashed_machines_never_chosen():
    sim, machines = make_universe([
        ("a", {"ok": True}), ("b", {"ok": True}),
    ])
    machines[0].crash()
    manager = ConfigurationManager(machines)
    spec = parse_specification("troupe(x, y) where x.ok and y.ok")
    with pytest.raises(ConfigurationError):
        manager.instantiate(spec)


def test_asymmetric_constraints_assign_correct_roles():
    """Variables with different requirements map to suitable machines."""
    sim, machines = make_universe([
        ("disk-server", {"has-disk": True, "memory": 4}),
        ("compute", {"has-disk": False, "memory": 64}),
    ])
    manager = ConfigurationManager(machines)
    spec = parse_specification(
        "troupe(d, c) where d.has-disk and c.memory >= 32")
    chosen = manager.extend_troupe(spec)
    assert [m.name for m in chosen] == ["disk-server", "compute"]


def test_deploy_starts_members_only_on_new_machines():
    sim, machines = make_universe([
        ("a", {"ok": True}), ("b", {"ok": True}), ("c", {"ok": True}),
    ])
    manager = ConfigurationManager(machines)
    spec = parse_specification(
        "troupe(x, y, z) where x.ok and y.ok and z.ok")
    started = []

    def start_member(machine):
        started.append(machine.name)

    def body():
        chosen = yield from manager.deploy(spec, "svc", start_member,
                                           current=[machines[0]])
        return chosen

    chosen = sim.run_process(body())
    assert len(chosen) == 3
    assert "a" not in started          # already running
    assert sorted(started) == ["b", "c"]
