"""Tests for address formats (§4.2.1, §4.3)."""

import pytest

from repro.net import ModuleAddress, ProcessAddress
from repro.net.addresses import (
    BROADCAST_HOST,
    validate_module_number,
    validate_port,
)


def test_process_address_fields_and_str():
    addr = ProcessAddress("ucb-monet", 512)
    assert addr.host == "ucb-monet"
    assert addr.port == 512
    assert str(addr) == "ucb-monet:512"


def test_module_address_refines_process_address():
    process = ProcessAddress("h", 9)
    module = ModuleAddress(process, 3)
    assert module.process == process
    assert module.host == "h"
    assert str(module) == "h:9/m3"


def test_addresses_are_hashable_and_ordered():
    a = ProcessAddress("a", 1)
    b = ProcessAddress("b", 1)
    assert len({a, b, ProcessAddress("a", 1)}) == 2
    assert sorted([b, a]) == [a, b]


def test_port_validation():
    assert validate_port(0) == 0
    assert validate_port(65535) == 65535
    with pytest.raises(ValueError):
        validate_port(65536)
    with pytest.raises(ValueError):
        validate_port(-1)


def test_module_number_validation():
    assert validate_module_number(0xFFFF) == 0xFFFF
    with pytest.raises(ValueError):
        validate_module_number(0x10000)


def test_broadcast_host_reserved():
    from repro.net import Network
    from repro.sim import Simulator
    net = Network(Simulator())
    with pytest.raises(ValueError):
        net.add_host(BROADCAST_HOST)
