"""Tests for the simulated wire: delivery, loss, duplication, partitions."""

import pytest

from repro.net import Network, NetworkConfig, ProcessAddress
from repro.net.network import Datagram
from repro.sim import Simulator


def make_net(**config):
    sim = Simulator()
    net = Network(sim, seed=42, config=NetworkConfig(**config))
    for name in ("a", "b", "c"):
        net.add_host(name)
    return sim, net


def test_point_to_point_delivery():
    sim, net = make_net()
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    net.send(Datagram(ProcessAddress("a", 1), dst, b"hello"))
    sim.run()
    assert len(received) == 1
    assert received[0].payload == b"hello"
    assert received[0].src == ProcessAddress("a", 1)


def test_delivery_takes_time():
    sim, net = make_net(latency=1.0, jitter=0.0, bandwidth=1000.0)
    times = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, lambda d: times.append(sim.now))
    net.send(Datagram(ProcessAddress("a", 1), dst, b"x" * 936))
    sim.run()
    # latency 1.0 + (936 + 64 header) / 1000 = 2.0
    assert times == [pytest.approx(2.0)]


def test_unbound_port_drops_packet():
    sim, net = make_net()
    net.send(Datagram(ProcessAddress("a", 1), ProcessAddress("b", 7), b"x"))
    sim.run()
    assert net.packets_dropped == 1
    assert net.packets_delivered == 0


def test_unknown_host_drops_packet():
    sim, net = make_net()
    net.send(Datagram(ProcessAddress("a", 1), ProcessAddress("zz", 7), b"x"))
    sim.run()
    assert net.packets_dropped == 1


def test_total_loss_drops_everything():
    sim, net = make_net(loss_probability=1.0)
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    for _ in range(10):
        net.send(Datagram(ProcessAddress("a", 1), dst, b"x"))
    sim.run()
    assert received == []
    assert net.packets_dropped == 10


def test_partial_loss_statistics():
    sim, net = make_net(loss_probability=0.5)
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    for _ in range(400):
        net.send(Datagram(ProcessAddress("a", 1), dst, b"x"))
    sim.run()
    # With seed 42 the loss rate should be near 50%.
    assert 120 < len(received) < 280


def test_duplication():
    sim, net = make_net(duplicate_probability=1.0)
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    net.send(Datagram(ProcessAddress("a", 1), dst, b"x"))
    sim.run()
    assert len(received) == 2
    assert net.packets_duplicated == 1


def test_crashed_destination_drops_in_flight_packet():
    sim, net = make_net(latency=5.0)
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    net.send(Datagram(ProcessAddress("a", 1), dst, b"x"))
    sim.schedule(1.0, net.set_host_up, "b", False)
    sim.run()
    assert received == []


def test_crashed_source_sends_nothing():
    sim, net = make_net()
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    net.set_host_up("a", False)
    net.send(Datagram(ProcessAddress("a", 1), dst, b"x"))
    sim.run()
    assert received == []


def test_partition_blocks_cross_group_traffic():
    sim, net = make_net()
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    net.partition([{"a"}, {"b", "c"}])
    net.send(Datagram(ProcessAddress("a", 1), dst, b"x"))
    sim.run()
    assert received == []
    assert not net.reachable("a", "b")
    assert net.reachable("b", "c")


def test_heal_restores_traffic():
    sim, net = make_net()
    received = []
    dst = ProcessAddress("b", 9)
    net.bind(dst, received.append)
    net.partition([{"a"}, {"b"}])
    net.heal()
    net.send(Datagram(ProcessAddress("a", 1), dst, b"x"))
    sim.run()
    assert len(received) == 1


def test_hosts_not_in_any_partition_group_form_their_own():
    sim, net = make_net()
    net.partition([{"a", "b"}])
    assert net.reachable("a", "b")
    assert not net.reachable("a", "c")


def test_multicast_is_one_wire_send_many_deliveries():
    sim, net = make_net()
    received = {"b": [], "c": []}
    net.bind(ProcessAddress("b", 9), received["b"].append)
    net.bind(ProcessAddress("c", 9), received["c"].append)
    net.multicast(ProcessAddress("a", 1),
                  [ProcessAddress("b", 9), ProcessAddress("c", 9)], b"m")
    sim.run()
    assert len(received["b"]) == 1
    assert len(received["c"]) == 1
    assert net.packets_sent == 1
    assert net.multicasts_sent == 1


def test_broadcast_reaches_every_other_host():
    sim, net = make_net()
    received = {"b": [], "c": []}
    net.bind(ProcessAddress("b", 5), received["b"].append)
    net.bind(ProcessAddress("c", 5), received["c"].append)
    net.broadcast(ProcessAddress("a", 1), 5, b"hello")
    sim.run()
    assert len(received["b"]) == 1
    assert len(received["c"]) == 1


def test_duplicate_host_rejected():
    sim, net = make_net()
    with pytest.raises(ValueError):
        net.add_host("a")


def test_duplicate_bind_rejected():
    sim, net = make_net()
    net.bind(ProcessAddress("a", 1), lambda d: None)
    with pytest.raises(ValueError):
        net.bind(ProcessAddress("a", 1), lambda d: None)


def test_delivery_order_is_deterministic():
    def run_once():
        sim, net = make_net(jitter=0.3)
        log = []
        dst = ProcessAddress("b", 9)
        net.bind(dst, lambda d: log.append(d.payload))
        for i in range(20):
            net.send(Datagram(ProcessAddress("a", 1), dst, b"%d" % i))
        sim.run()
        return log

    assert run_once() == run_once()
