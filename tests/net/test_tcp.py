"""Tests for the TCP-analogue reliable stream."""

import pytest

from repro.net import (
    ConnectionClosed,
    ConnectionRefused,
    Network,
    NetworkConfig,
    ProcessAddress,
    TcpListener,
    TcpSocket,
)
from repro.sim import Simulator


def make_net(**config):
    sim = Simulator()
    net = Network(sim, seed=11, config=NetworkConfig(**config))
    net.add_host("client")
    net.add_host("server")
    return sim, net


def echo_server(net, listener, count):
    def body():
        conn = yield listener.accept()
        for _ in range(count):
            msg = yield from conn.receive()
            yield from conn.send(b"echo:" + msg)
    return body


def test_connect_and_exchange():
    sim, net = make_net()
    listener = TcpListener(net, "server", 80)
    sim.spawn(echo_server(net, listener, 1)(), name="server")

    def client():
        sock = TcpSocket(net, "client")
        yield from sock.connect(ProcessAddress("server", 80))
        yield from sock.send(b"hello")
        reply = yield from sock.receive()
        sock.close()
        return reply

    assert sim.run_process(client(), name="client") == b"echo:hello"


def test_many_exchanges_on_one_connection():
    sim, net = make_net()
    listener = TcpListener(net, "server", 80)
    sim.spawn(echo_server(net, listener, 10)(), name="server")

    def client():
        sock = TcpSocket(net, "client")
        yield from sock.connect(ProcessAddress("server", 80))
        replies = []
        for i in range(10):
            yield from sock.send(b"msg%d" % i)
            replies.append((yield from sock.receive()))
        sock.close()
        return replies

    replies = sim.run_process(client(), name="client")
    assert replies == [b"echo:msg%d" % i for i in range(10)]


def test_large_message_is_segmented_and_reassembled():
    sim, net = make_net()
    listener = TcpListener(net, "server", 80)
    sim.spawn(echo_server(net, listener, 1)(), name="server")
    big = bytes(range(256)) * 40  # 10240 bytes > MSS

    def client():
        sock = TcpSocket(net, "client")
        yield from sock.connect(ProcessAddress("server", 80))
        yield from sock.send(big)
        reply = yield from sock.receive()
        sock.close()
        return reply

    assert sim.run_process(client(), name="client") == b"echo:" + big


def test_reliable_despite_packet_loss():
    sim, net = make_net(loss_probability=0.2)
    listener = TcpListener(net, "server", 80)
    sim.spawn(echo_server(net, listener, 5)(), name="server")

    def client():
        sock = TcpSocket(net, "client")
        yield from sock.connect(ProcessAddress("server", 80))
        replies = []
        for i in range(5):
            yield from sock.send(b"m%d" % i)
            replies.append((yield from sock.receive()))
        sock.close()
        return replies

    replies = sim.run_process(client(), name="client")
    assert replies == [b"echo:m%d" % i for i in range(5)]


def test_connect_to_missing_listener_refused():
    sim, net = make_net()

    def client():
        sock = TcpSocket(net, "client")
        yield from sock.connect(ProcessAddress("server", 80))

    with pytest.raises(ConnectionRefused):
        sim.run_process(client(), name="client")


def test_peer_close_raises_connection_closed():
    sim, net = make_net()
    listener = TcpListener(net, "server", 80)

    def server():
        conn = yield listener.accept()
        conn.close()

    sim.spawn(server(), name="server")

    def client():
        sock = TcpSocket(net, "client")
        yield from sock.connect(ProcessAddress("server", 80))
        yield from sock.receive()

    with pytest.raises(ConnectionClosed):
        sim.run_process(client(), name="client")


def test_send_on_unconnected_socket_rejected():
    sim, net = make_net()
    sock = TcpSocket(net, "client")

    def body():
        yield from sock.send(b"x")

    with pytest.raises(RuntimeError):
        sim.run_process(body())


def test_many_simultaneous_connections():
    """One listener serves several concurrent clients, each on its own
    per-connection port."""
    sim, net = make_net()
    net.add_host("client2")
    net.add_host("client3")
    listener = TcpListener(net, "server", 80)

    def server():
        conns = []
        for _ in range(3):
            conns.append((yield listener.accept()))
        # Per-connection demultiplexing: all connection ports distinct.
        ports = {c.addr.port for c in conns}
        assert len(ports) == 3
        for conn in conns:
            msg = yield from conn.receive()
            yield from conn.send(b"hi " + msg)

    sim.spawn(server(), name="server")
    replies = []

    def client(host):
        def body():
            sock = TcpSocket(net, host)
            yield from sock.connect(ProcessAddress("server", 80))
            yield from sock.send(host.encode())
            replies.append((yield from sock.receive()))
            sock.close()
        return body

    for host in ("client", "client2", "client3"):
        sim.spawn(client(host)(), name=host)
    sim.run()
    assert sorted(replies) == [b"hi client", b"hi client2", b"hi client3"]


def test_handshake_before_data(prob=0.0):
    """Data moves only after the three-way handshake (3 packets minimum)."""
    sim, net = make_net()
    listener = TcpListener(net, "server", 80)
    sim.spawn(echo_server(net, listener, 1)(), name="server")

    def client():
        sock = TcpSocket(net, "client")
        yield from sock.connect(ProcessAddress("server", 80))
        handshake_packets = net.packets_sent
        yield from sock.send(b"x")
        yield from sock.receive()
        sock.close()
        return handshake_packets

    handshake_packets = sim.run_process(client(), name="client")
    assert handshake_packets >= 3
