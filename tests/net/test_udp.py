"""Tests for UDP-analogue sockets."""

import pytest

from repro.net import Network, NetworkConfig, PortInUse, ProcessAddress, UdpSocket
from repro.sim import Simulator, Sleep


def make_net(**config):
    sim = Simulator()
    net = Network(sim, seed=7, config=NetworkConfig(**config))
    net.add_host("a")
    net.add_host("b")
    return sim, net


def test_send_and_recv():
    sim, net = make_net()
    a = UdpSocket(net, "a", 100)
    b = UdpSocket(net, "b", 200)

    def receiver():
        dgram = yield b.recv()
        return dgram.payload, dgram.src

    a.sendto(b"ping", b.addr)
    assert sim.run_process(receiver()) == (b"ping", a.addr)


def test_ephemeral_port_allocation():
    sim, net = make_net()
    s1 = UdpSocket(net, "a")
    s2 = UdpSocket(net, "a")
    assert s1.addr.port != s2.addr.port
    assert s1.addr.host == "a"


def test_port_in_use():
    sim, net = make_net()
    UdpSocket(net, "a", 100)
    with pytest.raises(PortInUse):
        UdpSocket(net, "a", 100)


def test_close_releases_port():
    sim, net = make_net()
    s = UdpSocket(net, "a", 100)
    s.close()
    UdpSocket(net, "a", 100)  # no PortInUse


def test_operations_on_closed_socket_rejected():
    sim, net = make_net()
    s = UdpSocket(net, "a", 100)
    s.close()
    with pytest.raises(RuntimeError):
        s.sendto(b"x", ProcessAddress("b", 1))
    with pytest.raises(RuntimeError):
        s.recv()


def test_recv_timeout_returns_none_on_silence():
    sim, net = make_net()
    s = UdpSocket(net, "a", 100)

    def body():
        dgram = yield from s.recv_timeout(10.0)
        return dgram, sim.now

    assert sim.run_process(body()) == (None, 10.0)


def test_recv_timeout_returns_datagram_when_it_arrives():
    sim, net = make_net()
    a = UdpSocket(net, "a", 100)
    b = UdpSocket(net, "b", 200)

    def sender():
        yield Sleep(3.0)
        a.sendto(b"late", b.addr)

    def receiver():
        dgram = yield from b.recv_timeout(10.0)
        return dgram.payload

    sim.spawn(sender())
    assert sim.run_process(receiver()) == b"late"


def test_recv_nowait_and_pending():
    sim, net = make_net()
    a = UdpSocket(net, "a", 100)
    b = UdpSocket(net, "b", 200)
    a.sendto(b"one", b.addr)
    a.sendto(b"two", b.addr)
    sim.run()
    assert b.pending() == 2
    assert b.recv_nowait().payload == b"one"
    assert b.recv_nowait().payload == b"two"
    assert b.recv_nowait() is None


def test_multicast_from_socket():
    sim, net = make_net()
    net.add_host("c")
    a = UdpSocket(net, "a", 100)
    b = UdpSocket(net, "b", 200)
    c = UdpSocket(net, "c", 200)
    a.multicast(b"m", [b.addr, c.addr])
    sim.run()
    assert b.pending() == 1
    assert c.pending() == 1
    assert net.packets_sent == 1
