"""Tests for the experiment CLI (`python -m repro ...`)."""

import pytest

from repro.cli import main


def test_table42(capsys):
    assert main(["table42"]) == 0
    out = capsys.readouterr().out
    assert "sendmsg" in out
    assert "8.1" in out


def test_deadlock(capsys):
    assert main(["deadlock"]) == 0
    out = capsys.readouterr().out
    assert "Eq 5.1" in out
    assert "0.500" in out  # k=2, n=2


def test_availability(capsys):
    assert main(["availability"]) == 0
    out = capsys.readouterr().out
    assert "6 min 40 s" in out


def test_multicast(capsys):
    assert main(["multicast"]) == 0
    out = capsys.readouterr().out
    assert "H_n*r" in out


def test_table41_small(capsys):
    assert main(["table41", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "Circus(5)" in out
    assert "UDP" in out and "TCP" in out


def test_fig48_small(capsys):
    assert main(["fig48", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "slope" in out


def test_table43_small(capsys):
    assert main(["table43", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "sendmsg" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_check_quickstart_is_clean(capsys, tmp_path):
    assert main(["check", "quickstart", "--dump-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "check quickstart" in out
    assert "ok (" in out and "monitors silent" in out
    assert list(tmp_path.iterdir()) == []    # no dump on a clean run


def test_check_circus_is_clean(capsys, tmp_path):
    assert main(["check", "circus", "--iterations", "5",
                 "--dump-dir", str(tmp_path)]) == 0
    assert "ok (" in capsys.readouterr().out


def test_check_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["check", "nonsense"])


def _violating_scenario():
    """A scenario seeded with a duplicate execution: the exactly-once
    monitor must fire and `repro check` must dump a post-mortem."""
    from repro.harness import World
    from repro.obs import events

    world = World(machines=1, seed=1)

    def body():
        for t in (1.0, 2.0):
            world.sim.bus.emit(events.ExecutionStarted(
                t=t, host="h1", proc="echo", thread_id="th",
                call_number=1, troupe_id=9, module=0, procedure=0,
                callers=1, group_complete=True))
        yield from ()

    return world, body


def test_check_dumps_postmortem_on_seeded_violation(capsys, tmp_path,
                                                    monkeypatch):
    import repro.cli as cli
    monkeypatch.setitem(cli.CHECK_SCENARIOS, "seeded", _violating_scenario)
    assert main(["check", "seeded", "--dump-dir", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "FAILED: 1 violation(s)" in out
    assert "exactly-once" in out
    dump = tmp_path / "seeded_postmortem.json"
    assert dump.exists()
    # The dump re-renders through the postmortem subcommand, which also
    # exits nonzero because it holds a violation.
    assert main(["postmortem", str(dump)]) == 1
    rendered = capsys.readouterr().out
    assert "=== post-mortem" in rendered
    assert "exactly-once" in rendered
    assert "causal past" in rendered


def test_postmortem_of_clean_dump_exits_zero(capsys, tmp_path):
    import json
    dump = tmp_path / "clean.json"
    dump.write_text(json.dumps({"format": "repro.postmortem/1",
                                "recorded": 0, "dropped": 0,
                                "violations": [], "monitor_errors": [],
                                "crash": None}))
    assert main(["postmortem", str(dump)]) == 0
    assert "0 violation(s)" in capsys.readouterr().out


def test_metrics_json_emits_bench_json_tables(capsys):
    import json
    assert main(["metrics", "circus", "--iterations", "3", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    (table,) = payload["tables"]
    assert table["title"] == "metrics: circus"
    assert table["columns"] == ["metric", "value"]
    metrics = {row[0] for row in table["rows"]}
    assert any(m.startswith("rpc.") for m in metrics)


def test_metrics_json_carries_schema_version(capsys):
    import json
    assert main(["metrics", "circus", "--iterations", "3", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == "repro.obs/1"


def test_metrics_openmetrics_exposition(capsys):
    assert main(["metrics", "circus", "--iterations", "3",
                 "--openmetrics"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# TYPE repro_schema info")
    assert 'repro_schema_info{version="repro.obs/1"} 1' in out
    assert "repro_critpath_attributed_pct" in out
    assert out.rstrip("\n").endswith("# EOF")


def test_critpath_renders_stage_table(capsys):
    assert main(["critpath", "circus", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "% attributed" in out
    assert "encode_send" in out
    assert "dominant stages:" in out


def test_critpath_json_is_deterministic_and_attributes_latency(capsys):
    import json

    def run():
        assert main(["critpath", "circus", "--iterations", "10",
                     "--json"]) == 0
        return capsys.readouterr().out

    first, second = run(), run()
    assert first == second                   # byte-identical re-run
    payload = json.loads(first)
    assert payload["schema_version"] == "repro.obs/1"
    report = payload["report"]
    assert report["attributed_pct"] >= 95.0
    assert report["residual_pct"] < 5.0


def test_critpath_per_call_lists_every_call(capsys):
    import json
    assert main(["critpath", "circus", "--iterations", "4", "--json",
                 "--per-call"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["calls"]) == 4
    for call in payload["calls"]:
        assert call["dominant"]
        assert call["stages"]


def test_top_plain_renders_frames_and_summary(capsys):
    assert main(["top", "circus", "--iterations", "5", "--plain",
                 "--slice", "200"]) == 0
    out = capsys.readouterr().out
    assert "repro top" in out
    assert "echo" in out
    assert "final:" in out
