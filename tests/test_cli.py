"""Tests for the experiment CLI (`python -m repro ...`)."""

import pytest

from repro.cli import main


def test_table42(capsys):
    assert main(["table42"]) == 0
    out = capsys.readouterr().out
    assert "sendmsg" in out
    assert "8.1" in out


def test_deadlock(capsys):
    assert main(["deadlock"]) == 0
    out = capsys.readouterr().out
    assert "Eq 5.1" in out
    assert "0.500" in out  # k=2, n=2


def test_availability(capsys):
    assert main(["availability"]) == 0
    out = capsys.readouterr().out
    assert "6 min 40 s" in out


def test_multicast(capsys):
    assert main(["multicast"]) == 0
    out = capsys.readouterr().out
    assert "H_n*r" in out


def test_table41_small(capsys):
    assert main(["table41", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "Circus(5)" in out
    assert "UDP" in out and "TCP" in out


def test_fig48_small(capsys):
    assert main(["fig48", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "slope" in out


def test_table43_small(capsys):
    assert main(["table43", "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "sendmsg" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])
