"""Tests for the packet trace / message sequence chart tools."""

from repro.core import ExportedModule
from repro.harness import World
from repro.tools import render_msc, trace_network
from repro.tools.msc import PacketTrace, TracedPacket, _summarize
from repro.pairedmsg import segments as seg


def echo_module():
    def echo(ctx, args):
        return b"e:" + args
    return ExportedModule("echo", {0: echo})


def test_trace_records_call_and_return():
    world = World(machines=3)
    troupe, _ = world.make_troupe("echo", echo_module, degree=2)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b"x"))

    with trace_network(world.net) as trace:
        world.run(body())
    summaries = [p.summary for p in trace.packets]
    assert sum(1 for s in summaries if s.startswith("CALL#")) >= 2
    assert sum(1 for s in summaries if s.startswith("RET#")) >= 2


def test_trace_detaches_on_exit():
    world = World(machines=3)
    troupe, _ = world.make_troupe("echo", echo_module, degree=1)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b"x"))

    with trace_network(world.net) as trace:
        world.run(body())
    count = len(trace)

    def body2():
        return (yield from client.call_troupe(troupe, 0, 0, b"y"))

    world.run(body2())
    assert len(trace) == count  # no recording after the context closed


def test_summarize_segments():
    call = seg.Segment(seg.MSG_CALL, False, False, 1, 1, 7, b"d")
    assert _summarize(call.encode()) == "CALL#7"
    multi = seg.Segment(seg.MSG_CALL, True, False, 3, 2, 7, b"d")
    assert _summarize(multi.encode()) == "CALL#7 2/3!"
    ack = seg.make_ack(seg.MSG_RETURN, 7, 3, 2)
    assert _summarize(ack.encode()) == "RET-ACK#7<=2"
    assert _summarize(b"\xff" * 12) == "12B"


def test_render_msc_layout():
    trace = PacketTrace()
    trace.packets = [
        TracedPacket(1.0, "a", "b", "CALL#1"),
        TracedPacket(2.0, "b", "a", "RET#1"),
    ]
    chart = render_msc(trace, hosts=["a", "b"])
    lines = chart.splitlines()
    assert "a" in lines[0] and "b" in lines[0]
    assert ">" in lines[1]   # a -> b
    assert "<" in lines[2]   # b -> a


def test_render_msc_truncation():
    trace = PacketTrace()
    trace.packets = [TracedPacket(float(i), "a", "b", "CALL#%d" % i)
                     for i in range(100)]
    chart = render_msc(trace, hosts=["a", "b"], max_packets=10)
    assert "90 more packets" in chart


def test_between():
    trace = PacketTrace()
    trace.packets = [TracedPacket(float(i), "a", "b", "p") for i in range(10)]
    assert len(trace.between(2.0, 4.0)) == 3
