"""Tests for the invariant monitors (repro.obs.monitor).

Two families:

* *silent on correct executions* — the canned CLI scenarios (including
  the lossy one) run under the full suite without a single violation;
* *fires on seeded violations* — each monitor gets a synthetic event
  stream breaking exactly its invariant, and must produce a violation
  whose post-mortem contains the causally ordered offending events.
"""

import types

import pytest

from repro import cli
from repro.obs import EventBus, events
from repro.obs.clocks import ClockDomain, vc_leq
from repro.obs.monitor import (CollationMonitor, CommitMonitor,
                               CrashSilenceMonitor, ExactlyOnceMonitor,
                               IncarnationMonitor, MonitorSuite,
                               TroupeDeterminismMonitor, watch)
from repro.obs.recorder import FlightRecorder


# ---------------------------------------------------------------------------
# Silent on the canned scenarios
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("scenario", ["quickstart", "protocol_trace",
                                      "lossy"])
def test_monitors_silent_on_canned_scenarios(scenario):
    world, body = cli.CHECK_SCENARIOS[scenario]()
    with watch(world.sim) as probe:
        world.run(body())
    assert probe.violations == []
    assert probe.recorder.monitor_errors == []
    assert probe.clocks.stamped > 0


def test_monitors_silent_on_circus():
    world, body = cli._scenario_circus(10)
    with watch(world.sim) as probe:
        world.run(body())
    assert probe.violations == []


# ---------------------------------------------------------------------------
# Seeded violations: synthetic stamped event streams
# ---------------------------------------------------------------------------

def _rig(monitor):
    """A bus with clocks, a flight recorder, and one monitor attached —
    the unit-test harness for driving monitors with synthetic events."""
    bus = EventBus()
    ClockDomain().install(bus)
    recorder = FlightRecorder(bus, capacity=128)
    monitor.attach(bus)
    return bus, recorder


def _assert_postmortem(recorder, monitor, invariant):
    """The violation made it to the recorder, and its causal cut holds
    the offending events in a causally consistent (Lamport) order."""
    assert len(monitor.violations) == 1
    violation = monitor.violations[0]
    assert violation.invariant == invariant
    assert recorder.violations == [violation]
    report = recorder.postmortem()
    (vdict,) = report["violations"]
    assert vdict["invariant"] == invariant
    cut = vdict["causal_cut"]
    assert cut, "causal cut must not be empty"
    lamports = [e["lamport"] for e in cut]
    assert lamports == sorted(lamports), "cut must be causally ordered"
    # Every offending event is inside the cut (same kind and lamport).
    for offending in vdict["evidence"]:
        assert any(e["kind"] == offending["kind"]
                   and e["lamport"] == offending["lamport"]
                   for e in cut), offending
    # The violation's frontier dominates everything in its cut.
    for e in cut:
        assert vc_leq(e["vc"], vdict["frontier"])
    return vdict


def _exec(t, host, proc, thread="th1", call=1, troupe=9, module=0,
          procedure=0):
    return events.ExecutionStarted(
        t=t, host=host, proc=proc, thread_id=thread, call_number=call,
        troupe_id=troupe, module=module, procedure=procedure, callers=1,
        group_complete=True)


def test_exactly_once_fires_on_duplicate_execution():
    monitor = ExactlyOnceMonitor()
    bus, recorder = _rig(monitor)
    bus.emit(_exec(1.0, "h1", "echo"))
    bus.emit(_exec(1.0, "h2", "echo"))       # other replica: fine
    bus.emit(_exec(2.0, "h1", "echo"))       # same replica again: breach
    vdict = _assert_postmortem(recorder, monitor, "exactly-once")
    assert "executed twice" in vdict["message"]
    assert len(vdict["evidence"]) == 2


def test_exactly_once_silent_on_distinct_calls():
    monitor = ExactlyOnceMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_exec(1.0, "h1", "echo", call=1))
    bus.emit(_exec(2.0, "h1", "echo", call=2))
    assert monitor.violations == []


def test_determinism_fires_on_diverging_member_streams():
    monitor = TroupeDeterminismMonitor()
    bus, recorder = _rig(monitor)
    # Member A sees calls 1 then 2; member B sees procedure 1 at
    # position 1 where the canonical stream has procedure 0.
    bus.emit(_exec(1.0, "h1", "m", call=1, procedure=0))
    bus.emit(_exec(2.0, "h1", "m", call=2, procedure=0))
    bus.emit(_exec(3.0, "h2", "m", call=1, procedure=0))
    bus.emit(_exec(4.0, "h2", "m", call=2, procedure=1))
    vdict = _assert_postmortem(recorder, monitor, "troupe-determinism")
    assert "canonical stream" in vdict["message"]


def test_determinism_ignores_unreplicated_and_control_traffic():
    monitor = TroupeDeterminismMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_exec(1.0, "h1", "m", troupe=0, call=5))       # troupe 0
    bus.emit(_exec(2.0, "h2", "m", troupe=0, call=6))
    bus.emit(_exec(3.0, "h1", "m", module=0xFFFF, call=1))  # control
    bus.emit(_exec(4.0, "h2", "m", module=0xFFFF, call=2))
    assert monitor.violations == []


def test_determinism_allows_interleaved_threads():
    """Two client threads' calls arriving in different orders at two
    members is NOT a determinism breach — per-thread streams agree."""
    monitor = TroupeDeterminismMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_exec(1.0, "h1", "m", thread="a", call=1))
    bus.emit(_exec(2.0, "h1", "m", thread="b", call=1))
    bus.emit(_exec(3.0, "h2", "m", thread="b", call=1))    # b before a
    bus.emit(_exec(4.0, "h2", "m", thread="a", call=1))
    assert monitor.violations == []


def _call_start(t, members=3, thread="th1", call=1):
    return events.CallStarted(
        t=t, host="ch", proc="client", thread_id=thread, call_number=call,
        troupe="echo", troupe_id=9, members=members, module=0, procedure=0)


def _result(t, member, status="ok", thread="th1", call=1):
    return events.ReplicaResult(
        t=t, host="ch", proc="client", thread_id=thread, call_number=call,
        member=member, status=status)


def _collate(t, verdict, responses, thread="th1", call=1):
    return events.Collated(
        t=t, host="ch", proc="client", thread_id=thread, call_number=call,
        troupe="echo", verdict=verdict, responses=responses)


def test_collation_fires_on_premature_verdict():
    monitor = CollationMonitor()
    bus, recorder = _rig(monitor)
    bus.emit(_call_start(1.0, members=3))
    bus.emit(_result(2.0, "m1"))
    bus.emit(_result(3.0, "m2"))
    bus.emit(_collate(4.0, "agreed", 2))     # third member unaccounted
    vdict = _assert_postmortem(recorder, monitor,
                               "collation-completeness")
    assert "2 of 3" in vdict["message"]


def test_collation_fires_on_disagreement_verdict():
    monitor = CollationMonitor()
    bus, recorder = _rig(monitor)
    bus.emit(_call_start(1.0, members=2))
    bus.emit(_result(2.0, "m1"))
    bus.emit(_result(3.0, "m2"))
    bus.emit(_collate(4.0, "disagreement", 2))
    _assert_postmortem(recorder, monitor, "collation-completeness")


def test_collation_accepts_complete_and_early_verdicts():
    monitor = CollationMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_call_start(1.0, members=2, call=1))
    bus.emit(_result(2.0, "m1", call=1))
    bus.emit(_result(3.0, "m2", status="crashed", call=1))
    bus.emit(_collate(4.0, "agreed", 1, call=1))     # all accounted
    bus.emit(_call_start(5.0, members=3, call=2))
    bus.emit(_result(6.0, "m1", call=2))
    bus.emit(_collate(7.0, "decided_early", 1, call=2))  # sanctioned
    assert monitor.violations == []


def _vote(t, peer, serial, ready):
    return events.CommitVote(t=t, host="ch", proc="coord", peer=peer,
                             serial=serial, ready=ready)


def _outcome(t, decision, votes, group_complete=True, serials=()):
    return events.CommitOutcome(t=t, host="ch", proc="coord",
                                decision=decision, votes=votes,
                                group_complete=group_complete,
                                serials=tuple(serials))


def test_commit_fires_on_non_unanimous_commit():
    monitor = CommitMonitor()
    bus, recorder = _rig(monitor)
    bus.emit(_vote(1.0, "m1", 7, True))
    bus.emit(_vote(2.0, "m2", 7, False))
    bus.emit(_outcome(3.0, "commit", 2, serials=(7, 7)))
    vdict = _assert_postmortem(recorder, monitor, "commit-unanimity")
    assert "demand 'abort'" in vdict["message"]


def test_commit_fires_on_split_coordinators():
    monitor = CommitMonitor()
    bus, recorder = _rig(monitor)
    bus.emit(_vote(1.0, "m1", 7, True))
    outcome_a = _outcome(2.0, "commit", 1, serials=(7,))
    bus.emit(outcome_a)
    other = events.CommitOutcome(t=3.0, host="ch2", proc="coord",
                                 decision="abort", votes=1,
                                 group_complete=False, serials=(7,))
    bus.emit(other)
    assert any(v.invariant == "commit-unanimity"
               and "split" in v.message for v in monitor.violations)


def test_commit_accepts_matching_votes():
    monitor = CommitMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_vote(1.0, "m1", 7, True))
    bus.emit(_vote(2.0, "m2", 7, True))
    bus.emit(_outcome(3.0, "commit", 2, serials=(7, 7)))
    bus.emit(_vote(4.0, "m1", 8, False))
    bus.emit(_vote(5.0, "m2", 8, True))
    bus.emit(_outcome(6.0, "abort", 2, serials=(8, 8)))
    bus.emit(_outcome(7.0, "abort", 0, group_complete=False))
    assert monitor.violations == []


def test_crash_silence_fires_on_retransmit_after_crash():
    monitor = CrashSilenceMonitor()
    bus, recorder = _rig(monitor)
    bus.emit(events.PeerCrashDeclared(t=1.0, endpoint="a:1", peer="b:1",
                                      silence=800.0, call_number=4,
                                      proc="p"))
    bus.emit(events.SegmentRetransmitted(t=2.0, endpoint="a:1",
                                         peer="b:1", msg_type=0,
                                         call_number=4, segment=1,
                                         proc="p"))
    vdict = _assert_postmortem(recorder, monitor, "crash-silence")
    assert "after declaring it crashed" in vdict["message"]


def test_crash_silence_allows_new_calls_to_restarted_peer():
    monitor = CrashSilenceMonitor()
    bus, _ = _rig(monitor)
    bus.emit(events.PeerCrashDeclared(t=1.0, endpoint="a:1", peer="b:1",
                                      silence=800.0, call_number=4,
                                      proc="p"))
    # A different call to the same peer is legitimate.
    bus.emit(events.SegmentRetransmitted(t=2.0, endpoint="a:1",
                                         peer="b:1", msg_type=0,
                                         call_number=5, segment=1,
                                         proc="p"))
    bus.emit(events.ProbeSent(t=3.0, endpoint="a:1", peer="b:1",
                              call_number=5, proc="p"))
    assert monitor.violations == []


def _member(t, op, new_id, old_id=0, host="rm", proc="ringmaster",
            name="echo"):
    return events.MembershipChanged(t=t, host=host, proc=proc, op=op,
                                    name=name, new_id=new_id,
                                    members=3, old_id=old_id)


def test_incarnation_fires_on_non_monotonic_id():
    monitor = IncarnationMonitor()
    bus, recorder = _rig(monitor)
    bus.emit(_member(1.0, "register", 100))
    bus.emit(_member(2.0, "add", 90, old_id=100))      # went backwards
    vdict = _assert_postmortem(recorder, monitor,
                               "incarnation-monotonic")
    assert "not above" in vdict["message"]


def test_incarnation_fires_on_broken_chain():
    monitor = IncarnationMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_member(1.0, "register", 100))
    bus.emit(_member(2.0, "add", 110, old_id=100))
    bus.emit(_member(3.0, "remove", 120, old_id=105))  # 105 never issued
    assert len(monitor.violations) == 1
    assert "chained from" in monitor.violations[0].message


def test_incarnation_accepts_monotonic_chain():
    monitor = IncarnationMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_member(1.0, "register", 100))
    bus.emit(_member(2.0, "add", 110, old_id=100))
    bus.emit(_member(3.0, "remove", 120, old_id=110))
    bus.emit(_member(4.0, "add", 130))                 # fresh re-create
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# Suite plumbing
# ---------------------------------------------------------------------------

def test_violations_are_deduplicated_per_subject():
    monitor = ExactlyOnceMonitor()
    bus, _ = _rig(monitor)
    bus.emit(_exec(1.0, "h1", "echo"))
    bus.emit(_exec(2.0, "h1", "echo"))
    bus.emit(_exec(3.0, "h1", "echo"))     # third strike, same subject
    assert len(monitor.violations) == 1


def test_suite_attaches_defaults_and_detaches_cleanly():
    sim = types.SimpleNamespace(bus=EventBus(), now=0.0)
    suite = MonitorSuite(sim)
    assert len(suite.monitors) == 6
    assert sim.bus.active
    assert sim.bus.stamper is suite.clocks
    assert suite["ExactlyOnceMonitor"].invariant == "exactly-once"
    suite.detach()
    assert not sim.bus.active
    assert sim.bus.stamper is None


def test_simulator_monitors_kwarg_installs_suite():
    from repro.sim.kernel import Simulator
    sim = Simulator(monitors=True)
    assert sim.monitor_suite is not None
    assert len(sim.monitor_suite.monitors) == 6
    assert Simulator().monitor_suite is None


def test_watch_records_crash_and_reraises():
    sim = types.SimpleNamespace(bus=EventBus(), now=42.0)
    with pytest.raises(RuntimeError):
        with watch(sim) as probe:
            raise RuntimeError("sim blew up")
    assert probe.recorder.crash["type"] == "RuntimeError"
    assert probe.recorder.crash["t"] == 42.0
    report = probe.postmortem()
    assert report["crash"]["message"] == "sim blew up"
    assert not sim.bus.active           # everything detached


def test_violation_event_reaches_other_bus_subscribers():
    monitor = ExactlyOnceMonitor()
    bus = EventBus()
    ClockDomain().install(bus)
    seen = []
    bus.subscribe(seen.append, kinds="mon.violation")
    monitor.attach(bus)
    bus.emit(_exec(1.0, "h1", "echo"))
    bus.emit(_exec(2.0, "h1", "echo"))
    assert len(seen) == 1
    assert seen[0].monitor == "ExactlyOnceMonitor"
    # The violation inherited the evidence's causal frontier.
    assert vc_leq(seen[0].evidence[0].vc, seen[0].vc)
