"""Dynamic vector clocks across membership changes (repro.obs.clocks).

The clock scheme is *dynamic*: no fixed process count, entries appear
as nodes first emit.  That is exactly what troupe reconfiguration needs
— members join and leave at runtime, and stamps taken under different
memberships must stay comparable.  These properties pin that down:

- the vector-clock algebra is a partial order with least upper bounds
  even when the two clocks were taken under different member sets
  (absent entries count as zero);
- under randomized join/leave/message schedules, every message edge
  and every transitive causal chain — including chains from a member
  that existed *before* a join to events on the member that joined —
  is preserved by the stamps;
- in a real simulated world, an execution on the original member
  before a §6.4.1 join happens-before an execution on the member that
  joined afterwards.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.binding import (
    BindingClient,
    ReplaceableModule,
    join_troupe,
    start_ringmaster,
)
from repro.core import TroupeRuntime
from repro.harness import World
from repro.obs import EventBus, events
from repro.obs.clocks import (ClockDomain, concurrent, happens_before,
                              vc_leq, vc_merge)

# ---------------------------------------------------------------------------
# The algebra under mixed memberships
# ---------------------------------------------------------------------------

#: clocks drawn over *different* member subsets — the post-join clock
#: has entries the pre-join clock has never heard of, and vice versa.
_MEMBERS = ["m%d" % i for i in range(6)]

vcs = st.dictionaries(st.sampled_from(_MEMBERS),
                      st.integers(min_value=1, max_value=5),
                      max_size=len(_MEMBERS))


@given(vcs, vcs, vcs)
def test_vc_leq_is_a_partial_order_across_member_sets(a, b, c):
    assert vc_leq(a, a)
    if vc_leq(a, b) and vc_leq(b, a):
        # antisymmetry modulo zero entries — generators emit counts >= 1,
        # so mutual domination means literal equality.
        assert a == b
    if vc_leq(a, b) and vc_leq(b, c):
        assert vc_leq(a, c)


@given(vcs, vcs)
def test_vc_comparisons_are_total_verdicts(a, b):
    """Any two stamps — whatever membership they were taken under —
    yield exactly one verdict: before, after, equal, or concurrent."""
    verdicts = [happens_before(a, b), happens_before(b, a), a == b,
                concurrent(a, b)]
    assert verdicts.count(True) == 1


@given(vcs, vcs, vcs)
def test_vc_merge_is_the_least_upper_bound(a, b, c):
    merged = vc_merge(dict(a), b)
    assert vc_leq(a, merged)
    assert vc_leq(b, merged)
    # Least: any other upper bound dominates the merge.
    if vc_leq(a, c) and vc_leq(b, c):
        assert vc_leq(merged, c)


# ---------------------------------------------------------------------------
# Randomized join/leave/message schedules against a live ClockDomain
# ---------------------------------------------------------------------------

#: abstract schedule steps; interpreted against the current live set so
#: every generated schedule is valid by construction.
_steps = st.lists(
    st.tuples(st.integers(min_value=0, max_value=9),
              st.integers(min_value=0, max_value=99),
              st.integers(min_value=0, max_value=99)),
    min_size=1, max_size=40)


def _run_schedule(steps):
    """Interpret (kind, a, b) steps as join/leave/message operations on
    a synthetic paired-message world; returns (emitted events,
    model causal past per event index)."""
    bus = EventBus()
    bus.subscribe(lambda e: None)           # make the bus active
    ClockDomain().install(bus)
    calls = itertools.count(1)
    joined = ["n0"]                          # founding member
    live = ["n0"]
    emitted = []                             # (event, model_past frozenset)
    past = {}                                # node -> set of event indices
    t = [0.0]

    def emit(node, event):
        t[0] += 1.0
        bus.emit(event)
        index = len(emitted)
        past.setdefault(node, set()).add(index)
        emitted.append((event, frozenset(past[node])))
        return index

    for kind, a, b in steps:
        if kind == 0:                        # join: a brand-new node
            name = "n%d" % len(joined)
            joined.append(name)
            live.append(name)
        elif kind == 1 and len(live) > 1:    # leave: stops emitting
            live.pop(a % len(live))
        elif len(live) >= 2:                 # message between live nodes
            src = live[a % len(live)]
            dst = live[b % len(live)]
            if src == dst:
                continue
            number = next(calls)
            emit(src, events.MessageSent(
                t=t[0], endpoint=src + ":1", peer=dst + ":1", msg_type=0,
                call_number=number, segments=1, size=8, proc="p"))
            # The receiver inherits the sender's whole causal past.
            past.setdefault(dst, set()).update(past[src])
            emit(dst, events.MessageDelivered(
                t=t[0], endpoint=dst + ":1", peer=src + ":1", msg_type=0,
                call_number=number, size=8, proc="p"))
    return emitted


@settings(max_examples=60, deadline=None)
@given(_steps)
def test_stamps_preserve_causal_past_across_joins_and_leaves(steps):
    """For every event, every event in its *model* causal past (message
    edges + per-node order, tracked independently of the clocks) is
    happens-before by the stamps — across any join/leave interleaving."""
    emitted = _run_schedule(steps)
    for index, (event, model_past) in enumerate(emitted):
        for j in model_past:
            if j == index:
                continue
            earlier = emitted[j][0]
            assert vc_leq(earlier.vc, event.vc), (
                "event %d not in causal past of %d despite model edge"
                % (j, index))
            assert happens_before(earlier.vc, event.vc)


@settings(max_examples=60, deadline=None)
@given(_steps)
def test_unrelated_events_never_gain_spurious_edges(steps):
    """The converse: an event outside another's model causal past must
    never be stamped into it (no spurious happens-before)."""
    emitted = _run_schedule(steps)
    for index, (event, model_past) in enumerate(emitted):
        for j in range(index):
            if j in model_past:
                continue
            earlier = emitted[j][0]
            assert not vc_leq(earlier.vc, event.vc), (
                "spurious causal edge from event %d to %d" % (j, index))


# ---------------------------------------------------------------------------
# End to end: pre-join events happen-before post-join executions
# ---------------------------------------------------------------------------

def _counter_module(state):
    def increment(ctx, args):
        state["count"] = state.get("count", 0) + 1
        return b"%d" % state["count"]

    return ReplaceableModule(
        "counter", {0: increment},
        externalize=lambda: b"%d" % state.get("count", 0),
        internalize=lambda raw: state.__setitem__("count", int(raw)))


def _make_server(world, machine, ringmaster, module):
    process = machine.spawn_process("server")
    holder = {}

    def resolver(tid):
        client = holder.get("binding")
        return client.make_resolver()(tid) if client else None

    runtime = TroupeRuntime(process, resolver=resolver)
    binding = BindingClient(runtime, ringmaster)
    holder["binding"] = binding
    member_addr = runtime.export(module)
    runtime.start_server()
    return runtime, binding, member_addr


def test_pre_join_execution_happens_before_post_join_execution():
    """A §6.4.1 join in a real world: the execution the original member
    ran *before* the join is in the causal past of the execution the
    new member runs *after* it (the chain runs through the client), and
    the join grew the clock domain with the new member's node."""
    world = World(machines=6, seed=0)
    execs = []
    world.sim.bus.subscribe(execs.append, kinds=("rpc.exec_start",))
    domain = ClockDomain().install(world.sim.bus)

    ringmaster, _ = start_ringmaster(world.machines[:2])
    state1 = {}
    rt1, binding1, member1 = _make_server(
        world, world.machines[2], ringmaster, _counter_module(state1))
    world.run(binding1.export_module("counter", member1))

    client_rt = world.make_client()
    client_binding = BindingClient(client_rt, ringmaster)
    world.run(client_binding.call("counter", 0, b""))

    host1 = member1.process.host
    pre = [e for e in execs if e.host == host1]
    assert pre, "the pre-join call must execute on the original member"
    nodes_before_join = domain.nodes()

    state2 = {}
    module2 = _counter_module(state2)
    rt2, binding2, member2 = _make_server(
        world, world.machines[3], ringmaster, module2)
    world.run(join_troupe(rt2, module2, member2, "counter", binding2))
    world.run(client_binding.call("counter", 0, b""))

    host2 = member2.process.host
    post = [e for e in execs if e.host == host2]
    assert post, "the post-join call must reach the joined member"
    # Pre-join work on the old member happens-before post-join work on
    # a member that did not exist when it ran.
    assert happens_before(pre[0].vc, post[-1].vc)
    # The clock domain grew dynamically: the new member's server node
    # only exists after the join.
    assert all(not n.startswith(host2 + "/server")
               for n in nodes_before_join)
    assert any(n.startswith(host2 + "/") for n in domain.nodes())
