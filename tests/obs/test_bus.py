"""Tests for the observability event bus (repro.obs.bus)."""

import dataclasses

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import EventBus, events


def _event(kind_cls, **kw):
    kw.setdefault("t", 0.0)
    return kind_cls(**kw)


def test_inactive_until_subscribed():
    bus = EventBus()
    assert not bus.active
    assert bus.subscriber_count() == 0
    sub = bus.subscribe(lambda e: None)
    assert bus.active
    assert bus.subscriber_count() == 1
    bus.unsubscribe(sub)
    assert not bus.active
    assert bus.subscriber_count() == 0


def test_unsubscribe_is_idempotent():
    bus = EventBus()
    sub = bus.subscribe(lambda e: None)
    bus.unsubscribe(sub)
    bus.unsubscribe(sub)          # second detach is a no-op
    assert not bus.active


def test_emit_without_subscribers_is_a_no_op():
    bus = EventBus()
    bus.emit(_event(events.TimerFired, due=1))   # must not raise


def test_subscribe_all_receives_everything():
    bus = EventBus()
    got = []
    bus.subscribe(got.append)
    e1 = _event(events.TimerFired, due=1)
    e2 = _event(events.ProcessSpawned, name="p", daemon=False)
    bus.emit(e1)
    bus.emit(e2)
    assert got == [e1, e2]


def test_kind_prefix_filtering():
    bus = EventBus()
    sim_only, exact, multi = [], [], []
    bus.subscribe(sim_only.append, kinds="sim.")
    bus.subscribe(exact.append, kinds="sim.timer")
    bus.subscribe(multi.append, kinds=("sim.spawn", "net."))
    timer = _event(events.TimerFired, due=1)
    spawn = _event(events.ProcessSpawned, name="p", daemon=False)
    drop = _event(events.PacketDropped, src="a", dst="b", reason="loss")
    for e in (timer, spawn, drop):
        bus.emit(e)
    assert sim_only == [timer, spawn]
    assert exact == [timer]
    assert multi == [spawn, drop]


def test_inactive_bus_emit_builds_no_kind_index():
    bus = EventBus()
    bus.emit(_event(events.TimerFired, due=1))
    # The no-subscriber fast path returns before touching the per-kind
    # index: nothing is allocated or cached for an unobserved emit.
    assert bus._by_kind == {}
    sub = bus.subscribe(lambda e: None, kinds="sim.")
    bus.emit(_event(events.TimerFired, due=1))
    assert "sim.timer" in bus._by_kind
    bus.unsubscribe(sub)
    # Detaching the last subscriber drops the index with it.
    assert bus._by_kind == {}
    assert not bus.active


def test_kind_index_is_invalidated_on_subscribe():
    bus = EventBus()
    first, second = [], []
    bus.subscribe(first.append, kinds="sim.timer")
    bus.emit(_event(events.TimerFired, due=1))       # caches sim.timer
    bus.subscribe(second.append, kinds="sim.")
    bus.emit(_event(events.TimerFired, due=2))
    assert len(first) == 2
    assert len(second) == 1                          # saw the rebuild


def test_handlers_run_in_subscription_order():
    bus = EventBus()
    order = []
    bus.subscribe(lambda e: order.append("first"))
    bus.subscribe(lambda e: order.append("second"))
    bus.emit(_event(events.TimerFired, due=1))
    assert order == ["first", "second"]


def test_handler_may_unsubscribe_during_emit():
    bus = EventBus()
    got = []
    sub = bus.subscribe(lambda e: (got.append(e), bus.unsubscribe(sub)))
    bus.emit(_event(events.TimerFired, due=1))
    bus.emit(_event(events.TimerFired, due=2))
    assert len(got) == 1
    assert not bus.active


def test_raising_handler_does_not_abort_emission():
    bus = EventBus()
    before, after, errors = [], [], []
    bus.subscribe(before.append)

    def bad(event):
        raise RuntimeError("broken probe")

    bus.subscribe(bad, kinds="sim.")
    bus.subscribe(after.append)
    bus.subscribe(errors.append, kinds="mon.error")
    event = _event(events.TimerFired, due=1)
    bus.emit(event)               # must not raise
    # Handlers after the broken one still saw the event (they also get
    # the follow-up mon.error, being catch-all subscribers).
    assert before[0] is event
    assert after[0] is event
    assert [e.kind for e in after] == ["sim.timer", "mon.error"]
    # The failure surfaced as a mon.error event instead of an exception.
    (error,) = errors
    assert error.kind == "mon.error"
    assert error.event_kind == "sim.timer"
    assert "RuntimeError: broken probe" in error.error
    assert "bad" in error.handler


def test_raising_stamper_is_contained_like_a_raising_handler():
    """A stamper bug must not unwind into the emitting protocol code —
    the event goes unstamped and the failure becomes a mon.error."""
    bus = EventBus()
    got, errors = [], []
    bus.subscribe(got.append)
    bus.subscribe(errors.append, kinds="mon.error")

    class BrokenStamper:
        def stamp(self, event):
            if event.kind != "mon.error":
                raise AttributeError("no such field on %s" % event.kind)

    bus.stamper = BrokenStamper()
    event = _event(events.TimerFired, due=1)
    bus.emit(event)               # must not raise
    assert got[-1] is event       # delivery still happened, unstamped
    assert not hasattr(event, "lamport")
    (error,) = errors
    assert error.event_kind == "sim.timer"
    assert "AttributeError" in error.error


def test_stamper_failing_on_monitor_error_does_not_recurse():
    bus = EventBus()
    got = []
    bus.subscribe(got.append)

    class AlwaysBroken:
        def stamp(self, event):
            raise ValueError("stamps nothing, mon.error included")

    bus.stamper = AlwaysBroken()
    bus.emit(_event(events.TimerFired, due=1))     # must terminate
    assert [e.kind for e in got] == ["mon.error", "sim.timer"]


def test_handler_failing_on_monitor_error_does_not_recurse():
    bus = EventBus()
    got = []
    bus.subscribe(got.append)

    def always_bad(event):
        raise ValueError("fails on everything, mon.error included")

    bus.subscribe(always_bad)
    bus.emit(_event(events.TimerFired, due=1))     # must terminate
    kinds = [e.kind for e in got]
    assert kinds == ["sim.timer", "mon.error"]


def test_events_are_dataclasses_with_kind_and_time():
    for kind, cls in events.ALL_EVENTS.items():
        assert cls.kind == kind
        fields = {f.name for f in dataclasses.fields(cls)}
        assert "t" in fields


def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _one_call_world():
    world = World(machines=3, seed=11)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=2)
    client = world.make_client()

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"hi")

    return world, body


def test_full_stack_run_with_no_subscribers_emits_nothing(monkeypatch):
    world, body = _one_call_world()
    emitted = []
    original = EventBus.emit
    monkeypatch.setattr(
        EventBus, "emit",
        lambda self, e: (emitted.append(e), original(self, e)))
    assert not world.sim.bus.active
    world.run(body())
    # Every emission site checks bus.active first, so an unobserved run
    # never constructs a single event object.
    assert emitted == []


def test_full_stack_run_publishes_every_layer():
    world, body = _one_call_world()
    kinds = set()
    world.sim.bus.subscribe(lambda e: kinds.add(e.kind))
    world.run(body())
    # One replicated call exercises the kernel, the wire, the paired
    # message protocol and the RPC layer.
    for expected in ("sim.spawn", "net.send", "net.deliver", "pm.send",
                     "pm.deliver", "rpc.call_start", "rpc.exec_start",
                     "rpc.exec_end", "rpc.result", "rpc.collate",
                     "rpc.call_end", "rpc.return", "rpc.gather"):
        assert expected in kinds, expected
