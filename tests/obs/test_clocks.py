"""Tests for the causal clocks (repro.obs.clocks)."""

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import EventBus, events
from repro.obs.clocks import (ClockDomain, causal_sort_key, concurrent,
                              happens_before, vc_leq, vc_merge)


# ---------------------------------------------------------------------------
# Vector clock algebra
# ---------------------------------------------------------------------------

def test_vc_leq_pointwise():
    assert vc_leq({}, {})
    assert vc_leq({}, {"a": 1})
    assert vc_leq({"a": 1}, {"a": 1})
    assert vc_leq({"a": 1}, {"a": 2, "b": 1})
    assert not vc_leq({"a": 2}, {"a": 1})
    assert not vc_leq({"b": 1}, {"a": 1})


def test_vc_merge_is_pointwise_max():
    a = {"a": 2, "b": 1}
    assert vc_merge(a, {"a": 1, "b": 3, "c": 1}) is a
    assert a == {"a": 2, "b": 3, "c": 1}


def test_happens_before_and_concurrent():
    a = {"p": 1}
    b = {"p": 1, "q": 1}
    assert happens_before(a, b)
    assert not happens_before(b, a)
    assert not happens_before(a, a)
    c = {"q": 1}
    assert concurrent(a, c)
    assert not concurrent(a, b)


# ---------------------------------------------------------------------------
# Stamping on a bare bus
# ---------------------------------------------------------------------------

def _stamped_bus():
    bus = EventBus()
    bus.subscribe(lambda e: None)          # make the bus active
    domain = ClockDomain().install(bus)
    return bus, domain


def test_kernel_events_tick_one_node():
    bus, domain = _stamped_bus()
    e1 = events.TimerFired(t=1.0, due=1)
    e2 = events.TimerFired(t=2.0, due=1)
    bus.emit(e1)
    bus.emit(e2)
    assert e1.node == e2.node == "kernel"
    assert (e1.lamport, e2.lamport) == (1, 2)
    assert e1.vc == {"kernel": 1}
    assert e2.vc == {"kernel": 2}
    assert happens_before(e1.vc, e2.vc)


def test_pm_send_deliver_edge_carries_causality():
    bus, domain = _stamped_bus()
    send = events.MessageSent(t=1.0, endpoint="a:1", peer="b:1",
                              msg_type=0, call_number=7, segments=1,
                              size=10, proc="alice")
    unrelated = events.MessageSent(t=1.0, endpoint="c:1", peer="b:1",
                                   msg_type=0, call_number=9, segments=1,
                                   size=10, proc="carol")
    deliver = events.MessageDelivered(t=2.0, endpoint="b:1", peer="a:1",
                                      msg_type=0, call_number=7, size=10,
                                      proc="bob")
    bus.emit(send)
    bus.emit(unrelated)
    bus.emit(deliver)
    # The delivery inherits the sender's clock: strict happens-before.
    assert happens_before(send.vc, deliver.vc)
    assert deliver.lamport > send.lamport
    # ... but not the unrelated sender's.
    assert concurrent(unrelated.vc, deliver.vc)


def test_clock_entries_appear_dynamically():
    bus, domain = _stamped_bus()
    assert domain.nodes() == ()
    bus.emit(events.TimerFired(t=0.0, due=1))
    assert domain.nodes() == ("kernel",)
    bus.emit(events.MessageSent(t=1.0, endpoint="a:1", peer="b:1",
                                msg_type=0, call_number=1, segments=1,
                                size=4, proc="p"))
    assert domain.nodes() == ("a/p", "kernel")
    # The new node's clock has no kernel entry: no edge connects them.
    assert domain.clock_of("a/p") == {"a/p": 1}


def test_retransmission_refreshes_the_message_edge():
    bus, domain = _stamped_bus()
    send = events.MessageSent(t=1.0, endpoint="a:1", peer="b:1",
                              msg_type=0, call_number=1, segments=1,
                              size=4, proc="p")
    rexmit = events.SegmentRetransmitted(t=2.0, endpoint="a:1", peer="b:1",
                                         msg_type=0, call_number=1,
                                         segment=1, proc="p")
    deliver = events.MessageDelivered(t=3.0, endpoint="b:1", peer="a:1",
                                      msg_type=0, call_number=1, size=4,
                                      proc="q")
    bus.emit(send)
    bus.emit(rexmit)
    bus.emit(deliver)
    # The delivery saw the *latest* segment, so both sends precede it.
    assert happens_before(send.vc, deliver.vc)
    assert happens_before(rexmit.vc, deliver.vc)


def test_causal_sort_key_orders_by_lamport():
    bus, domain = _stamped_bus()
    first = events.TimerFired(t=5.0, due=1)
    second = events.TimerFired(t=1.0, due=1)   # later emission, earlier t
    bus.emit(first)
    bus.emit(second)
    ordered = sorted([second, first], key=causal_sort_key)
    assert ordered == [first, second]


def test_uninstall_restores_the_bus():
    bus, domain = _stamped_bus()
    assert bus.stamper is domain
    domain.uninstall()
    assert bus.stamper is None
    event = events.TimerFired(t=0.0, due=1)
    bus.emit(event)
    assert not hasattr(event, "vc")


# ---------------------------------------------------------------------------
# Full-stack causality
# ---------------------------------------------------------------------------

def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def test_full_stack_run_is_causally_consistent():
    world = World(machines=5, seed=3)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()
    seen = []
    world.sim.bus.subscribe(seen.append)
    domain = ClockDomain().install(world.sim.bus)

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"hi")

    world.run(body())
    stamped = [e for e in seen if hasattr(e, "vc")]
    assert stamped == seen                      # everything got a stamp
    calls = [e for e in seen if e.kind == "rpc.call_start"]
    execs = [e for e in seen if e.kind == "rpc.exec_start"]
    results = [e for e in seen if e.kind == "rpc.result"]
    returns = [e for e in seen if e.kind == "rpc.return"]
    assert calls and len(execs) == 3 and len(results) == 3
    # The client's call precedes every replica execution, which precedes
    # its return, which precedes the result's arrival back at the client.
    for exec_event in execs:
        assert happens_before(calls[0].vc, exec_event.vc)
    for result in results:
        assert happens_before(calls[0].vc, result.vc)
        assert any(happens_before(r.vc, result.vc) for r in returns)
    # Executions on distinct replicas are causally concurrent.
    assert concurrent(execs[0].vc, execs[1].vc)
    # Lamport clocks respect the happens-before order everywhere.
    for e in seen:
        assert e.lamport >= 1
    for exec_event in execs:
        assert exec_event.lamport > calls[0].lamport


def test_clocks_grow_as_members_are_added():
    """Dynamic vector clocks: each simulated process contributes a clock
    entry only once it emits — later troupe members extend the vector
    without any re-dimensioning of existing clocks."""
    world = World(machines=6, seed=4)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=2)
    client = world.make_client()
    domain = ClockDomain().install(world.sim.bus)
    world.sim.bus.subscribe(lambda e: None)

    def call_once():
        yield from client.call_troupe(troupe, 0, 0, b"x")

    world.run(call_once())
    nodes_before = set(domain.nodes())
    # Grow the troupe: a third member on a fresh machine joins under the
    # same troupe ID (the add_troupe_member shape, without a Ringmaster).
    from repro.core.runtime import TroupeRuntime
    from repro.core.troupe import TroupeDescriptor
    machine = world.machines[-1]
    process = machine.spawn_process("echo")
    runtime = TroupeRuntime(process, config=world.runtime_config,
                            resolver=world.resolver,
                            troupe_id=troupe.troupe_id)
    member_addr = runtime.export(_echo_module())
    runtime.start_server()
    merged = TroupeDescriptor(troupe.name, troupe.troupe_id,
                              tuple(troupe.members) + (member_addr,))
    world.register(merged)

    def call_again():
        yield from client.call_troupe(merged, 0, 0, b"y")

    world.run(call_again())
    nodes_after = set(domain.nodes())
    assert nodes_before < nodes_after           # strictly grew
    new_nodes = nodes_after - nodes_before
    assert any("echo" in n for n in new_nodes)
