"""Tests for critical-path latency attribution (repro.obs.critpath)."""

from repro.core import ExportedModule
from repro.harness import World
from repro.net.network import NetworkConfig
from repro.obs import STAGES, CritPathAnalyzer
from repro.obs.trace import CallTracer


def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _analyzed_run(calls=5, seed=11, loss=0.0):
    net = NetworkConfig(loss_probability=loss) if loss else None
    world = World(machines=4, seed=seed, net_config=net)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()

    def body():
        for i in range(calls):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    with CritPathAnalyzer(world.sim) as analyzer:
        world.run(body())
    return world, analyzer


def test_every_completed_call_gets_a_path():
    calls = 5
    _, analyzer = _analyzed_run(calls=calls)
    paths = analyzer.paths()
    assert len(paths) == calls
    for path in paths:
        assert not path.degraded
        assert path.dominant in STAGES


def test_stage_durations_telescope_to_the_exact_call_latency():
    _, analyzer = _analyzed_run()
    for path in analyzer.paths():
        total = sum(duration for _, duration in path.stages)
        assert abs(total - path.duration) < 1e-9
        assert all(duration >= 0.0 for _, duration in path.stages)
        # Stage names come from the fixed vocabulary, in path order.
        order = [STAGES.index(name) for name, _ in path.stages]
        assert order == sorted(order)


def test_report_attributes_everything_on_a_clean_run():
    _, analyzer = _analyzed_run()
    report = analyzer.report()
    assert report["attributed_pct"] == 100.0
    assert report["residual_ms"] == 0.0
    assert report["residual_pct"] == 0.0
    assert report["degraded_calls"] == 0
    assert report["causal_violations"] == 0
    assert sum(report["dominant"].values()) == report["calls"]
    shares = sum(row["share_pct"] for row in report["stages"].values())
    assert abs(shares - 100.0) < 0.1


def test_attribution_is_deterministic_across_same_seed_runs():
    _, first = _analyzed_run(seed=42)
    _, second = _analyzed_run(seed=42)
    assert first.report() == second.report()
    assert [p.to_dict() for p in first.paths()] == \
           [p.to_dict() for p in second.paths()]


def test_loss_shows_up_as_retransmit_stall():
    _, analyzer = _analyzed_run(calls=10, seed=7, loss=0.2)
    report = analyzer.report()
    assert "retransmit_stall" in report["stages"]
    assert any(path.retransmits for path in analyzer.paths())
    # Stalls never break the exact telescoping partition.
    assert report["attributed_pct"] == 100.0


def test_render_mentions_stages_and_attribution():
    _, analyzer = _analyzed_run()
    text = analyzer.render()
    assert "100.00% attributed" in text
    assert "encode_send" in text
    assert "dominant stages:" in text


def test_to_dict_is_json_shaped():
    _, analyzer = _analyzed_run(calls=2)
    d = analyzer.paths()[0].to_dict()
    assert d["call_number"] >= 0
    assert d["duration_ms"] > 0
    assert d["dominant"] in STAGES
    assert all(isinstance(name, str) and isinstance(dur, float)
               for name, dur in d["stages"])


def test_close_detaches_from_the_bus():
    world, analyzer = _analyzed_run()
    assert not world.sim.bus.active
    before = analyzer.milestones
    troupe = next(iter(world.registry))
    assert troupe is not None
    assert analyzer.milestones == before


def test_external_tracer_is_not_closed():
    world = World(machines=4, seed=11)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=2)
    client = world.make_client()
    tracer = CallTracer(world.sim)
    with CritPathAnalyzer(world.sim, tracer=tracer) as analyzer:
        world.run(client.call_troupe(troupe, 0, 0, b"x"))
        assert analyzer.tracer is tracer
    # The analyzer detached itself but left the borrowed tracer attached.
    assert world.sim.bus.active
    tracer.close()
    assert not world.sim.bus.active


def test_milestones_work_counter_advances():
    _, analyzer = _analyzed_run(calls=3)
    # Every call puts CALL and RETURN sends on the timeline.
    assert analyzer.milestones >= 3 * 2
