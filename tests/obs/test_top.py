"""Tests for the live top view (repro.obs.top) — model, renderer, loop."""

import pytest

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import CritPathAnalyzer, TimeSeriesCollector, TopModel
from repro.obs.export import ProgressChannel
from repro.obs.top import live_top, render_frame


def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _world(seed=21, calls=4):
    world = World(machines=4, seed=seed)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()

    def body():
        for i in range(calls):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    return world, body


def test_model_samples_the_run():
    world, body = _world()
    progress = ProgressChannel()
    progress.publish("fuzz.echo", done=3, total=10)
    with TimeSeriesCollector(world.sim.bus) as ts, \
            CritPathAnalyzer(world.sim) as critpath:
        world.run(body())
        model = TopModel(world.sim, ts.registry, critpath,
                         progress=progress)
        sample = model.sample()
    assert sample["now"] == world.sim.now
    assert sample["violations"] == 0
    assert sample["troupes"]["echo"]["done"] == 4
    assert sample["troupes"]["echo"]["errors"] == 0
    assert sample["rates"]["net.packets_sent"] > 0
    assert sample["critpath"]["calls"] == 4
    assert sample["critpath"]["attributed_pct"] == 100.0
    assert sample["progress"]["fuzz.echo"]["done"] == 3


def test_render_frame_shows_the_essentials():
    world, body = _world()
    with TimeSeriesCollector(world.sim.bus) as ts, \
            CritPathAnalyzer(world.sim) as critpath:
        world.run(body())
        frame = render_frame(TopModel(world.sim, ts.registry,
                                      critpath).sample())
    assert "repro top" in frame
    assert "OK (0 violations)" in frame
    assert "echo" in frame
    assert "critical path" in frame
    # Frames respect the width budget for narrow terminals.
    narrow = render_frame(TopModel(world.sim, ts.registry).sample(),
                          width=40)
    assert all(len(line) <= 40 for line in narrow.splitlines())


def test_render_frame_with_no_calls_and_progress_rows():
    frame = render_frame({
        "now": 0.0, "pending": 0, "open_calls": 0, "troupes": {},
        "violations": 2, "rates": {},
        "progress": {"fuzz.echo": {"done": 5, "total": 20, "seq": 1},
                     "bench": {"phase": "warmup", "seq": 2}},
    })
    assert "2 VIOLATION(S)" in frame
    assert "(no completed calls yet)" in frame
    assert "5/20 (25%)" in frame
    assert "phase=warmup" in frame


def test_live_top_drives_the_workload_in_slices():
    world, body = _world(calls=6)
    frames = []
    final = live_top(world, body(), slice_ms=100.0, render=frames.append)
    assert frames                      # at least one frame rendered
    assert final["troupes"]["echo"]["done"] == 6
    assert final["violations"] == 0
    assert not world.sim.bus.active    # collectors detached afterwards


def test_live_top_does_not_perturb_the_event_stream():
    # The slice-driven loop runs to the next slice boundary, so daemon
    # timers may fire after the body finishes — but every event up to
    # the plain run's end must land at the same virtual time as in an
    # undriven run of the same seed: the undriven stream is an exact
    # prefix of the driven one.
    world, body = _world(seed=33)
    observed = []
    world.sim.bus.subscribe(lambda e: observed.append((e.kind, e.t)))
    live_top(world, body(), slice_ms=50.0, render=lambda frame: None)

    plain_world, plain_body = _world(seed=33)
    plain = []
    plain_world.sim.bus.subscribe(lambda e: plain.append((e.kind, e.t)))
    plain_world.run(plain_body())
    assert observed[:len(plain)] == plain


def test_live_top_max_frames_stops_early():
    world, body = _world(calls=50)
    frames = []
    live_top(world, body(), slice_ms=10.0, max_frames=2,
             render=frames.append)
    assert len(frames) == 2


def test_live_top_reraises_workload_exceptions():
    world, _ = _world()

    def exploding():
        raise RuntimeError("boom")
        yield                          # pragma: no cover

    with pytest.raises(RuntimeError, match="boom"):
        live_top(world, exploding(), render=lambda frame: None)
