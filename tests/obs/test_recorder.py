"""Tests for the flight recorder (repro.obs.recorder)."""

import json

from repro.obs import EventBus, events
from repro.obs.clocks import ClockDomain
from repro.obs.monitor import ExactlyOnceMonitor
from repro.obs.recorder import (FlightRecorder, event_to_dict,
                                render_postmortem)


def _bus():
    bus = EventBus()
    ClockDomain().install(bus)
    return bus


def _tick(bus, t):
    event = events.TimerFired(t=t, due=int(t))
    bus.emit(event)
    return event


# ---------------------------------------------------------------------------
# The ring
# ---------------------------------------------------------------------------

def test_ring_is_bounded_and_counts_drops():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=4)
    emitted = [_tick(bus, float(i)) for i in range(10)]
    assert len(recorder.ring) == 4
    assert recorder.dropped == 6
    assert list(recorder.ring) == emitted[-4:]


def test_first_overflow_emits_exactly_one_warning():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=4)
    warnings = []
    bus.subscribe(warnings.append, kinds=("mon.warn",))
    for i in range(10):
        _tick(bus, float(i))
    (warning,) = warnings                 # once, not per dropped event
    assert warning.kind == "mon.warn"
    assert warning.source == "FlightRecorder"
    assert "capacity 4" in warning.message
    assert warning.dropped == 1           # the count at first overflow
    # The recorder skips its own warning: the drop accounting counts
    # only real events (10 ticks - 4 kept = 6 dropped).
    assert recorder.dropped == 6
    assert all(e.kind != "mon.warn" for e in recorder.ring)


def test_no_warning_below_capacity():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=8)
    warnings = []
    bus.subscribe(warnings.append, kinds=("mon.warn",))
    for i in range(8):
        _tick(bus, float(i))
    assert warnings == []
    assert recorder.dropped == 0


def test_detach_stops_recording():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=4)
    _tick(bus, 1.0)
    recorder.detach()
    bus.subscribe(lambda e: None)       # keep the bus active
    _tick(bus, 2.0)
    assert len(recorder.ring) == 1


# ---------------------------------------------------------------------------
# Causal cuts
# ---------------------------------------------------------------------------

def _seed_violation(bus, recorder):
    """Drive a duplicate execution through a real monitor; return the
    violation it emitted."""
    monitor = ExactlyOnceMonitor()
    monitor.attach(bus)
    for t in (1.0, 2.0):
        bus.emit(events.ExecutionStarted(
            t=t, host="h1", proc="echo", thread_id="th", call_number=1,
            troupe_id=9, module=0, procedure=0, callers=1,
            group_complete=True))
    (violation,) = recorder.violations
    return violation


def test_causal_cut_contains_only_the_causal_past():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=64)
    # Kernel events are on an unrelated node: concurrent with the
    # replica's executions, so outside the violation's causal past.
    _tick(bus, 0.5)
    violation = _seed_violation(bus, recorder)
    _tick(bus, 9.0)
    cut = recorder.causal_cut(violation)
    assert [e.kind for e in cut] == ["rpc.exec_start", "rpc.exec_start"]
    lamports = [e.lamport for e in cut]
    assert lamports == sorted(lamports)
    assert violation not in cut


def test_causal_cut_without_clocks_degrades_to_prefix():
    bus = EventBus()                    # no stamper installed
    recorder = FlightRecorder(bus, capacity=64)
    before = events.TimerFired(t=1.0, due=1)
    bus.emit(before)
    violation = events.InvariantViolation(t=2.0, monitor="m",
                                          invariant="i")
    bus.emit(violation)
    after = events.TimerFired(t=3.0, due=3)
    bus.emit(after)
    assert recorder.causal_cut(violation) == [before]


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def test_event_to_dict_reduces_payload_bytes_to_sizes():
    event = events.MessageSent(t=1.0, endpoint="a:1", peer="b:1",
                               msg_type=0, call_number=1, segments=1,
                               size=12, proc="p")
    out = event_to_dict(event)
    assert out["kind"] == "pm.send"
    assert out["endpoint"] == "a:1"
    assert "node" not in out            # never stamped


def test_postmortem_dump_round_trips_as_json(tmp_path):
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=64)
    _seed_violation(bus, recorder)
    path = tmp_path / "dump.json"
    report = recorder.dump(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == report
    assert loaded["format"] == "repro.postmortem/1"
    assert loaded["dropped"] == 0
    (vdict,) = loaded["violations"]
    assert vdict["invariant"] == "exactly-once"
    assert len(vdict["causal_cut"]) == 2
    assert vdict["frontier"]
    # The whole report survived JSON: no stray objects anywhere.
    json.dumps(loaded)


def test_crash_report_includes_causally_ordered_tail():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=64)
    for t in (1.0, 2.0, 3.0):
        _tick(bus, t)
    recorder.record_crash(ValueError("boom"), t=3.5)
    report = recorder.postmortem()
    assert report["crash"] == {"type": "ValueError", "message": "boom",
                               "t": 3.5}
    tail = report["tail"]
    assert len(tail) == 3
    assert [e["lamport"] for e in tail] == [1, 2, 3]


def test_render_postmortem_is_human_readable():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=64)
    _seed_violation(bus, recorder)
    text = render_postmortem(recorder.postmortem())
    assert "=== post-mortem (repro.postmortem/1) ===" in text
    assert "1 violation(s)" in text
    assert "exactly-once" in text
    assert "ExactlyOnceMonitor" in text
    assert "offending events:" in text
    assert "causal past (2 events, causal order):" in text
    assert "rpc.exec_start" in text


def test_render_postmortem_reports_clean_runs():
    recorder = FlightRecorder(EventBus(), capacity=8)
    text = render_postmortem(recorder.postmortem())
    assert "0 violation(s)" in text


def test_membership_timeline_survives_ring_eviction():
    """Every bind.member event lands in the post-mortem's membership
    timeline — outside the bounded ring, so reconfigurations recorded
    long before a violation are never evicted."""
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=4)
    bus.emit(events.MembershipChanged(
        t=1.0, host="m0", proc="agent", op="register", name="svc",
        old_id=0, new_id=7, members=1))
    bus.emit(events.MembershipChanged(
        t=2.0, host="m0", proc="agent", op="add", name="svc",
        old_id=7, new_id=8, members=2))
    for t in range(10, 20):             # evict everything from the ring
        _tick(bus, float(t))
    bus.emit(events.MembershipChanged(
        t=25.0, host="m0", proc="agent", op="remove", name="svc",
        old_id=8, new_id=9, members=1))
    report = recorder.postmortem()
    timeline = report["membership"]
    assert [e["op"] for e in timeline] == ["register", "add", "remove"]
    assert [(e["old_id"], e["new_id"]) for e in timeline] == \
        [(0, 7), (7, 8), (8, 9)]
    assert all(e["name"] == "svc" for e in timeline)
    # ...and the renderer shows the troupe-ID timeline.
    text = render_postmortem(report)
    assert "membership history (3 change(s)):" in text
    assert "id 7 -> 8" in text
    json.dumps(report)


def test_postmortem_omits_membership_when_none_recorded():
    bus = _bus()
    recorder = FlightRecorder(bus, capacity=8)
    _tick(bus, 1.0)
    assert "membership" not in recorder.postmortem()
