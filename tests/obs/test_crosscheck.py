"""Cross-checks between independent observers of the same run.

The MSC packet trace (repro.tools) and the metrics collector subscribe
to the same bus; their counts must agree exactly — on a lossy network
where retransmissions and probes make the packet stream non-trivial.
"""

from repro.core import ExportedModule
from repro.harness import World
from repro.net import NetworkConfig
from repro.obs import MetricsCollector
from repro.tools import trace_network


def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _lossy_run(loss=0.2, calls=8):
    world = World(machines=4, seed=13,
                  net_config=NetworkConfig(loss_probability=loss))
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()

    def body():
        for i in range(calls):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    with trace_network(world.net) as trace, \
            MetricsCollector(world.sim.bus) as collector:
        world.run(body())
    return world, trace, collector.registry


def test_msc_trace_agrees_with_packet_counters():
    world, trace, reg = _lossy_run()
    # Both observers saw every net.send event: the MSC's packet list and
    # the metrics counter are two views of the same stream.
    assert len(trace) == reg.total("net.packets_sent")
    assert len(trace) == world.net.packets_sent
    assert reg.total("net.packets_dropped") == world.net.packets_dropped


def test_loss_conservation():
    _world, trace, reg = _lossy_run()
    sent = reg.total("net.packets_sent")
    delivered = reg.total("net.packets_delivered")
    dropped = reg.total("net.packets_dropped")
    duplicated = reg.total("net.packets_duplicated")
    # Every datagram handed to the wire is delivered or dropped;
    # duplication adds extra deliveries on top.
    assert sent + duplicated == delivered + dropped
    assert dropped > 0                  # 20% loss actually bit
    assert delivered > 0


def test_losses_force_protocol_work():
    _world, _trace, reg = _lossy_run()
    # Dropped segments must show up as paired-message repair traffic.
    assert reg.total("pm.retransmits") > 0
    # The RPC layer still completed every call exactly once.
    assert reg.value("rpc.calls_completed", troupe="echo", outcome="ok") == 8
    assert reg.value("rpc.collations", verdict="agreed") == 8
    assert reg.total("rpc.executions") == 8 * 3
    # Retransmissions mean some replicas saw segments twice.
    assert reg.total("pm.duplicates_suppressed") >= 0


def test_clean_network_delivers_everything():
    _world, trace, reg = _lossy_run(loss=0.0, calls=4)
    assert reg.total("net.packets_dropped") == 0
    assert reg.total("pm.duplicates_suppressed") == \
        reg.total("pm.retransmits")   # every retransmit is redundant here
    assert len(trace) == reg.total("net.packets_delivered")
