"""Tests for the OpenMetrics exporter and the progress channel."""

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import (CritPathAnalyzer, MetricsCollector, MetricsRegistry,
                       SCHEMA_VERSION, TimeSeriesCollector, openmetrics)
from repro.obs.export import ProgressChannel, metric_name


# -- naming and escaping ---------------------------------------------------

def test_metric_name_sanitization():
    assert metric_name("rpc.call_ms") == "rpc_call_ms"
    assert metric_name("net.packets-sent") == "net_packets_sent"
    assert metric_name("9lives") == "_9lives"
    assert metric_name("a:b_c") == "a:b_c"


def test_label_values_are_escaped():
    reg = MetricsRegistry()
    reg.counter("drops", reason='say "hi"\\now').inc()
    text = openmetrics(reg)
    assert r'reason="say \"hi\"\\now"' in text


# -- the exposition format -------------------------------------------------

def test_openmetrics_shape_and_terminator():
    reg = MetricsRegistry()
    reg.counter("net.packets_sent").inc(3)
    reg.gauge("rpc.open_calls").set(2)
    reg.histogram("rpc.call_ms", troupe="echo").observe(5.0)
    text = openmetrics(reg)
    lines = text.splitlines()
    assert lines[0] == "# TYPE repro_schema info"
    assert lines[1] == ('repro_schema_info{version="%s"} 1'
                       % SCHEMA_VERSION)
    assert "# TYPE repro_net_packets_sent counter" in lines
    assert "repro_net_packets_sent_total 3" in lines
    assert "repro_rpc_open_calls 2" in lines
    assert "# TYPE repro_rpc_call_ms summary" in lines
    assert ('repro_rpc_call_ms{troupe="echo",quantile="0.5"} 5.0'
            in lines)
    assert 'repro_rpc_call_ms_count{troupe="echo"} 1' in lines
    assert lines[-1] == "# EOF"
    assert text.endswith("# EOF\n")


def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _full_export(seed=21):
    world = World(machines=4, seed=seed)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()

    def body():
        for i in range(3):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    with MetricsCollector(world.sim.bus) as metrics, \
            TimeSeriesCollector(world.sim.bus) as ts, \
            CritPathAnalyzer(world.sim) as critpath:
        world.run(body())
        return openmetrics(metrics.registry, timeseries=ts.registry,
                           critpath=critpath)


def test_full_export_includes_timeseries_and_critpath_sections():
    text = _full_export()
    assert "# TYPE repro_ts_window_total gauge" in text
    assert "# TYPE repro_ts_rate_per_sec gauge" in text
    assert "repro_critpath_attributed_pct 100.0" in text
    assert 'repro_critpath_stage_ms{stage="execute"}' in text
    assert 'repro_critpath_dominant_calls{stage=' in text


def test_export_is_byte_identical_across_same_seed_runs():
    assert _full_export(seed=5) == _full_export(seed=5)


# -- the progress channel --------------------------------------------------

def test_progress_publish_snapshot_finish():
    channel = ProgressChannel()
    channel.publish("fuzz.echo", done=1, total=10)
    channel.publish("fuzz.echo", done=2, failures=1)
    snap = channel.snapshot()
    assert snap["fuzz.echo"]["done"] == 2
    assert snap["fuzz.echo"]["total"] == 10
    assert snap["fuzz.echo"]["failures"] == 1
    channel.finish("fuzz.echo")
    assert channel.snapshot() == {}


def test_progress_seq_is_monotone_and_listeners_are_poked():
    channel = ProgressChannel()
    seen = []
    channel.listen(lambda task, row: seen.append((task, row["seq"])))
    channel.publish("a", done=1)
    channel.publish("b", done=1)
    channel.publish("a", done=2)
    assert seen == [("a", 1), ("b", 2), ("a", 3)]
    channel.unlisten(seen.append)      # unknown listener: no-op
    fn = seen.append
    channel.listen(fn)
    channel.unlisten(fn)
    channel.publish("a", done=3)
    assert len(seen) == 4              # only the lambda still attached


def test_snapshot_is_task_sorted_and_detached():
    channel = ProgressChannel()
    channel.publish("zeta", done=1)
    channel.publish("alpha", done=1)
    snap = channel.snapshot()
    assert list(snap) == ["alpha", "zeta"]
    snap["alpha"]["done"] = 99         # copies, not live rows
    assert channel.snapshot()["alpha"]["done"] == 1
