"""Fault injection under the invariant monitors.

Crash-only failures (the §6.4.2 failure model) must leave every monitor
silent — crashes are *sanctioned* behaviour the protocols tolerate.  A
corrupted replica (a member whose replies diverge from its troupe) is a
determinism breach the monitors must catch.
"""

from repro.core import CollationError, ExportedModule, TroupeFailure
from repro.harness import World
from repro.host import FailureModel


def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def test_crash_only_faults_raise_no_false_positives():
    """Machines crashing and recovering under the failure model exercise
    crash declaration, abandoned transfers, and partial collation — none
    of which may trip a monitor."""
    world = World(machines=5, seed=77)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3,
                                  on_machines=["host0", "host1", "host2"])
    client = world.make_client(machine_name="host4")
    model = FailureModel(world.sim, world.machines[:3],
                         failure_rate=1 / 400.0, repair_rate=1 / 100.0,
                         seed=9)

    def body():
        model.start()
        completed = failed = 0
        for i in range(30):
            try:
                yield from client.call_troupe(troupe, 0, 0, b"n%d" % i)
                completed += 1
            except TroupeFailure:
                failed += 1
        model.stop()
        return completed, failed

    with world.watch() as probe:
        completed, failed = world.run(body())
    assert model.total_failures > 0          # faults actually happened
    assert completed > 0                     # and the troupe survived some
    assert probe.violations == []
    assert probe.recorder.monitor_errors == []


def test_corrupted_replica_trips_the_collation_monitor(tmp_path):
    """One member returns a mutated reply: the unanimous collator raises
    and the collation monitor pins the disagreement with a causally
    ordered post-mortem."""
    world = World(machines=4, seed=5)
    built = []

    def factory():
        index = len(built)
        built.append(index)

        def echo(ctx, args):
            yield from ctx.compute(1.0)
            if index == 1 and args == b"poison":
                return b"corrupt:" + args      # diverges from its troupe
            return b"echo:" + args
        return ExportedModule("echo", {0: echo})

    troupe, _ = world.make_troupe("echo", factory, degree=3)
    client = world.make_client()

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"clean")
        try:
            yield from client.call_troupe(troupe, 0, 0, b"poison")
        except CollationError:
            return "caught"
        return "missed"

    with world.watch() as probe:
        outcome = world.run(body())
    assert outcome == "caught"
    assert probe.violations, "collation monitor must fire"
    violation = probe.violations[0]
    assert violation.invariant == "collation-completeness"
    assert violation.monitor == "CollationMonitor"
    # The post-mortem dump holds the offending events in causal order.
    report = probe.dump(str(tmp_path / "corrupt.json"))
    (vdict,) = [v for v in report["violations"]
                if v["invariant"] == "collation-completeness"]
    cut = vdict["causal_cut"]
    assert cut
    lamports = [e["lamport"] for e in cut]
    assert lamports == sorted(lamports)
    kinds = {e["kind"] for e in cut}
    assert "rpc.call_start" in kinds
    assert "rpc.result" in kinds
