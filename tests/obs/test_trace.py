"""Tests for replicated-call tracing (span trees + Chrome export).

The golden file ``golden_call_span.json`` is the exact span tree of one
quickstart-style replicated call (fixed seed, deterministic simulation).
Regenerate after an intentional protocol/timing change with:

    PYTHONPATH=src python tests/obs/test_trace.py
"""

import json
import pathlib

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import trace_calls

GOLDEN = pathlib.Path(__file__).with_name("golden_call_span.json")


def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _one_call_world():
    """One replicated call to a 2-member troupe — the quickstart shape,
    pinned to named machines so the golden file reads naturally."""
    world = World(machines=3, seed=5,
                  machine_names=["client", "server-1", "server-2"])
    troupe, _ = world.make_troupe("echo", _echo_module, degree=2,
                                  on_machines=["server-1", "server-2"])
    client = world.make_client("client")

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"hi")

    return world, body


def _trace_one_call():
    world, body = _one_call_world()
    with trace_calls(world.sim) as tracer:
        world.run(body())
    return tracer


def test_span_tree_matches_golden_file():
    tree = _trace_one_call().span_tree()
    expected = json.loads(GOLDEN.read_text())
    assert tree == expected


def test_span_tree_shape():
    tracer = _trace_one_call()
    assert len(tracer.roots) == 1
    [call] = tracer.span_tree()
    assert call["name"] == "call echo 0.0"
    assert call["client"] == "client/client"
    assert call["outcome"] == "ok"
    assert call["members"] == 2
    assert call["t1"] > call["t0"]
    assert [r["status"] for r in call["results"]] == ["ok", "ok"]
    assert call["collation"]["verdict"] == "agreed"
    assert call["collation"]["responses"] == 2
    execs = call["executions"]
    assert sorted(e["replica"].split("/")[0] for e in execs) == \
        ["server-1", "server-2"]
    for e in execs:
        assert e["outcome"] == "ok"
        # The handler charges 1 ms of compute inside the span.
        assert e["t1"] - e["t0"] >= 1.0
        assert call["t0"] <= e["t0"] <= e["t1"] <= call["t1"]


def test_chrome_export_covers_call_executions_and_collation():
    tracer = _trace_one_call()
    payload = json.loads(tracer.to_json())
    events = payload["traceEvents"]
    assert payload["displayTimeUnit"] == "ms"

    calls = [e for e in events if e["ph"] == "X" and e["cat"] == "rpc"]
    execs = [e for e in events if e["ph"] == "X" and e["cat"] == "rpc.exec"]
    instants = [e for e in events if e["ph"] == "i"]
    meta = [e for e in events if e["ph"] == "M"]

    assert len(calls) == 1 and calls[0]["name"] == "call echo 0.0"
    assert len(execs) == 2                       # one span per replica
    assert sum(1 for e in instants
               if e["name"].startswith("collate")) == 1
    assert sum(1 for e in instants
               if e["name"].startswith("result")) == 2
    assert sum(1 for e in instants if e["name"] == "return") == 2

    # Three hosts → three process lanes, each named.
    assert sum(1 for e in meta if e["name"] == "process_name") == 3

    # ts is virtual µs: the call span must agree with the span ×1000.
    [root] = tracer.roots
    assert calls[0]["ts"] == round(root.start * 1000.0, 3)
    assert calls[0]["dur"] == round((root.end - root.start) * 1000.0, 3)

    # Virtual-time ordering survives the export.
    ts = [e["ts"] for e in events if "ts" in e and e["ph"] != "M"]
    assert ts == sorted(ts)


def test_nested_calls_attach_under_the_issuing_execution():
    world = World(machines=5, seed=9)
    inner_troupe, _ = world.make_troupe("inner", _echo_module, degree=2)

    def outer_module():
        def relay(ctx, args):
            reply = yield from ctx.call(inner_troupe, 0, 0, args)
            return b"relay:" + reply
        return ExportedModule("outer", {0: relay})

    outer_troupe, _ = world.make_troupe("outer", outer_module, degree=2)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(outer_troupe, 0, 0, b"hi"))

    with trace_calls(world.sim) as tracer:
        reply = world.run(body())
    assert reply == b"relay:echo:hi"

    # Only the client's call is a root; each outer replica's nested call
    # to the inner troupe hangs off that replica's execution span.
    assert len(tracer.roots) == 1
    assert len(tracer.calls) == 3
    [root] = tracer.span_tree()
    assert root["troupe"] == "outer"
    nested = [c for e in root["executions"] for c in e["calls"]]
    assert len(nested) == 2
    for call in nested:
        assert call["troupe"] == "inner"
        assert call["outcome"] == "ok"
        assert call["thread_id"] == root["thread_id"]


if __name__ == "__main__":
    tree = _trace_one_call().span_tree()
    GOLDEN.write_text(json.dumps(tree, indent=2) + "\n")
    print("wrote %s" % GOLDEN)
