"""Tests for the offline consistency checkers (repro.obs.lincheck),
driven by hand-built histories with known verdicts."""

import pytest

from repro.obs.history import Operation, OperationHistory
from repro.obs.lincheck import HistoryOracle, check_history


def op(index, process, what, key="", args=None, result=None, status="ok",
       inv=0, ret=None):
    """A hand-built operation; ``inv``/``ret`` double as virtual times
    and sequence positions (``ret=None`` = never returned)."""
    return Operation(index=index, process=process, op=what, key=key,
                     args=args, result=result, status=status,
                     invoked_at=float(inv),
                     returned_at=None if ret is None else float(ret),
                     inv_seq=inv, ret_seq=ret)


def hist(ops, semantics, initial=None):
    return OperationHistory(list(ops), scenario="hand-built", seed=0,
                            semantics=semantics, initial=initial)


# ---------------------------------------------------------------------------
# Wing–Gong: register
# ---------------------------------------------------------------------------

def test_sequential_register_history_is_linearizable():
    result = check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2),
        op(1, "c1", "r", key="x", result="1", inv=3, ret=4),
        op(2, "c0", "w", key="x", args="2", inv=5, ret=6),
        op(3, "c1", "r", key="x", result="2", inv=7, ret=8),
    ], "register"))
    assert result.ok
    assert result.checked == 4


def test_stale_read_is_rejected_with_minimal_subhistory():
    result = check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2),
        op(1, "c1", "r", key="x", result="0", inv=3, ret=4),
    ], "register", initial={"x": "0"}))
    assert not result.ok
    assert result.key == "x"
    assert "no linearization" in result.reason
    # The minimal sub-history keeps only jointly-necessary operations:
    # the completed write plus the stale read of the initial value
    # (each passes the checker on its own).
    assert [o.index for o in result.violation] == [0, 1]
    for i in range(len(result.violation)):
        subset = result.violation[:i] + result.violation[i + 1:]
        assert check_history(hist(subset, "register",
                                  initial={"x": "0"})).ok


def test_concurrent_write_and_read_may_order_either_way():
    for seen in (None, "1"):
        result = check_history(hist([
            op(0, "c0", "w", key="x", args="1", inv=1, ret=4),
            op(1, "c1", "r", key="x", result=seen, inv=2, ret=3),
        ], "register"))
        assert result.ok, "read of %r should linearize" % seen


def test_initial_value_grounds_the_first_read():
    result = check_history(hist([
        op(0, "c0", "r", key="x", result="v0", inv=1, ret=2),
    ], "register", initial={"x": "v0"}))
    assert result.ok


def test_info_mutator_may_or_may_not_have_applied():
    # The write's outcome is unknown: a later read may see it...
    assert check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, status="info"),
        op(1, "c1", "r", key="x", result="1", inv=2, ret=3),
    ], "register")).ok
    # ...or not see it...
    assert check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, status="info"),
        op(1, "c1", "r", key="x", result=None, inv=2, ret=3),
    ], "register")).ok
    # ...but a register cannot un-lose a write: seen then unseen fails.
    result = check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, status="info"),
        op(1, "c1", "r", key="x", result="1", inv=2, ret=3),
        op(2, "c1", "r", key="x", result=None, inv=4, ret=5),
    ], "register"))
    assert not result.ok


def test_failed_write_definitely_did_not_apply():
    # fail ops are dropped: a read observing one is a lost-update-style
    # contradiction, while a read observing nothing is fine.
    assert check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2, status="fail"),
        op(1, "c1", "r", key="x", result=None, inv=3, ret=4),
    ], "register")).ok
    assert not check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2, status="fail"),
        op(1, "c1", "r", key="x", result="1", inv=3, ret=4),
    ], "register")).ok


def test_per_key_compositionality_names_the_failing_key():
    result = check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2),
        op(1, "c1", "r", key="x", result="1", inv=3, ret=4),
        op(2, "c0", "w", key="y", args="2", inv=5, ret=6),
        op(3, "c1", "r", key="y", result=None, inv=7, ret=8),
    ], "register"))
    assert not result.ok
    assert result.key == "y"
    assert all(o.key == "y" for o in result.violation)


# ---------------------------------------------------------------------------
# Wing–Gong: list-append
# ---------------------------------------------------------------------------

def test_list_append_accepts_the_real_order():
    assert check_history(hist([
        op(0, "c0", "append", key="log", args="a", inv=1, ret=2),
        op(1, "c1", "append", key="log", args="b", inv=3, ret=4),
        op(2, "c2", "r", key="log", result=["a", "b"], inv=5, ret=6),
    ], "list-append")).ok


def test_list_append_rejects_a_lost_prefix():
    result = check_history(hist([
        op(0, "c0", "append", key="log", args="a", inv=1, ret=2),
        op(1, "c1", "append", key="log", args="b", inv=3, ret=4),
        op(2, "c2", "r", key="log", result=["b"], inv=5, ret=6),
    ], "list-append"))
    assert not result.ok
    assert "no linearization" in result.reason


def test_concurrent_appends_commute():
    for order in (["a", "b"], ["b", "a"]):
        assert check_history(hist([
            op(0, "c0", "append", key="log", args="a", inv=1, ret=4),
            op(1, "c1", "append", key="log", args="b", inv=2, ret=3),
            op(2, "c2", "r", key="log", result=order, inv=5, ret=6),
        ], "list-append")).ok


# ---------------------------------------------------------------------------
# Strict serializability: bank
# ---------------------------------------------------------------------------

def txn(index, process, reads, writes, status="ok", inv=0, ret=None):
    return op(index, process, "xfer", key="",
              result={"reads": reads, "writes": writes},
              status=status, inv=inv, ret=ret)


INITIAL = {"a": "100@init", "b": "100@init:b"}


def test_serial_transaction_chain_is_accepted():
    result = check_history(hist([
        txn(0, "c0", {"a": "100@init"}, {"a": "50@t0"}, inv=1, ret=2),
        txn(1, "c1", {"a": "50@t0"}, {"a": "75@t1"}, inv=3, ret=4),
    ], "bank", initial=INITIAL))
    assert result.ok
    assert result.checked == 2


def test_lost_update_two_transactions_replace_one_version():
    result = check_history(hist([
        txn(0, "c0", {"a": "100@init"}, {"a": "50@t0"}, inv=1, ret=4),
        txn(1, "c1", {"a": "100@init"}, {"a": "90@t1"}, inv=2, ret=3),
    ], "bank", initial=INITIAL))
    assert not result.ok
    assert "lost update" in result.reason
    assert result.key == "a"
    assert len(result.violation) == 2


def test_duplicate_version_cell_is_replica_divergence():
    result = check_history(hist([
        txn(0, "c0", {"a": "100@init"}, {"a": "50@t"}, inv=1, ret=2),
        txn(1, "c1", {"b": "100@init:b"}, {"a": "50@t"}, inv=3, ret=4),
    ], "bank", initial=INITIAL))
    assert not result.ok
    assert "replica divergence" in result.reason


def test_read_of_a_version_nobody_wrote():
    result = check_history(hist([
        txn(0, "c0", {"a": "42@ghost"}, {}, inv=1, ret=2),
    ], "bank", initial=INITIAL))
    assert not result.ok
    assert "no transaction wrote" in result.reason


def test_read_of_an_aborted_transactions_write():
    result = check_history(hist([
        txn(0, "c0", {"a": "100@init"}, {"a": "50@t0"}, status="fail",
            inv=1, ret=2),
        txn(1, "c1", {"a": "50@t0"}, {}, inv=3, ret=4),
    ], "bank", initial=INITIAL))
    assert not result.ok
    assert "aborted read" in result.reason


def test_stale_read_after_commit_forms_a_realtime_cycle():
    # t0 commits a replacement of a@init, then t1 starts and still reads
    # a@init: rw edge t1 -> t0 plus the real-time edge t0 -> t1.
    result = check_history(hist([
        txn(0, "c0", {"a": "100@init"}, {"a": "90@t0"}, inv=1, ret=2),
        txn(1, "c1", {"a": "100@init"}, {}, inv=3, ret=4),
    ], "bank", initial=INITIAL))
    assert not result.ok
    assert "cycle" in result.reason
    assert {o.index for o in result.violation} == {0, 1}


def test_info_transactions_are_not_treated_as_committed():
    # An unknown-outcome transaction's writes exist in the version chain
    # only if a later committed read proves them; on their own they are
    # ignored rather than flagged.
    result = check_history(hist([
        txn(0, "c0", {"a": "100@init"}, {"a": "50@t0"}, status="info",
            inv=1),
        txn(1, "c1", {"a": "100@init"}, {"a": "90@t1"}, inv=2, ret=3),
    ], "bank", initial=INITIAL))
    assert result.ok
    assert result.checked == 1


# ---------------------------------------------------------------------------
# Total delivery order
# ---------------------------------------------------------------------------

def test_agreeing_delivery_orders_pass():
    assert check_history(hist([
        op(0, "p0", "deliver", args="m1", inv=1, ret=1),
        op(1, "p0", "deliver", args="m2", inv=2, ret=2),
        op(2, "p1", "deliver", args="m1", inv=3, ret=3),
        op(3, "p1", "deliver", args="m2", inv=4, ret=4),
    ], "total-order")).ok


def test_disagreeing_delivery_orders_form_a_cycle():
    result = check_history(hist([
        op(0, "p0", "deliver", args="m1", inv=1, ret=1),
        op(1, "p0", "deliver", args="m2", inv=2, ret=2),
        op(2, "p1", "deliver", args="m2", inv=3, ret=3),
        op(3, "p1", "deliver", args="m1", inv=4, ret=4),
    ], "total-order"))
    assert not result.ok
    assert "delivery orders disagree" in result.reason
    assert result.violation


# ---------------------------------------------------------------------------
# Dispatch and the oracle adapter
# ---------------------------------------------------------------------------

def test_unknown_semantics_raises():
    with pytest.raises(ValueError):
        check_history(hist([], "register"), semantics="two-phase-locking")


def test_explicit_semantics_override_the_recorded_one():
    history = hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2),
    ], "bank")
    assert check_history(history, semantics="register").ok


def test_result_to_dict_is_json_shaped():
    result = check_history(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2),
        op(1, "c1", "r", key="x", result=None, inv=3, ret=4),
    ], "register"))
    payload = result.to_dict()
    assert payload["ok"] is False
    assert payload["key"] == "x"
    assert all(isinstance(o, dict) for o in payload["violation"])


class _FakeRecorder:
    def __init__(self, history):
        self._history = history
        self.semantics = history.semantics
        self.finalized = False

    def finalize(self):
        self.finalized = True

    def history(self):
        return self._history


def test_oracle_reports_violations_through_the_monitor_protocol():
    recorder = _FakeRecorder(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2),
        op(1, "c1", "r", key="x", result=None, inv=3, ret=4),
    ], "register"))
    oracle = HistoryOracle(recorder)
    assert oracle.invariant == "linearizable-register"
    result = oracle.check(t=99.0)
    assert recorder.finalized
    assert not result.ok
    (violation,) = oracle.violations
    assert violation.invariant == "linearizable-register"
    assert violation.subject == "register:x"


def test_oracle_stays_quiet_on_clean_histories():
    recorder = _FakeRecorder(hist([
        op(0, "c0", "w", key="x", args="1", inv=1, ret=2),
        op(1, "c1", "r", key="x", result="1", inv=3, ret=4),
    ], "register"))
    oracle = HistoryOracle(recorder)
    assert oracle.check().ok
    assert oracle.violations == []
