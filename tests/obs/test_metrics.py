"""Tests for the metrics registry and the standard collector."""

import pytest

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import Counter, Gauge, Histogram, MetricsCollector, MetricsRegistry


# -- instruments -----------------------------------------------------------

def test_counter_and_gauge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    g = Gauge()
    g.set(3.5)
    assert g.value == 3.5


def test_histogram_is_exact():
    h = Histogram()
    for v in (5.0, 1.0, 3.0, 2.0, 4.0):
        h.observe(v)
    assert h.count == 5
    assert h.total == 15.0
    assert h.mean == 3.0
    # Nearest-rank over the exact observations, no bucketing error.
    assert h.percentile(50) == 3.0
    assert h.percentile(90) == 5.0
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 5.0
    assert h.summary() == {"count": 5, "mean": 3.0, "min": 1.0,
                           "p50": 3.0, "p90": 5.0, "max": 5.0}


def test_empty_histogram():
    h = Histogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.percentile(50) == 0.0
    assert h.summary() == {"count": 0}


def test_single_sample_histogram_percentiles():
    h = Histogram()
    h.observe(7.5)
    # Nearest-rank with one observation: every percentile is that sample.
    for p in (0, 1, 50, 99, 100):
        assert h.percentile(p) == 7.5
    assert h.summary() == {"count": 1, "mean": 7.5, "min": 7.5,
                           "p50": 7.5, "p90": 7.5, "max": 7.5}


def test_registry_get_or_create_by_name_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("net.packets_sent")
    assert reg.counter("net.packets_sent") is a
    b = reg.counter("net.packets_dropped", reason="loss")
    assert reg.counter("net.packets_dropped", reason="loss") is b
    assert reg.counter("net.packets_dropped", reason="partition") is not b


def test_registry_rejects_type_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.histogram("x")


def test_registry_value_total_snapshot():
    reg = MetricsRegistry()
    reg.counter("drops", reason="loss").inc(2)
    reg.counter("drops", reason="partition").inc(3)
    reg.histogram("latency", host="a").observe(7.0)
    assert reg.value("drops", reason="loss") == 2
    assert reg.value("drops", reason="nothing") == 0
    assert reg.total("drops") == 5
    snap = reg.snapshot()
    assert snap["drops{reason=loss}"] == 2
    assert snap["drops{reason=partition}"] == 3
    assert snap["latency{host=a}"]["count"] == 1
    assert "drops{reason=loss}" in reg.render()


def test_label_values_with_metacharacters_do_not_collide():
    reg = MetricsRegistry()
    # One label whose value *contains* "b,c=d" vs two separate labels:
    # distinct metrics, and their rendered keys must differ too.
    reg.counter("drops", a="b,c=d").inc(1)
    reg.counter("drops", a="b", c="d").inc(2)
    snap = reg.snapshot()
    assert len(snap) == 2
    assert snap['drops{a="b,c=d"}'] == 1
    assert snap["drops{a=b,c=d}"] == 2
    # Plain values keep the unquoted rendering.
    reg.counter("drops", reason="loss").inc()
    assert "drops{reason=loss}" in reg.snapshot()


def test_label_values_with_quotes_and_braces_are_escaped():
    reg = MetricsRegistry()
    reg.counter("x", v='say "hi"').inc()
    reg.counter("x", v="curly{}").inc(2)
    snap = reg.snapshot()
    assert snap['x{v="say \\"hi\\""}'] == 1
    assert snap['x{v="curly{}"}'] == 2


# -- the standard collector over a real run --------------------------------

def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _collect(calls=3, degree=3):
    world = World(machines=degree + 1, seed=21)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=degree)
    client = world.make_client()

    def body():
        for i in range(calls):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    with MetricsCollector(world.sim.bus) as collector:
        world.run(body())
    return collector.registry


def test_collector_counts_replicated_calls():
    calls, degree = 3, 3
    reg = _collect(calls=calls, degree=degree)
    assert reg.total("rpc.calls_started") == calls
    assert reg.value("rpc.calls_completed", troupe="echo",
                     outcome="ok") == calls
    assert reg.value("rpc.replica_results", status="ok") == calls * degree
    assert reg.value("rpc.collations", verdict="agreed") == calls
    assert reg.total("rpc.executions") == calls * degree
    assert reg.total("rpc.gathers") == calls * degree
    assert reg.total("rpc.returns_sent") == calls * degree


def test_collector_call_latency_histogram():
    reg = _collect(calls=4, degree=2)
    hist = reg.histogram("rpc.call_ms", troupe="echo")
    assert hist.count == 4
    # Every call charges at least the 1 ms of handler compute.
    assert min(hist.values) > 1.0
    exec_hist_count = sum(
        m.count for (name, _), m in reg._metrics.items()
        if name == "rpc.exec_ms")
    assert exec_hist_count == 8


def test_collector_detaches_on_close():
    world = World(machines=3, seed=21)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=2)
    client = world.make_client()

    def one_call():
        yield from client.call_troupe(troupe, 0, 0, b"x")

    with MetricsCollector(world.sim.bus) as collector:
        world.run(one_call())
    assert not world.sim.bus.active
    before = collector.registry.total("rpc.calls_started")
    world.run(one_call())       # no longer collected
    assert collector.registry.total("rpc.calls_started") == before
