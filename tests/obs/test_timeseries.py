"""Tests for the windowed virtual-time time-series (repro.obs.timeseries)."""

import pytest

from repro.core import ExportedModule
from repro.harness import World
from repro.obs import (TimeSeriesCollector, TimeSeriesRegistry,
                       WindowedCounter, WindowedGauge, WindowedHistogram)


# -- series mechanics ------------------------------------------------------

def test_counter_buckets_by_virtual_time():
    c = WindowedCounter(10.0, 16)
    c.inc(0.0)
    c.inc(9.9)
    c.inc(10.0)
    c.inc(25.0, n=3)
    assert c.points() == [(0.0, 2), (10.0, 1), (20.0, 3)]
    assert c.total() == 6


def test_counter_rate_per_sec():
    c = WindowedCounter(10.0, 16)
    for t in (0.0, 5.0, 12.0, 18.0):
        c.inc(t)
    # 4 events over 2 buckets of 10 virtual ms = 200/s.
    assert c.rate_per_sec() == pytest.approx(200.0)
    # Restricting to the last bucket sees only 2 events in 10 ms.
    assert c.rate_per_sec(last=1) == pytest.approx(200.0)
    assert WindowedCounter(10.0, 16).rate_per_sec() == 0.0


def test_ring_evicts_old_buckets():
    c = WindowedCounter(10.0, capacity=3)
    for bucket in range(5):
        c.inc(bucket * 10.0)
    assert c.evicted == 2
    assert [t for t, _ in c.points()] == [20.0, 30.0, 40.0]
    # total() covers only the retained window.
    assert c.total() == 3


def test_updates_counter_counts_every_cell_touch():
    c = WindowedCounter(10.0, 16)
    c.inc(0.0)
    c.inc(0.0)
    c.inc(15.0)
    g = WindowedGauge(10.0, 16)
    g.set(0.0, 7)
    assert c.updates == 3
    assert g.updates == 1


def test_gauge_keeps_last_value_per_bucket():
    g = WindowedGauge(10.0, 16)
    assert g.last() == 0
    g.set(1.0, 5)
    g.set(2.0, 3)
    g.set(11.0, 9)
    assert g.points() == [(0.0, 3), (10.0, 9)]
    assert g.last() == 9


def test_histogram_sketch_quantiles_and_merge():
    h = WindowedHistogram(10.0, 16)
    for value in (0.5, 2.0, 3.0, 7.0):
        h.observe(0.0, value)
    h.observe(12.0, 100.0)
    merged = h.merged()
    assert merged.count == 5
    assert merged.min == 0.5
    assert merged.max == 100.0
    # Power-of-two bins: the p50 upper bound is one octave wide.
    assert merged.quantile(0.5) in (2.0, 4.0)
    assert merged.quantile(1.0) >= 100.0


def test_empty_sketch_is_well_defined():
    h = WindowedHistogram(10.0, 16)
    merged = h.merged()
    assert merged.count == 0
    assert merged.quantile(0.5) == 0.0
    assert merged.to_dict() == {"count": 0}


# -- registry --------------------------------------------------------------

def test_registry_get_or_create_and_type_conflict():
    reg = TimeSeriesRegistry()
    a = reg.counter("net.packets_sent")
    assert reg.counter("net.packets_sent") is a
    assert reg.counter("x", host="a") is not reg.counter("x", host="b")
    with pytest.raises(TypeError):
        reg.gauge("net.packets_sent")


def test_registry_snapshot_excludes_wall_anchors():
    reg = TimeSeriesRegistry(bucket_ms=10.0)
    reg.counter("calls").inc(5.0)
    reg.anchor(5.0)
    assert reg.wall_anchors            # side table populated...
    snap = reg.snapshot()
    assert "calls" in snap
    assert snap["calls"]["points"] == [[0.0, 1]]
    # ...but nothing wall-clock-dependent reaches the snapshot.
    assert "wall_anchors" not in str(sorted(snap))


def test_registry_wall_points_pair_virtual_with_wall():
    reg = TimeSeriesRegistry(bucket_ms=10.0)
    reg.anchor(3.0)
    reg.anchor(7.0)                    # same bucket: first anchor wins
    reg.anchor(25.0)
    points = reg.wall_points()
    assert [t for t, _ in points] == [0.0, 20.0]
    assert all(isinstance(w, float) for _, w in points)


# -- the collector over a real run -----------------------------------------

def _echo_module():
    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def _run_collected(calls=4, seed=21):
    world = World(machines=4, seed=seed)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()

    def body():
        for i in range(calls):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    with TimeSeriesCollector(world.sim.bus, bucket_ms=10.0) as collector:
        world.run(body())
    return world, collector.registry


def test_collector_builds_per_troupe_series():
    calls = 4
    world, reg = _run_collected(calls=calls)
    started = reg.series("rpc.calls_started", troupe="echo")
    completed = reg.series("rpc.calls_completed", troupe="echo",
                           outcome="ok")
    assert started.total() == calls
    assert completed.total() == calls
    hist = reg.series("rpc.call_ms", troupe="echo")
    assert hist.merged().count == calls
    assert hist.merged().min > 1.0     # at least the 1 ms of compute
    # Calls are sequential, so every bucket saw at most one in flight
    # and the gauge is back to zero at the end.
    assert reg.series("rpc.open_calls").last() == 0
    assert reg.series("net.packets_sent").total() == world.net.packets_sent


def test_collector_detaches_and_run_stays_virtual_time_identical():
    world, _ = _run_collected()
    assert not world.sim.bus.active
    observed_end = world.sim.now

    # The same seeded run, unobserved: byte-identical virtual time.
    world2 = World(machines=4, seed=21)
    troupe, _ = world2.make_troupe("echo", _echo_module, degree=3)
    client = world2.make_client()

    def body():
        for i in range(4):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    world2.run(body())
    assert world2.sim.now == observed_end


def test_collector_series_are_deterministic_across_runs():
    _, reg1 = _run_collected(seed=33)
    _, reg2 = _run_collected(seed=33)
    assert reg1.snapshot() == reg2.snapshot()
    assert reg1.updates() == reg2.updates()
