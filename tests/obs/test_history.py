"""Tests for operation-history recording (repro.obs.history)."""

import json
import types

from repro.obs import EventBus, events
from repro.obs.clocks import ClockDomain
from repro.obs.history import (HISTORY_FORMAT, Operation, OperationHistory,
                               OperationHistoryRecorder, canonical_dumps,
                               format_operation)

import pytest


class FakeSim:
    """Just enough simulator for the recorder: a bus and a clock."""

    def __init__(self):
        self.bus = EventBus()
        self.now = 0.0


def fake_runtime(host="m0", name="c0"):
    return types.SimpleNamespace(
        process=types.SimpleNamespace(host=host, name=name))


def make_recorder(**kwargs):
    sim = FakeSim()
    ClockDomain().install(sim.bus)
    defaults = dict(scenario="test", seed=7, semantics="register")
    defaults.update(kwargs)
    return sim, OperationHistoryRecorder(sim, **defaults)


# ---------------------------------------------------------------------------
# Workload-side lifecycle
# ---------------------------------------------------------------------------

def test_invoke_and_respond_record_interval_and_sequence():
    sim, recorder = make_recorder()
    client = recorder.client("c0")
    sim.now = 10.0
    op = client.invoke("w", key="x", args="1")
    assert op.status == "open"
    assert op.invoked_at == 10.0
    sim.now = 25.0
    client.ok(op, result="done")
    assert op.status == "ok"
    assert op.returned_at == 25.0
    assert op.ret_seq > op.inv_seq

    other = client.invoke("r", key="x")
    client.fail(other)
    assert other.status == "fail"
    # The global sequence is a strict total order over all ends.
    seqs = [op.inv_seq, op.ret_seq, other.inv_seq, other.ret_seq]
    assert seqs == sorted(seqs) and len(set(seqs)) == 4


def test_finalize_marks_open_operations_info_and_detaches():
    sim, recorder = make_recorder()
    client = recorder.client("c0", fake_runtime())
    op = client.invoke("w", key="x", args="1")
    assert sim.bus.subscriber_count() == 1
    recorder.finalize()
    assert op.status == "info"
    assert sim.bus.subscriber_count() == 0
    # idempotent
    recorder.finalize()


# ---------------------------------------------------------------------------
# Bus-side correlation
# ---------------------------------------------------------------------------

def test_bus_events_stamp_wire_identity_and_vector_clocks():
    sim, recorder = make_recorder()
    client = recorder.client("c1", fake_runtime(host="m2", name="driver"))
    assert client.node == "m2/driver"
    op = client.invoke("w", key="x", args="1")

    sim.bus.emit(events.CallStarted(t=1.0, host="m2", proc="driver",
                                    thread_id="th-1", call_number=7))
    assert op.call_number == 7
    assert op.thread_id == "th-1"
    assert op.vc_invoke            # stamped by the ClockDomain

    # A retry's call_start must not overwrite the first correlation.
    sim.bus.emit(events.CallStarted(t=2.0, host="m2", proc="driver",
                                    thread_id="th-1", call_number=8))
    assert op.call_number == 7

    # call_end with a different call number is ignored; the matching one
    # stamps the return frontier.
    sim.bus.emit(events.CallCompleted(t=3.0, host="m2", proc="driver",
                                      thread_id="th-1", call_number=9))
    assert op.vc_return == {}
    sim.bus.emit(events.CallCompleted(t=4.0, host="m2", proc="driver",
                                      thread_id="th-1", call_number=7))
    assert op.vc_return
    client.ok(op, result=None)

    # Events on other nodes never touch this client's operations.
    other = client.invoke("r", key="x")
    sim.bus.emit(events.CallStarted(t=5.0, host="m9", proc="driver",
                                    thread_id="th-2", call_number=11))
    assert other.call_number == -1


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _recorded_history():
    sim, recorder = make_recorder(initial={"x": "v0"})
    client = recorder.client("c0")
    sim.now = 5.0
    op = client.invoke("w", key="x", args="1")
    sim.now = 9.0
    client.ok(op, result="ok")
    open_op = client.invoke("r", key="x")
    del open_op
    recorder.finalize()
    return recorder.history()


def test_canonical_json_round_trips_byte_identically(tmp_path):
    history = _recorded_history()
    text = history.dumps()
    assert text.endswith("\n")
    loaded = OperationHistory.from_dict(json.loads(text))
    assert loaded.dumps() == text

    path = tmp_path / "h.history.json"
    history.save(str(path))
    assert path.read_text() == text
    again = OperationHistory.load(str(path))
    assert again.dumps() == text
    assert again.scenario == "test"
    assert again.seed == 7
    assert again.initial == {"x": "v0"}
    assert [op.status for op in again.ops] == ["ok", "info"]


def test_two_identical_recordings_serialize_byte_identically():
    assert _recorded_history().dumps() == _recorded_history().dumps()


def test_from_dict_rejects_foreign_payloads():
    with pytest.raises(ValueError):
        OperationHistory.from_dict({"format": "something-else"})
    payload = _recorded_history().to_dict()
    assert payload["format"] == HISTORY_FORMAT
    assert payload["schema_version"]


def test_canonical_dumps_sorts_keys():
    assert canonical_dumps({"b": 1, "a": 2}).index('"a"') \
        < canonical_dumps({"b": 1, "a": 2}).index('"b"')


def test_format_operation_is_one_line_and_carries_the_essentials():
    line = format_operation(Operation(
        index=3, process="c1", op="r", key="x", result="v", status="ok",
        invoked_at=10.0, returned_at=20.5, call_number=4).to_dict())
    assert "\n" not in line
    for fragment in ("#3", "c1", "r x", "ok", "v", "[10, 20.5]", "call#4"):
        assert fragment in line
    open_line = format_operation(Operation(
        index=0, process="c0", op="w", key="x", args="1",
        status="info", invoked_at=1.0).to_dict())
    assert "..." in open_line and "call#" not in open_line
