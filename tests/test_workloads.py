"""Tests for the workload generators."""

import pytest

from repro.bench.workloads import (
    ClosedLoopClient,
    OpenLoopGenerator,
    WorkloadResult,
    echo_troupe,
    run_load_sweep,
)
from repro.core.runtime import RuntimeConfig
from repro.harness import World


def test_closed_loop_completes_all_calls():
    world = World(machines=5,
                  runtime_config=RuntimeConfig(execution="parallel"))
    troupe = echo_troupe(world, degree=2)
    result = ClosedLoopClient(world, troupe, clients=2,
                              calls_per_client=5).run()
    assert result.completed == 10
    assert result.throughput > 0
    assert result.mean_latency > 0
    assert len(result.latencies) == 10


def test_open_loop_completes_all_calls():
    world = World(machines=5,
                  runtime_config=RuntimeConfig(execution="parallel"))
    troupe = echo_troupe(world, degree=2)
    result = OpenLoopGenerator(world, troupe, rate=20.0,
                               total_calls=10, seed=3).run()
    assert result.completed == 10
    assert result.offered_rate == 20.0


def test_open_loop_latency_grows_with_load():
    """Queueing 101: latency at heavy offered load exceeds light load."""
    light, heavy = run_load_sweep([5.0, 200.0], degree=2, total_calls=25)
    assert heavy.mean_latency > light.mean_latency


def test_workload_result_percentiles():
    result = WorkloadResult(0.0, 4, 100.0, [1.0, 2.0, 3.0, 4.0])
    assert result.percentile_latency(0.0) == 1.0
    assert result.percentile_latency(0.99) == 4.0
    assert result.mean_latency == pytest.approx(2.5)
    assert result.throughput == pytest.approx(40.0)


def test_open_loop_validates_rate():
    world = World(machines=3)
    troupe = echo_troupe(world, degree=1)
    with pytest.raises(ValueError):
        OpenLoopGenerator(world, troupe, rate=0.0)
