"""Tests for the workload generators."""

import pytest

from repro.bench.workloads import (
    ARRIVAL_KINDS,
    ClosedLoopClient,
    OpenLoopGenerator,
    WorkloadResult,
    ZipfSampler,
    echo_troupe,
    interarrival_ms,
    run_load_sweep,
)
from repro.core.runtime import RuntimeConfig
from repro.harness import World
from repro.sim.rng import RandomStream


def test_closed_loop_completes_all_calls():
    world = World(machines=5,
                  runtime_config=RuntimeConfig(execution="parallel"))
    troupe = echo_troupe(world, degree=2)
    result = ClosedLoopClient(world, troupe, clients=2,
                              calls_per_client=5).run()
    assert result.completed == 10
    assert result.throughput > 0
    assert result.mean_latency > 0
    assert len(result.latencies) == 10


def test_open_loop_completes_all_calls():
    world = World(machines=5,
                  runtime_config=RuntimeConfig(execution="parallel"))
    troupe = echo_troupe(world, degree=2)
    result = OpenLoopGenerator(world, troupe, rate=20.0,
                               total_calls=10, seed=3).run()
    assert result.completed == 10
    assert result.offered_rate == 20.0


def test_open_loop_latency_grows_with_load():
    """Queueing 101: latency at heavy offered load exceeds light load."""
    light, heavy = run_load_sweep([5.0, 200.0], degree=2, total_calls=25)
    assert heavy.mean_latency > light.mean_latency


def test_workload_result_percentiles():
    result = WorkloadResult(0.0, 4, 100.0, [1.0, 2.0, 3.0, 4.0])
    assert result.percentile_latency(0.0) == 1.0
    assert result.percentile_latency(0.99) == 4.0
    assert result.mean_latency == pytest.approx(2.5)
    assert result.throughput == pytest.approx(40.0)


def test_open_loop_validates_rate():
    world = World(machines=3)
    troupe = echo_troupe(world, degree=1)
    with pytest.raises(ValueError):
        OpenLoopGenerator(world, troupe, rate=0.0)
    with pytest.raises(ValueError):
        OpenLoopGenerator(world, troupe, rate=5.0, arrival="bimodal")


def test_interarrival_kinds_are_seed_deterministic():
    for kind in ARRIVAL_KINDS:
        gaps = [interarrival_ms(kind, RandomStream(7, "gaps"), 20.0)
                for _ in range(2)]
        # A fresh stream from the same seed replays the same gap.
        assert gaps[0] == gaps[1]
        assert gaps[0] > 0


def test_interarrival_fixed_is_the_mean_gap():
    rng = RandomStream(0, "unused")
    assert interarrival_ms("fixed", rng, 20.0) == 50.0
    assert interarrival_ms("fixed", rng, 1000.0) == 1.0


def test_interarrival_means_track_the_offered_rate():
    """Poisson and Pareto gaps are scaled so the mean matches the rate:
    the sample mean over many draws lands near 1000/rate ms."""
    for kind in ("poisson", "pareto"):
        rng = RandomStream(3, "mean-%s" % kind)
        gaps = [interarrival_ms(kind, rng, 50.0, pareto_alpha=2.5)
                for _ in range(4000)]
        mean = sum(gaps) / len(gaps)
        assert 0.7 * 20.0 < mean < 1.3 * 20.0, (kind, mean)


def test_interarrival_validates():
    rng = RandomStream(0, "v")
    with pytest.raises(ValueError):
        interarrival_ms("poisson", rng, 0.0)
    with pytest.raises(ValueError):
        interarrival_ms("weibull", rng, 10.0)
    with pytest.raises(ValueError):
        interarrival_ms("pareto", rng, 10.0, pareto_alpha=1.0)


def test_zipf_sampler_is_deterministic_and_skewed():
    zipf = ZipfSampler(10, s=1.2)
    counts = [0] * 10
    rng = RandomStream(5, "zipf")
    for _ in range(2000):
        counts[zipf.sample(rng)] += 1
    # Rank 0 is the most popular and every draw is in range.
    assert counts[0] == max(counts)
    assert counts[0] > counts[9]
    assert sum(counts) == 2000
    # Same seed, same sequence.
    first = [zipf.sample(RandomStream(5, "replay")) for _ in range(1)]
    second = [zipf.sample(RandomStream(5, "replay")) for _ in range(1)]
    assert first == second
    with pytest.raises(ValueError):
        ZipfSampler(0)


def test_open_loop_arrival_kinds_complete_and_differ():
    results = {}
    for kind in ARRIVAL_KINDS:
        world = World(machines=4,
                      runtime_config=RuntimeConfig(execution="parallel"))
        troupe = echo_troupe(world, degree=2)
        result = OpenLoopGenerator(world, troupe, rate=20.0, total_calls=8,
                                   seed=3, arrival=kind).run()
        assert result.completed == 8
        results[kind] = result.duration_ms
    # Different interarrival processes shape different schedules.
    assert len(set(results.values())) > 1


def test_run_load_sweep_accepts_arrival_kind():
    (result,) = run_load_sweep([10.0], degree=1, total_calls=5,
                               arrival="pareto", pareto_alpha=2.0)
    assert result.completed == 5
    repeat, = run_load_sweep([10.0], degree=1, total_calls=5,
                             arrival="pareto", pareto_alpha=2.0)
    assert repeat.latencies == result.latencies
