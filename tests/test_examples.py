"""Smoke tests: the runnable examples execute end-to-end.

The heavyweight examples (replicated_kv_store, reconfiguration) exercise
machinery already covered by dedicated integration tests, so only the
fast ones run here — enough to catch import rot and API drift.
"""

import os
import runpy

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(name):
    runpy.run_path(os.path.join(EXAMPLES, name), run_name="__main__")


def test_quickstart_runs(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "echo[1]: hello" in out
    assert "TroupeFailure" in out


def test_temperature_controller_runs(capsys):
    run_example("temperature_controller.py")
    out = capsys.readouterr().out
    assert "accepted 20" in out
    assert "first archive response accepted: 19" in out


def test_configuration_manager_runs(capsys):
    run_example("configuration_manager.py")
    out = capsys.readouterr().out
    assert "instantiated on: ['UCB-Monet', 'UCB-Degas', 'UCB-Ernie']" in out
    assert "reconfigured to:" in out


def test_protocol_trace_runs(capsys):
    run_example("protocol_trace.py")
    out = capsys.readouterr().out
    assert "replicated call returned: b'echo:hi'" in out
    assert "CALL#1" in out and "RET#1" in out


def test_n_version_runs(capsys):
    run_example("n_version.py")
    out = capsys.readouterr().out
    assert "isqrt( 99) by majority vote = 9" in out
    assert "unanimous collation detects" in out
