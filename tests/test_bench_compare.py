"""Tests for benchmarks/compare.py (the baseline regression gate)."""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, REPO_ROOT)

from benchmarks import compare  # noqa: E402


def _payload(value):
    return {"tables": [{
        "title": "demo table",
        "columns": ["workload", "ms/call", "packets"],
        "rows": [["alpha", value, 10], ["beta", 2.0, 20]],
        "notes": "",
    }]}


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return str(path)


def test_identical_files_report_no_deltas(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _payload(1.0))
    new = _write(tmp_path / "new.json", _payload(1.0))
    assert compare.main([new, "--baseline", base]) == 0
    assert "no deltas" in capsys.readouterr().out


def test_committed_baseline_matches_itself(capsys):
    baseline = os.path.join(REPO_ROOT, "BENCH_BASELINE.json")
    assert compare.main([baseline, "--baseline", baseline]) == 0
    assert "no deltas" in capsys.readouterr().out


def test_drift_is_reported_but_passes_without_threshold(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _payload(1.0))
    new = _write(tmp_path / "new.json", _payload(1.5))
    assert compare.main([new, "--baseline", base]) == 0
    out = capsys.readouterr().out
    assert "demo table" in out
    assert "+50.00%" in out
    assert "alpha" in out and "ms/call" in out
    assert "beta" not in out            # unchanged rows stay quiet


def test_threshold_gate_fails_on_large_drift(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _payload(1.0))
    new = _write(tmp_path / "new.json", _payload(2.0))
    assert compare.main([new, "--baseline", base,
                         "--threshold", "25"]) == 1
    out = capsys.readouterr().out
    assert "exceeds 25%" in out
    assert "1 regression(s)" in out


def test_small_drift_passes_under_threshold(tmp_path):
    base = _write(tmp_path / "base.json", _payload(1.0))
    new = _write(tmp_path / "new.json", _payload(1.1))
    assert compare.main([new, "--baseline", base,
                         "--threshold", "25"]) == 0


def test_missing_and_new_tables_are_flagged(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _payload(1.0))
    other = dict(_payload(1.0))
    other["tables"] = [dict(other["tables"][0], title="renamed table")]
    new = _write(tmp_path / "new.json", other)
    assert compare.main([new, "--baseline", base]) == 0
    out = capsys.readouterr().out
    assert "MISSING table in results: demo table" in out
    assert "NEW table (not in baseline): renamed table" in out


def test_require_all_fails_on_missing_table(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _payload(1.0))
    other = dict(_payload(1.0))
    other["tables"] = [dict(other["tables"][0], title="renamed table")]
    new = _write(tmp_path / "new.json", other)
    assert compare.main([new, "--baseline", base, "--require-all"]) == 1
    assert "MISSING table" in capsys.readouterr().out


def test_require_all_fails_on_missing_row(tmp_path):
    base = _write(tmp_path / "base.json", _payload(1.0))
    other = _payload(1.0)
    other["tables"][0]["rows"] = [["beta", 2.0, 20]]      # alpha dropped
    new = _write(tmp_path / "new.json", other)
    assert compare.main([new, "--baseline", base, "--require-all"]) == 1


def test_committed_perf_baseline_matches_itself(capsys):
    baseline = os.path.join(REPO_ROOT, "BENCH_PERF.json")
    assert compare.main([baseline, "--baseline", baseline,
                         "--threshold", "5", "--require-all"]) == 0
    assert "no deltas" in capsys.readouterr().out


def _gated_payload(ms, packets, gate=("ms/call",)):
    return {"tables": [{
        "title": "demo table",
        "columns": ["workload", "ms/call", "packets"],
        "rows": [["alpha", ms, packets]],
        "notes": "",
        "gate_columns": list(gate),
    }]}


def test_gate_columns_excludes_informational_drift(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _gated_payload(1.0, 10))
    new = _write(tmp_path / "new.json", _gated_payload(1.0, 20))
    # packets doubled, but only ms/call is gated: reported, not failed.
    assert compare.main([new, "--baseline", base,
                         "--threshold", "25"]) == 0
    out = capsys.readouterr().out
    assert "packets" in out
    assert "(informational, not gated)" in out


def test_gate_columns_still_fails_on_gated_drift(tmp_path, capsys):
    base = _write(tmp_path / "base.json", _gated_payload(1.0, 10))
    new = _write(tmp_path / "new.json", _gated_payload(2.0, 10))
    assert compare.main([new, "--baseline", base,
                         "--threshold", "25"]) == 1
    assert "exceeds 25%" in capsys.readouterr().out


def test_tables_without_gate_columns_gate_everything(tmp_path):
    base = _write(tmp_path / "base.json", _payload(1.0))
    new = _write(tmp_path / "new.json", _payload(1.0))
    # Mutate the ungated column of the ungated payload: still a failure.
    payload = _payload(1.0)
    payload["tables"][0]["rows"][0][2] = 20
    new = _write(tmp_path / "new.json", payload)
    assert compare.main([new, "--baseline", base,
                         "--threshold", "25"]) == 1


def test_report_table_gate_columns_round_trip():
    import sys
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.bench.report import Table

    table = Table("t", ["w", "a", "b"], gate_columns=["a"])
    table.add_row("x", 1, 2)
    assert table.to_dict()["gate_columns"] == ["a"]
    assert "gate_columns" not in Table("t", ["w"]).to_dict()
    with pytest.raises(ValueError):
        Table("t", ["w"], gate_columns=["nope"])


def test_percent_delta_edge_cases():
    assert compare.percent_delta(0, 0) is None
    assert compare.percent_delta(0, 1) == float("inf")
    assert compare.percent_delta(2.0, 1.0) == pytest.approx(-50.0)
