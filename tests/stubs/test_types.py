"""Tests for the IDL type system and Courier external representation."""

import pytest
from hypothesis import given, strategies as st

from repro.stubs import MarshalError
from repro.stubs.types import (
    ArrayType,
    BooleanType,
    CardinalType,
    ChoiceType,
    EnumerationType,
    IntegerType,
    LongCardinalType,
    LongIntegerType,
    RecordType,
    SequenceType,
    StringType,
    UnspecifiedType,
)


def roundtrip(type_node, value):
    return type_node.internalize(type_node.externalize(value))


def test_boolean():
    assert roundtrip(BooleanType(), True) is True
    assert roundtrip(BooleanType(), False) is False
    assert BooleanType().externalize(True) == b"\x00\x01"


def test_boolean_rejects_non_bool():
    with pytest.raises(MarshalError):
        BooleanType().externalize(1)


def test_cardinal_bounds():
    assert roundtrip(CardinalType(), 0) == 0
    assert roundtrip(CardinalType(), 65535) == 65535
    with pytest.raises(MarshalError):
        CardinalType().externalize(65536)
    with pytest.raises(MarshalError):
        CardinalType().externalize(-1)


def test_integer_is_signed():
    assert roundtrip(IntegerType(), -32768) == -32768
    assert roundtrip(IntegerType(), 32767) == 32767
    with pytest.raises(MarshalError):
        IntegerType().externalize(32768)


def test_long_variants():
    assert roundtrip(LongCardinalType(), 2 ** 32 - 1) == 2 ** 32 - 1
    assert roundtrip(LongIntegerType(), -(2 ** 31)) == -(2 ** 31)


def test_string_padding_to_word_boundary():
    raw = StringType().externalize("abc")
    assert len(raw) % 2 == 0
    assert roundtrip(StringType(), "abc") == "abc"


def test_string_unicode():
    assert roundtrip(StringType(), "héllo wörld ☃") == "héllo wörld ☃"


def test_enumeration():
    color = EnumerationType({"red": 0, "green": 1, "blue": 5})
    assert roundtrip(color, "green") == "green"
    assert color.externalize("blue") == b"\x00\x05"
    with pytest.raises(MarshalError):
        color.externalize("mauve")
    with pytest.raises(MarshalError):
        color.internalize(b"\x00\x02")


def test_enumeration_duplicate_values_rejected():
    with pytest.raises(ValueError):
        EnumerationType({"a": 0, "b": 0})


def test_array_fixed_length():
    arr = ArrayType(3, CardinalType())
    assert roundtrip(arr, [1, 2, 3]) == [1, 2, 3]
    with pytest.raises(MarshalError):
        arr.externalize([1, 2])


def test_sequence_variable_length():
    seq = SequenceType(StringType())
    assert roundtrip(seq, []) == []
    assert roundtrip(seq, ["a", "bc"]) == ["a", "bc"]


def test_record_field_order_and_validation():
    rec = RecordType([("name", StringType()), ("age", CardinalType())])
    assert roundtrip(rec, {"name": "bob", "age": 30}) == \
        {"name": "bob", "age": 30}
    with pytest.raises(MarshalError):
        rec.externalize({"name": "bob"})
    with pytest.raises(MarshalError):
        rec.externalize({"name": "bob", "age": 30, "extra": 1})


def test_choice():
    choice = ChoiceType([("number", 0, CardinalType()),
                         ("text", 1, StringType())])
    assert roundtrip(choice, ("number", 42)) == ("number", 42)
    assert roundtrip(choice, ("text", "x")) == ("text", "x")
    with pytest.raises(MarshalError):
        choice.externalize(("other", 1))


def test_nested_composite():
    t = SequenceType(RecordType([
        ("tag", EnumerationType({"a": 0, "b": 1})),
        ("values", ArrayType(2, IntegerType())),
    ]))
    value = [{"tag": "a", "values": [1, -2]},
             {"tag": "b", "values": [0, 7]}]
    assert roundtrip(t, value) == value


def test_internalize_rejects_trailing_bytes():
    with pytest.raises(MarshalError):
        CardinalType().internalize(b"\x00\x01\x00")


# -- property-based round trips -----------------------------------------

@given(st.integers(min_value=0, max_value=0xFFFF))
def test_property_cardinal_roundtrip(n):
    assert roundtrip(CardinalType(), n) == n


@given(st.text(max_size=200))
def test_property_string_roundtrip(s):
    assert roundtrip(StringType(), s) == s


@given(st.lists(st.integers(min_value=-0x8000, max_value=0x7FFF),
                max_size=50))
def test_property_sequence_of_integer_roundtrip(values):
    assert roundtrip(SequenceType(IntegerType()), values) == values


@given(st.lists(st.tuples(st.text(max_size=10),
                          st.integers(min_value=0, max_value=0xFFFF)),
                max_size=10))
def test_property_record_like_sequence_roundtrip(pairs):
    t = SequenceType(RecordType([("k", StringType()), ("v", CardinalType())]))
    value = [{"k": k, "v": v} for k, v in pairs]
    assert roundtrip(t, value) == value


@given(st.recursive(
    st.one_of(
        st.booleans().map(lambda b: (BooleanType(), b)),
        st.integers(min_value=0, max_value=0xFFFF).map(
            lambda n: (CardinalType(), n)),
        st.text(max_size=20).map(lambda s: (StringType(), s)),
    ),
    lambda children: st.lists(children, min_size=1, max_size=3).map(
        lambda items: (
            RecordType([("f%d" % i, t) for i, (t, _) in enumerate(items)]),
            {"f%d" % i: v for i, (_, v) in enumerate(items)},
        )),
    max_leaves=8,
))
def test_property_arbitrary_nested_records_roundtrip(type_and_value):
    type_node, value = type_and_value
    assert roundtrip(type_node, value) == value
