"""Tests for explicit replication stubs (§7.4, Figures 7.6-7.11)."""

import pytest

from repro.core import MajorityCollator, UnanimousCollator
from repro.core.collators import CollationError, FunctionCollator
from repro.harness import World
from repro.sim import Sleep
from repro.stubs import (
    ReplicatedClientStub,
    SymbolicClientStub,
    explicit_server_module,
    parse_interface,
    symbolic_server_module,
)
from repro.stubs.explicit import collate

READONLY_FS = """
FileSystem: PROGRAM 4 VERSION 1 =
BEGIN
    Read: PROCEDURE [file: STRING] RETURNS [page: STRING] = 0;
END.
"""

FS_SPEC = parse_interface(READONLY_FS)

CONTROLLER = """
Controller: PROGRAM 9 VERSION 1 =
BEGIN
    SetTemperature: PROCEDURE [temperature: INTEGER]
        RETURNS [accepted: INTEGER] = 0;
END.
"""

CONTROLLER_SPEC = parse_interface(CONTROLLER)


def test_client_explicit_replication_early_exit():
    """Figure 7.6: iterate per-member responses, stop at an acceptable one."""
    world = World(machines=6)
    counter = [0]

    def factory():
        index = counter[0]
        counter[0] += 1

        class Impl:
            def Read(self, ctx, file, _index=index):
                yield Sleep(20.0 * (_index + 1))
                return "page-from-%d" % _index

        from repro.stubs.compiler import compile_interface
        return compile_interface(FS_SPEC, Impl())

    troupe, _ = world.make_troupe("fs", factory, degree=3)
    client_rt = world.make_client()
    stub = ReplicatedClientStub(FS_SPEC, client_rt, troupe)

    def body():
        pages = yield from stub.Read(file="f")
        seen = []
        while True:
            result = yield from pages.next()
            if result is None:
                break
            seen.append(result.value)
            if len(seen) == 1:  # the first acceptable page wins
                pages.cancel()
                break
        return seen

    assert world.run(body()) == ["page-from-0"]


def test_server_explicit_replication_averages_arguments():
    """Figure 7.7: the temperature controller averages the client troupe
    members' (divergent) arguments."""
    world = World(machines=8)
    accepted = []

    class ControllerImpl:
        def SetTemperature(self, ctx, arguments):
            temps = [decoded["temperature"] for decoded in arguments.values()]
            average = sum(temps) // len(temps)
            accepted.append(average)
            return average

    troupe, _ = world.make_troupe(
        "ctrl", explicit_server_module(CONTROLLER_SPEC, ControllerImpl()),
        degree=1)
    client_troupe, client_runtimes = world.make_client_troupe(
        "sensors", degree=3)

    # Each client member sends a *different* reading — deliberately
    # nondeterministic replicas, which explicit replication permits.
    readings = {0: 18, 1: 22, 2: 20}
    results = []

    def make_sensor(index, runtime):
        from repro.stubs.types import RecordType
        proc = CONTROLLER_SPEC.procedures["SetTemperature"]

        def body():
            args = proc.arg_record.externalize(
                {"temperature": readings[index]})
            raw = yield from runtime.call_troupe(troupe, None, 0, args)
            results.append(proc.result_record.internalize(raw)["accepted"])
        return body

    for index, runtime in enumerate(client_runtimes):
        world.spawn(make_sensor(index, runtime)())
    world.sim.run()
    assert accepted == [20]  # (18+22+20)//3
    assert results == [20, 20, 20]


def test_collate_helper_runs_figure_collators():
    """Figures 7.8-7.10 as user code over the result generator."""
    world = World(machines=6)
    counter = [0]

    def factory():
        index = counter[0]
        counter[0] += 1

        class Impl:
            def Read(self, ctx, file, _index=index):
                # One divergent member.
                return "common" if _index != 0 else "odd-one-out"

        from repro.stubs.compiler import compile_interface
        return compile_interface(FS_SPEC, Impl())

    troupe, _ = world.make_troupe("fs", factory, degree=3)
    client_rt = world.make_client()
    stub = ReplicatedClientStub(FS_SPEC, client_rt, troupe)

    def majority_body():
        pages = yield from stub.Read(file="f")
        return (yield from collate(pages, MajorityCollator(), 3))

    assert world.run(majority_body()) == "common"

    def unanimous_body():
        pages = yield from stub.Read(file="f")
        return (yield from collate(pages, UnanimousCollator(), 3))

    with pytest.raises(CollationError):
        world.run(unanimous_body())

    def average_body():
        pages = yield from stub.Read(file="f")
        return (yield from collate(
            pages, FunctionCollator(lambda pairs: sorted(v for _, v in pairs)),
            3))

    assert world.run(average_body()) == ["common", "common", "odd-one-out"]


def test_crashed_member_reported_in_stream():
    world = World(machines=6)

    def factory():
        class Impl:
            def Read(self, ctx, file):
                return "ok"

        from repro.stubs.compiler import compile_interface
        return compile_interface(FS_SPEC, Impl())

    troupe, _ = world.make_troupe("fs", factory, degree=2)
    world.machine(troupe.members[1].process.host).crash()
    client_rt = world.make_client()
    stub = ReplicatedClientStub(FS_SPEC, client_rt, troupe)

    def body():
        pages = yield from stub.Read(file="f")
        statuses = []
        while True:
            result = yield from pages.next()
            if result is None:
                break
            statuses.append(result.status)
        return sorted(statuses)

    assert world.run(body()) == ["crashed", "ok"]


def test_symbolic_stub_roundtrip():
    """§7.1.3: values travel in their printed representation."""
    world = World(machines=4)

    def procedures():
        table = {}

        def store(ctx, key, value):
            table[key] = value
            return ("stored", key)

        def fetch(ctx, key):
            return table.get(key)

        return {"store": store, "fetch": fetch}

    troupe, _ = world.make_troupe(
        "lisp", lambda: symbolic_server_module("lisp", procedures()),
        degree=2)
    client_rt = world.make_client()
    stub = SymbolicClientStub(client_rt, troupe)

    def body():
        ack = yield from stub.call("store", "config",
                                   {"depth": 3, "tags": [1, 2, (3, 4)]})
        value = yield from stub.call("fetch", "config")
        return ack, value

    ack, value = world.run(body())
    assert ack == ("stored", "config")
    assert value == {"depth": 3, "tags": [1, 2, (3, 4)]}


def test_symbolic_unknown_procedure():
    from repro.rpc import RemoteError
    world = World(machines=4)
    troupe, _ = world.make_troupe(
        "lisp", lambda: symbolic_server_module("lisp", {}), degree=1)
    stub = SymbolicClientStub(world.make_client(), troupe)

    def body():
        yield from stub.call("nonexistent")

    with pytest.raises(RemoteError) as info:
        world.run(body())
    assert info.value.kind == "BadProcedure"


def test_vector_print_read_property():
    from repro.stubs.symbolic import vector_print, vector_read
    from hypothesis import given, strategies as st

    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(),
                  st.text(max_size=10)),
        lambda children: st.one_of(
            st.lists(children, max_size=3),
            st.tuples(children, children),
            st.dictionaries(st.text(max_size=5), children, max_size=3)),
        max_leaves=10))
    def check(form):
        assert vector_read(vector_print(form)) == form

    check()
