"""Tests for the IDL parser (the paper's Figure 7.2 grammar)."""

import pytest

from repro.stubs import ParseError, parse_interface
from repro.stubs.types import (
    RecordType,
    SequenceType,
    StringType,
    UnspecifiedType,
)

# Figure 7.2 of the paper, verbatim structure.
NAME_SERVER = """
NameServer: PROGRAM 26 VERSION 1 =
BEGIN
    -- Types.
    Name: TYPE = STRING;
    Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
    Properties: TYPE = SEQUENCE OF Property;
    -- Errors.
    AlreadyExists: ERROR = 0;
    NotFound: ERROR = 1;
    -- Procedures.
    Register: PROCEDURE [name: Name, properties: Properties]
        REPORTS [AlreadyExists] = 0;
    Lookup: PROCEDURE [name: Name]
        RETURNS [properties: Properties]
        REPORTS [NotFound] = 1;
    Delete: PROCEDURE [name: Name]
        REPORTS [NotFound] = 2;
END.
"""


def test_parse_figure_7_2():
    spec = parse_interface(NAME_SERVER)
    assert spec.name == "NameServer"
    assert spec.program_number == 26
    assert spec.version == 1
    assert spec.errors == {"AlreadyExists": 0, "NotFound": 1}
    assert set(spec.procedures) == {"Register", "Lookup", "Delete"}

    lookup = spec.procedures["Lookup"]
    assert lookup.number == 1
    assert [name for name, _ in lookup.args] == ["name"]
    assert isinstance(lookup.args[0][1], StringType)
    assert [name for name, _ in lookup.results] == ["properties"]
    assert isinstance(lookup.results[0][1], SequenceType)
    assert lookup.reports == ["NotFound"]

    properties = spec.types["Properties"]
    assert isinstance(properties, SequenceType)
    assert isinstance(properties.element, RecordType)
    assert isinstance(properties.element.fields[1][1].element,
                      UnspecifiedType)


def test_parse_all_scalar_types():
    spec = parse_interface("""
    Scalars: PROGRAM 1 VERSION 1 =
    BEGIN
        P: PROCEDURE [a: BOOLEAN, b: CARDINAL, c: LONG CARDINAL,
                      d: INTEGER, e: LONG INTEGER, f: STRING,
                      g: UNSPECIFIED] = 0;
    END.
    """)
    assert len(spec.procedures["P"].args) == 7


def test_parse_enumeration_array_choice():
    spec = parse_interface("""
    Shapes: PROGRAM 2 VERSION 3 =
    BEGIN
        Color: TYPE = ENUMERATION {red(0), green(1), blue(2)};
        Point: TYPE = ARRAY 2 OF INTEGER;
        Shape: TYPE = CHOICE OF {circle(0) => CARDINAL,
                                 box(1) => RECORD [w: CARDINAL, h: CARDINAL]};
        Draw: PROCEDURE [color: Color, at: Point, what: Shape] = 0;
    END.
    """)
    draw = spec.procedures["Draw"]
    color_type = draw.args[0][1]
    assert color_type.members == {"red": 0, "green": 1, "blue": 2}
    shape_type = draw.args[2][1]
    assert set(shape_type.by_name) == {"circle", "box"}


def test_procedure_with_no_args_or_results():
    spec = parse_interface("""
    Null: PROGRAM 0 VERSION 1 =
    BEGIN
        Ping: PROCEDURE = 0;
    END.
    """)
    ping = spec.procedures["Ping"]
    assert ping.args == []
    assert ping.results == []


def test_undeclared_error_in_reports_rejected():
    with pytest.raises(ParseError):
        parse_interface("""
        Bad: PROGRAM 1 VERSION 1 =
        BEGIN
            P: PROCEDURE REPORTS [Mystery] = 0;
        END.
        """)


def test_unknown_type_rejected():
    with pytest.raises(ParseError):
        parse_interface("""
        Bad: PROGRAM 1 VERSION 1 =
        BEGIN
            P: PROCEDURE [x: Undeclared] = 0;
        END.
        """)


def test_garbage_rejected():
    with pytest.raises(ParseError):
        parse_interface("not an interface at all @@@")


def test_truncated_interface_rejected():
    with pytest.raises(ParseError):
        parse_interface("X: PROGRAM 1 VERSION 1 = BEGIN")


def test_comments_are_ignored():
    spec = parse_interface("""
    C: PROGRAM 1 VERSION 1 =  -- a trailing comment
    BEGIN
        -- a whole-line comment
        P: PROCEDURE = 0;  -- another
    END.
    """)
    assert "P" in spec.procedures


def test_constant_declarations():
    spec = parse_interface("""
    Consts: PROGRAM 3 VERSION 1 =
    BEGIN
        MaxEntries: CARDINAL = 100;
        Greeting: STRING = "hello";
        Enabled: BOOLEAN = TRUE;
        P: PROCEDURE = 0;
    END.
    """)
    assert spec.constants == {"MaxEntries": 100, "Greeting": "hello",
                              "Enabled": True}


def test_constant_type_mismatch_rejected():
    with pytest.raises(ParseError):
        parse_interface("""
        Bad: PROGRAM 3 VERSION 1 =
        BEGIN
            X: CARDINAL = "not a number";
        END.
        """)


def test_constant_out_of_range_rejected():
    with pytest.raises(ParseError):
        parse_interface("""
        Bad: PROGRAM 3 VERSION 1 =
        BEGIN
            X: CARDINAL = 70000;
        END.
        """)


def test_procedure_by_number():
    spec = parse_interface(NAME_SERVER)
    assert spec.procedure_by_number(1).name == "Lookup"
    assert spec.procedure_by_number(9) is None
