"""Integration tests: generated stubs over real replicated calls."""

import pytest

from repro.core import FirstComeCollator
from repro.harness import World
from repro.stubs import (
    ClientStub,
    CourierError,
    ExplicitBindingStub,
    ServerStub,
    compile_interface,
    generate_source,
    parse_interface,
)

NAME_SERVER = """
NameServer: PROGRAM 26 VERSION 1 =
BEGIN
    Name: TYPE = STRING;
    Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
    Properties: TYPE = SEQUENCE OF Property;
    AlreadyExists: ERROR = 0;
    NotFound: ERROR = 1;
    Register: PROCEDURE [name: Name, properties: Properties]
        REPORTS [AlreadyExists] = 0;
    Lookup: PROCEDURE [name: Name]
        RETURNS [properties: Properties]
        REPORTS [NotFound] = 1;
    Delete: PROCEDURE [name: Name]
        REPORTS [NotFound] = 2;
END.
"""

SPEC = parse_interface(NAME_SERVER)


class NameServerImpl:
    """A per-member implementation of the Figure 7.2 interface."""

    def __init__(self):
        self.table = {}

    def Register(self, ctx, name, properties):
        if name in self.table:
            raise CourierError("AlreadyExists", 0, name)
        self.table[name] = properties

    def Lookup(self, ctx, name):
        if name not in self.table:
            raise CourierError("NotFound", 1, name)
        return self.table[name]

    def Delete(self, ctx, name):
        if name not in self.table:
            raise CourierError("NotFound", 1, name)
        del self.table[name]


def make_name_server_world(degree=3):
    world = World(machines=6)
    impls = []

    def factory():
        impl = NameServerImpl()
        impls.append(impl)
        return compile_interface(SPEC, impl)

    troupe, runtimes = world.make_troupe("names", factory, degree=degree)
    client_rt = world.make_client()
    stub = ClientStub(SPEC, client_rt, troupe)
    return world, troupe, impls, stub


def test_register_lookup_roundtrip():
    world, troupe, impls, stub = make_name_server_world()
    props = [{"name": "address", "value": [1, 2, 3]}]

    def body():
        yield from stub.Register(name="printer", properties=props)
        return (yield from stub.Lookup(name="printer"))

    assert world.run(body()) == props
    # The registration reached every replica.
    assert all(impl.table == {"printer": props} for impl in impls)


def test_declared_error_is_typed():
    world, troupe, impls, stub = make_name_server_world()

    def body():
        yield from stub.Lookup(name="missing")

    with pytest.raises(CourierError) as info:
        world.run(body())
    assert info.value.name == "NotFound"
    assert info.value.code == 1


def test_error_survives_replication():
    """All replicas raise the same declared error; unanimity holds."""
    world, troupe, impls, stub = make_name_server_world(degree=3)

    def body():
        yield from stub.Register(name="x", properties=[])
        yield from stub.Register(name="x", properties=[])

    with pytest.raises(CourierError) as info:
        world.run(body())
    assert info.value.name == "AlreadyExists"


def test_procedure_with_no_results_returns_none():
    world, troupe, impls, stub = make_name_server_world(degree=1)

    def body():
        result = yield from stub.Register(name="a", properties=[])
        return result

    assert world.run(body()) is None


def test_marshal_error_on_bad_arguments():
    world, troupe, impls, stub = make_name_server_world(degree=1)

    def body():
        yield from stub.Register(name=42, properties=[])  # not a STRING

    from repro.stubs.types import MarshalError
    with pytest.raises(MarshalError):
        world.run(body())


def test_implementation_missing_procedure_rejected():
    class Incomplete:
        def Lookup(self, ctx, name):
            return []

    with pytest.raises(TypeError):
        ServerStub(SPEC, Incomplete())


def test_client_stub_with_collator():
    world, troupe, impls, stub = make_name_server_world()
    fast_stub = ClientStub(SPEC, world.make_client(), troupe,
                           collator=FirstComeCollator())

    def body():
        yield from stub.Register(name="p", properties=[])
        return (yield from fast_stub.Lookup(name="p"))

    assert world.run(body()) == []


FILE_SYSTEM = """
FileSystem: PROGRAM 4 VERSION 1 =
BEGIN
    NoSuchFile: ERROR = 0;
    Read: PROCEDURE [file: STRING] RETURNS [page: STRING]
        REPORTS [NoSuchFile] = 0;
    Write: PROCEDURE [file: STRING, page: STRING] = 1;
END.
"""

FS_SPEC = parse_interface(FILE_SYSTEM)


class FsImpl:
    def __init__(self, contents=None):
        self.files = dict(contents or {})

    def Read(self, ctx, file):
        if file not in self.files:
            raise CourierError("NoSuchFile", 0, file)
        return self.files[file]

    def Write(self, ctx, file, page):
        self.files[file] = page


def test_explicit_binding_third_party_transfer():
    """Figure 7.5: a client copies a file between two instances of the
    same interface using explicit binding handles."""
    world = World(machines=6)
    src_impl = FsImpl({"report": "the contents"})
    dst_impl = FsImpl()
    src_troupe, _ = world.make_troupe(
        "fs-src", compile_interface(FS_SPEC, src_impl), degree=1)
    dst_troupe, _ = world.make_troupe(
        "fs-dst", compile_interface(FS_SPEC, dst_impl), degree=1)
    client_rt = world.make_client()
    stub = ExplicitBindingStub(FS_SPEC, client_rt)

    def body():
        page = yield from stub.Read(src_troupe, file="report")
        yield from stub.Write(dst_troupe, file="report", page=page)

    world.run(body())
    assert dst_impl.files == {"report": "the contents"}


def test_generated_source_executes():
    """The textual stub artifact round-trips through exec and works."""
    source = generate_source(FS_SPEC)
    namespace = {}
    exec(compile(source, "<generated>", "exec"), namespace)
    assert namespace["SPEC"].name == "FileSystem"

    world = World(machines=4)
    impl = FsImpl({"f": "data"})
    troupe, _ = world.make_troupe(
        "fs", namespace["make_server_module"](impl), degree=2)
    stub = namespace["make_client_stub"](world.make_client(), troupe)

    def body():
        return (yield from stub.Read(file="f"))

    assert world.run(body()) == "data"
