"""Shrinker soundness: the shrunken schedule still violates, and for a
planted bug it is minimal (single-digit actions, tight windows)."""

import pytest

from repro import explore
from repro.explore.schedule import Crash, Delay, FaultSchedule, Loss
from repro.explore.shrink import shrink_actions
from repro.obs.monitor import DEFAULT_MONITORS, InvariantMonitor


def test_shrink_to_single_necessary_action():
    # Synthetic oracle: the failure needs exactly the crash of host1.
    actions = [
        Loss(at=5.0, duration=50.0, probability=0.5),
        Crash(at=10.0, machine="host0", duration=20.0),
        Crash(at=20.0, machine="host1", duration=30.0),
        Delay(at=30.0, duration=40.0, extra=5.0),
        Crash(at=40.0, machine="host2", duration=None),
    ]

    def reproduces(candidate):
        return any(isinstance(a, Crash) and a.machine == "host1"
                   for a in candidate)

    shrunk, attempts = shrink_actions(actions, reproduces)
    assert len(shrunk) == 1
    assert isinstance(shrunk[0], Crash) and shrunk[0].machine == "host1"
    assert attempts > 0


def test_shrink_preserves_conjunction():
    # The failure needs BOTH the loss window and the host0 crash.
    actions = [
        Loss(at=5.0, duration=50.0, probability=0.5),
        Crash(at=10.0, machine="host0", duration=20.0),
        Crash(at=20.0, machine="host1", duration=30.0),
        Delay(at=30.0, duration=40.0, extra=5.0),
    ]

    def reproduces(candidate):
        has_loss = any(isinstance(a, Loss) for a in candidate)
        has_crash = any(isinstance(a, Crash) and a.machine == "host0"
                        for a in candidate)
        return has_loss and has_crash

    shrunk, _ = shrink_actions(actions, reproduces)
    assert len(shrunk) == 2
    assert {type(a) for a in shrunk} == {Loss, Crash}


def test_shrink_narrows_windows():
    actions = [Crash(at=10.0, machine="host0", duration=640.0)]

    def reproduces(candidate):
        # Still fails as long as host0 is down at t=200.
        return any(isinstance(a, Crash) and a.machine == "host0"
                   and a.at <= 200.0
                   and (a.duration is None or a.at + a.duration >= 200.0)
                   for a in candidate)

    shrunk, _ = shrink_actions(actions, reproduces)
    assert len(shrunk) == 1
    assert shrunk[0].duration < 640.0    # narrowed, not just kept


def test_shrink_respects_attempt_budget():
    actions = [Crash(at=float(i), machine="host0", duration=10.0)
               for i in range(8)]
    calls = []

    def reproduces(candidate):
        calls.append(1)
        return True

    shrink_actions(actions, reproduces, max_attempts=5)
    assert len(calls) <= 5


def test_shrink_empty_when_failure_is_schedule_independent():
    actions = [Crash(at=1.0, machine="host0", duration=5.0)]
    shrunk, _ = shrink_actions(actions, lambda candidate: True)
    assert shrunk == []


class PlantedNoCrashDeclarations(InvariantMonitor):
    """A deliberately false invariant — 'no peer is ever declared
    crashed' — planted to prove the fuzz-and-shrink loop end to end:
    any schedule that silences a server long enough for a client-side
    §4.2.3 crash declaration trips it."""

    kinds = ("pm.crash",)
    invariant = "planted-no-crash-decl"
    section = "test"

    def observe(self, event) -> None:
        self.report("peer %s declared crashed" % (event.peer,),
                    subject=str(event.peer), evidence=(event,))


PLANTED = list(DEFAULT_MONITORS) + [PlantedNoCrashDeclarations]


def find_planted_failure():
    for seed in range(50):
        result = explore.run("echo", seed, monitors=PLANTED)
        if not result.ok and "planted-no-crash-decl" in result.invariants():
            return result
    pytest.fail("no seed in 0..49 tripped the planted bug")


def test_planted_bug_caught_and_shrunk_small():
    result = find_planted_failure()
    original = len(result.schedule.actions)
    shrunk, attempts = explore.shrink_failure(result, max_attempts=150)
    assert len(shrunk.actions) <= 3
    assert len(shrunk.actions) <= original
    assert attempts <= 150
    # Soundness: the shrunken schedule was observed to still violate.
    rerun = explore.run("echo", result.seed, schedule=shrunk,
                        monitors=PLANTED)
    assert not rerun.ok
    assert "planted-no-crash-decl" in rerun.invariants()


def test_shrunken_schedule_replays_from_file(tmp_path):
    result = find_planted_failure()
    shrunk, _ = explore.shrink_failure(result, max_attempts=150)
    path = tmp_path / "planted.schedule.json"
    shrunk.save(path)
    loaded = FaultSchedule.load(path)
    rerun = explore.run(loaded.scenario, loaded.seed, schedule=loaded,
                        monitors=PLANTED)
    assert not rerun.ok


def test_shrink_refuses_passing_result():
    result = explore.run("echo", 0)
    assert result.ok
    with pytest.raises(ValueError):
        explore.shrink_failure(result)
