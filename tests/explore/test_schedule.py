"""Schedule determinism and serialization: the explorer's foundation.

Same seed -> identical action list, identical run digest; every action
survives a JSON round-trip losslessly; the repro-script file format is
stable.
"""

import dataclasses
import json

import pytest

from repro import explore
from repro.explore.schedule import (
    ADVERSARIAL_PROFILE,
    CRASH_ONLY_PROFILE,
    Crash,
    Delay,
    Duplicate,
    FaultSchedule,
    Loss,
    Partition,
    Profile,
    Reorder,
    action_from_dict,
    generate,
)

MACHINES = ["host0", "host1", "host2"]


def test_same_seed_same_actions():
    for seed in range(30):
        a = generate(seed, MACHINES, 2000.0, scenario="echo")
        b = generate(seed, MACHINES, 2000.0, scenario="echo")
        assert a == b
        assert a.digest() == b.digest()


def test_different_seeds_differ():
    digests = {generate(seed, MACHINES, 2000.0).digest()
               for seed in range(30)}
    assert len(digests) > 25   # collisions would mean a broken derivation


def test_actions_sorted_and_within_horizon():
    for seed in range(20):
        schedule = generate(seed, MACHINES, 2000.0)
        times = [a.at for a in schedule.actions]
        assert times == sorted(times)
        assert all(0.0 <= t <= 2000.0 for t in times)
        assert schedule.actions   # profile minimum guarantees >= 1


def test_profile_shapes_generation():
    crash_only = generate(5, MACHINES, 2000.0, CRASH_ONLY_PROFILE)
    assert all(isinstance(a, Crash) for a in crash_only.actions)
    adversarial = generate(5, MACHINES, 2000.0, ADVERSARIAL_PROFILE)
    assert len(adversarial.actions) >= ADVERSARIAL_PROFILE.min_actions
    with pytest.raises(ValueError):
        Profile(crash_weight=0, partition_weight=0, loss_weight=0,
                duplicate_weight=0, delay_weight=0,
                reorder_weight=0).weighted_kinds()


def test_generate_requires_machines():
    with pytest.raises(ValueError):
        generate(0, [], 2000.0)


ALL_ACTIONS = [
    Crash(at=10.0, machine="host0", duration=50.0),
    Crash(at=20.0, machine="host1", duration=None),
    Partition(at=30.0, duration=100.0,
              groups=(("host0",), ("host1", "host2"))),
    Loss(at=40.0, duration=60.0, probability=0.5, src="host0", dst=None),
    Duplicate(at=50.0, duration=60.0, probability=0.25),
    Delay(at=60.0, duration=60.0, extra=12.5, src=None, dst="host2"),
    Reorder(at=70.0, duration=60.0, probability=0.4, hold=8.0),
]


def test_every_action_round_trips_through_json():
    for action in ALL_ACTIONS:
        as_dict = json.loads(json.dumps(action.to_dict()))
        assert action_from_dict(as_dict) == action


def test_schedule_round_trips_through_file(tmp_path):
    schedule = FaultSchedule(scenario="echo", seed=42, horizon=2000.0,
                             actions=tuple(ALL_ACTIONS))
    path = tmp_path / "repro.schedule.json"
    schedule.save(path)
    loaded = FaultSchedule.load(path)
    assert loaded == schedule
    assert loaded.digest() == schedule.digest()


def test_generated_schedule_round_trips(tmp_path):
    for seed in range(10):
        schedule = generate(seed, MACHINES, 2000.0, scenario="echo")
        path = tmp_path / ("seed%d.json" % seed)
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule


def test_unknown_action_kind_rejected():
    with pytest.raises(ValueError):
        action_from_dict({"kind": "meteor-strike", "at": 1.0})


def test_unknown_format_rejected():
    with pytest.raises(ValueError):
        FaultSchedule.from_dict({"format": "repro.fuzz/999", "scenario": "x",
                                 "seed": 0, "horizon": 1.0, "actions": []})


def test_machines_lists_every_referenced_host():
    schedule = FaultSchedule(scenario="x", seed=0, horizon=100.0,
                             actions=tuple(ALL_ACTIONS))
    assert schedule.machines() == ["host0", "host1", "host2"]


def test_with_actions_replaces_only_actions():
    schedule = generate(3, MACHINES, 2000.0, scenario="echo")
    smaller = schedule.with_actions(schedule.actions[:1])
    assert smaller.seed == schedule.seed
    assert smaller.scenario == schedule.scenario
    assert len(smaller.actions) == 1


def test_run_digest_deterministic_same_process():
    # The full-run digest (workload outcome + oracle verdicts + network
    # statistics) must not depend on process-global state like troupe-ID
    # counters: two runs back to back must agree.
    for seed in (0, 7, 13):
        first = explore.run("echo", seed)
        second = explore.run("echo", seed)
        assert first.digest() == second.digest()
        assert first.outcome == second.outcome


def test_run_digest_covers_schedule():
    base = explore.run("echo", 7)
    trimmed = explore.run("echo", 7,
                          schedule=base.schedule.with_actions(()))
    assert trimmed.digest() != base.digest()


def test_explicit_schedule_replay_matches_generated():
    # Replaying the very schedule a seed generated reproduces the run.
    base = explore.run("echo", 11)
    replayed = explore.run("echo", 11, schedule=base.schedule)
    assert replayed.digest() == base.digest()


def test_describe_mentions_every_action():
    schedule = FaultSchedule(scenario="x", seed=0, horizon=100.0,
                             actions=tuple(ALL_ACTIONS))
    text = schedule.describe()
    for kind in ("crash", "partition", "loss", "duplicate", "delay",
                 "reorder"):
        assert kind in text


def test_frozen_actions_are_hashable():
    assert len({a for a in ALL_ACTIONS}) == len(ALL_ACTIONS)
    with pytest.raises(dataclasses.FrozenInstanceError):
        ALL_ACTIONS[0].at = 99.0
