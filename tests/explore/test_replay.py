"""Replay-from-file round trips and the pytest plugin surface: a saved
repro script reproduces the original run bit-for-bit, and the ``fuzz``
fixture writes artifacts + fails with a replay command line."""

import json

import pytest

from repro import explore
from repro.explore.pytest_plugin import Fuzzer
from repro.obs.monitor import InvariantMonitor


def test_replay_file_reproduces_run_digest(tmp_path):
    base = explore.run("echo", 17)
    path = tmp_path / "echo-seed17.schedule.json"
    base.schedule.save(path)
    replayed = explore.replay_file(path)
    assert replayed.scenario == "echo"
    assert replayed.seed == 17
    assert replayed.digest() == base.digest()


def test_replay_file_honors_oracle_selection(tmp_path):
    base = explore.run("echo", 3)
    path = tmp_path / "s.json"
    base.schedule.save(path)
    replayed = explore.replay_file(path, oracles=("exactly-once",))
    assert replayed.ok


def test_schedules_decorator_parametrizes():
    @explore.schedules(n=4, base=10)
    def probe(fault_seed):
        pass

    marks = [m for m in probe.pytestmark if m.name == "parametrize"]
    assert len(marks) == 1
    assert marks[0].args == ("fault_seed", [10, 11, 12, 13])


class AlwaysAngry(InvariantMonitor):
    """Planted oracle that dislikes packet sends — guarantees a failing
    result for plugin tests without depending on a specific seed."""

    kinds = ("net.send",)
    invariant = "planted-no-packets"
    section = "test"

    def observe(self, event) -> None:
        self.report("a packet was sent", subject="net", evidence=(event,))


def test_fuzzer_check_passes_clean_seed(tmp_path):
    fuzzer = Fuzzer(str(tmp_path / "artifacts"))
    result = fuzzer.check("echo", 0)
    assert result.ok
    assert not (tmp_path / "artifacts").exists()


def test_fuzzer_check_fails_and_writes_artifacts(tmp_path):
    artifacts = tmp_path / "artifacts"
    fuzzer = Fuzzer(str(artifacts))
    with pytest.raises(pytest.fail.Exception) as excinfo:
        fuzzer.check("echo", 1, shrink=False, monitors=[AlwaysAngry])
    message = str(excinfo.value)
    assert "planted-no-packets" in message
    assert "repro fuzz --replay" in message

    schedule_path = artifacts / "echo-seed1.schedule.json"
    postmortem_path = artifacts / "echo-seed1.postmortem.json"
    assert schedule_path.exists()
    assert postmortem_path.exists()

    # The written repro script replays to the same failure.
    replayed = explore.replay_file(schedule_path, monitors=[AlwaysAngry])
    assert "planted-no-packets" in replayed.invariants()

    # The post-mortem is self-describing: it embeds scenario, seed, and
    # the offending schedule.
    with open(postmortem_path) as fh:
        report = json.load(fh)
    assert report["context"]["scenario"] == "echo"
    assert report["context"]["seed"] == 1
    assert report["context"]["schedule"]["actions"]


def test_fuzzer_check_shrinks_before_writing(tmp_path):
    artifacts = tmp_path / "artifacts"
    fuzzer = Fuzzer(str(artifacts))
    with pytest.raises(pytest.fail.Exception) as excinfo:
        fuzzer.check("echo", 1, shrink=True, shrink_attempts=60,
                     monitors=[AlwaysAngry])
    # Packets flow even with no faults at all, so the planted oracle
    # shrinks to the empty schedule.
    saved = explore.FaultSchedule.load(
        artifacts / "echo-seed1.schedule.json")
    assert len(saved.actions) == 0
    assert "0 action(s)" in str(excinfo.value)


def test_fuzz_fixture_is_wired(fuzz):
    assert isinstance(fuzz, Fuzzer)
    assert fuzz.artifacts_dir
