"""ScheduleDriver: the schedule's actions land in the world at the
declared virtual times, through the FailureModel bookkeeping and the
Network fault hooks."""

import pytest

from repro.explore.driver import ScheduleDriver
from repro.explore.schedule import (
    Crash,
    Delay,
    Duplicate,
    FaultSchedule,
    Loss,
    Partition,
    Reorder,
)
from repro.harness import World
from repro.sim.kernel import Sleep


def make_schedule(actions, scenario="test", seed=0, horizon=1000.0):
    return FaultSchedule(scenario=scenario, seed=seed, horizon=horizon,
                         actions=tuple(actions))


def drive(world, schedule, until):
    driver = world.install_schedule(schedule)
    assert isinstance(driver, ScheduleDriver)
    driver.start()
    world.sim.run(until=until)
    return driver


def test_crash_and_repair_at_scheduled_times():
    world = World(machines=2, seed=0)
    machine = world.machines[0]
    observed = []

    def probe():
        while True:
            observed.append((world.sim.now, machine.up))
            yield Sleep(10.0)

    world.spawn(probe(), name="probe")
    driver = drive(world, make_schedule(
        [Crash(at=25.0, machine=machine.name, duration=50.0)]), until=200.0)
    ups = dict(observed)
    assert ups[20.0] is True
    assert ups[30.0] is False
    assert ups[70.0] is False
    assert ups[80.0] is True
    assert driver.total_failures == 1
    assert driver.total_repairs == 1


def test_permanent_crash_never_repairs():
    world = World(machines=2, seed=0)
    machine = world.machines[0]
    driver = drive(world, make_schedule(
        [Crash(at=25.0, machine=machine.name, duration=None)]), until=500.0)
    assert not machine.up
    assert driver.total_failures == 1
    assert driver.total_repairs == 0


def test_partition_window_opens_and_heals():
    world = World(machines=3, seed=0)
    names = [m.name for m in world.machines]
    seen = []

    def probe():
        while True:
            seen.append((world.sim.now,
                         world.net.reachable(names[0], names[1])))
            yield Sleep(10.0)

    world.spawn(probe(), name="probe")
    drive(world, make_schedule(
        [Partition(at=25.0, duration=50.0,
                   groups=((names[0],), (names[1], names[2])))]),
        until=200.0)
    reach = dict(seen)
    assert reach[20.0] is True
    assert reach[30.0] is False
    assert reach[70.0] is False
    assert reach[80.0] is True
    assert not world.net.partitioned


def test_nested_partitions_restore_outer_window():
    world = World(machines=3, seed=0)
    a, b, c = [m.name for m in world.machines]
    outer = Partition(at=10.0, duration=100.0, groups=((a,), (b, c)))
    inner = Partition(at=40.0, duration=20.0, groups=((a, b), (c,)))
    world_probe = []

    def probe():
        while True:
            world_probe.append((world.sim.now,
                                world.net.reachable(a, b),
                                world.net.reachable(b, c)))
            yield Sleep(5.0)

    world.spawn(probe(), name="probe")
    drive(world, make_schedule([outer, inner]), until=200.0)
    at = {t: (ab, bc) for t, ab, bc in world_probe}
    assert at[30.0] == (False, True)     # outer only
    assert at[50.0] == (True, False)     # inner shadows outer
    assert at[70.0] == (False, True)     # outer restored
    assert at[120.0] == (True, True)     # healed


def test_loss_window_drops_then_releases():
    world = World(machines=2, seed=3)
    src, dst = [m.name for m in world.machines]
    drive(world, make_schedule(
        [Loss(at=0.0, duration=100.0, probability=1.0)]), until=50.0)
    from repro.net.network import Datagram
    from repro.net.addresses import ProcessAddress

    world.net.hosts[dst].ports[9] = lambda datagram: None
    before = world.net.packets_dropped
    world.net.send(Datagram(ProcessAddress(src, 8),
                            ProcessAddress(dst, 9), b"x"))
    assert world.net.packets_dropped == before + 1
    # After the window the fault is gone.
    world.sim.run(until=150.0)
    assert world.net._faults == []


def test_link_faults_scope_to_matching_link():
    world = World(machines=3, seed=3)
    a, b, c = [m.name for m in world.machines]
    drive(world, make_schedule(
        [Loss(at=0.0, duration=1000.0, probability=1.0, src=a, dst=b)]),
        until=10.0)
    from repro.net.network import Datagram
    from repro.net.addresses import ProcessAddress

    delivered = []
    world.net.hosts[b].ports[9] = delivered.append
    world.net.hosts[c].ports[9] = delivered.append
    world.net.send(Datagram(ProcessAddress(a, 8), ProcessAddress(b, 9),
                            b"dropped"))
    world.net.send(Datagram(ProcessAddress(a, 8), ProcessAddress(c, 9),
                            b"through"))
    world.sim.run(until=50.0)
    assert [d.payload for d in delivered] == [b"through"]


def test_delay_duplicate_reorder_windows_apply():
    world = World(machines=2, seed=5)
    src, dst = [m.name for m in world.machines]
    driver = drive(world, make_schedule([
        Delay(at=0.0, duration=500.0, extra=40.0),
        Duplicate(at=0.0, duration=500.0, probability=1.0),
        Reorder(at=0.0, duration=500.0, probability=1.0, hold=10.0),
    ]), until=10.0)
    from repro.net.network import Datagram
    from repro.net.addresses import ProcessAddress

    arrivals = []
    world.net.hosts[dst].ports[9] = \
        lambda d: arrivals.append(world.sim.now)
    world.net.send(Datagram(ProcessAddress(src, 8),
                            ProcessAddress(dst, 9), b"x"))
    world.sim.run(until=200.0)
    assert len(arrivals) == 2            # duplicated
    assert min(arrivals) >= 50.0         # 40 ms extra delay applied
    world.sim.run(until=600.0)           # past the window ends
    assert len(driver.applied) == 6      # 3 installs + 3 removals


def test_stop_rolls_back_open_windows():
    world = World(machines=2, seed=0)
    a, b = [m.name for m in world.machines]
    driver = drive(world, make_schedule([
        Partition(at=10.0, duration=10000.0, groups=((a,), (b,))),
        Loss(at=10.0, duration=10000.0, probability=1.0),
    ]), until=50.0)
    assert world.net.partitioned
    assert world.net._faults
    driver.stop()
    assert not world.net.partitioned
    assert world.net._faults == []
    assert driver._processes == []


def test_unknown_machine_rejected():
    world = World(machines=2, seed=0)
    with pytest.raises(ValueError):
        world.install_schedule(make_schedule(
            [Crash(at=1.0, machine="no-such-host", duration=1.0)]))


def test_applied_log_is_deterministic():
    def run_once():
        world = World(machines=3, seed=1)
        schedule = make_schedule([
            Crash(at=5.0, machine=world.machines[0].name, duration=20.0),
            Loss(at=10.0, duration=30.0, probability=0.5),
        ])
        driver = drive(world, schedule, until=100.0)
        return driver.applied

    assert run_once() == run_once()
