"""End-to-end tests for the history-checked explorer scenarios: the
stock workloads stay consistent under faults, the planted divergence
bug is caught by the offline checker, and histories are deterministic."""

import json

import pytest

from repro import explore
from repro.obs.history import OperationHistory, canonical_dumps


def test_register_scenario_sweeps_clean_with_history():
    for seed in range(3):
        result = explore.run("register", seed)
        assert result.ok, result.summary()
        assert result.history is not None
        assert result.history["format"] == "repro.history/1"
        assert result.history["semantics"] == "register"
        assert result.stats["history_ops"] == len(result.history["ops"])
        assert result.stats["history_digest"]
        # Every operation reached a verdict and was wire-correlated
        # unless the run cut it off.
        for op in result.history["ops"]:
            assert op["status"] in ("ok", "fail", "info")


@pytest.mark.parametrize("scenario,semantics", [
    ("bank-transfer", "bank"),
    ("list-append", "list-append"),
])
def test_transactional_scenarios_sweep_clean(scenario, semantics):
    for seed in range(2):
        result = explore.run(scenario, seed)
        assert result.ok, result.summary()
        assert result.history["semantics"] == semantics
        assert result.history["ops"]


def test_register_divergence_bug_is_caught_and_shrinks():
    """The planted bug: one replica stops applying writes and reads go
    through a first-come collator, so divergence becomes client-visible.
    The online §4/§5 monitors are disabled (monitors=[]) — only the
    offline linearizability check can catch it."""
    failing = None
    for seed in range(4):
        result = explore.run("register-divergence", seed, monitors=[])
        if not result.ok:
            failing = result
            break
    assert failing is not None, \
        "no seed in range(4) tripped the planted divergence bug"
    assert failing.invariants() == ["linearizable-register"]
    assert failing.postmortem is not None
    lincheck = failing.postmortem["lincheck"]
    assert lincheck["ok"] is False
    assert lincheck["violation"], "violating sub-history missing"
    assert "no linearization" in lincheck["reason"]

    small, attempts = explore.shrink_failure(failing, max_attempts=60)
    assert attempts >= 1
    assert len(small.actions) <= len(failing.schedule.actions)


def test_history_is_byte_identical_across_runs():
    first = explore.run("register", 2)
    second = explore.run("register", 2)
    assert first.history == second.history
    assert canonical_dumps(first.history) == canonical_dumps(second.history)
    assert first.stats["history_digest"] == second.stats["history_digest"]
    assert first.digest() == second.digest()
    # The canonical dump round-trips through the loader byte-identically.
    loaded = OperationHistory.from_dict(
        json.loads(canonical_dumps(first.history)))
    assert loaded.dumps() == canonical_dumps(first.history)


def test_scenarios_without_a_checker_have_no_history():
    result = explore.run("echo", 0)
    assert result.history is None
    assert "history_ops" not in result.stats
