"""Regression corpus: the committed seed file sweeps clean.

These are the PR-gate oracles of §4.3 (exactly-once) and §4.2.3
(crash-silence) over the echo scenario: 200 schedules of crashes,
partitions, and link faults, none of which may produce a duplicate
execution or a false crash declaration.  A failure here is a protocol
regression; the failing seed prints a replayable repro command.
"""

import json
import os

import pytest

from repro import explore

CORPUS_PATH = os.path.join(os.path.dirname(__file__), "corpus",
                           "echo.seeds.json")
ORACLES = ("exactly-once", "crash-silence")


def load_corpus():
    with open(CORPUS_PATH) as fh:
        corpus = json.load(fh)
    assert corpus["format"] == "repro.fuzz.corpus/1"
    assert corpus["scenario"] == "echo"
    return corpus["seeds"]


CORPUS_SEEDS = load_corpus()


def test_corpus_is_dense_and_sized():
    assert len(CORPUS_SEEDS) == 200
    assert CORPUS_SEEDS == sorted(set(CORPUS_SEEDS))


@pytest.mark.parametrize("chunk", range(8))
def test_exactly_once_and_crash_silence_sweep(chunk, fuzz):
    """200 seeds split into 8 chunks so a regression pinpoints its
    block; each failing seed still reports its own repro command."""
    for seed in CORPUS_SEEDS[chunk * 25:(chunk + 1) * 25]:
        fuzz.check("echo", seed, oracles=ORACLES, shrink_attempts=80)
