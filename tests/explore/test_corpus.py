"""Regression corpora: the committed seed files sweep clean.

The echo corpus is the PR-gate for the §4.3 (exactly-once) and §4.2.3
(crash-silence) oracles: 200 schedules of crashes, partitions, and link
faults, none of which may produce a duplicate execution or a false
crash declaration.

The elastic-adversarial corpus is the reconfiguration gate: 50 curated
schedules whose armed faults (crash-during-transfer,
partition-during-join) all land inside live §6.4.1 membership windows
while the autoscaler keeps reshaping the troupe; every seed must sweep
clean under all six invariant monitors *plus* the offline
register-history oracle, and every seed fires at least one
mid-transfer crash (the curation invariant — a seed that stops firing
means the event alignment broke).

A failure in either corpus is a protocol regression; the failing seed
prints a replayable repro command.
"""

import json
import os

import pytest

from repro import explore

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_PATH = os.path.join(CORPUS_DIR, "echo.seeds.json")
ELASTIC_CORPUS_PATH = os.path.join(CORPUS_DIR,
                                   "elastic-adversarial.seeds.json")
ORACLES = ("exactly-once", "crash-silence")


def load_corpus(path, scenario):
    with open(path) as fh:
        corpus = json.load(fh)
    assert corpus["format"] == "repro.fuzz.corpus/1"
    assert corpus["scenario"] == scenario
    return corpus["seeds"]


CORPUS_SEEDS = load_corpus(CORPUS_PATH, "echo")
ELASTIC_SEEDS = load_corpus(ELASTIC_CORPUS_PATH, "elastic-adversarial")


def test_corpus_is_dense_and_sized():
    assert len(CORPUS_SEEDS) == 200
    assert CORPUS_SEEDS == sorted(set(CORPUS_SEEDS))


@pytest.mark.parametrize("chunk", range(8))
def test_exactly_once_and_crash_silence_sweep(chunk, fuzz):
    """200 seeds split into 8 chunks so a regression pinpoints its
    block; each failing seed still reports its own repro command."""
    for seed in CORPUS_SEEDS[chunk * 25:(chunk + 1) * 25]:
        fuzz.check("echo", seed, oracles=ORACLES, shrink_attempts=80)


def test_elastic_corpus_is_sized_and_sorted():
    assert len(ELASTIC_SEEDS) == 50
    assert ELASTIC_SEEDS == sorted(set(ELASTIC_SEEDS))


@pytest.mark.parametrize("chunk", range(5))
def test_elastic_adversarial_sweep_fires_in_every_window(chunk, fuzz):
    """50 curated seeds in 5 chunks.  Each seed runs the full oracle
    suite (all six monitors + the register HistoryOracle, the scenario
    default) and must both pass clean and still fire at least one
    crash-during-transfer inside a membership window — losing the
    firing silently would turn the corpus into an unarmed sweep."""
    for seed in ELASTIC_SEEDS[chunk * 10:(chunk + 1) * 10]:
        result = fuzz.check("elastic-adversarial", seed, shrink_attempts=60)
        fired = [d for d in result.stats["faults_applied"]
                 if d.startswith("fired crash-during-transfer")]
        assert fired, (
            "seed %d no longer fires a crash-during-transfer inside the "
            "§6.4.1 transfer window; the event alignment regressed" % seed)
