"""End-to-end determinism: identical seeds give identical executions.

Reproducibility is the substrate for every measured claim in
EXPERIMENTS.md, so it gets its own regression test: a full replicated
workload (binding, calls, a crash, reconfiguratory traffic) replayed
twice must produce byte-identical packet traces and timings.
"""

from repro.core import ExportedModule
from repro.harness import World
from repro.net.network import NetworkConfig
from repro.tools import trace_network


def run_workload(seed):
    world = World(machines=6, seed=seed,
                  net_config=NetworkConfig(loss_probability=0.1,
                                           duplicate_probability=0.05,
                                           jitter=0.2))

    def factory():
        state = {"n": 0}

        def bump(ctx, args):
            state["n"] += 1
            return b"%d" % state["n"]
        return ExportedModule("bump", {0: bump})

    troupe, runtimes = world.make_troupe("bump", factory, degree=3)
    client = world.make_client()

    def body():
        replies = []
        for i in range(6):
            replies.append((yield from client.call_troupe(
                troupe, 0, 0, b"%d" % i)))
            if i == 2:
                world.machine(troupe.members[2].process.host).crash()
        return replies

    with trace_network(world.net) as trace:
        replies = world.run(body())
    packets = [(p.time, p.src_host, p.dst_host, p.summary)
               for p in trace.packets]
    return replies, packets, world.sim.now


def test_same_seed_same_everything():
    run1 = run_workload(seed=424242)
    run2 = run_workload(seed=424242)
    assert run1[0] == run2[0]          # same replies
    assert run1[1] == run2[1]          # byte-identical packet trace
    assert run1[2] == run2[2]          # same final clock


def test_different_seed_different_trace():
    """The seed genuinely drives the stochastic components."""
    run1 = run_workload(seed=1)
    run2 = run_workload(seed=2)
    assert run1[0] == run2[0]          # semantics are seed-independent...
    assert run1[1] != run2[1]          # ...but the wire schedule is not
