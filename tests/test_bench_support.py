"""Tests for the benchmark support layer (workloads and reporting)."""

import pytest

from repro.bench import (
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    Table,
    register_table,
    registered_tables,
    run_circus_echo,
    run_tcp_echo,
    run_udp_echo,
)
from repro.bench.echo import linear_fit
from repro.bench.report import clear_tables


def test_udp_echo_matches_calibration():
    result = run_udp_echo(iterations=10)
    # sendmsg + 2x setitimer + recvmsg = 13.3 ms kernel per call.
    assert result.kernel == pytest.approx(13.3, abs=0.01)
    assert result.user == pytest.approx(0.8, abs=0.01)
    assert result.real > result.total


def test_tcp_echo_matches_calibration():
    result = run_tcp_echo(iterations=10)
    assert result.kernel == pytest.approx(7.8, abs=0.01)
    assert result.total == pytest.approx(PAPER_TABLE_4_1["TCP"]["total"],
                                         abs=0.1)


def test_circus_echo_profile_sums_to_kernel_time():
    result = run_circus_echo(degree=2, iterations=8)
    assert sum(result.profile.values()) == pytest.approx(result.kernel,
                                                         rel=1e-6)
    pcts = result.profile_percentages()
    assert all(0.0 <= v <= 100.0 for v in pcts.values())


def test_circus_echo_deterministic():
    a = run_circus_echo(degree=2, iterations=5, seed=3)
    b = run_circus_echo(degree=2, iterations=5, seed=3)
    assert (a.real, a.user, a.kernel) == (b.real, b.user, b.kernel)


def test_linear_fit_exact_line():
    slope, intercept, r2 = linear_fit([1, 2, 3], [10.0, 20.0, 30.0])
    assert slope == pytest.approx(10.0)
    assert intercept == pytest.approx(0.0)
    assert r2 == pytest.approx(1.0)


def test_linear_fit_flat_line():
    slope, _intercept, _r2 = linear_fit([1, 2, 3], [5.0, 5.0, 5.0])
    assert slope == pytest.approx(0.0)


def test_table_rendering():
    clear_tables()
    table = Table("Demo", ["a", "b"], notes="a note")
    table.add_row(1, 2.5)
    table.add_row("x", 3.25)
    text = table.render()
    assert "Demo" in text
    assert "2.5" in text and "3.2" in text  # floats at one decimal
    assert "a note" in text


def test_table_wrong_arity_rejected():
    table = Table("T", ["only"])
    with pytest.raises(ValueError):
        table.add_row(1, 2)


def test_registry_replaces_by_title():
    clear_tables()
    t1 = Table("Same", ["c"])
    t2 = Table("Same", ["c"])
    register_table(t1)
    register_table(t2)
    assert registered_tables() == [t2]
    clear_tables()


def test_paper_reference_values_present():
    assert PAPER_TABLE_4_2["sendmsg"] == 8.1
    assert PAPER_TABLE_4_1[5]["real"] == 109.5
