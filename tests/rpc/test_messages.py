"""Tests for call/return message encoding and thread IDs."""

import pytest
from hypothesis import given, strategies as st

from repro.rpc import (
    CallHeader,
    RemoteError,
    ThreadContext,
    ThreadId,
    decode_call,
    decode_return,
    encode_call,
    encode_error,
    encode_return,
    raise_if_error,
)


def test_thread_id_roundtrip():
    tid = ThreadId("ucb-monet", 1234)
    decoded, offset = ThreadId.decode(tid.encode())
    assert decoded == tid
    assert offset == len(tid.encode())


def test_thread_id_decode_with_trailing_data():
    tid = ThreadId("m", 1)
    raw = tid.encode() + b"extra"
    decoded, offset = ThreadId.decode(raw)
    assert decoded == tid
    assert raw[offset:] == b"extra"


def test_call_message_roundtrip():
    header = CallHeader(ThreadId("h", 7), 11, 22, 3, 4)
    raw = encode_call(header, b"the-args")
    decoded, args = decode_call(raw)
    assert decoded == header
    assert args == b"the-args"


def test_return_ok_roundtrip():
    raw = encode_return(b"results")
    header, body = decode_return(raw)
    assert not header.is_error
    assert raise_if_error(header, body) == b"results"


def test_return_error_raises():
    raw = encode_error("NotFound", "no such key")
    header, body = decode_return(raw)
    assert header.is_error
    with pytest.raises(RemoteError) as info:
        raise_if_error(header, body)
    assert info.value.kind == "NotFound"
    assert info.value.detail == "no such key"


def test_thread_context_default_and_adopt():
    ctx = ThreadContext(default=ThreadId("base", 1))
    assert ctx.current == ThreadId("base", 1)
    caller = ThreadId("remote", 9)
    ctx.adopt(caller)
    assert ctx.current == caller
    ctx.release(caller)
    assert ctx.current == ThreadId("base", 1)


def test_thread_context_nested_adoption():
    ctx = ThreadContext(default=ThreadId("base", 1))
    t1, t2 = ThreadId("a", 1), ThreadId("b", 2)
    ctx.adopt(t1)
    ctx.adopt(t2)
    assert ctx.current == t2
    assert ctx.depth() == 2
    ctx.release(t2)
    ctx.release(t1)
    assert ctx.depth() == 0


def test_thread_context_release_out_of_order_rejected():
    ctx = ThreadContext(default=ThreadId("base", 1))
    ctx.adopt(ThreadId("a", 1))
    with pytest.raises(RuntimeError):
        ctx.release(ThreadId("b", 2))


def test_thread_context_no_default_rejected():
    ctx = ThreadContext()
    with pytest.raises(RuntimeError):
        _ = ctx.current


def test_call_numbers_monotonic():
    ctx = ThreadContext(default=ThreadId("base", 1))
    numbers = [ctx.next_call_number() for _ in range(5)]
    assert numbers == [1, 2, 3, 4, 5]


@given(
    origin=st.text(min_size=0, max_size=40),
    pid=st.integers(min_value=0, max_value=0xFFFFFFFF),
    troupe=st.integers(min_value=0, max_value=2 ** 64 - 1),
    dest=st.integers(min_value=0, max_value=2 ** 64 - 1),
    module=st.integers(min_value=0, max_value=0xFFFF),
    proc=st.integers(min_value=0, max_value=0xFFFF),
    args=st.binary(max_size=500),
)
def test_property_call_roundtrip(origin, pid, troupe, dest, module, proc, args):
    header = CallHeader(ThreadId(origin, pid), troupe, dest, module, proc)
    decoded, decoded_args = decode_call(encode_call(header, args))
    assert decoded == header
    assert decoded_args == args


@given(kind=st.text(min_size=1, max_size=30), detail=st.text(max_size=100))
def test_property_error_roundtrip(kind, detail):
    header, body = decode_return(encode_error(kind, detail))
    with pytest.raises(RemoteError) as info:
        raise_if_error(header, body)
    assert info.value.kind == kind
    assert info.value.detail == detail
