"""Tests for deterministic modules, replay, and Theorem 3.7."""

import pytest
from hypothesis import given, strategies as st

from repro.model import (
    DeterministicModule,
    InvalidHistory,
    replay,
    run_program,
    validate_history,
    validate_state_sequence,
)


def counter_module():
    def increment(state, arg):
        state.value = (state.value or 0) + arg
        return state.value
        yield  # pragma: no cover — marks this as a generator

    def get(state, arg):
        return state.value or 0
        yield  # pragma: no cover

    return DeterministicModule("counter", {
        "increment": increment, "get": get}, initial_state=0)


def make_banking_program():
    """A two-module program: 'bank' calls into 'ledger'."""
    def post(state, arg):
        state.value = state.value + [arg]
        return len(state.value)
        yield  # pragma: no cover

    ledger = DeterministicModule("ledger", {"post": post}, initial_state=[])

    def transfer(state, arg):
        amount = arg
        entry1 = yield ("ledger", "post", ("debit", amount))
        entry2 = yield ("ledger", "post", ("credit", amount))
        state.value = (state.value or 0) + 1
        return (entry1, entry2)

    bank = DeterministicModule("bank", {"transfer": transfer},
                               initial_state=0)
    return {"ledger": ledger, "bank": bank}


def test_run_program_returns_result_and_valid_history():
    modules = make_banking_program()
    result, history, states = run_program(modules, "bank", "transfer", 100)
    assert result == (1, 2)
    validate_history(history)
    # call transfer, call post, ret post, call post, ret post, ret transfer
    assert [(-1 if e.is_return else 1) for e in history] == \
        [1, 1, -1, 1, -1, -1]


def test_state_sequence_tracks_module_states():
    modules = make_banking_program()
    _result, history, states = run_program(modules, "bank", "transfer", 50)
    # Final snapshot reflects both modules' final states.
    assert states[-1]["bank"] == 1
    assert states[-1]["ledger"] == [("debit", 50), ("credit", 50)]
    # Definition 3.5: only M-events change the state of M.
    for index in range(1, len(history)):
        event = history[index]
        for module_name in modules:
            if event.module != module_name:
                assert states[index][module_name] == \
                    states[index - 1][module_name]


def test_theorem_3_7_replay_reconstructs_state():
    """Replaying the history from the initial state reproduces the final
    state — checkpoint and log recovery are equivalent."""
    modules = make_banking_program()
    _result, history, states = run_program(modules, "bank", "transfer", 7)
    replayed = replay(make_banking_program(), history)
    assert replayed == states[-1]


def test_theorem_3_7_identical_runs_identical_histories():
    """Same initial call + same initial state => same history and states."""
    run1 = run_program(make_banking_program(), "bank", "transfer", 3)
    run2 = run_program(make_banking_program(), "bank", "transfer", 3)
    assert [e.proc for e in run1[1]] == [e.proc for e in run2[1]]
    assert [e.val for e in run1[1]] == [e.val for e in run2[1]]
    assert run1[2] == run2[2]


def test_replay_detects_divergence():
    """A module that diverges from the log is caught (the watchdog idea)."""
    modules = make_banking_program()
    _result, history, _states = run_program(modules, "bank", "transfer", 9)

    # Replay against a *different* implementation: results won't match.
    tampered = make_banking_program()

    def post_doubled(state, arg):
        state.value = state.value + [arg, arg]
        return len(state.value)
        yield  # pragma: no cover

    tampered["ledger"] = DeterministicModule(
        "ledger", {"post": post_doubled}, initial_state=[])
    with pytest.raises(InvalidHistory):
        replay(tampered, history)


def test_replay_rejects_truncated_history():
    modules = make_banking_program()
    _result, history, _states = run_program(modules, "bank", "transfer", 1)
    from repro.model.events import EventSequence
    truncated = EventSequence(history.events[:3])
    with pytest.raises(InvalidHistory):
        replay(make_banking_program(), truncated)


def test_state_sequence_satisfies_definition_3_5():
    """Only M-events change the state of M — validated mechanically."""
    modules = make_banking_program()
    _result, history, states = run_program(modules, "bank", "transfer", 4)
    validate_state_sequence(history, states)


def test_state_sequence_validator_catches_violation():
    modules = make_banking_program()
    _result, history, states = run_program(modules, "bank", "transfer", 4)
    # Corrupt a snapshot: the ledger changes at a bank event.
    bad = [dict(s) for s in states]
    bad[-1]["ledger"] = ["tampered"]
    with pytest.raises(InvalidHistory):
        validate_state_sequence(history, bad)


def test_state_sequence_validator_checks_length():
    modules = make_banking_program()
    _result, history, states = run_program(modules, "bank", "transfer", 4)
    with pytest.raises(InvalidHistory):
        validate_state_sequence(history, states[:-1])


def test_plain_function_procedures_allowed():
    """Procedures that make no nested calls can be plain functions."""
    def double(state, arg):
        return arg * 2

    module = DeterministicModule("m", {"double": double})
    result, history, _ = run_program({"m": module}, "m", "double", 21)
    assert result == 42
    validate_history(history)


@given(st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=10))
def test_property_replay_equals_execution(amounts):
    """Theorem 3.7 over random call sequences: a driver module makes the
    calls; replay of the history reconstructs the same final state."""
    def driver(state, arg):
        for amount in arg:
            yield ("counter", "increment", amount)
        return None

    def build():
        return {
            "counter": counter_module(),
            "driver": DeterministicModule("driver", {"run": driver}),
        }

    _result, history, states = run_program(build(), "driver", "run",
                                           list(amounts))
    assert states[-1]["counter"] == sum(amounts)
    replayed = replay(build(), history)
    assert replayed == states[-1]
