"""Tests for the Chapter 3 formal model: balanced intervals, histories,
call stacks, and the Theorem 3.4 decomposition."""

import pytest
from hypothesis import given, strategies as st

from repro.model import (
    EventSequence,
    InvalidHistory,
    balanced_decomposition,
    call_stack,
    depth,
    execution_of,
    is_balanced,
    theorem_3_4_decomposition,
    validate_history,
)
from repro.model.events import call, ret


def simple_history():
    """main calls a, a calls b, b returns, a returns, main returns."""
    events = [
        call("M", "main", eid=1),
        call("A", "a", eid=2),
        call("B", "b", eid=3),
        ret("B", "b", eid=4),
        ret("A", "a", eid=5),
        ret("M", "main", eid=6),
    ]
    return EventSequence(events)


def test_empty_sequence_is_balanced():
    assert is_balanced(EventSequence())


def test_simple_history_is_balanced():
    assert is_balanced(simple_history())


def test_unmatched_return_not_balanced():
    assert not is_balanced(EventSequence([ret("A", "a", eid=1)]))


def test_wrong_procedure_return_not_balanced():
    seq = EventSequence([call("A", "a", eid=1), ret("B", "b", eid=2)])
    assert not is_balanced(seq)


def test_validate_history_accepts_simple():
    validate_history(simple_history())


def test_validate_history_rejects_leading_return():
    with pytest.raises(InvalidHistory):
        validate_history(EventSequence([ret("A", "a", eid=1)]))


def test_validate_history_rejects_unbalanced_finite():
    with pytest.raises(InvalidHistory):
        validate_history(EventSequence([call("A", "a", eid=1)]))


def test_validate_infinite_prefix_allows_open_calls():
    validate_history(EventSequence([call("A", "a", eid=1)]),
                     require_finite=False)


def test_duplicate_event_ids_rejected():
    with pytest.raises(InvalidHistory):
        EventSequence([call("A", "a", eid=1), ret("A", "a", eid=1)])


def test_execution_of_returns_balanced_interval():
    history = simple_history()
    inner = execution_of(history, history[1])  # the call to a
    assert [e.eid for e in inner] == [2, 3, 4, 5]
    assert is_balanced(inner)


def test_execution_of_never_returning_call():
    history = EventSequence([
        call("M", "main", eid=1),
        call("A", "loop", eid=2),
        call("B", "b", eid=3),
        ret("B", "b", eid=4),
    ])
    exec_seq = execution_of(history, history[1])
    assert [e.eid for e in exec_seq] == [2, 3, 4]


def test_call_stack_and_depth():
    history = simple_history()
    assert [e.eid for e in call_stack(history, history[2])] == [1, 2, 3]
    assert depth(history, history[2]) == 3
    assert depth(history, history[0]) == 1


def test_restriction_to_module():
    history = simple_history()
    only_a = history.restrict_to_module("A")
    assert [e.eid for e in only_a] == [2, 5]


def test_balanced_decomposition_of_sibling_blocks():
    seq = EventSequence([
        call("A", "a", eid=1), ret("A", "a", eid=2),
        call("B", "b", eid=3),
        call("C", "c", eid=4), ret("C", "c", eid=5),
        ret("B", "b", eid=6),
    ])
    blocks = balanced_decomposition(seq)
    assert [[e.eid for e in block] for block in blocks] == [[1, 2], [3, 4, 5, 6]]


def test_balanced_decomposition_rejects_unbalanced():
    with pytest.raises(InvalidHistory):
        balanced_decomposition(EventSequence([call("A", "a", eid=1)]))


def test_balanced_decomposition_rejects_interleaved_intervals():
    """<c_A c_B r_A r_B> nests by depth counting but the interior calls
    and returns cross: Definition 3.1's unique decomposition does not
    exist."""
    seq = EventSequence([
        call("A", "a", eid=1),
        call("B", "b", eid=2),
        ret("A", "a", eid=3),
        ret("B", "b", eid=4),
    ])
    assert not is_balanced(seq)
    with pytest.raises(InvalidHistory):
        balanced_decomposition(seq)


def test_balanced_decomposition_rejects_mismatched_procedures():
    """A return from the wrong procedure inside an otherwise
    depth-balanced block."""
    seq = EventSequence([
        call("A", "a", eid=1),
        call("B", "b", eid=2),
        ret("B", "other", eid=3),
        ret("A", "a", eid=4),
    ])
    with pytest.raises(InvalidHistory):
        balanced_decomposition(seq)


def test_truncated_infinite_prefix_is_unbalanced_but_valid():
    """A prefix of an infinite history (Definition 3.2's finiteness
    clause): open calls are not balanced, yet the prefix is a valid
    history when finiteness is not required."""
    prefix = EventSequence([
        call("M", "main", eid=1),
        call("A", "loop", eid=2),
        call("B", "b", eid=3),
        ret("B", "b", eid=4),
    ])
    assert not is_balanced(prefix)
    validate_history(prefix, require_finite=False)
    with pytest.raises(InvalidHistory):
        validate_history(prefix)
    # Every return still has to match even in a prefix.
    bad = EventSequence([
        call("M", "main", eid=1),
        ret("A", "other", eid=2),
    ])
    with pytest.raises(InvalidHistory):
        validate_history(bad, require_finite=False)


def test_theorem_3_4_decomposition():
    """H_{<=e} = <c0, ..., c> B1...Bn <e> uniquely."""
    history = EventSequence([
        call("M", "main", eid=1),
        call("A", "a", eid=2),
        ret("A", "a", eid=3),
        call("B", "b", eid=4),
        ret("B", "b", eid=5),
        call("C", "c", eid=6),
    ])
    interval, blocks = theorem_3_4_decomposition(history, history[5])
    assert [e.eid for e in interval] == [1]
    assert [[e.eid for e in block] for block in blocks] == [[2, 3], [4, 5]]
    # Reassembling interval + blocks + e recovers the prefix.
    reassembled = [e.eid for e in interval]
    for block in blocks:
        reassembled += [e.eid for e in block]
    reassembled.append(history[5].eid)
    assert reassembled == [e.eid for e in history.up_to(history[5])]


# -- hypothesis: random balanced histories -------------------------------

@st.composite
def balanced_histories(draw, max_depth=4, max_children=3):
    """Generate a random procedure invocation tree and linearize it."""
    counter = [0]

    def gen(depth_remaining):
        counter[0] += 1
        eid_call = counter[0] * 2 - 1
        eid_ret = counter[0] * 2
        module = draw(st.sampled_from(["A", "B", "C"]))
        name = draw(st.sampled_from(["p", "q"]))
        children = []
        if depth_remaining > 0:
            for _ in range(draw(st.integers(0, max_children))):
                children.append(gen(depth_remaining - 1))
        events = [call(module, name, eid=eid_call)]
        for child in children:
            events.extend(child)
        events.append(ret(module, name, eid=eid_ret))
        return events

    return EventSequence(gen(max_depth))


@given(balanced_histories())
def test_property_generated_histories_validate(history):
    validate_history(history)
    assert is_balanced(history)


@given(balanced_histories())
def test_property_every_call_has_balanced_execution(history):
    for event in history:
        if event.is_call:
            exec_seq = execution_of(history, event)
            assert is_balanced(exec_seq)
            assert exec_seq[0].eid == event.eid


@given(balanced_histories())
def test_property_theorem_3_4_reassembles(history):
    """The unique decomposition, reassembled, is the prefix — for every
    event in the history."""
    for event in history:
        interval, blocks = theorem_3_4_decomposition(history, event)
        reassembled = [e.eid for e in interval]
        for block in blocks:
            assert is_balanced(block)
            reassembled += [e.eid for e in block]
        reassembled.append(event.eid)
        assert reassembled == [e.eid for e in history.up_to(event)]


@given(balanced_histories())
def test_property_depth_matches_nesting(history):
    """depth(c) equals 1 + number of enclosing executions."""
    for event in history:
        if not event.is_call:
            continue
        enclosing = 0
        for other in history:
            if other.is_call and other.eid != event.eid:
                exec_seq = execution_of(history, other)
                if any(e.eid == event.eid for e in exec_seq):
                    enclosing += 1
        assert depth(history, event) == enclosing + 1


@given(balanced_histories())
def test_property_restriction_commutes_with_prefix(history):
    """(H_{<=e})^M == (H^M)_{<=e} for M-events e (§3.3.1)."""
    for event in history:
        restricted = history.restrict_to_module(event.module)
        lhs = history.up_to(event).restrict_to_module(event.module)
        rhs = restricted.up_to(event)
        assert lhs == rhs
