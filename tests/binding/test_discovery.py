"""Tests for broadcast discovery of the Ringmaster (§6.3)."""

import pytest

from repro.binding import (
    BindingClient,
    DiscoveryFailed,
    discover_ringmaster,
    start_ringmaster,
)
from repro.core import ExportedModule, TroupeRuntime
from repro.harness import World


def test_discovery_finds_all_ringmaster_members():
    world = World(machines=6)
    ringmaster, _members = start_ringmaster(world.machines[:3])
    client_proc = world.machines[4].spawn_process("discoverer")

    def body():
        return (yield from discover_ringmaster(client_proc))

    discovered = world.run(body())
    assert discovered.troupe_id == ringmaster.troupe_id
    assert set(discovered.processes) == set(ringmaster.processes)


def test_discovery_is_deterministic_across_discoverers():
    world = World(machines=8)
    start_ringmaster(world.machines[:2])

    def discover_from(machine):
        proc = machine.spawn_process("d")

        def body():
            return (yield from discover_ringmaster(proc))
        return world.run(body())

    d1 = discover_from(world.machines[3])
    d2 = discover_from(world.machines[4])
    assert d1.members == d2.members  # sorted responders, same order


def test_discovered_descriptor_is_usable_for_binding():
    world = World(machines=8)
    start_ringmaster(world.machines[:2])

    # A server exports through a *discovered* ringmaster descriptor.
    server_machine = world.machines[3]
    process = server_machine.spawn_process("svc")
    runtime = TroupeRuntime(process)

    def echo(ctx, args):
        return b"found:" + args

    member = runtime.export(ExportedModule("svc", {0: echo}))
    runtime.start_server()

    def server_flow():
        discovered = yield from discover_ringmaster(runtime.process)
        binding = BindingClient(runtime, discovered)
        yield from binding.export_module("svc", member)

    world.run(server_flow())

    client = world.make_client()

    def client_flow():
        discovered = yield from discover_ringmaster(client.process)
        binding = BindingClient(client, discovered)
        return (yield from binding.call("svc", 0, b"it"))

    assert world.run(client_flow()) == b"found:it"


def test_discovery_fails_when_no_ringmaster():
    world = World(machines=3)
    proc = world.machines[0].spawn_process("d")

    def body():
        yield from discover_ringmaster(proc, window=30.0, retries=2)

    with pytest.raises(DiscoveryFailed):
        world.run(body())


def test_discovery_ignores_crashed_members():
    world = World(machines=6)
    ringmaster, members = start_ringmaster(world.machines[:3])
    world.machines[1].crash()
    proc = world.machines[4].spawn_process("d")

    def body():
        return (yield from discover_ringmaster(proc))

    discovered = world.run(body())
    hosts = {addr.host for addr in discovered.processes}
    assert hosts == {"host0", "host2"}
