"""The binding agent is itself highly available (§6.2): "it is essential
that the binding agent be highly available.  An obvious choice is to make
the binding agent a troupe" — so it must keep serving when members crash.
"""

import pytest

from repro.binding import BindingClient, start_ringmaster
from repro.core import ExportedModule, TroupeRuntime
from repro.harness import World


def echo_module():
    def echo(ctx, args):
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def make_server(world, machine, ringmaster):
    process = machine.spawn_process("server")
    holder = {}
    runtime = TroupeRuntime(
        process,
        resolver=lambda tid: holder["binding"].make_resolver()(tid))
    binding = BindingClient(runtime, ringmaster)
    holder["binding"] = binding
    member = runtime.export(echo_module())
    runtime.start_server()
    return runtime, binding, member


def test_binding_survives_ringmaster_member_crash():
    world = World(machines=10)
    ringmaster, rm_members = start_ringmaster(world.machines[:3])

    # Register a service while all three Ringmasters are up.
    rt1, binding1, member1 = make_server(world, world.machines[3],
                                         ringmaster)
    world.run(binding1.export_module("svc", member1))

    # One Ringmaster machine dies.
    world.machines[1].crash()

    # Lookups still work (the survivors answer; the crashed member is
    # detected and excluded by the replicated call machinery).
    client_rt = world.make_client()
    client_binding = BindingClient(client_rt, ringmaster)

    def lookup_and_call():
        descriptor = yield from client_binding.import_troupe("svc")
        assert descriptor.degree == 1
        return (yield from client_binding.call("svc", 0, b"up?"))

    assert world.run(lookup_and_call()) == b"echo:up?"

    # Mutations still work too: another member can join the service.
    rt2, binding2, member2 = make_server(world, world.machines[4],
                                         ringmaster)
    world.run(binding2.export_module("svc", member2))

    def call_two_member_troupe():
        yield from client_binding.rebind("svc")
        return (yield from client_binding.call("svc", 0, b"both?"))

    assert world.run(call_two_member_troupe()) == b"echo:both?"
    assert client_binding.cache["svc"].degree == 2

    # The surviving Ringmaster members' registries agree.
    alive = [rm for rm in rm_members if rm.runtime.process.machine.up]
    assert len(alive) == 2
    assert alive[0].by_name == alive[1].by_name


def test_total_ringmaster_failure_fails_binding_operations():
    from repro.core import TroupeFailure

    world = World(machines=6)
    ringmaster, _ = start_ringmaster(world.machines[:2])
    world.machines[0].crash()
    world.machines[1].crash()
    client_rt = world.make_client("host3")
    client_binding = BindingClient(client_rt, ringmaster)

    def body():
        yield from client_binding.import_troupe("anything")

    with pytest.raises(TroupeFailure):
        world.run(body())
