"""Tests for the Ringmaster binding agent (§6.2, §6.3)."""

import pytest

from repro.binding import (
    BindingClient,
    BindingError,
    Janitor,
    ReplaceableModule,
    join_troupe,
    start_ringmaster,
)
from repro.core import ExportedModule, StaleBindingError, TroupeRuntime
from repro.core.runtime import RuntimeConfig
from repro.harness import World
from repro.sim import Sleep


def make_world(machines=10, ringmasters=2, seed=0):
    world = World(machines=machines, seed=seed)
    ringmaster, rm_members = start_ringmaster(
        world.machines[:ringmasters])
    return world, ringmaster, rm_members


def make_server(world, machine, ringmaster, module):
    """A server process exporting `module`, bound through the Ringmaster."""
    process = machine.spawn_process("server")
    holder = {}

    def resolver(tid):
        client = holder.get("binding")
        if client is None:
            return None
        return client.make_resolver()(tid)

    runtime = TroupeRuntime(process, resolver=resolver)
    binding = BindingClient(runtime, ringmaster)
    holder["binding"] = binding
    member_addr = runtime.export(module)
    runtime.start_server()
    return runtime, binding, member_addr


def echo_module():
    def echo(ctx, args):
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def make_client(world, ringmaster):
    runtime = world.make_client()
    return runtime, BindingClient(runtime, ringmaster)


def test_export_then_import_and_call():
    world, ringmaster, _ = make_world()
    server_rt, server_binding, member = make_server(
        world, world.machines[3], ringmaster, echo_module())

    def server_setup():
        tid = yield from server_binding.export_module("echo-svc", member)
        return tid

    tid = world.run(server_setup())
    assert server_rt.troupe_id == tid  # set_troupe_id reached the member

    client_rt, client_binding = make_client(world, ringmaster)

    def client_body():
        descriptor = yield from client_binding.import_troupe("echo-svc")
        assert descriptor.troupe_id == tid
        assert descriptor.degree == 1
        return (yield from client_binding.call("echo-svc", 0, b"hi"))

    assert world.run(client_body()) == b"echo:hi"


def test_each_member_adds_itself_and_ids_change():
    """§6.2: members register one at a time; every addition changes the
    troupe ID and informs all members."""
    world, ringmaster, _ = make_world()
    servers = []
    ids = []
    for i in range(3):
        rt, binding, member = make_server(
            world, world.machines[3 + i], ringmaster, echo_module())
        servers.append(rt)

        def setup(binding=binding, member=member):
            tid = yield from binding.export_module("echo-svc", member)
            ids.append(tid)

        world.run(setup())
    assert len(set(ids)) == 3  # a fresh ID per membership change
    # Every member ended up with the final ID.
    assert {rt.troupe_id for rt in servers} == {ids[-1]}

    client_rt, client_binding = make_client(world, ringmaster)

    def client_body():
        descriptor = yield from client_binding.import_troupe("echo-svc")
        assert descriptor.degree == 3
        return (yield from client_binding.call("echo-svc", 0, b"all"))

    assert world.run(client_body()) == b"echo:all"
    assert all(rt.calls_executed == 1 for rt in servers)


def test_stale_cache_detected_and_rebound():
    world, ringmaster, _ = make_world()
    rt1, binding1, member1 = make_server(
        world, world.machines[3], ringmaster, echo_module())
    world.run(binding1.export_module("svc", member1))

    client_rt, client_binding = make_client(world, ringmaster)

    def first_call():
        return (yield from client_binding.call("svc", 0, b"one"))

    assert world.run(first_call()) == b"echo:one"
    cached = client_binding.cache["svc"]

    # Membership changes: the cached ID is now stale.
    rt2, binding2, member2 = make_server(
        world, world.machines[4], ringmaster, echo_module())
    world.run(binding2.export_module("svc", member2))

    def direct_call_with_stale_descriptor():
        yield from client_rt.call_troupe(cached, None, 0, b"stale")

    with pytest.raises(StaleBindingError):
        world.run(direct_call_with_stale_descriptor())

    def auto_rebinding_call():
        return (yield from client_binding.call("svc", 0, b"two"))

    assert world.run(auto_rebinding_call()) == b"echo:two"
    assert client_binding.rebinds >= 1
    assert client_binding.cache["svc"].degree == 2


def test_import_unknown_name_fails():
    world, ringmaster, _ = make_world()
    client_rt, client_binding = make_client(world, ringmaster)

    def body():
        yield from client_binding.import_troupe("no-such-troupe")

    with pytest.raises(BindingError):
        world.run(body())


def test_register_troupe_and_duplicate_rejected():
    world, ringmaster, _ = make_world()
    rt, binding, member = make_server(
        world, world.machines[3], ringmaster, echo_module())

    def body():
        tid = yield from binding.register_troupe("whole", [member])
        return tid

    tid = world.run(body())
    assert tid > 0

    def duplicate():
        yield from binding.register_troupe("whole", [member])

    with pytest.raises(BindingError):
        world.run(duplicate())


def test_lookup_by_id():
    world, ringmaster, _ = make_world()
    rt, binding, member = make_server(
        world, world.machines[3], ringmaster, echo_module())

    def body():
        tid = yield from binding.export_module("svc", member)
        members = yield from binding.lookup_by_id(tid)
        return members

    members = world.run(body())
    assert members == [member.process]


def test_replicated_ringmaster_members_stay_consistent():
    world, ringmaster, rm_members = make_world(ringmasters=3)
    for i in range(3):
        rt, binding, member = make_server(
            world, world.machines[4 + i], ringmaster, echo_module())
        world.run(binding.export_module("svc-%d" % (i % 2), member))
    registries = [(rm.by_name, rm.by_id) for rm in rm_members]
    for other in registries[1:]:
        assert other == registries[0]


def test_janitor_removes_crashed_member():
    world, ringmaster, rm_members = make_world()
    rt1, binding1, member1 = make_server(
        world, world.machines[3], ringmaster, echo_module())
    rt2, binding2, member2 = make_server(
        world, world.machines[4], ringmaster, echo_module())
    world.run(binding1.export_module("svc", member1))
    world.run(binding2.export_module("svc", member2))

    world.machine(member2.process.host).crash()

    janitor_rt, janitor_binding = make_client(world, ringmaster)
    janitor = Janitor(janitor_rt, janitor_binding)

    def sweep():
        return (yield from janitor.sweep())

    removed = world.run(sweep())
    assert removed == [("svc", member2)]
    # The registry now lists only the survivor, under a fresh ID.
    assert all(
        rm.by_name["svc"][1] == [member1] for rm in rm_members)

    client_rt, client_binding = make_client(world, ringmaster)

    def call():
        return (yield from client_binding.call("svc", 0, b"after-gc"))

    assert world.run(call()) == b"echo:after-gc"


def counter_module(state):
    """A stateful module: increment/get, replaceable via get_state."""
    def increment(ctx, args):
        state["count"] = state.get("count", 0) + 1
        return b"%d" % state["count"]

    def get(ctx, args):
        return b"%d" % state.get("count", 0)

    return ReplaceableModule(
        "counter", {0: increment, 1: get},
        externalize=lambda: b"%d" % state.get("count", 0),
        internalize=lambda raw: state.__setitem__("count", int(raw)))


def test_join_troupe_transfers_state():
    """§6.4.1: a new member fetches state via get_state, then registers."""
    world, ringmaster, _ = make_world()
    state1 = {}
    rt1, binding1, member1 = make_server(
        world, world.machines[3], ringmaster, counter_module(state1))
    world.run(binding1.export_module("counter", member1))

    client_rt, client_binding = make_client(world, ringmaster)

    def warm_up():
        for _ in range(5):
            yield from client_binding.call("counter", 0, b"")

    world.run(warm_up())
    assert state1["count"] == 5

    # A replacement member joins.
    state2 = {}
    module2 = counter_module(state2)
    rt2, binding2, member2 = make_server(
        world, world.machines[4], ringmaster, module2)

    def join():
        return (yield from join_troupe(rt2, module2, member2, "counter",
                                       binding2))

    new_id = world.run(join())
    assert state2["count"] == 5          # state transferred
    assert rt2.troupe_id == new_id       # ID installed
    assert rt1.troupe_id == new_id       # existing member re-identified

    def call_after_join():
        return (yield from client_binding.call("counter", 0, b""))

    assert world.run(call_after_join()) == b"6"
    assert state1["count"] == 6
    assert state2["count"] == 6          # the new member participates
