"""Membership changes under fire: the §6.2/§6.4.1 protocols exercised
at their edges — concurrent registration, joins racing undeclared
crashes, state transfer across a partition, and the last-member
guard.

These are the reconfiguration windows the ``elastic`` fuzz scenarios
bombard with event-aligned faults; here each edge is pinned down as a
deterministic unit test.
"""

import pytest

from repro.binding import (
    BindingClient,
    BindingError,
    ReplaceableModule,
    join_troupe,
    start_ringmaster,
)
from repro.core import ExportedModule, TroupeRuntime
from repro.harness import World


def make_world(machines=10, ringmasters=2, seed=0):
    world = World(machines=machines, seed=seed)
    ringmaster, rm_members = start_ringmaster(
        world.machines[:ringmasters])
    return world, ringmaster, rm_members


def make_server(world, machine, ringmaster, module):
    process = machine.spawn_process("server")
    holder = {}

    def resolver(tid):
        client = holder.get("binding")
        if client is None:
            return None
        return client.make_resolver()(tid)

    runtime = TroupeRuntime(process, resolver=resolver)
    binding = BindingClient(runtime, ringmaster)
    holder["binding"] = binding
    member_addr = runtime.export(module)
    runtime.start_server()
    return runtime, binding, member_addr


def echo_module():
    def echo(ctx, args):
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def counter_module(state):
    def increment(ctx, args):
        state["count"] = state.get("count", 0) + 1
        return b"%d" % state["count"]

    def get(ctx, args):
        return b"%d" % state.get("count", 0)

    return ReplaceableModule(
        "counter", {0: increment, 1: get},
        externalize=lambda: b"%d" % state.get("count", 0),
        internalize=lambda raw: state.__setitem__("count", int(raw)))


def make_client(world, ringmaster):
    runtime = world.make_client()
    return runtime, BindingClient(runtime, ringmaster)


def test_concurrent_adds_serialize_and_ids_stay_unique():
    """Two members registering *concurrently* race for the next troupe
    ID.  The (serial-execution) Ringmaster serializes them: both adds
    succeed, the IDs they mint are distinct, and every member converges
    on the final incarnation."""
    world, ringmaster, rm_members = make_world()
    rt_a, binding_a, member_a = make_server(
        world, world.machines[3], ringmaster, echo_module())
    rt_b, binding_b, member_b = make_server(
        world, world.machines[4], ringmaster, echo_module())
    ids = {}

    def add(label, binding, member):
        ids[label] = yield from binding.export_module("svc", member)

    def body():
        first = world.sim.spawn(add("a", binding_a, member_a), name="add-a")
        second = world.sim.spawn(add("b", binding_b, member_b), name="add-b")
        yield first
        yield second

    world.run(body())
    assert set(ids) == {"a", "b"}
    assert ids["a"] != ids["b"], "each add must mint a fresh troupe ID"
    final = max(ids.values())
    # set_troupe_id from the second add reached both members.
    assert rt_a.troupe_id == final
    assert rt_b.troupe_id == final
    # Every Ringmaster replica agrees on the serialized outcome.
    for rm in rm_members:
        stored_id, members = rm.by_name["svc"]
        assert stored_id == final
        assert sorted(m.process.host for m in members) == \
            sorted([member_a.process.host, member_b.process.host])


def test_join_while_member_crashed_but_undeclared():
    """§6.4.1 join while one member is crashed but nobody has told the
    Ringmaster yet: the replicated get_state presumes the dead member
    crashed and transfers the survivor's state, so the join completes —
    with the corpse still registered (the Janitor's job, not the
    joiner's)."""
    world, ringmaster, rm_members = make_world()
    state1, state2 = {}, {}
    rt1, binding1, member1 = make_server(
        world, world.machines[3], ringmaster, counter_module(state1))
    rt2, binding2, member2 = make_server(
        world, world.machines[4], ringmaster, counter_module(state2))
    world.run(binding1.export_module("counter", member1))
    world.run(binding2.export_module("counter", member2))

    client_rt, client_binding = make_client(world, ringmaster)

    def warm_up():
        for _ in range(3):
            yield from client_binding.call("counter", 0, b"")

    world.run(warm_up())
    assert state1["count"] == state2["count"] == 3

    # Fail-stop, undeclared: no Janitor sweep before the join.
    world.machine(member2.process.host).crash()

    state3 = {}
    module3 = counter_module(state3)
    rt3, binding3, member3 = make_server(
        world, world.machines[5], ringmaster, module3)

    def join():
        return (yield from join_troupe(rt3, module3, member3, "counter",
                                       binding3))

    new_id = world.run(join())
    assert state3["count"] == 3          # survivor's state transferred
    assert rt3.troupe_id == new_id
    assert rt1.troupe_id == new_id
    # The corpse is still on the books: three registered members.
    for rm in rm_members:
        _tid, members = rm.by_name["counter"]
        assert len(members) == 3

    # Calls still work: the dead member is presumed crashed per call.
    def call():
        return (yield from client_binding.call("counter", 0, b""))

    assert world.run(call()) == b"4"
    assert state3["count"] == 4          # the joiner participates


def test_get_state_across_partition_uses_reachable_state():
    """A §6.4.1 join launched while the network is partitioned: the
    joiner can reach only a minority of the troupe.  The unreachable
    members are presumed crashed (§4.3.5 probes), so the transfer
    completes from the reachable member's state alone — the documented
    quiescence hazard, pinned down."""
    world, ringmaster, _ = make_world()
    states = [{}, {}]
    servers = []
    for i, state in enumerate(states):
        rt, binding, member = make_server(
            world, world.machines[3 + i], ringmaster, counter_module(state))
        servers.append((rt, binding, member))
        world.run(binding.export_module("counter", member))

    client_rt, client_binding = make_client(world, ringmaster)

    def warm_up():
        for _ in range(2):
            yield from client_binding.call("counter", 0, b"")

    world.run(warm_up())
    assert states[0]["count"] == states[1]["count"] == 2

    # Cut machine 4 (the second member) off from everyone else.
    lost_host = servers[1][2].process.host
    world.net.partition([[lost_host]])

    state_new = {}
    module_new = counter_module(state_new)
    rt_new, binding_new, member_new = make_server(
        world, world.machines[5], ringmaster, module_new)

    def join():
        return (yield from join_troupe(rt_new, module_new, member_new,
                                       "counter", binding_new))

    new_id = world.run(join())
    assert state_new["count"] == 2       # the reachable member's state
    assert rt_new.troupe_id == new_id
    # The partitioned member never heard about the new incarnation: its
    # view is the stale troupe ID — §6.2's ID check is what keeps any
    # call it later receives from silently succeeding.
    assert servers[1][0].troupe_id != new_id
    assert servers[0][0].troupe_id == new_id
    world.net.heal()


def test_remove_of_last_member_is_rejected():
    """Deleting the only member would leave a named, empty troupe —
    the Ringmaster refuses, and the registry is untouched."""
    world, ringmaster, rm_members = make_world()
    rt, binding, member = make_server(
        world, world.machines[3], ringmaster, echo_module())
    world.run(binding.export_module("solo", member))

    def remove():
        yield from binding.remove_member("solo", member)

    with pytest.raises(BindingError, match="last member"):
        world.run(remove())
    # The registry still lists the member, under the original ID.
    for rm in rm_members:
        _tid, members = rm.by_name["solo"]
        assert [m.process.host for m in members] == [member.process.host]

    # The troupe remains callable after the rejected removal.
    client_rt, client_binding = make_client(world, ringmaster)

    def call():
        return (yield from client_binding.call("solo", 0, b"hi"))

    assert world.run(call()) == b"echo:hi"
