"""The accelerated-build introspection contract.

These tests run under *either* build: the pure-Python interpreter or
the optional mypyc-compiled kernel (``REPRO_ACCEL=1 pip install -e
.[accel]``).  They pin the introspection API the CLI and CI legs rely
on, without assuming which build is active.
"""

from repro import accel


def test_compiled_modules_reports_every_hot_module():
    modules = accel.compiled_modules()
    assert set(modules) == set(accel.ACCEL_MODULES)
    assert all(isinstance(v, bool) for v in modules.values())


def test_enabled_matches_per_module_report():
    assert accel.enabled() == all(accel.compiled_modules().values())


def test_describe_names_the_build():
    text = accel.describe()
    if accel.enabled():
        assert text == "accelerated (mypyc)"
    elif any(accel.compiled_modules().values()):
        assert text.startswith("partially accelerated")
    else:
        assert text == "pure-Python"


def test_status_is_json_friendly():
    import json

    status = accel.status()
    assert set(status) == {"build", "accelerated", "modules"}
    assert status["accelerated"] == accel.enabled()
    assert status["build"] == accel.describe()
    json.dumps(status)   # must round-trip without custom encoders


def test_hot_modules_behave_identically_under_either_build():
    """Smoke: the three hot modules do real work regardless of build.
    (CI proves byte-identical virtual time with the zero-delta gate;
    this is the cheap in-suite version.)"""
    from repro.pairedmsg import segments as seg
    from repro.sim import Simulator

    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "b")
    sim.schedule(0.5, order.append, "a")
    sim.run()
    assert order == ["a", "b"] and sim.now == 1.0

    segments = seg.split_message(seg.MSG_CALL, 1, b"x" * 1000, 256)
    assert [s.segment_number for s in segments] == [1, 2, 3, 4]
    assert b"".join(bytes(seg.decode(s.wire()).data)
                    for s in segments) == b"x" * 1000
