"""Tests for the World assembly harness."""

import pytest

from repro.core import ExportedModule
from repro.harness import World


def echo_module():
    def echo(ctx, args):
        return b"e:" + args
    return ExportedModule("echo", {0: echo})


def test_machines_are_named_and_reachable():
    world = World(machines=3)
    assert [m.name for m in world.machines] == ["host0", "host1", "host2"]
    assert world.machine("host1").up


def test_custom_machine_names():
    world = World(machine_names=["alpha", "beta"])
    assert world.machine("alpha").name == "alpha"
    assert len(world.machines) == 2


def test_make_troupe_registers_resolver_entry():
    world = World(machines=4)
    troupe, runtimes = world.make_troupe("svc", echo_module, degree=2)
    assert world.resolver(troupe.troupe_id) == list(troupe.processes)
    assert world.resolver(999999) is None


def test_troupe_members_round_robin_machines():
    world = World(machines=3)
    troupe, _ = world.make_troupe("a", echo_module, degree=2)
    client = world.make_client()
    hosts = {m.process.host for m in troupe.members}
    assert client.process.machine.name not in hosts


def test_too_many_members_rejected():
    world = World(machines=2)
    with pytest.raises(ValueError):
        world.make_troupe("big", echo_module, degree=3)


def test_stateful_factory_gives_fresh_module_per_member():
    created = []

    def factory():
        module = echo_module()
        created.append(module)
        return module

    world = World(machines=4)
    world.make_troupe("svc", factory, degree=3)
    assert len(created) == 3
    assert len({id(m) for m in created}) == 3


def test_shared_module_object_allowed_for_stateless():
    world = World(machines=4)
    module = echo_module()
    troupe, runtimes = world.make_troupe("svc", module, degree=2)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b"x"))

    assert world.run(body()) == b"e:x"


def test_client_troupe_shares_thread_id():
    world = World(machines=6)
    troupe, runtimes = world.make_client_troupe("clients", degree=3)
    ids = {r.threads.current for r in runtimes}
    assert len(ids) == 1
    assert world.resolver(troupe.troupe_id) == [r.addr for r in runtimes]


def test_run_returns_process_result():
    world = World(machines=1)

    def body():
        return 42
        yield  # pragma: no cover

    assert world.run(body()) == 42
