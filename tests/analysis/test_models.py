"""Tests for the analytic models (Equations 4.x, 5.1, 6.1, 6.2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    availability,
    deadlock_probability,
    expected_max_exponential,
    failed_member_distribution,
    harmonic,
    required_repair_time,
)


def test_harmonic_small_values():
    assert harmonic(0) == 0.0
    assert harmonic(1) == 1.0
    assert harmonic(2) == pytest.approx(1.5)
    assert harmonic(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)


def test_harmonic_large_values_match_asymptotics():
    # H_n ~ ln n + gamma
    n = 10 ** 6
    assert harmonic(n) == pytest.approx(math.log(n) + 0.5772156649, abs=1e-5)


def test_harmonic_continuity_at_switchover():
    """The exact sum and the asymptotic expansion agree near n=100."""
    exact = sum(1.0 / k for k in range(1, 101))
    assert harmonic(100) == pytest.approx(exact, rel=1e-9)


def test_harmonic_negative_rejected():
    with pytest.raises(ValueError):
        harmonic(-1)


def test_expected_max_exponential_theorem_4_3():
    # n=1: E[max] = mean; n=2: 1.5 * mean.
    assert expected_max_exponential(1, 10.0) == pytest.approx(10.0)
    assert expected_max_exponential(2, 10.0) == pytest.approx(15.0)


def test_expected_max_exponential_validates():
    with pytest.raises(ValueError):
        expected_max_exponential(0, 1.0)
    with pytest.raises(ValueError):
        expected_max_exponential(1, 0.0)


def test_expected_max_matches_monte_carlo():
    import random
    rng = random.Random(1)
    n, mean, trials = 5, 2.0, 20000
    total = 0.0
    for _ in range(trials):
        total += max(rng.expovariate(1.0 / mean) for _ in range(n))
    assert total / trials == pytest.approx(
        expected_max_exponential(n, mean), rel=0.03)


def test_availability_equation_6_1():
    # lambda = mu: A = 1 - (1/2)^n
    assert availability(1, 1.0, 1.0) == pytest.approx(0.5)
    assert availability(3, 1.0, 1.0) == pytest.approx(0.875)


def test_paper_worked_example_6_4_2():
    """3-member troupe, 1-hour lifetimes, 99.9% availability => replacement
    within 1/9 of the lifetime (6 minutes 40 seconds)."""
    repair = required_repair_time(3, lifetime=60.0, target_availability=0.999)
    assert repair == pytest.approx(60.0 / 9.0, rel=1e-9)
    # And 5 members allow 20 minutes (1/3 of the lifetime).
    repair5 = required_repair_time(5, lifetime=60.0,
                                   target_availability=0.999)
    assert repair5 == pytest.approx(20.0, rel=0.01)


def test_equation_6_2_inverts_6_1():
    """Plugging Eq 6.2's repair time back into Eq 6.1 recovers the target."""
    for n in (1, 2, 3, 5, 8):
        lifetime = 50.0
        target = 0.995
        repair = required_repair_time(n, lifetime, target)
        recovered = availability(n, 1.0 / lifetime, 1.0 / repair)
        assert recovered == pytest.approx(target, rel=1e-9)


def test_failed_member_distribution_sums_to_one():
    dist = failed_member_distribution(4, 0.3, 0.7)
    assert sum(dist) == pytest.approx(1.0)
    assert len(dist) == 5
    assert availability(4, 0.3, 0.7) == pytest.approx(1.0 - dist[-1])


def test_availability_validates():
    with pytest.raises(ValueError):
        availability(0, 1.0, 1.0)
    with pytest.raises(ValueError):
        availability(1, 0.0, 1.0)
    with pytest.raises(ValueError):
        required_repair_time(1, 1.0, 1.5)


def test_deadlock_probability_equation_5_1():
    # One member or one transaction: never deadlocks.
    assert deadlock_probability(5, 1) == 0.0
    assert deadlock_probability(1, 5) == 0.0
    # k=2, n=2: 1 - 1/2 = 0.5.
    assert deadlock_probability(2, 2) == pytest.approx(0.5)
    # k=3, n=3: 1 - (1/6)^2.
    assert deadlock_probability(3, 3) == pytest.approx(1 - (1 / 6.0) ** 2)


def test_deadlock_probability_approaches_certainty():
    assert deadlock_probability(6, 3) > 0.99


def test_deadlock_probability_validates():
    with pytest.raises(ValueError):
        deadlock_probability(0, 1)
    with pytest.raises(ValueError):
        deadlock_probability(1, 0)


@given(st.integers(min_value=1, max_value=200))
def test_property_harmonic_monotone(n):
    assert harmonic(n + 1) > harmonic(n)


@given(st.integers(min_value=1, max_value=10),
       st.floats(min_value=0.01, max_value=10.0),
       st.floats(min_value=0.01, max_value=10.0))
def test_property_availability_monotone_in_n(n, lam, mu):
    assert availability(n + 1, lam, mu) >= availability(n, lam, mu)


@given(st.integers(min_value=2, max_value=7),
       st.integers(min_value=2, max_value=6))
def test_property_deadlock_monotone(k, n):
    assert deadlock_probability(k + 1, n) >= deadlock_probability(k, n)
    assert deadlock_probability(k, n + 1) >= deadlock_probability(k, n)
    assert 0.0 <= deadlock_probability(k, n) <= 1.0
