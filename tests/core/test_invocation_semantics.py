"""Tests for invocation semantics (§4.3.7) and mid-call failure injection.

Nelson's argument, quoted by the paper: with concurrency, *parallel*
invocation semantics are needed to match the local case; serializing
incoming calls by arrival time "introduces the possibility of deadlock".
Circus itself was serial (no lightweight processes in 4.2BSD); this
runtime offers both, so the deadlock is demonstrable.
"""

import pytest

from repro.core import ExportedModule, TroupeRuntime
from repro.core.runtime import RuntimeConfig
from repro.harness import World
from repro.sim import Sleep


def test_parallel_execution_allows_mutual_callback():
    """A calls B while B is calling A: fine with parallel invocation."""
    world = World(machines=6, runtime_config=RuntimeConfig(
        execution="parallel"))
    troupe_holder = {}

    def make_a():
        def ping(ctx, args):
            return b"a-pong"

        def call_b(ctx, args):
            inner = yield from ctx.call(troupe_holder["b"], 0, 0, b"")
            return b"a-saw:" + inner
        return ExportedModule("a", {0: ping, 1: call_b})

    def make_b():
        def call_a(ctx, args):
            inner = yield from ctx.call(troupe_holder["a"], 0, 0, b"")
            return b"b-saw:" + inner
        return ExportedModule("b", {0: call_a})

    troupe_holder["a"], _ = world.make_troupe("a", make_a, degree=1)
    troupe_holder["b"], _ = world.make_troupe("b", make_b, degree=1)
    client = world.make_client()

    def body():
        # a.call_b -> b.call_a -> a.ping: requires a to serve a nested
        # call while its own outbound call is in progress.
        return (yield from client.call_troupe(troupe_holder["a"], 0, 1, b""))

    assert world.run(body()) == b"a-saw:b-saw:a-pong"


def test_serial_execution_deadlocks_on_mutual_callback():
    """The same program under serial invocation semantics deadlocks —
    the §4.3.7 deficiency Circus inherited from 4.2BSD."""
    world = World(machines=6, runtime_config=RuntimeConfig(
        execution="serial"))
    troupe_holder = {}

    def make_a():
        def ping(ctx, args):
            return b"a-pong"

        def call_b(ctx, args):
            inner = yield from ctx.call(troupe_holder["b"], 0, 0, b"")
            return b"a-saw:" + inner
        return ExportedModule("a", {0: ping, 1: call_b})

    def make_b():
        def call_a(ctx, args):
            inner = yield from ctx.call(troupe_holder["a"], 0, 0, b"")
            return b"b-saw:" + inner
        return ExportedModule("b", {0: call_a})

    troupe_holder["a"], _ = world.make_troupe("a", make_a, degree=1)
    troupe_holder["b"], _ = world.make_troupe("b", make_b, degree=1)
    client = world.make_client()
    finished = []

    def body():
        reply = yield from client.call_troupe(troupe_holder["a"], 0, 1, b"")
        finished.append(reply)

    world.spawn(body())
    world.sim.run(until=10000.0)
    # a's single serial executor is stuck inside call_b, so the nested
    # ping can never run: the call never completes.
    assert finished == []


def test_member_crash_between_send_and_return_is_masked():
    """A server member crashes after receiving the call but before
    returning; the unanimous collator proceeds with the survivors."""
    world = World(machines=6)
    crash_host = {}

    def make_member():
        index = len(crash_host)
        crash_host[index] = None

        def slow(ctx, args, _index=index):
            if _index == 0:
                # This member will be crashed mid-execution.
                yield Sleep(500.0)
                return b"never"
            yield Sleep(10.0)
            return b"survived"
        return ExportedModule("slow", {0: slow})

    troupe, runtimes = world.make_troupe("slow", make_member, degree=3)
    victim_host = troupe.members[0].process.host
    world.sim.schedule(50.0, world.machine(victim_host).crash)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b""))

    assert world.run(body()) == b"survived"


def test_degraded_troupe_keeps_exactly_once_after_member_loss():
    """After losing a member, subsequent calls still execute exactly once
    at each survivor."""
    world = World(machines=6)

    def echo_module():
        def echo(ctx, args):
            return b"e"
        return ExportedModule("echo", {0: echo})

    troupe, runtimes = world.make_troupe("echo", echo_module, degree=3)
    client = world.make_client()

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"")
        world.machine(troupe.members[1].process.host).crash()
        for _ in range(3):
            yield from client.call_troupe(troupe, 0, 0, b"")

    world.run(body())
    counts = [r.calls_executed for r in runtimes]
    assert counts[0] == 4
    assert counts[1] == 1    # crashed after the first call
    assert counts[2] == 4


def test_thread_id_depth_in_nested_serial_calls():
    """§3.4.1: the adopted-thread-ID stack nests and unwinds correctly
    through a three-deep chain (serial execution uses the shared stack)."""
    world = World(machines=8)
    depths = []
    troupes = {}

    def make_leaf():
        def leaf(ctx, args):
            runtime = ctx.runtime
            depths.append(runtime.threads.depth())
            return b"leaf"
        return ExportedModule("leaf", {0: leaf})

    troupes["leaf"], _ = world.make_troupe("leaf", make_leaf, degree=1)

    def make_mid():
        def mid(ctx, args):
            inner = yield from ctx.call(troupes["leaf"], 0, 0, b"")
            return b"mid:" + inner
        return ExportedModule("mid", {0: mid})

    troupes["mid"], mid_runtimes = world.make_troupe("mid", make_mid,
                                                     degree=1)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupes["mid"], 0, 0, b""))

    assert world.run(body()) == b"mid:leaf"
    assert depths == [1]  # the leaf adopted exactly one caller ID
    assert mid_runtimes[0].threads.depth() == 0  # fully released
