"""Tests for collation short-circuiting (§4.3.4): when a first-come or
quorum collator decides early, the runtime cancels the outstanding
waiters and tells the endpoint to forget the stragglers' returns."""

import pytest

from repro.core import FirstComeCollator, QuorumCollator
from repro.core.runtime import ExportedModule
from repro.harness import World
from repro.sim import Sleep


def make_staggered_module(delays, reply=None):
    """A module factory whose members reply after successive delays.
    ``reply`` fixes the response (needed for agreeing quorums); by
    default each member's reply names its delay."""
    remaining = iter(delays)

    def factory():
        delay = next(remaining)

        def proc(ctx, args):
            yield Sleep(delay)
            return reply if reply is not None \
                else b"reply-after-%d" % int(delay)
        return ExportedModule("staggered", {0: proc})
    return factory


def run_early_collation(collator, delays=(0.0, 400.0, 800.0), reply=None):
    world = World(machines=4)
    troupe, runtimes = world.make_troupe(
        "staggered", make_staggered_module(delays, reply=reply),
        degree=len(delays))
    client = world.make_client()

    def body():
        reply = yield from client.call_troupe(troupe, 0, 0, b"",
                                              collator=collator)
        decided_at = world.sim.now
        # Let the stragglers finish executing and send their returns.
        yield Sleep(max(delays) + 500.0)
        return reply, decided_at

    with world.watch() as probe:
        reply, decided_at = world.run(body())
    return world, client, runtimes, probe, reply, decided_at


def test_first_come_cancels_remaining_waiters():
    world, client, runtimes, probe, reply, decided_at = run_early_collation(
        FirstComeCollator())
    assert reply == b"reply-after-0"
    # Decided as soon as the fastest member answered, not after 800 ms.
    assert decided_at < 400.0
    # The outstanding waiters were cancelled and their returns forgotten:
    # nothing lingers in the client endpoint waiting for stragglers.
    stats = client.endpoint.stats()
    assert stats["buffered_returns"] == 0
    assert not client.endpoint._return_waiters
    assert not any(p.alive for p in world.sim.live_processes()
                   if p.name.startswith("await-"))


def test_quorum_cancels_remaining_waiters():
    world, client, runtimes, probe, reply, decided_at = run_early_collation(
        QuorumCollator(2), delays=(0.0, 100.0, 900.0), reply=b"agreed")
    assert reply == b"agreed"
    # Quorum of two: decided once the second member answered.
    assert 100.0 <= decided_at < 900.0
    stats = client.endpoint.stats()
    assert stats["buffered_returns"] == 0
    assert not client.endpoint._return_waiters


def test_exactly_once_holds_under_short_circuit():
    """§4.3: every member still executes the call exactly once even when
    the collator stopped listening early — and the invariant monitors
    (including the exactly-once monitor) stay green."""
    world, client, runtimes, probe, reply, _ = run_early_collation(
        FirstComeCollator())
    assert not probe.violations
    assert [r.calls_executed for r in runtimes] == [1, 1, 1]


def test_sequence_of_short_circuited_calls_leaves_no_state():
    """Repeated early-deciding calls must not accumulate endpoint state
    (forgotten returns, waiters, or watched transfers)."""
    world = World(machines=4)
    troupe, runtimes = world.make_troupe(
        "staggered", make_staggered_module((0.0, 200.0, 300.0) * 5),
        degree=3)
    client = world.make_client()

    def body():
        for _ in range(5):
            yield from client.call_troupe(troupe, 0, 0, b"",
                                          collator=FirstComeCollator())
        # The stragglers execute their queued calls serially; give the
        # slowest member (5 x 300 ms) time to drain and reply.
        yield Sleep(2500.0)

    world.run(body())
    stats = client.endpoint.stats()
    assert stats["buffered_returns"] == 0
    assert stats["watched_transfers"] == 0
    assert not client.endpoint._return_waiters
    assert [r.calls_executed for r in runtimes] == [5, 5, 5]
