"""Troupe consistency (§3.5.2): deterministic members stay identical.

"The global determinism property implies that when a server troupe is
called upon to execute a procedure, the invocation trees rooted at each
troupe member are identical: the members of the server troupe make the
same procedure calls and returns, with the same arguments and results, in
the same order."  These tests record each member's execution history and
compare them — including under packet loss and across nested calls.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ExportedModule
from repro.harness import World
from repro.net.network import NetworkConfig


def test_members_log_identical_histories():
    """A stateful module driven by a mixed call sequence: every member's
    (procedure, args, state-after) log is identical."""
    world = World(machines=6)
    logs = []

    def factory():
        state = {"total": 0}
        log = []
        logs.append(log)

        def add(ctx, args):
            state["total"] += int(args)
            log.append(("add", args, state["total"]))
            return b"%d" % state["total"]

        def reset(ctx, args):
            state["total"] = 0
            log.append(("reset", args, 0))
            return b"0"

        return ExportedModule("acc", {0: add, 1: reset})

    troupe, _ = world.make_troupe("acc", factory, degree=3)
    client = world.make_client()

    def body():
        for proc, arg in [(0, b"5"), (0, b"7"), (1, b""), (0, b"2"),
                          (0, b"11"), (1, b""), (0, b"1")]:
            yield from client.call_troupe(troupe, 0, proc, arg)

    world.run(body())
    assert len(logs[0]) == 7
    assert logs[0] == logs[1] == logs[2]


def test_histories_identical_under_packet_loss():
    world = World(machines=6, seed=13,
                  net_config=NetworkConfig(loss_probability=0.15))
    logs = []

    def factory():
        log = []
        logs.append(log)

        def record(ctx, args):
            log.append(args)
            return b"ok"
        return ExportedModule("rec", {0: record})

    troupe, _ = world.make_troupe("rec", factory, degree=3)
    client = world.make_client()

    def body():
        for i in range(12):
            yield from client.call_troupe(troupe, 0, 0, b"m%d" % i)

    world.run(body())
    expected = [b"m%d" % i for i in range(12)]
    assert logs[0] == expected
    assert logs[0] == logs[1] == logs[2]


def test_nested_call_trees_identical_across_members():
    """Replicated middle tier: each member of troupe A makes the same
    nested calls in the same order (the invocation-tree claim)."""
    world = World(machines=8)
    nested_logs = []

    def make_b():
        def double(ctx, args):
            return b"%d" % (int(args) * 2)
        return ExportedModule("b", {0: double})

    troupe_b, _ = world.make_troupe("b", make_b, degree=1)

    def make_a():
        log = []
        nested_logs.append(log)

        def work(ctx, args):
            n = int(args)
            first = yield from ctx.call(troupe_b, 0, 0, b"%d" % n)
            log.append(("call-b", n, first))
            second = yield from ctx.call(troupe_b, 0, 0, first)
            log.append(("call-b", int(first), second))
            return second
        return ExportedModule("a", {0: work})

    troupe_a, _ = world.make_troupe("a", make_a, degree=3)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe_a, 0, 0, b"3"))

    assert world.run(body()) == b"12"
    assert len(nested_logs[0]) == 2
    assert nested_logs[0] == nested_logs[1] == nested_logs[2]


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1000),
    loss=st.floats(min_value=0.0, max_value=0.2),
    ops=st.lists(st.integers(min_value=-50, max_value=50),
                 min_size=1, max_size=8),
)
def test_property_consistency_under_random_workloads(seed, loss, ops):
    """Whatever the workload and loss rate, all members converge to the
    same state and identical logs (troupe consistency is invariant)."""
    world = World(machines=5, seed=seed,
                  net_config=NetworkConfig(loss_probability=loss))
    states = []

    def factory():
        state = {"v": 0, "log": []}
        states.append(state)

        def apply(ctx, args):
            delta = int(args)
            state["v"] += delta
            state["log"].append(delta)
            return b"%d" % state["v"]
        return ExportedModule("acc", {0: apply})

    troupe, _ = world.make_troupe("acc", factory, degree=3)
    client = world.make_client()

    def body():
        replies = []
        for op in ops:
            replies.append((yield from client.call_troupe(
                troupe, 0, 0, b"%d" % op)))
        return replies

    replies = world.run(body())
    running = 0
    expected_replies = []
    for op in ops:
        running += op
        expected_replies.append(b"%d" % running)
    assert replies == expected_replies
    assert states[0] == states[1] == states[2]
    assert states[0]["v"] == sum(ops)
