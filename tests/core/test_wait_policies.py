"""Tests for server wait policies (§4.3.4/§4.3.5) and the watchdog."""

import pytest

from repro.core import ExportedModule, TroupeFailure
from repro.core.runtime import RuntimeConfig
from repro.harness import World
from repro.sim import Sleep


def echo_module():
    def echo(ctx, args):
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def recording_module(executions, world):
    def proc(ctx, args):
        executions.append((world.sim.now, len(ctx.callers),
                           ctx.group_complete))
        return b"ok"
    return ExportedModule("rec", {0: proc})


def test_server_wait_first_executes_on_first_arrival():
    world = World(machines=8, runtime_config=RuntimeConfig(
        server_wait="first"))
    executions = []
    server_troupe, _ = world.make_troupe(
        "rec", lambda: recording_module(executions, world), degree=1)
    client_troupe, client_runtimes = world.make_client_troupe(
        "clients", degree=2)

    def client_body(runtime, delay):
        def body():
            yield Sleep(delay)
            yield from runtime.call_troupe(server_troupe, 0, 0, b"x")
        return body

    world.spawn(client_body(client_runtimes[0], 0.0)())
    world.spawn(client_body(client_runtimes[1], 200.0)())
    world.sim.run()
    # Executed exactly once, without waiting for the slow member.
    assert len(executions) == 1
    assert executions[0][0] < 200.0


def test_server_wait_majority_needs_quorum():
    """§4.3.5: a single member of a 3-member client troupe is a minority;
    the server must not execute until a majority has called."""
    world = World(machines=10, runtime_config=RuntimeConfig(
        server_wait="majority", gather_timeout=100.0))
    executions = []
    server_troupe, _ = world.make_troupe(
        "rec", lambda: recording_module(executions, world), degree=1)
    client_troupe, client_runtimes = world.make_client_troupe(
        "clients", degree=3)

    def client_body(runtime, delay):
        def body():
            yield Sleep(delay)
            yield from runtime.call_troupe(server_troupe, 0, 0, b"x")
        return body

    # Only the first client calls early; the second much later.
    world.spawn(client_body(client_runtimes[0], 0.0)())
    world.spawn(client_body(client_runtimes[1], 500.0)())
    world.spawn(client_body(client_runtimes[2], 520.0)())
    world.sim.run()
    assert len(executions) == 1
    # Execution waited for the second call (majority of 3), despite the
    # gather timeout having fired long before.
    assert executions[0][0] >= 500.0
    assert executions[0][1] >= 2


def test_watchdog_reports_consistency():
    world = World(machines=6)
    troupe, _ = world.make_troupe("echo", echo_module, degree=3)
    client = world.make_client()

    def body():
        result, report = yield from client.call_troupe_watchdog(
            troupe, 0, 0, b"w")
        verdict = yield report.done
        return result, verdict, report.mismatches

    result, verdict, mismatches = world.run(body())
    assert result == b"echo:w"
    assert verdict is True
    assert mismatches == []


def test_watchdog_detects_divergent_member():
    counter = [0]

    def divergent_factory():
        index = counter[0]
        counter[0] += 1

        def proc(ctx, args, _index=index):
            yield Sleep(10.0 * _index)  # member 0 answers first
            return b"A" if _index != 2 else b"B"
        return ExportedModule("div", {0: proc})

    world = World(machines=6)
    troupe, _ = world.make_troupe("div", divergent_factory, degree=3)
    client = world.make_client()

    def body():
        result, report = yield from client.call_troupe_watchdog(
            troupe, 0, 0, b"")
        verdict = yield report.done
        return result, verdict, len(report.mismatches)

    result, verdict, mismatch_count = world.run(body())
    # Computation proceeded with the first answer...
    assert result == b"A"
    # ...and the watchdog caught the divergent replica afterwards.
    assert verdict is False
    assert mismatch_count == 1


def test_watchdog_counts_crashed_members():
    world = World(machines=6)
    troupe, _ = world.make_troupe("echo", echo_module, degree=3)
    world.machine(troupe.members[2].process.host).crash()
    client = world.make_client()

    def body():
        result, report = yield from client.call_troupe_watchdog(
            troupe, 0, 0, b"c")
        verdict = yield report.done
        return result, verdict, len(report.crashed)

    result, verdict, crashed = world.run(body())
    assert result == b"echo:c"
    assert verdict is True
    assert crashed == 1


def test_watchdog_total_failure():
    world = World(machines=6)
    troupe, _ = world.make_troupe("echo", echo_module, degree=2)
    for member in troupe.members:
        world.machine(member.process.host).crash()
    client = world.make_client()

    def body():
        yield from client.call_troupe_watchdog(troupe, 0, 0, b"")

    with pytest.raises(TroupeFailure):
        world.run(body())


def test_majority_wait_prevents_minority_partition_divergence():
    """The full §4.3.5 scenario: a partition splits a 3-member client
    troupe 2/1; servers gather under majority wait, so only the majority
    side's call executes — the minority member cannot make the troupe
    diverge."""
    world = World(machines=10, runtime_config=RuntimeConfig(
        server_wait="majority", gather_timeout=100.0))
    executions = []
    server_troupe, _ = world.make_troupe(
        "rec", lambda: recording_module(executions, world), degree=1)
    client_troupe, client_runtimes = world.make_client_troupe(
        "clients", degree=3)
    server_host = server_troupe.members[0].process.host
    majority_hosts = [client_runtimes[0].process.host,
                      client_runtimes[1].process.host]
    minority_host = client_runtimes[2].process.host
    world.net.partition([majority_hosts + [server_host], [minority_host]])

    def client_body(runtime):
        def body():
            try:
                yield from runtime.call_troupe(server_troupe, 0, 0, b"x")
            except Exception:
                pass  # the minority member times out eventually
        return body

    for runtime in client_runtimes:
        world.spawn(client_body(runtime)())
    world.sim.run(until=5000.0)
    assert len(executions) == 1
    assert executions[0][1] == 2  # served the majority side's two callers
