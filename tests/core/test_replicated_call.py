"""Tests for replicated procedure calls (§4.3): one-to-many, many-to-one,
many-to-many, collators, crash masking, and stale bindings."""

import pytest

from repro.core import (
    CollationError,
    FirstComeCollator,
    MajorityCollator,
    StaleBindingError,
    TroupeFailure,
)
from repro.core.runtime import ExportedModule
from repro.harness import World
from repro.rpc import RemoteError
from repro.sim import Sleep


def echo_module():
    def echo(ctx, args):
        return b"echo:" + args
    return ExportedModule("echo", {0: echo})


def test_one_to_many_call_unanimous():
    world = World(machines=4)
    troupe, runtimes = world.make_troupe("echo", echo_module, degree=3)
    client = world.make_client()

    def body():
        reply = yield from client.call_troupe(troupe, 0, 0, b"hello")
        return reply

    assert world.run(body()) == b"echo:hello"
    # Exactly-once at every member.
    assert [r.calls_executed for r in runtimes] == [1, 1, 1]


def test_degree_one_is_conventional_rpc():
    world = World(machines=2)
    troupe, _ = world.make_troupe("echo", echo_module, degree=1)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b"x"))

    assert world.run(body()) == b"echo:x"


def test_sequence_of_calls():
    world = World(machines=4)
    troupe, runtimes = world.make_troupe("echo", echo_module, degree=3)
    client = world.make_client()

    def body():
        out = []
        for i in range(5):
            out.append((yield from client.call_troupe(troupe, 0, 0, b"%d" % i)))
        return out

    assert world.run(body()) == [b"echo:%d" % i for i in range(5)]
    assert [r.calls_executed for r in runtimes] == [5, 5, 5]


def test_call_masks_member_crash():
    """A replicated program functions as long as one member survives."""
    world = World(machines=4)
    troupe, runtimes = world.make_troupe("echo", echo_module, degree=3)
    client = world.make_client()
    # Crash one server machine before the call.
    world.machine(troupe.members[0].process.host).crash()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b"survive"))

    assert world.run(body()) == b"echo:survive"


def test_total_failure_raises():
    world = World(machines=4)
    troupe, _ = world.make_troupe("echo", echo_module, degree=2)
    client = world.make_client()
    for member in troupe.members:
        world.machine(member.process.host).crash()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b"void"))

    with pytest.raises(TroupeFailure):
        world.run(body())


def test_remote_error_propagates():
    def failing(ctx, args):
        raise RemoteError("AppError", "deliberate")

    world = World(machines=4)
    troupe, _ = world.make_troupe(
        "bad", ExportedModule("bad", {0: failing}), degree=3)
    client = world.make_client()

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"")

    with pytest.raises(RemoteError) as info:
        world.run(body())
    assert info.value.kind == "AppError"


def test_unknown_module_and_procedure():
    world = World(machines=2)
    troupe, _ = world.make_troupe("echo", echo_module, degree=1)
    client = world.make_client()

    def call(module, proc):
        def body():
            yield from client.call_troupe(troupe, module, proc, b"")
        return body

    with pytest.raises(RemoteError) as info:
        world.run(call(9, 0)())
    assert info.value.kind == "BadModule"
    with pytest.raises(RemoteError) as info:
        world.run(call(0, 9)())
    assert info.value.kind == "BadProcedure"


def test_unanimous_collator_detects_divergent_replicas():
    """A nondeterministic 'replica' is caught by the unanimous collator
    (error detection, §4.3.4)."""
    counter = [0]

    def make_divergent():
        def proc(ctx, args):
            counter[0] += 1
            return b"reply-%d" % counter[0]  # different at each member!
        return ExportedModule("divergent", {0: proc})

    world = World(machines=4)
    troupe, _ = world.make_troupe("divergent", make_divergent, degree=3)
    client = world.make_client()

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"")

    with pytest.raises(CollationError):
        world.run(body())


def test_first_come_collator_returns_fastest():
    """First-come: execution time is set by the fastest member (§4.3.4)."""
    def make_member(delay):
        def proc(ctx, args):
            yield Sleep(delay)
            return b"done-%d" % int(delay)
        return ExportedModule("slowpoke", {0: proc})

    world = World(machines=4)
    delays = iter([300.0, 5.0, 150.0])
    troupe, _ = world.make_troupe(
        "slowpoke", lambda: make_member(next(delays)), degree=3)
    client = world.make_client()

    def body():
        start = world.sim.now
        reply = yield from client.call_troupe(
            troupe, 0, 0, b"", collator=FirstComeCollator())
        return reply, world.sim.now - start

    reply, elapsed = world.run(body())
    assert reply == b"done-5"
    assert elapsed < 150.0


def test_majority_collator_outvotes_one_divergent_member():
    counter = [0]

    def make_member():
        index = counter[0]
        counter[0] += 1

        def proc(ctx, args):
            if index == 0:
                return b"WRONG"
            return b"right"
        return ExportedModule("voted", {0: proc})

    world = World(machines=4)
    troupe, _ = world.make_troupe("voted", make_member, degree=3)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(
            troupe, 0, 0, b"", collator=MajorityCollator()))

    assert world.run(body()) == b"right"


def test_stale_troupe_id_rejected():
    """§6.2: a call bearing an old destination troupe ID must not execute."""
    world = World(machines=4)
    troupe, runtimes = world.make_troupe("echo", echo_module, degree=2)
    client = world.make_client()
    # The troupe is re-registered under a new ID (membership change).
    for runtime in runtimes:
        runtime.set_troupe_id(troupe.troupe_id + 1000)

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"stale")

    with pytest.raises(StaleBindingError):
        world.run(body())
    assert all(r.calls_executed == 0 for r in runtimes)


def test_many_to_one_executes_once_per_member():
    """A 2-member client troupe calling a 3-member server troupe: each
    server member executes exactly once (the many-to-many case, §4.3.3)."""
    world = World(machines=8)
    server_troupe, server_runtimes = world.make_troupe(
        "echo", echo_module, degree=3)
    client_troupe, client_runtimes = world.make_client_troupe(
        "clients", degree=2)

    replies = []

    def client_body(runtime):
        def body():
            reply = yield from runtime.call_troupe(server_troupe, 0, 0, b"mm")
            replies.append(reply)
        return body

    for runtime in client_runtimes:
        world.spawn(client_body(runtime)())
    world.sim.run()
    assert replies == [b"echo:mm", b"echo:mm"]
    # Exactly-once at each server member despite two call messages each.
    assert [r.calls_executed for r in server_runtimes] == [1, 1, 1]


def test_many_to_one_waits_for_all_client_members():
    """The server gathers the call messages of the whole client troupe
    before executing (default unanimous server wait)."""
    world = World(machines=8)
    executions = []

    def make_module():
        def proc(ctx, args):
            executions.append(world.sim.now)
            return b"ok"
        return ExportedModule("gather", {0: proc})

    server_troupe, _ = world.make_troupe("gather", make_module, degree=1)
    client_troupe, client_runtimes = world.make_client_troupe(
        "clients", degree=2)

    def slow_client(runtime, delay):
        def body():
            yield Sleep(delay)
            yield from runtime.call_troupe(server_troupe, 0, 0, b"x")
        return body

    world.spawn(slow_client(client_runtimes[0], 0.0)())
    world.spawn(slow_client(client_runtimes[1], 80.0)())
    world.sim.run()
    assert len(executions) == 1
    # Execution happened only after the slow member's call arrived.
    assert executions[0] >= 80.0


def test_client_troupe_member_crash_does_not_block_server():
    """If a client troupe member crashes before calling, the server's
    gather times out and the call still executes for the live members."""
    world = World(machines=8)
    server_troupe, server_runtimes = world.make_troupe(
        "echo", echo_module, degree=1)
    client_troupe, client_runtimes = world.make_client_troupe(
        "clients", degree=2)
    # One client member dies before it can send its call message.
    world.machine(client_runtimes[1].process.host).crash()

    def body():
        return (yield from client_runtimes[0].call_troupe(
            server_troupe, 0, 0, b"alone"))

    assert world.run(body()) == b"echo:alone"
    assert server_runtimes[0].calls_executed == 1


def test_nested_calls_propagate_thread_id():
    """Troupe A's procedure calls troupe B; B sees A's adopted thread ID
    (the §3.4.1 propagation algorithm), matching the original caller."""
    world = World(machines=8)
    seen_thread_ids = []

    def make_b():
        def proc(ctx, args):
            seen_thread_ids.append(ctx.thread_id)
            return b"from-b"
        return ExportedModule("b", {0: proc})

    troupe_b, _ = world.make_troupe("b", make_b, degree=1)

    def make_a():
        def proc(ctx, args):
            inner = yield from ctx.call(troupe_b, 0, 0, b"")
            return b"a-saw:" + inner
        return ExportedModule("a", {0: proc})

    troupe_a, _ = world.make_troupe("a", make_a, degree=1)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe_a, 0, 0, b""))

    assert world.run(body()) == b"a-saw:from-b"
    assert seen_thread_ids == [client.threads.current]


def test_replicated_middle_tier_nested_calls_execute_once():
    """client -> troupe A (x2) -> troupe B (x2): B executes once per member
    even though it receives call messages from both A members."""
    world = World(machines=8)

    def make_b():
        def proc(ctx, args):
            return b"B"
        return ExportedModule("b", {0: proc})

    troupe_b, b_runtimes = world.make_troupe("b", make_b, degree=2)

    def make_a():
        def proc(ctx, args):
            inner = yield from ctx.call(troupe_b, 0, 0, b"")
            return b"A+" + inner
        return ExportedModule("a", {0: proc})

    troupe_a, a_runtimes = world.make_troupe("a", make_a, degree=2)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe_a, 0, 0, b""))

    assert world.run(body()) == b"A+B"
    assert [r.calls_executed for r in a_runtimes] == [1, 1]
    assert [r.calls_executed for r in b_runtimes] == [1, 1]


def test_result_stream_explicit_replication():
    """§7.4: iterate over per-member responses, stop when satisfied."""
    counter = [0]

    def make_member():
        index = counter[0]
        counter[0] += 1

        def proc(ctx, args):
            yield Sleep(10.0 * (index + 1))
            return b"member-%d" % index
        return ExportedModule("stream", {0: proc})

    world = World(machines=4)
    troupe, _ = world.make_troupe("stream", make_member, degree=3)
    client = world.make_client()

    def body():
        stream = yield from client.call_troupe_stream(troupe, 0, 0, b"")
        results = []
        while True:
            result = yield from stream.next()
            if result is None:
                break
            results.append((result.status, result.data))
            if len(results) == 2:
                stream.cancel()
                break
        return results

    results = world.run(body())
    assert len(results) == 2
    assert all(status == "ok" for status, _ in results)


def test_multicast_reduces_send_operations():
    """§4.3.3: with multicast, sending a call to an n-member troupe costs
    one sendmsg instead of n."""
    from repro.core.runtime import RuntimeConfig

    def measure(use_multicast):
        world = World(machines=6, runtime_config=RuntimeConfig(
            use_multicast=use_multicast))
        troupe, _ = world.make_troupe("echo", echo_module, degree=4)
        client = world.make_client()

        def body():
            yield from client.call_troupe(troupe, 0, 0, b"mc")

        world.run(body())
        return (client.process.syscall_counts.get("sendmsg", 0),
                world.net.multicasts_sent)

    mc_sends, mc_casts = measure(True)
    p2p_sends, p2p_casts = measure(False)
    assert mc_casts >= 1 and p2p_casts == 0
    assert mc_sends < p2p_sends
