"""Tests for collators (§4.3.6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    CollationError,
    FirstComeCollator,
    MajorityCollator,
    QuorumCollator,
    UnanimousCollator,
)
from repro.core.collators import FunctionCollator


def feed(collator, expected, values):
    """Feed values; return (decided_early, result_or_exception)."""
    collator.reset(expected)
    for i, value in enumerate(values):
        done, result = collator.add("src%d" % i, value)
        if done and not collator.needs_all:
            return True, result
    return False, collator.finish()


def test_unanimous_agreement():
    early, result = feed(UnanimousCollator(), 3, [b"x", b"x", b"x"])
    assert not early
    assert result == b"x"


def test_unanimous_disagreement_raises():
    collator = UnanimousCollator()
    collator.reset(2)
    collator.add("a", b"x")
    with pytest.raises(CollationError):
        collator.add("b", b"y")


def test_unanimous_no_responses_raises():
    collator = UnanimousCollator()
    collator.reset(3)
    with pytest.raises(CollationError):
        collator.finish()


def test_first_come_decides_immediately():
    early, result = feed(FirstComeCollator(), 3, [b"fast", b"slow"])
    assert early
    assert result == b"fast"


def test_majority_decides_early():
    collator = MajorityCollator()
    collator.reset(3)
    assert collator.add("a", b"v") == (False, None)
    done, result = collator.add("b", b"v")
    assert done and result == b"v"


def test_majority_no_majority_raises():
    collator = MajorityCollator()
    collator.reset(3)
    collator.add("a", b"x")
    collator.add("b", b"y")
    collator.add("c", b"z")
    with pytest.raises(CollationError):
        collator.finish()


def test_majority_of_respondents_is_not_enough():
    """2-of-2 responses agreeing is not a majority of 5 expected."""
    collator = MajorityCollator()
    collator.reset(5)
    collator.add("a", b"v")
    collator.add("b", b"v")
    with pytest.raises(CollationError):
        collator.finish()


def test_quorum_collator():
    collator = QuorumCollator(2)
    collator.reset(5)
    assert collator.add("a", b"v") == (False, None)
    done, result = collator.add("b", b"v")
    assert done and result == b"v"


def test_quorum_not_reached():
    collator = QuorumCollator(3)
    collator.reset(3)
    collator.add("a", b"x")
    collator.add("b", b"y")
    with pytest.raises(CollationError):
        collator.finish()


def test_quorum_validates_argument():
    with pytest.raises(ValueError):
        QuorumCollator(0)


def test_function_collator_averages():
    """The §7.4 temperature-controller style application collator."""
    def average(pairs):
        values = [v for _, v in pairs]
        return sum(values) / len(values)

    collator = FunctionCollator(average)
    collator.reset(3)
    for i, v in enumerate([10.0, 20.0, 30.0]):
        collator.add(i, v)
    assert collator.finish() == pytest.approx(20.0)


@given(st.lists(st.binary(min_size=1, max_size=4), min_size=1, max_size=9))
def test_property_majority_agrees_with_counting(values):
    """The majority collator returns v iff v has > n/2 occurrences."""
    from collections import Counter
    collator = MajorityCollator()
    collator.reset(len(values))
    outcome = None
    for i, v in enumerate(values):
        done, result = collator.add(i, v)
        if done:
            outcome = result
    counts = Counter(values)
    top, top_count = counts.most_common(1)[0]
    if top_count * 2 > len(values):
        assert outcome == top or collator.finish() == top
    else:
        with pytest.raises(CollationError):
            collator.finish()


@given(st.lists(st.binary(max_size=4), min_size=1, max_size=8))
def test_property_unanimous_iff_all_equal(values):
    collator = UnanimousCollator()
    collator.reset(len(values))
    try:
        for i, v in enumerate(values):
            collator.add(i, v)
        result = collator.finish()
    except CollationError:
        assert len(set(values)) > 1
    else:
        assert len(set(values)) == 1
        assert result == values[0]
