"""Tests for weighted voting (§4.3.6 / Gifford)."""

import pytest

from repro.core import CollationError, ExportedModule, WeightedVotingCollator
from repro.harness import World
from repro.sim import Sleep


def test_weighted_quorum_early_decision():
    collator = WeightedVotingCollator(quorum=3, weights={"a": 2, "b": 1})
    collator.reset(3)
    assert collator.add("a", b"v") == (False, None)   # weight 2 < 3
    done, value = collator.add("b", b"v")             # 2 + 1 = 3
    assert done and value == b"v"


def test_weighted_quorum_not_reached():
    collator = WeightedVotingCollator(quorum=5)
    collator.reset(3)
    collator.add("a", b"x")
    collator.add("b", b"y")
    collator.add("c", b"x")
    with pytest.raises(CollationError):
        collator.finish()


def test_heavy_member_outvotes_two_light_ones():
    collator = WeightedVotingCollator(quorum=3, weights={"heavy": 3})
    collator.reset(3)
    done, value = collator.add("heavy", b"H")
    assert done and value == b"H"


def test_default_weight_applies():
    collator = WeightedVotingCollator(quorum=2, default_weight=2)
    collator.reset(2)
    done, value = collator.add("anyone", b"v")
    assert done and value == b"v"


def test_validates_quorum():
    with pytest.raises(ValueError):
        WeightedVotingCollator(quorum=0)


def test_weighted_voting_over_a_real_troupe():
    """A read quorum over a 3-member troupe where one trusted member
    carries weight 2: its response plus any other decides."""
    world = World(machines=5)
    counter = [0]

    def factory():
        index = counter[0]
        counter[0] += 1

        def read(ctx, args, _index=index):
            yield Sleep(10.0 * (3 - _index))  # member 2 answers first
            return b"value"
        return ExportedModule("store", {0: read})

    troupe, _ = world.make_troupe("store", factory, degree=3)
    client = world.make_client()
    weights = {member.process: 2 if i == 0 else 1
               for i, member in enumerate(troupe.members)}

    def body():
        start = world.sim.now
        result = yield from client.call_troupe(
            troupe, 0, 0, b"",
            collator=WeightedVotingCollator(quorum=3, weights=weights))
        weighted_elapsed = world.sim.now - start
        start = world.sim.now
        yield from client.call_troupe(troupe, 0, 0, b"")  # unanimous
        unanimous_elapsed = world.sim.now - start
        return result, weighted_elapsed, unanimous_elapsed

    result, weighted_elapsed, unanimous_elapsed = world.run(body())
    assert result == b"value"
    # The weighted quorum decided without waiting for the slowest member.
    assert weighted_elapsed < unanimous_elapsed
