"""Tests for CPU accounting and syscall wrappers (Table 4.2 cost model)."""

import pytest

from repro.host import Machine, SyscallCostModel, TABLE_4_2_COSTS
from repro.net import Network
from repro.sim import Simulator


def make_proc():
    sim = Simulator()
    net = Network(sim, seed=1)
    m = Machine(sim, net, "m0")
    other = Machine(sim, net, "m1")
    return sim, net, m.spawn_process(), other.spawn_process()


def test_syscall_charges_kernel_time_and_advances_clock():
    sim, net, proc, _ = make_proc()

    def body():
        yield from proc.syscall("sendmsg")
        return sim.now

    assert sim.run_process(body()) == pytest.approx(8.1)
    assert proc.kernel_time == pytest.approx(8.1)
    assert proc.user_time == 0.0
    assert proc.syscall_counts["sendmsg"] == 1


def test_unknown_syscall_rejected():
    sim, net, proc, _ = make_proc()

    def body():
        yield from proc.syscall("forkbomb")

    with pytest.raises(KeyError):
        sim.run_process(body())


def test_compute_charges_user_time():
    sim, net, proc, _ = make_proc()

    def body():
        yield from proc.compute(5.0)

    sim.run_process(body())
    assert proc.user_time == pytest.approx(5.0)
    assert proc.kernel_time == 0.0


def test_rusage_reports_user_and_kernel():
    sim, net, proc, _ = make_proc()

    def body():
        yield from proc.compute(2.0)
        yield from proc.syscall("select")
        user, kernel = proc.rusage()
        return user, kernel

    user, kernel = sim.run_process(body())
    assert user == pytest.approx(2.0)
    # select (1.8) plus the getrusage charge itself (0.7).
    assert kernel == pytest.approx(1.8 + 0.7)


def test_sendmsg_recvmsg_roundtrip():
    sim, net, client, server = make_proc()
    client_sock = client.udp_socket(100)
    server_sock = server.udp_socket(200)

    def server_body():
        dgram = yield from server.recvmsg(server_sock)
        yield from server.sendmsg(server_sock, b"pong", dgram.src)

    def client_body():
        yield from client.sendmsg(client_sock, b"ping", server_sock.addr)
        dgram = yield from client.recvmsg(client_sock, timeout=1000.0)
        return dgram.payload

    sim.spawn(server_body())
    assert sim.run_process(client_body()) == b"pong"
    assert client.syscall_counts == {"sendmsg": 1, "recvmsg": 1}
    assert server.syscall_counts == {"sendmsg": 1, "recvmsg": 1}


def test_recvmsg_timeout_returns_none():
    sim, net, client, _ = make_proc()
    sock = client.udp_socket(100)

    def body():
        dgram = yield from client.recvmsg(sock, timeout=10.0)
        return dgram, sim.now

    dgram, now = sim.run_process(body())
    assert dgram is None
    assert now == pytest.approx(10.0)
    # No data was copied out, so no recvmsg charge.
    assert "recvmsg" not in client.syscall_counts


def test_select_returns_ready_socket_without_consuming():
    sim, net, client, server = make_proc()
    client_sock = client.udp_socket(100)
    server_sock = server.udp_socket(200)

    def server_body():
        yield from server.sendmsg(server_sock, b"data", client_sock.addr)

    def client_body():
        ready = yield from client.select([client_sock], timeout=1000.0)
        assert ready == [client_sock]
        dgram = yield from client.recvmsg(client_sock)
        return dgram.payload

    sim.spawn(server_body())
    assert sim.run_process(client_body()) == b"data"
    assert client.syscall_counts["select"] == 1


def test_select_timeout_returns_empty():
    sim, net, client, _ = make_proc()
    sock = client.udp_socket(100)

    def body():
        ready = yield from client.select([sock], timeout=5.0)
        return ready

    assert sim.run_process(body()) == []


def test_gettimeofday_returns_sim_time():
    sim, net, proc, _ = make_proc()

    def body():
        t = yield from proc.gettimeofday()
        return t

    # gettimeofday itself takes 0.7ms; it returns the time when it completes.
    assert sim.run_process(body()) == pytest.approx(0.7)


def test_timer_rearm_charges_setitimer():
    sim, net, proc, _ = make_proc()
    proc.timers.after(5.0, lambda: None)
    sim.run()
    assert proc.syscall_counts.get("setitimer", 0) >= 1


def test_cost_model_scaling():
    model = SyscallCostModel(TABLE_4_2_COSTS, scale=0.5)
    assert model.cost("sendmsg") == pytest.approx(4.05)
    faster = model.with_scale(0.5)
    assert faster.cost("sendmsg") == pytest.approx(2.025)


def test_cost_model_rejects_bad_scale():
    with pytest.raises(ValueError):
        SyscallCostModel(scale=0.0)


def test_dead_process_rejects_syscalls():
    sim, net, proc, _ = make_proc()
    proc.machine.crash()

    def body():
        yield from proc.syscall("sendmsg")

    from repro.host import MachineCrashed
    with pytest.raises(MachineCrashed):
        sim.run_process(body())
