"""Tests for machines, crash/restart, and OS processes."""

import pytest

from repro.host import Machine, MachineCrashed
from repro.net import Network
from repro.sim import Simulator, Sleep


def make_world(n=2):
    sim = Simulator()
    net = Network(sim, seed=5)
    machines = [Machine(sim, net, "m%d" % i) for i in range(n)]
    return sim, net, machines


def test_machine_registers_host():
    sim, net, (m0, m1) = make_world()
    assert net.host("m0") is m0.host
    assert m0.up


def test_spawn_process_assigns_pids():
    sim, net, (m0, _) = make_world()
    p1 = m0.spawn_process()
    p2 = m0.spawn_process()
    assert p1.pid != p2.pid
    assert m0.processes == [p1, p2]


def test_crash_kills_threads():
    sim, net, (m0, _) = make_world()
    proc = m0.spawn_process()
    log = []

    def body():
        try:
            yield Sleep(100.0)
            log.append("survived")
        except MachineCrashed:
            log.append("crashed")
            raise

    proc.spawn(body())
    sim.schedule(5.0, m0.crash)
    sim.run()
    assert log == ["crashed"]
    assert not m0.up
    assert not proc.alive
    assert m0.processes == []


def test_crash_drops_network_traffic():
    sim, net, (m0, m1) = make_world()
    p0 = m0.spawn_process()
    p1 = m1.spawn_process()
    sock0 = p0.udp_socket(100)
    sock1 = p1.udp_socket(200)
    m1.crash()
    sock0.sendto(b"x", sock1.addr)
    sim.run()
    assert net.packets_delivered == 0


def test_restart_brings_machine_back_empty():
    sim, net, (m0, _) = make_world()
    m0.spawn_process()
    m0.crash()
    m0.restart()
    assert m0.up
    assert m0.processes == []
    assert m0.crash_count == 1
    # New processes can be spawned after restart.
    m0.spawn_process()


def test_spawn_on_crashed_machine_rejected():
    sim, net, (m0, _) = make_world()
    m0.crash()
    with pytest.raises(MachineCrashed):
        m0.spawn_process()


def test_crash_listener_fires():
    sim, net, (m0, _) = make_world()
    events = []
    m0.on_crash(lambda m: events.append(("crash", m.name)))
    m0.on_restart(lambda m: events.append(("restart", m.name)))
    m0.crash()
    m0.restart()
    assert events == [("crash", "m0"), ("restart", "m0")]


def test_attributes():
    sim = Simulator()
    net = Network(sim)
    m = Machine(sim, net, "UCB-Monet",
                attributes={"memory": 10, "has-floating-point": True})
    assert m.attribute("name") == "UCB-Monet"
    assert m.attribute("memory") == 10
    assert m.attribute("missing") is None
    m.set_attribute("memory", 16)
    assert m.attribute("memory") == 16


def test_process_exit_is_not_a_crash():
    sim, net, (m0, _) = make_world()
    proc = m0.spawn_process()
    proc.exit()
    assert m0.up
    assert m0.processes == []
    assert not proc.alive
