"""Tests for the crash/repair failure model (§6.4.2 substrate)."""

import pytest

from repro.host import FailureModel, Machine
from repro.net import Network
from repro.sim import Simulator


def make_machines(n):
    sim = Simulator()
    net = Network(sim, seed=3)
    machines = [Machine(sim, net, "m%d" % i) for i in range(n)]
    return sim, machines


def test_failures_and_repairs_occur():
    sim, machines = make_machines(3)
    model = FailureModel(sim, machines, failure_rate=1 / 50.0,
                         repair_rate=1 / 10.0, seed=1)
    model.start()
    sim.run(until=5000.0)
    assert model.total_failures > 10
    assert model.total_repairs > 10


def test_on_repair_callback():
    sim, machines = make_machines(1)
    repaired = []
    model = FailureModel(sim, machines, failure_rate=1 / 20.0,
                         repair_rate=1 / 5.0, seed=2,
                         on_repair=lambda m: repaired.append(m.name))
    model.start()
    sim.run(until=500.0)
    assert repaired
    assert set(repaired) == {"m0"}


def test_single_machine_availability_matches_closed_form():
    # For n=1, A = mu / (lambda + mu).
    sim, machines = make_machines(1)
    lam, mu = 1 / 40.0, 1 / 10.0
    model = FailureModel(sim, machines, failure_rate=lam, repair_rate=mu,
                         seed=4)
    model.start()
    sim.run(until=400000.0)
    expected = mu / (lam + mu)
    assert model.measured_availability() == pytest.approx(expected, abs=0.03)


def test_replication_improves_availability():
    def measure(n, seed):
        sim, machines = make_machines(n)
        model = FailureModel(sim, machines, failure_rate=1 / 20.0,
                             repair_rate=1 / 20.0, seed=seed)
        model.start()
        sim.run(until=200000.0)
        return model.measured_availability()

    a1 = measure(1, 7)
    a3 = measure(3, 7)
    assert a3 > a1
    # Equation 6.1 with lambda = mu: A = 1 - (1/2)^n.
    assert a1 == pytest.approx(0.5, abs=0.05)
    assert a3 == pytest.approx(0.875, abs=0.05)


def test_invalid_rates_rejected():
    sim, machines = make_machines(1)
    with pytest.raises(ValueError):
        FailureModel(sim, machines, failure_rate=0.0, repair_rate=1.0)


def test_measured_availability_requires_start():
    sim, machines = make_machines(1)
    model = FailureModel(sim, machines, failure_rate=1.0, repair_rate=1.0)
    with pytest.raises(RuntimeError):
        model.measured_availability()


def test_stop_clears_driver_processes():
    sim, machines = make_machines(2)
    model = FailureModel(sim, machines, failure_rate=1 / 50.0,
                         repair_rate=1 / 10.0, seed=1)
    model.start()
    assert model.running
    assert len(model._processes) == 2
    sim.run(until=500.0)
    model.stop()
    assert not model.running
    assert model._processes == []
    # Driving really stopped: no further failures accumulate.
    failures = model.total_failures
    sim.run(until=5000.0)
    assert model.total_failures == failures


def test_double_start_does_not_double_drive():
    sim, machines = make_machines(1)
    model = FailureModel(sim, machines, failure_rate=1 / 50.0,
                         repair_rate=1 / 10.0, seed=1)
    model.start()
    model.start()   # no-op while running
    assert len(model._processes) == 1


def test_stop_is_idempotent():
    sim, machines = make_machines(1)
    model = FailureModel(sim, machines, failure_rate=1 / 50.0,
                         repair_rate=1 / 10.0, seed=1)
    model.start()
    sim.run(until=200.0)
    model.stop()
    model.stop()
    assert model._processes == []
    assert not model.running


def test_start_after_stop_begins_new_epoch():
    sim, machines = make_machines(1)
    model = FailureModel(sim, machines, failure_rate=1 / 20.0,
                         repair_rate=1 / 5.0, seed=2)
    model.start()
    sim.run(until=500.0)
    model.stop()
    after_first = model.total_failures
    assert after_first > 0
    model.start()
    assert model.running
    assert len(model._processes) == 1
    sim.run(until=1500.0)
    assert model.total_failures > after_first
