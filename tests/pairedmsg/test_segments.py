"""Tests for the segment wire format (Figure 4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.pairedmsg import segments as seg
from repro.pairedmsg import (
    MSG_CALL,
    MSG_RETURN,
    MessageTooLarge,
    Segment,
    SegmentFormatError,
    split_message,
)


def test_header_is_eight_bytes():
    assert seg.HEADER_SIZE == 8


def test_encode_decode_roundtrip():
    original = Segment(msg_type=MSG_CALL, please_ack=True, ack=False,
                       total_segments=3, segment_number=2,
                       call_number=0xDEADBEEF, data=b"payload")
    decoded = seg.decode(original.encode())
    assert decoded == original


def test_decode_short_datagram_rejected():
    with pytest.raises(SegmentFormatError):
        seg.decode(b"\x00" * 7)


def test_decode_bad_type_rejected():
    raw = Segment(MSG_CALL, False, False, 1, 1, 0).encode()
    with pytest.raises(SegmentFormatError):
        seg.decode(b"\x09" + raw[1:])


def test_decode_bad_control_bits_rejected():
    raw = bytearray(Segment(MSG_CALL, False, False, 1, 1, 0).encode())
    raw[1] = 0x80
    with pytest.raises(SegmentFormatError):
        seg.decode(bytes(raw))


def test_split_empty_message_gives_one_segment():
    segs = split_message(MSG_CALL, 7, b"", max_data=100)
    assert len(segs) == 1
    assert segs[0].segment_number == 1
    assert segs[0].total_segments == 1
    assert segs[0].data == b""


def test_split_fills_segments_in_order():
    segs = split_message(MSG_RETURN, 9, b"abcdefghij", max_data=4)
    assert [s.data for s in segs] == [b"abcd", b"efgh", b"ij"]
    assert [s.segment_number for s in segs] == [1, 2, 3]
    assert all(s.total_segments == 3 for s in segs)
    assert all(s.call_number == 9 for s in segs)


def test_split_too_large_rejected():
    with pytest.raises(MessageTooLarge):
        split_message(MSG_CALL, 0, b"x" * 256, max_data=1)


def test_split_bad_call_number_rejected():
    with pytest.raises(ValueError):
        split_message(MSG_CALL, -1, b"", max_data=10)
    with pytest.raises(ValueError):
        split_message(MSG_CALL, 2 ** 32, b"", max_data=10)


def test_make_ack():
    ack = seg.make_ack(MSG_CALL, 5, 4, 2)
    assert ack.ack and not ack.please_ack
    assert ack.segment_number == 2
    assert ack.data == b""
    assert seg.decode(ack.encode()) == ack


def test_probe_and_reply_roundtrip():
    probe = seg.make_probe(3)
    assert probe.msg_type == seg.MSG_PROBE
    assert seg.decode(probe.encode()) == probe
    reply = seg.make_probe_reply(3)
    assert reply.msg_type == seg.MSG_PROBE_REPLY
    assert seg.decode(reply.encode()) == reply


@given(
    msg_type=st.sampled_from([MSG_CALL, MSG_RETURN]),
    call_number=st.integers(min_value=0, max_value=0xFFFFFFFF),
    data=st.binary(max_size=2000),
    max_data=st.integers(min_value=10, max_value=300),
)
def test_property_split_reassembles_to_original(msg_type, call_number,
                                                data, max_data):
    """Splitting then concatenating in segment order is the identity."""
    try:
        segs = split_message(msg_type, call_number, data, max_data)
    except MessageTooLarge:
        assert len(data) > 255 * max_data - max_data  # genuinely too big
        return
    assert b"".join(s.data for s in segs) == data
    assert [s.segment_number for s in segs] == list(range(1, len(segs) + 1))
    # Round-trip each segment through the wire format.
    for s in segs:
        assert seg.decode(s.encode()) == s


@given(st.binary(min_size=8, max_size=64))
def test_property_decode_never_crashes_unexpectedly(raw):
    """Arbitrary bytes either decode or raise SegmentFormatError."""
    try:
        segment = seg.decode(raw)
    except SegmentFormatError:
        return
    assert segment.encode() == raw
