"""Zero-copy discipline on the message path.

The wire format is materialized exactly once per segment (one join of a
pooled header and the payload view), decode returns ``memoryview``
slices over the datagram buffer, reassembly stores those views, and the
message bytes are joined exactly once at the application hand-off.  The
``bytes_copied`` counter records every materialization, which gives an
exact conservation law these tests enforce end to end — including under
loss, duplication, and reordering fault windows:

    sum(bytes_copied over endpoints)
        == sum(len of each distinct wire buffer put on the network)
         + sum(size of each delivered message)

Any hidden copy on the receive path (``bytes(view)``, a per-segment
join, a defensive slice copy) breaks the equality.
"""

from repro.host import Machine
from repro.net import LinkFault, Network, NetworkConfig
from repro.pairedmsg import PairedEndpoint, PairedMessageConfig
from repro.pairedmsg import endpoint as endpoint_mod
from repro.pairedmsg import segments as seg
from repro.sim import Simulator


def make_world(seed=0, **net_config):
    sim = Simulator()
    net = Network(sim, seed=seed, config=NetworkConfig(**net_config))
    machines = [Machine(sim, net, "m%d" % i) for i in range(2)]
    procs = [m.spawn_process() for m in machines]
    return sim, net, machines, procs


def echo_server(endpoint, served=None):
    def body():
        while True:
            msg = yield from endpoint.next_call()
            if served is not None:
                served.append((msg.call_number, msg.data))
            yield from endpoint.send_return(msg.peer, msg.call_number,
                                            msg.data)
    return body


class _WireLedger:
    """Bus subscriber keeping every distinct wire buffer (strong refs,
    so ids cannot be recycled) and every delivered-message size."""

    def __init__(self, sim):
        self.wires = {}          # id(payload) -> payload
        self.delivered = []      # MessageDelivered sizes
        sim.bus.subscribe(self._on_send, "net.send")
        sim.bus.subscribe(self._on_deliver, "pm.deliver")

    def _on_send(self, event):
        self.wires[id(event.payload)] = event.payload

    def _on_deliver(self, event):
        self.delivered.append(event.size)

    def wire_bytes(self):
        return sum(len(p) for p in self.wires.values())


# ---------------------------------------------------------------------------
# decode: views over the wire, no payload copies
# ---------------------------------------------------------------------------

def test_decode_returns_views_over_the_wire_buffer():
    message = bytes(range(256)) * 8      # 2048 bytes -> 4 segments of 512
    segments = seg.split_message(seg.MSG_CALL, 9, message, 512)
    wires = [s.wire() for s in segments]
    decoded = [seg.decode(w) for s, w in zip(segments, wires)]
    for wire, parsed in zip(wires, decoded):
        assert type(parsed.data) is memoryview
        # The payload is a slice of the datagram buffer itself.
        assert parsed.data.obj is wire
        assert parsed.data.nbytes == len(wire) - seg.HEADER_SIZE
    decoded.sort(key=lambda s: s.segment_number)
    assert b"".join(s.data for s in decoded) == message


def test_decode_of_control_segments_has_empty_view():
    ack = seg.make_ack(seg.MSG_CALL, 3, 4, 2)
    parsed = seg.decode(ack.wire())
    assert parsed.is_control
    assert len(parsed.data) == 0


def test_marked_wire_is_a_single_fresh_buffer():
    """wire_marked() materializes the please_ack variant directly (one
    join); it neither copies nor forces the plain wire."""
    segment = seg.split_message(seg.MSG_CALL, 5, b"x" * 300, 512)[0]
    marked = segment.wire_marked()
    assert seg.decode(marked).please_ack
    assert segment._wire is None          # plain wire never materialized
    assert bytes(seg.decode(marked).data) == b"x" * 300


# ---------------------------------------------------------------------------
# reassembly: stores wire views, joins exactly once per delivery
# ---------------------------------------------------------------------------

def test_reassembly_stores_wire_views_and_joins_exactly_once(monkeypatch):
    sim, net, machines, (cp, sp) = make_world(latency=2.0)
    ledger = _WireLedger(sim)
    config = PairedMessageConfig(max_segment_data=512)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    sp.spawn(echo_server(server)(), daemon=True)

    joins = []
    real_assemble = endpoint_mod._IncomingAssembly.assemble

    def spying_assemble(self):
        for view in self.received.values():
            assert type(view) is memoryview
            # Each stored segment payload aliases a transmitted wire
            # buffer — reassembly never copied it.
            assert id(view.obj) in ledger.wires
        joins.append((self.msg_type, self.call_number))
        return real_assemble(self)

    monkeypatch.setattr(endpoint_mod._IncomingAssembly, "assemble",
                        spying_assemble)

    message = bytes(range(256)) * 8      # 4 data segments each way

    def body():
        return (yield from client.call(server.addr, 1, message))

    reply = sim.run_process(body())
    assert reply == message
    # Exactly one join per delivered message: the call at the server,
    # the return at the client.
    assert joins == [(seg.MSG_CALL, 1), (seg.MSG_RETURN, 1)]
    assert ledger.delivered == [len(message), len(message)]

    copied = (client.counters["bytes_copied"]
              + server.counters["bytes_copied"])
    assert copied == ledger.wire_bytes() + sum(ledger.delivered)


def test_lossy_reassembly_under_fault_windows_keeps_exact_accounting():
    """Loss, duplication, and reordering force retransmissions (fresh
    marked wires) and duplicate/overlapping segment arrivals; delivery
    stays exactly-once and the copy ledger stays exact."""
    sim, net, machines, (cp, sp) = make_world(seed=7, latency=2.0)
    ledger = _WireLedger(sim)
    config = PairedMessageConfig(max_segment_data=256,
                                 retransmit_interval=40.0)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    served = []
    sp.spawn(echo_server(server, served)(), daemon=True)

    fault = LinkFault(loss=0.15, duplicate=0.15, reorder=0.4,
                      reorder_hold=10.0)
    payloads = {n: bytes([n]) * 1500 for n in range(1, 5)}  # 6 segments

    def body():
        replies = []
        net.add_fault(fault)
        for call_number, payload in payloads.items():
            reply = yield from client.call(server.addr, call_number,
                                           payload)
            replies.append(reply)
            if call_number == 2:
                net.remove_fault(fault)   # close the fault window
        return replies

    replies = sim.run_process(body())
    assert replies == list(payloads.values())
    assert served == list(payloads.items())

    # The fault window actually bit.
    assert net.packets_dropped > 0
    assert net.packets_duplicated > 0
    assert client.counters["wire_patches"] > 0   # marked retransmissions

    # Exactly-once delivery despite duplicates and retransmissions: one
    # reassembled hand-off per call and per return.
    assert sorted(ledger.delivered) == sorted(
        len(p) for p in payloads.values()) * 2

    # The conservation law: every byte the message path materialized is
    # either a distinct wire buffer or a delivered join — duplicates,
    # retransmission resends of cached wires, and dropped packets add
    # nothing, and reassembly itself copies nothing.
    copied = (client.counters["bytes_copied"]
              + server.counters["bytes_copied"])
    assert copied == ledger.wire_bytes() + sum(ledger.delivered)
