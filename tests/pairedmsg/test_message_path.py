"""Tests for the optimized message path: encode-once segment caching,
the per-endpoint retransmit scheduler, shared multicast segments, and
opt-in delayed-ack coalescing."""

import pytest

from repro.host import Machine
from repro.net import Network, NetworkConfig
from repro.pairedmsg import (
    MSG_CALL,
    PairedEndpoint,
    PairedMessageConfig,
    PeerCrashed,
)
from repro.pairedmsg.segments import PLEASE_ACK, Segment, decode, split_message
from repro.sim import Simulator, Sleep


def make_world(n_machines=2, seed=0, **net_config):
    sim = Simulator()
    net = Network(sim, seed=seed, config=NetworkConfig(**net_config))
    machines = [Machine(sim, net, "m%d" % i) for i in range(n_machines)]
    procs = [m.spawn_process() for m in machines]
    return sim, net, machines, procs


def echo_server(endpoint):
    def body():
        while True:
            msg = yield from endpoint.next_call()
            yield from endpoint.send_return(msg.peer, msg.call_number,
                                            b"echo:" + msg.data)
    return body


# ---------------------------------------------------------------------------
# Encode-once segments
# ---------------------------------------------------------------------------

def test_split_message_slices_without_copying():
    """Payload slices are memoryviews over the original message buffer."""
    data = bytes(range(256)) * 4
    segs = split_message(MSG_CALL, 7, data, max_data=100)
    for segment in segs:
        assert isinstance(segment.data, memoryview)
        assert segment.data.obj is data
    assert b"".join(bytes(s.data) for s in segs) == data


def test_wire_is_cached_and_identical_to_encode():
    segs = split_message(MSG_CALL, 9, b"abcdefgh", max_data=4)
    for segment in segs:
        wire = segment.wire()
        assert wire == segment.encode()
        assert segment.wire() is wire          # cached, not re-encoded
        assert decode(wire) == segment


def test_wire_marked_splices_control_byte_from_cached_wire():
    segment = split_message(MSG_CALL, 3, b"payload", max_data=16)[0]
    plain = segment.wire()
    marked = segment.wire_marked()
    assert segment.wire_marked() is marked      # cached too
    assert marked[0] == plain[0]
    assert marked[1] == plain[1] | PLEASE_ACK
    assert marked[2:] == plain[2:]
    assert decode(marked).please_ack
    # An already-marked segment's marked wire is just its wire.
    probe = Segment(MSG_CALL, True, False, 1, 1, 5, b"")
    assert probe.wire_marked() == probe.wire()


def test_retransmissions_reuse_cached_encoding():
    """Under 100% loss the sender keeps retransmitting: the encode
    counter must stay flat across retries while packets keep going out."""
    sim, net, machines, (client_p, server_p) = make_world(
        loss_probability=1.0)
    config = PairedMessageConfig(max_segment_data=64,
                                 retransmit_interval=20.0, max_retries=50)
    client = PairedEndpoint(client_p, config=config)
    server = PairedEndpoint(server_p, port=500, config=config)

    def body():
        yield from client.send_message(server.addr, MSG_CALL, 1, b"z" * 128)
        encodes_after_send = client.counters["segment_encodes"]
        packets_after_send = client.counters["packets_sent"]
        yield Sleep(110.0)   # ~5 retransmission rounds
        assert client.counters["packets_sent"] >= packets_after_send + 4
        # No new encodes: one control-byte patch, then pure cache hits.
        assert client.counters["segment_encodes"] == encodes_after_send
        assert client.counters["wire_patches"] == 1
        assert client.counters["wire_cache_hits"] >= 3

    sim.run_process(body())


# ---------------------------------------------------------------------------
# The per-endpoint retransmit scheduler
# ---------------------------------------------------------------------------

def test_single_scheduler_replaces_per_call_daemons():
    """N calls spawn O(1) helper processes per endpoint (receiver +
    scheduler), not one retransmit daemon per transfer."""
    sim, net, machines, (client_p, server_p) = make_world()
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)
    server_p.spawn(echo_server(server)(), daemon=True)

    def body():
        for number in range(1, 21):
            yield from client.call(server.addr, number, b"m%d" % number)

    sim.run_process(body())
    assert client.counters["daemons_spawned"] == 2    # pm-recv + pm-sched
    assert server.counters["daemons_spawned"] == 2
    assert client.stats()["watched_transfers"] == 0


def test_scheduler_survives_abandon_peer_and_close():
    """Declaring a peer crashed cancels its transfers without killing the
    scheduler; close() tears the scheduler down so no timers outlive the
    endpoint."""
    sim, net, machines, procs = make_world(n_machines=3,
                                           loss_probability=1.0)
    config = PairedMessageConfig(retransmit_interval=20.0,
                                 probe_interval=30.0, crash_timeout=100.0)
    client = PairedEndpoint(procs[0], config=config)
    dead = PairedEndpoint(procs[1], port=500, config=config)

    def body():
        yield from client.send_message(dead.addr, MSG_CALL, 1, b"x")
        with pytest.raises(PeerCrashed):
            yield from client.wait_return(dead.addr, 1)
        # _abandon_peer cancelled the transfer; the scheduler reaps it.
        yield Sleep(50.0)
        assert client.stats()["watched_transfers"] == 0
        assert client.stats()["outgoing_transfers"] == 0
        assert client._scheduler is not None and client._scheduler.alive

        # The scheduler is reusable for later sends to other peers.
        yield from client.send_message(dead.addr, MSG_CALL, 2, b"y")
        assert client.stats()["watched_transfers"] == 1

        client.close()
        assert not client._scheduler.alive
        assert client.stats()["watched_transfers"] == 0
        # No orphaned timers: with the endpoint closed, nothing keeps
        # transmitting.
        packets = client.counters["packets_sent"]
        yield Sleep(200.0)
        assert client.counters["packets_sent"] == packets

    sim.run_process(body())


def test_retransmission_timeout_still_fires():
    """The scheduler preserves the fail-after-max_retries behaviour."""
    sim, net, machines, (client_p, _server_p) = make_world(
        loss_probability=1.0)
    config = PairedMessageConfig(retransmit_interval=10.0, max_retries=3)
    client = PairedEndpoint(client_p, config=config)
    peer = machines[1].spawn_process().udp_socket(700).addr

    def body():
        transfer = yield from client.send_message(peer, MSG_CALL, 1, b"x")
        outcome = yield transfer.done
        return outcome, sim.now

    outcome, now = sim.run_process(body())
    assert outcome == "timeout"
    assert now < 200.0


# ---------------------------------------------------------------------------
# Multicast segment sharing
# ---------------------------------------------------------------------------

def test_multicast_transfers_share_segment_tuple():
    sim, net, machines, procs = make_world(n_machines=3)
    client = PairedEndpoint(procs[0])
    servers = [PairedEndpoint(procs[1], port=500),
               PairedEndpoint(procs[2], port=500)]
    for server in servers:
        server.process.spawn(echo_server(server)(), daemon=True)
    data = bytes(range(256)) * 8   # multi-segment

    def body():
        transfers = yield from client.send_message_multicast(
            [s.addr for s in servers], MSG_CALL, 1, data)
        # One immutable tuple shared by the per-peer transfers; only the
        # unacked bookkeeping is private.
        assert isinstance(transfers[0].segments, tuple)
        assert transfers[0].segments is transfers[1].segments
        assert transfers[0].unacked is not transfers[1].unacked
        for transfer in transfers:
            yield transfer.done
        return [t.done.value for t in transfers]

    # Both returns implicitly acknowledge the multicast call.
    assert sim.run_process(body()) == ["acked", "acked"]


# ---------------------------------------------------------------------------
# Delayed-ack coalescing (opt-in)
# ---------------------------------------------------------------------------

def test_delayed_acks_deliver_correctly_and_coalesce():
    sim, net, machines, (client_p, server_p) = make_world(
        seed=11, loss_probability=0.15)
    config = PairedMessageConfig(max_segment_data=128,
                                 retransmit_interval=30.0,
                                 delayed_acks=True)
    client = PairedEndpoint(client_p, config=config)
    server = PairedEndpoint(server_p, port=500, config=config)
    server_p.spawn(echo_server(server)(), daemon=True)
    data = bytes(range(256)) * 4   # several segments, lossy link

    def body():
        replies = []
        for number in range(1, 6):
            reply = yield from client.call(server.addr, number, data)
            replies.append(reply)
        return replies

    assert sim.run_process(body()) == [b"echo:" + data] * 5
    totals = {key: client.counters[key] + server.counters[key]
              for key in client.counters}
    assert totals["acks_queued"] > 0
    # Coalescing transmitted fewer acks than were generated.
    assert totals["acks_sent"] < totals["acks_queued"]
    assert totals["acks_coalesced"] > 0


def test_delayed_acks_send_fewer_packets_than_immediate():
    from repro.bench.perf import lossy_transfer_metrics

    off = lossy_transfer_metrics(delayed_acks=False, transfers=4)
    on = lossy_transfer_metrics(delayed_acks=True, transfers=4)
    assert on["acks_per_transfer"] < off["acks_per_transfer"]
    assert on["packets_per_transfer"] < off["packets_per_transfer"]


def test_probe_replies_stay_immediate_under_delayed_acks():
    """Crash detection must not be delayed by ack coalescing."""
    sim, net, machines, (client_p, server_p) = make_world()
    config = PairedMessageConfig(delayed_acks=True)
    client = PairedEndpoint(client_p, config=config)
    server = PairedEndpoint(server_p, port=500, config=config)

    def body():
        answered = yield from client.ping(server.addr, timeout=200.0)
        return answered

    assert sim.run_process(body()) is True
    assert server.stats()["held_acks"] == 0
