"""Fault-injection tests for the paired message protocol.

The §2.2 network assumptions are adversarial — loss, duplication, delay,
crashes, partitions can strike at any point of an exchange.  These tests
aim failures at specific protocol moments and check the §4.2 guarantees:
exactly-once delivery to the application, correct reassembly, and
eventual crash detection.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.explore.driver import ScheduleDriver
from repro.explore.schedule import FaultSchedule, Partition
from repro.host import Machine
from repro.net import Network, NetworkConfig
from repro.pairedmsg import (
    PairedEndpoint,
    PairedMessageConfig,
    PeerCrashed,
)
from repro.sim import Simulator, Sleep


def make_world(seed=0, **net_config):
    sim = Simulator()
    net = Network(sim, seed=seed, config=NetworkConfig(**net_config))
    machines = [Machine(sim, net, "m%d" % i) for i in range(2)]
    procs = [m.spawn_process() for m in machines]
    return sim, net, machines, procs


def counting_server(endpoint, served):
    def body():
        while True:
            msg = yield from endpoint.next_call()
            served.append((msg.call_number, msg.data))
            yield from endpoint.send_return(msg.peer, msg.call_number,
                                            b"r:" + msg.data)
    return body


def test_partition_mid_call_recovers_after_heal():
    """A partition opens after the call is sent; once it heals,
    retransmission completes the exchange."""
    sim, net, machines, (cp, sp) = make_world()
    config = PairedMessageConfig(crash_timeout=5000.0)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    served = []
    sp.spawn(counting_server(server, served)(), daemon=True)

    net.partition([{"m0"}, {"m1"}])
    sim.schedule(400.0, net.heal)

    def body():
        reply = yield from client.call(server.addr, 1, b"through")
        return reply, sim.now

    reply, when = sim.run_process(body())
    assert reply == b"r:through"
    assert when > 400.0
    assert served == [(1, b"through")]


def test_crash_mid_multisegment_receive():
    """The server crashes after receiving some segments of a large call;
    the client detects the crash instead of waiting forever."""
    sim, net, machines, (cp, sp) = make_world(latency=5.0)
    config = PairedMessageConfig(max_segment_data=256, crash_timeout=600.0,
                                 probe_interval=100.0)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    served = []
    sp.spawn(counting_server(server, served)(), daemon=True)
    big = b"z" * 2048  # 8 segments
    # Crash while the segments are in flight.
    sim.schedule(12.0, machines[1].crash)

    def body():
        yield from client.send_call(server.addr, 1, big)
        try:
            yield from client.wait_return(server.addr, 1)
        except PeerCrashed:
            return "detected"

    assert sim.run_process(body()) == "detected"
    assert served == []  # never fully assembled


def test_server_restart_does_not_resurrect_old_exchange():
    """A crashed-and-restarted server has lost all volatile protocol
    state (fail-stop, §3.5.1); the old call is not half-delivered."""
    sim, net, machines, (cp, sp) = make_world()
    config = PairedMessageConfig(max_segment_data=256, crash_timeout=400.0,
                                 probe_interval=100.0, max_retries=3,
                                 retransmit_interval=50.0)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    served = []
    sp.spawn(counting_server(server, served)(), daemon=True)
    sim.schedule(1.0, machines[1].crash)

    def body():
        yield from client.send_call(server.addr, 1, b"x" * 1000)
        try:
            yield from client.wait_return(server.addr, 1)
            return "returned"
        except PeerCrashed:
            pass
        # The machine restarts with a fresh server process/endpoint.
        machines[1].restart()
        new_proc = machines[1].spawn_process()
        new_server = PairedEndpoint(new_proc, port=500, config=config)
        new_served = []
        new_proc.spawn(counting_server(new_server, new_served)(),
                       daemon=True)
        reply = yield from client.call(server.addr, 2, b"fresh")
        return reply, new_served

    reply, new_served = sim.run_process(body())
    assert reply == b"r:fresh"
    assert new_served == [(2, b"fresh")]
    assert served == []


def test_client_crash_stops_server_retransmissions():
    """The client crashes after its call is served; the server's return
    transfer gives up after max_retries instead of retrying forever."""
    sim, net, machines, (cp, sp) = make_world()
    config = PairedMessageConfig(retransmit_interval=20.0, max_retries=4)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    served = []
    sp.spawn(counting_server(server, served)(), daemon=True)

    def client_body():
        yield from client.send_call(server.addr, 1, b"bye")
        # Crash before consuming the return.
        machines[0].crash()

    sim.spawn(client_body(), name="client")
    sim.run(until=5000.0)
    assert served == [(1, b"bye")]
    # No outstanding transfers remain at the server.
    assert server._sends == {}


def _partition_heal_run(install_faults):
    """One client/server exchange under a partition that heals at
    t=430; ``install_faults`` decides how the partition is injected."""
    sim, net, machines, (cp, sp) = make_world()
    config = PairedMessageConfig(crash_timeout=5000.0)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    served = []
    sp.spawn(counting_server(server, served)(), daemon=True)
    cleanup = install_faults(sim, net, machines)

    def body():
        reply = yield from client.call(server.addr, 1, b"through")
        when = sim.now
        yield Sleep(100.0)  # let stray retransmissions drain identically
        return reply, when

    reply, when = sim.run_process(body())
    cleanup()
    counters = (net.packets_sent, net.packets_delivered,
                net.packets_dropped, net.packets_duplicated)
    return reply, when, list(served), counters


def test_schedule_driver_agrees_with_ad_hoc_partition_then_heal():
    """The explorer's ScheduleDriver and the long-standing ad-hoc
    ``net.partition``/``sim.schedule(heal)`` idiom inject the *same*
    fault: identical replies, served lists, and packet counters."""
    def ad_hoc(sim, net, machines):
        net.partition([("m0",), ("m1",)])
        sim.schedule(430.0, net.heal)
        return lambda: None

    def driven(sim, net, machines):
        schedule = FaultSchedule(
            scenario="pairs", seed=0, horizon=1000.0,
            actions=(Partition(at=0.0, duration=430.0,
                               groups=(("m0",), ("m1",))),))
        driver = ScheduleDriver(sim, machines, net, schedule)
        driver.start()
        return driver.stop

    baseline = _partition_heal_run(ad_hoc)
    driven_run = _partition_heal_run(driven)
    assert driven_run == baseline

    reply, when, served, counters = baseline
    assert reply == b"r:through"
    assert when > 430.0       # the exchange completed only after the heal
    assert served == [(1, b"through")]
    assert counters[2] > 0    # the partition really dropped packets


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10 ** 6),
    loss=st.floats(min_value=0.0, max_value=0.3),
    dup=st.floats(min_value=0.0, max_value=0.3),
    sizes=st.lists(st.integers(min_value=0, max_value=3000),
                   min_size=1, max_size=4),
)
def test_property_exactly_once_under_adversarial_network(seed, loss, dup,
                                                         sizes):
    """Whatever the loss/duplication rates, every call executes exactly
    once at the server and the client gets the right reply, in order."""
    sim, net, machines, (cp, sp) = make_world(
        seed=seed, loss_probability=loss, duplicate_probability=dup)
    config = PairedMessageConfig(max_segment_data=512,
                                 retransmit_interval=25.0,
                                 crash_timeout=60000.0,
                                 probe_interval=500.0,
                                 max_retries=100)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    served = []
    sp.spawn(counting_server(server, served)(), daemon=True)

    def body():
        replies = []
        for number, size in enumerate(sizes, start=1):
            reply = yield from client.call(server.addr, number,
                                           b"p" * size)
            replies.append(reply)
        # Allow stray duplicates to drain before checking exactly-once.
        yield Sleep(500.0)
        return replies

    replies = sim.run_process(body())
    assert replies == [b"r:" + b"p" * size for size in sizes]
    assert [number for number, _data in served] == \
        list(range(1, len(sizes) + 1))
