"""Tests for the paired message protocol endpoint (§4.2)."""

import pytest

from repro.host import Machine
from repro.net import Network, NetworkConfig, ProcessAddress
from repro.pairedmsg import (
    MSG_CALL,
    PairedEndpoint,
    PairedMessageConfig,
    PeerCrashed,
)
from repro.sim import Simulator, Sleep


def make_world(n_machines=2, seed=0, **net_config):
    sim = Simulator()
    net = Network(sim, seed=seed, config=NetworkConfig(**net_config))
    machines = [Machine(sim, net, "m%d" % i) for i in range(n_machines)]
    procs = [m.spawn_process() for m in machines]
    return sim, net, machines, procs


def echo_server(endpoint):
    """A server loop: echo every incoming call back as a return."""
    def body():
        while True:
            msg = yield from endpoint.next_call()
            yield from endpoint.send_return(msg.peer, msg.call_number,
                                            b"echo:" + msg.data)
    return body


def test_single_segment_exchange():
    sim, net, machines, (client_p, server_p) = make_world()
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)
    server_p.spawn(echo_server(server)(), daemon=True)

    def client_body():
        reply = yield from client.call(server.addr, 1, b"hello")
        return reply

    assert sim.run_process(client_body()) == b"echo:hello"


def test_sequential_calls_reuse_channel():
    sim, net, machines, (client_p, server_p) = make_world()
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)
    server_p.spawn(echo_server(server)(), daemon=True)

    def client_body():
        replies = []
        for number in range(1, 6):
            reply = yield from client.call(server.addr, number, b"n%d" % number)
            replies.append(reply)
        return replies

    assert sim.run_process(client_body()) == [
        b"echo:n%d" % n for n in range(1, 6)]


def test_multi_segment_message_reassembled():
    sim, net, machines, (client_p, server_p) = make_world()
    config = PairedMessageConfig(max_segment_data=128)
    client = PairedEndpoint(client_p, config=config)
    server = PairedEndpoint(server_p, port=500, config=config)
    server_p.spawn(echo_server(server)(), daemon=True)
    big = bytes(range(256)) * 8  # 2048 bytes -> 16 segments

    def client_body():
        reply = yield from client.call(server.addr, 1, big)
        return reply

    assert sim.run_process(client_body()) == b"echo:" + big


def test_exchange_survives_packet_loss():
    sim, net, machines, (client_p, server_p) = make_world(
        seed=3, loss_probability=0.25)
    config = PairedMessageConfig(max_segment_data=128)
    client = PairedEndpoint(client_p, config=config)
    server = PairedEndpoint(server_p, port=500, config=config)
    server_p.spawn(echo_server(server)(), daemon=True)
    data = b"x" * 700  # several segments

    def client_body():
        replies = []
        for number in range(1, 4):
            reply = yield from client.call(server.addr, number, data)
            replies.append(reply)
        return replies

    replies = sim.run_process(client_body())
    assert replies == [b"echo:" + data] * 3


def test_exchange_survives_duplication():
    sim, net, machines, (client_p, server_p) = make_world(
        seed=5, duplicate_probability=0.5)
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)
    served = []

    def server_body():
        while True:
            msg = yield from server.next_call()
            served.append(msg.call_number)
            yield from server.send_return(msg.peer, msg.call_number, msg.data)

    server_p.spawn(server_body(), daemon=True)

    def client_body():
        for number in range(1, 4):
            yield from client.call(server.addr, number, b"d")
        # Give any delayed duplicates time to arrive.
        yield Sleep(500.0)

    sim.run_process(client_body())
    # Exactly-once delivery to the application despite duplicates.
    assert served == [1, 2, 3]


def test_delayed_replay_suppressed():
    """A delayed duplicate of an old call message must not re-execute it."""
    sim, net, machines, (client_p, server_p) = make_world()
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)
    served = []

    def server_body():
        while True:
            msg = yield from server.next_call()
            served.append(msg.call_number)
            yield from server.send_return(msg.peer, msg.call_number, msg.data)

    server_p.spawn(server_body(), daemon=True)

    def client_body():
        yield from client.call(server.addr, 1, b"first")
        # Replay the same call number out of band.
        from repro.pairedmsg.segments import split_message
        for s in split_message(MSG_CALL, 1, b"first", 1024):
            client.sock.sendto(s.encode(), server.addr)
        yield Sleep(300.0)

    sim.run_process(client_body())
    assert served == [1]


def test_crash_detected_while_waiting():
    sim, net, machines, (client_p, server_p) = make_world()
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)

    def server_body():
        # Receive the call, then "hang" (crash happens mid-execution).
        yield from server.next_call()
        yield Sleep(10000.0)

    server_p.spawn(server_body(), daemon=True)
    sim.schedule(100.0, machines[1].crash)

    def client_body():
        yield from client.send_call(server.addr, 1, b"doomed")
        try:
            yield from client.wait_return(server.addr, 1)
        except PeerCrashed as exc:
            return ("crashed", exc.peer.host, sim.now)

    result = sim.run_process(client_body())
    assert result[0] == "crashed"
    assert result[1] == "m1"
    # Detected within the crash timeout plus one probe interval.
    assert result[2] < 100.0 + 800.0 + 300.0


def test_probing_does_not_false_positive_on_slow_server():
    """A server that is slow but alive answers probes, so no crash is
    declared even when execution takes much longer than the timeout."""
    sim, net, machines, (client_p, server_p) = make_world()
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)

    def server_body():
        msg = yield from server.next_call()
        yield Sleep(3000.0)  # slow procedure, >> crash_timeout
        yield from server.send_return(msg.peer, msg.call_number, b"finally")

    server_p.spawn(server_body(), daemon=True)

    def client_body():
        reply = yield from client.call(server.addr, 1, b"patience")
        return reply

    assert sim.run_process(client_body()) == b"finally"


def test_send_timeout_fires_after_max_retries():
    sim, net, machines, (client_p, server_p) = make_world()
    machines[1].crash()  # nobody home
    config = PairedMessageConfig(retransmit_interval=10.0, max_retries=3)
    client = PairedEndpoint(client_p, config=config)

    def client_body():
        transfer = yield from client.send_call(ProcessAddress("m1", 500), 1, b"void")
        outcome = yield transfer.done
        return outcome, sim.now

    outcome, now = sim.run_process(client_body())
    assert outcome == "timeout"
    assert now < 200.0


def test_concurrent_clients_one_server():
    sim, net, machines, procs = make_world(n_machines=3)
    client_a = PairedEndpoint(procs[0])
    client_b = PairedEndpoint(procs[1])
    server = PairedEndpoint(procs[2], port=500)
    server_p = procs[2]
    server_p.spawn(echo_server(server)(), daemon=True)
    results = {}

    def client_body(tag, endpoint):
        def body():
            reply = yield from endpoint.call(server.addr, 1, tag.encode())
            results[tag] = reply
        return body

    pa = sim.spawn(client_body("a", client_a)())
    pb = sim.spawn(client_body("b", client_b)())
    sim.run()
    assert results == {"a": b"echo:a", "b": b"echo:b"}


def test_syscall_profile_contains_expected_calls():
    """The execution profile mechanism behind Table 4.3: the six syscalls
    of Table 4.2 all appear in a paired-message exchange."""
    sim, net, machines, (client_p, server_p) = make_world()
    client = PairedEndpoint(client_p)
    server = PairedEndpoint(server_p, port=500)
    server_p.spawn(echo_server(server)(), daemon=True)

    def client_body():
        yield from client.call(server.addr, 1, b"profile")

    sim.run_process(client_body())
    for name in ("sendmsg", "recvmsg", "select", "setitimer", "gettimeofday"):
        assert client_p.syscall_counts.get(name, 0) >= 1, name
    assert client_p.kernel_time > 0
    assert client_p.user_time > 0


def test_closed_endpoint_rejects_operations():
    sim, net, machines, (client_p, _) = make_world()
    client = PairedEndpoint(client_p)
    client.close()

    def body():
        yield from client.send_call(ProcessAddress("m1", 500), 1, b"x")

    with pytest.raises(RuntimeError):
        sim.run_process(body())


def test_duplicate_send_rejected():
    sim, net, machines, (client_p, _) = make_world()
    client = PairedEndpoint(client_p)

    def body():
        yield from client.send_call(ProcessAddress("m1", 500), 1, b"x")
        yield from client.send_call(ProcessAddress("m1", 500), 1, b"x")

    with pytest.raises(RuntimeError):
        sim.run_process(body())
