"""Tests for endpoint state bookkeeping and idle sweeping (§4.2.4)."""

import pytest

from repro.host import Machine
from repro.net import Network
from repro.pairedmsg import PairedEndpoint, PairedMessageConfig
from repro.sim import Simulator, Sleep


def make_pair():
    sim = Simulator()
    net = Network(sim, seed=4)
    machines = [Machine(sim, net, "m%d" % i) for i in range(2)]
    cp, sp = [m.spawn_process() for m in machines]
    client = PairedEndpoint(cp)
    server = PairedEndpoint(sp, port=500)

    def echo():
        while True:
            msg = yield from server.next_call()
            yield from server.send_return(msg.peer, msg.call_number,
                                          b"r:" + msg.data)

    sp.spawn(echo(), daemon=True)
    return sim, client, server


def test_stats_reflect_activity():
    sim, client, server = make_pair()

    def body():
        yield from client.call(server.addr, 1, b"one")
        yield from client.call(server.addr, 2, b"two")
        yield Sleep(1000.0)  # drain retransmissions

    sim.run_process(body())
    stats = server.stats()
    assert stats["delivered_call_memory"] == 2
    assert stats["peers_heard"] == 1
    assert stats["incoming_assemblies"] == 0
    # The returns were consumed by wait_return: no residue at the client.
    assert client.stats()["buffered_returns"] == 0


def test_sweep_idle_clears_stale_peers():
    sim, client, server = make_pair()

    def body():
        yield from client.call(server.addr, 1, b"x")
        yield Sleep(5000.0)  # silence

    sim.run_process(body())
    swept = server.sweep_idle(max_age=2000.0)
    assert swept == 1
    stats = server.stats()
    assert stats["peers_heard"] == 0
    assert stats["delivered_call_memory"] == 0


def test_sweep_spares_recent_peers():
    sim, client, server = make_pair()

    def body():
        yield from client.call(server.addr, 1, b"x")
        yield Sleep(100.0)

    sim.run_process(body())
    assert server.sweep_idle(max_age=60000.0) == 0
    assert server.stats()["peers_heard"] == 1


def test_exchange_works_after_sweep():
    """Sweeping must not break future exchanges with the same peer —
    though a swept channel would accept a replayed old call number, which
    is exactly why the sweep age must exceed maximum datagram lifetime."""
    sim, client, server = make_pair()

    def body():
        yield from client.call(server.addr, 1, b"a")
        yield Sleep(3000.0)
        server.sweep_idle(max_age=1000.0)
        return (yield from client.call(server.addr, 2, b"b"))

    assert sim.run_process(body()) == b"r:b"
