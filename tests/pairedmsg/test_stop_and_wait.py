"""Tests for the PARC stop-and-wait variant (§4.2.5) and probing."""

import pytest

from repro.host import Machine
from repro.net import Network, NetworkConfig
from repro.pairedmsg import PairedEndpoint, PairedMessageConfig
from repro.sim import Simulator, Sleep


def make_world(seed=0, **net_config):
    sim = Simulator()
    net = Network(sim, seed=seed, config=NetworkConfig(**net_config))
    machines = [Machine(sim, net, "m%d" % i) for i in range(2)]
    procs = [m.spawn_process() for m in machines]
    return sim, net, machines, procs


def echo_server(endpoint):
    def body():
        while True:
            msg = yield from endpoint.next_call()
            yield from endpoint.send_return(msg.peer, msg.call_number,
                                            b"ok:%d" % len(msg.data))
    return body


BIG = bytes(range(256)) * 16   # 4096 bytes


def run_exchange(stop_and_wait, loss=0.0, seed=1):
    sim, net, machines, (cp, sp) = make_world(seed=seed,
                                              loss_probability=loss)
    config = PairedMessageConfig(max_segment_data=512,
                                 stop_and_wait=stop_and_wait)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    sp.spawn(echo_server(server)(), daemon=True)

    def body():
        reply = yield from client.call(server.addr, 1, BIG)
        return reply

    reply = sim.run_process(body())
    return reply, net.packets_sent


def test_stop_and_wait_delivers_correctly():
    reply, _packets = run_exchange(stop_and_wait=True)
    assert reply == b"ok:4096"


def test_stop_and_wait_survives_loss():
    reply, _packets = run_exchange(stop_and_wait=True, loss=0.2, seed=9)
    assert reply == b"ok:4096"


def test_stop_and_wait_roughly_doubles_packets():
    _r1, window_packets = run_exchange(stop_and_wait=False)
    _r2, saw_packets = run_exchange(stop_and_wait=True)
    # "This doubles the number of segments sent" — an ack per data
    # segment except the last.
    assert saw_packets > 1.5 * window_packets


def test_stop_and_wait_single_segment_message_is_unchanged():
    sim, net, machines, (cp, sp) = make_world()
    config = PairedMessageConfig(stop_and_wait=True)
    client = PairedEndpoint(cp, config=config)
    server = PairedEndpoint(sp, port=500, config=config)
    sp.spawn(echo_server(server)(), daemon=True)

    def body():
        return (yield from client.call(server.addr, 1, b"small"))

    assert sim.run_process(body()) == b"ok:5"


def test_retransmit_all_recovers_faster_on_lossy_link():
    """§4.2.4: retransmitting every outstanding segment costs packets but
    fewer rounds on a very lossy network."""
    def run(retransmit_all, seed):
        sim, net, machines, (cp, sp) = make_world(
            seed=seed, loss_probability=0.35)
        config = PairedMessageConfig(max_segment_data=512,
                                     retransmit_interval=30.0,
                                     max_retries=100,
                                     retransmit_all=retransmit_all)
        client = PairedEndpoint(cp, config=config)
        server = PairedEndpoint(sp, port=500, config=config)
        sp.spawn(echo_server(server)(), daemon=True)

        def body():
            start = sim.now
            reply = yield from client.call(server.addr, 1, BIG)
            return reply, sim.now - start

        reply, elapsed = sim.run_process(body())
        assert reply == b"ok:4096"
        return elapsed, net.packets_sent

    seeds = range(1, 8)
    first_only = [run(False, s) for s in seeds]
    everything = [run(True, s) for s in seeds]
    mean = lambda xs: sum(xs) / len(xs)
    # Retransmit-all completes faster on average...
    assert mean([e for e, _ in everything]) < mean([e for e, _ in first_only])
    # ...at the price of more packets on the wire.
    assert mean([p for _, p in everything]) > mean([p for _, p in first_only])


def test_ping_alive_peer():
    sim, net, machines, (cp, sp) = make_world()
    client = PairedEndpoint(cp)
    server = PairedEndpoint(sp, port=500)

    def body():
        return (yield from client.ping(server.addr, timeout=200.0))

    assert sim.run_process(body()) is True


def test_ping_dead_peer():
    sim, net, machines, (cp, sp) = make_world()
    client = PairedEndpoint(cp)
    server = PairedEndpoint(sp, port=500)
    machines[1].crash()

    def body():
        start = sim.now
        alive = yield from client.ping(server.addr, timeout=200.0)
        return alive, sim.now - start

    alive, elapsed = sim.run_process(body())
    assert alive is False
    assert elapsed >= 200.0


def test_ping_unbound_port():
    sim, net, machines, (cp, sp) = make_world()
    client = PairedEndpoint(cp)

    def body():
        from repro.net import ProcessAddress
        return (yield from client.ping(ProcessAddress("m1", 999),
                                       timeout=100.0))

    assert sim.run_process(body()) is False
