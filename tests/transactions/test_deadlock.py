"""Tests for deadlock detection."""

import networkx as nx
from hypothesis import given, strategies as st

from repro.sim import Simulator, Sleep
from repro.transactions import (
    DeadlockDetector,
    EXCLUSIVE,
    LockTable,
    TransactionAborted,
    find_cycle,
)


def test_no_cycle_in_acyclic_graph():
    assert find_cycle({"a": {"b"}, "b": {"c"}}) is None
    assert find_cycle({}) is None


def test_self_loop_detected():
    cycle = find_cycle({"a": {"a"}})
    assert cycle == ["a"]


def test_two_cycle_detected():
    cycle = find_cycle({"a": {"b"}, "b": {"a"}})
    assert set(cycle) == {"a", "b"}


def test_longer_cycle_detected():
    cycle = find_cycle({"a": {"b"}, "b": {"c"}, "c": {"d"}, "d": {"b"}})
    assert set(cycle) == {"b", "c", "d"}


def test_cycle_order_is_a_real_cycle():
    graph = {"a": {"b"}, "b": {"c"}, "c": {"a"}}
    cycle = find_cycle(graph)
    for i, node in enumerate(cycle):
        succ = cycle[(i + 1) % len(cycle)]
        assert succ in graph[node]


@given(st.dictionaries(
    st.integers(min_value=0, max_value=8),
    st.sets(st.integers(min_value=0, max_value=8), max_size=4),
    max_size=9))
def test_property_find_cycle_returns_valid_cycle_or_none(graph):
    cycle = find_cycle(graph)
    if cycle is None:
        # Verify acyclicity with a topological sort.  networkx is
        # imported at module scope: paying its one-time import cost
        # inside the test body trips the hypothesis deadline on loaded
        # machines (flaky full-suite failures on the empty graph).
        g = nx.DiGraph()
        for node, succs in graph.items():
            for succ in succs:
                g.add_edge(node, succ)
        assert nx.is_directed_acyclic_graph(g)
    else:
        for i, node in enumerate(cycle):
            succ = cycle[(i + 1) % len(cycle)]
            assert succ in graph.get(node, set())


def test_detector_breaks_lock_deadlock():
    """Two transactions acquiring x,y in opposite orders deadlock; the
    detector aborts one and the other proceeds."""
    sim = Simulator()
    table = LockTable(sim)
    log = []

    def abort(victim):
        table.abort_waiter(victim)

    detector = DeadlockDetector(sim, table.waits_for, abort, interval=10.0)
    detector.start()

    def txn(tag, first, second):
        try:
            yield from table.acquire(tag, first, EXCLUSIVE)
            yield Sleep(5.0)
            yield from table.acquire(tag, second, EXCLUSIVE)
            log.append((tag, "done"))
            table.release_all(tag)
        except TransactionAborted:
            log.append((tag, "aborted"))
            table.release_all(tag)

    sim.spawn(txn("T1", "x", "y"))
    sim.spawn(txn("T2", "y", "x"))
    sim.run(until=100.0)
    outcomes = dict(log)
    assert sorted(outcomes.values()) == ["aborted", "done"]
    assert detector.deadlocks_broken == 1


def test_detector_check_once_no_deadlock():
    sim = Simulator()
    detector = DeadlockDetector(sim, lambda: {}, lambda v: None)
    assert detector.check_once() is None
