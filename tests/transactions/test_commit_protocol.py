"""Integration tests for the troupe commit protocol (§5.3)."""

import pytest

from repro.core import ExportedModule, RuntimeConfig
from repro.harness import World
from repro.rpc import RemoteError
from repro.sim import Sleep
from repro.transactions import (
    CommitCoordinator,
    CommitParticipant,
    TransactionManager,
    TransactionalStore,
)
from repro.transactions.commit import TXN_ABORTED_ERROR


def make_transactional_troupe(world, degree=2, name="bank"):
    """A troupe whose module runs deposit/read inside transactions under
    the troupe commit protocol.  Returns (descriptor, member states)."""
    members = []

    def factory():
        state = {}
        members.append(state)

        def install(runtime_holder=state):
            pass

        module = ExportedModule(name, {})
        state["module"] = module
        return module

    # We need access to each member's runtime, so build manually.
    descriptor, runtimes = world.make_troupe(
        name, factory, degree=degree,
        runtime_config=RuntimeConfig(execution="parallel"))
    for state, runtime in zip(members, runtimes):
        manager = TransactionManager(world.sim)
        store = TransactionalStore(manager)
        participant = CommitParticipant(runtime, manager, store)
        state.update(manager=manager, store=store, participant=participant,
                     runtime=runtime)

        def make_handlers(participant=participant, store=store):
            def deposit(ctx, args):
                key, amount = args.decode().split(":")

                def body(txn):
                    current = yield from store.read(txn, key)
                    yield from store.write(txn, key,
                                           (current or 0) + int(amount))
                    return b"ok"
                return (yield from participant.run_transaction(ctx, body))

            def read(ctx, args):
                key = args.decode()

                def body(txn):
                    value = yield from store.read(txn, key)
                    return str(value).encode()
                return (yield from participant.run_transaction(ctx, body))

            return deposit, read

        deposit, read = make_handlers()
        state["module"].define(0, deposit)
        state["module"].define(1, read)
    return descriptor, members


def test_single_client_transaction_commits_everywhere():
    world = World(machines=8)
    troupe, members = make_transactional_troupe(world, degree=2)
    client = world.make_client()
    CommitCoordinator(client)

    def body():
        reply = yield from client.call_troupe(troupe, 0, 0, b"acct:100")
        return reply

    assert world.run(body()) == b"ok"
    for member in members:
        assert member["store"].committed_get("acct") == 100
        assert member["manager"].commits == 1
        assert member["manager"].aborts == 0


def test_sequential_transactions_accumulate():
    world = World(machines=8)
    troupe, members = make_transactional_troupe(world, degree=2)
    client = world.make_client()
    CommitCoordinator(client)

    def body():
        for _ in range(3):
            yield from client.call_troupe(troupe, 0, 0, b"acct:10")
        return (yield from client.call_troupe(troupe, 0, 1, b"acct"))

    assert world.run(body()) == b"30"
    for member in members:
        assert member["store"].committed_get("acct") == 30


def test_aborting_body_aborts_everywhere():
    world = World(machines=8)
    troupe, members = make_transactional_troupe(world, degree=2)
    # Add a procedure whose body aborts.
    for member in members:
        participant = member["participant"]
        store = member["store"]

        def make_failing(participant=participant, store=store):
            def failing(ctx, args):
                def body(txn):
                    yield from store.write(txn, "x", "tainted")
                    from repro.transactions.locks import TransactionAborted
                    raise TransactionAborted(txn.txn_id, "business rule")
                return (yield from participant.run_transaction(ctx, body))
            return failing

        member["module"].define(2, make_failing())

    client = world.make_client()
    CommitCoordinator(client)

    def body():
        yield from client.call_troupe(troupe, 0, 2, b"")

    with pytest.raises(RemoteError) as info:
        world.run(body())
    assert info.value.kind == TXN_ABORTED_ERROR
    for member in members:
        assert member["store"].committed_get("x") is None
        assert member["manager"].aborts == 1


def test_concurrent_nonconflicting_transactions_commit():
    """Transactions touching different keys commit in parallel (§5.3:
    'the local concurrency control algorithm should commit non-conflicting
    transactions in parallel')."""
    world = World(machines=10)
    troupe, members = make_transactional_troupe(world, degree=2)
    results = []

    def make_client_thread(key):
        client = world.make_client()
        CommitCoordinator(client)

        def body():
            reply = yield from client.call_troupe(
                troupe, 0, 0, ("%s:5" % key).encode())
            results.append((key, reply))
        return body

    for key in ("alpha", "beta", "gamma"):
        world.spawn(make_client_thread(key)())
    world.sim.run()
    assert sorted(results) == [
        ("alpha", b"ok"), ("beta", b"ok"), ("gamma", b"ok")]
    for member in members:
        for key in ("alpha", "beta", "gamma"):
            assert member["store"].committed_get(key) == 5


def test_conflicting_transactions_serialize_consistently():
    """Two clients incrementing the same key: whatever the interleaving,
    every member ends with the same total (troupe consistency, §5.2.1),
    possibly after protocol-induced aborts and retries."""
    world = World(machines=10)
    troupe, members = make_transactional_troupe(world, degree=2)
    outcomes = []

    def make_client_thread(tag, delay):
        client = world.make_client()
        CommitCoordinator(client)

        def body():
            yield Sleep(delay)
            from repro.transactions import BinaryExponentialBackoff
            from repro.sim.rng import RandomStream
            backoff = BinaryExponentialBackoff(
                RandomStream(hash(tag) % 1000, tag), initial_mean=100.0)
            for attempt in range(8):
                try:
                    yield from client.call_troupe(troupe, 0, 0, b"shared:1")
                    outcomes.append((tag, "committed"))
                    return
                except RemoteError as exc:
                    if exc.kind != TXN_ABORTED_ERROR:
                        raise
                    yield Sleep(backoff.next_delay())
            outcomes.append((tag, "starved"))
        return body

    world.spawn(make_client_thread("A", 0.0)())
    world.spawn(make_client_thread("B", 3.0)())
    world.sim.run(until=60000.0)
    committed = [t for t, o in outcomes if o == "committed"]
    # Every member converged to the same value == number of commits.
    values = {m["store"].committed_get("shared") for m in members}
    assert len(values) == 1
    assert values.pop() == len(committed)
    assert len(committed) >= 1  # at least one client made progress
