"""Tests for the ordered broadcast protocol (§5.4, Figure 5.1)."""

import pytest

from repro.core import ExportedModule, RuntimeConfig
from repro.harness import World
from repro.sim import Sleep
from repro.transactions import OrderedBroadcastServer, atomic_broadcast
from repro.transactions.backoff import BinaryExponentialBackoff
from repro.sim.rng import RandomStream


def make_broadcast_troupe(world, degree=3, skews=None):
    """A troupe of OrderedBroadcastServers; returns (descriptor, servers,
    delivery logs, module number)."""
    troupe, runtimes = world.make_troupe(
        "ob", lambda: ExportedModule("placeholder", {}), degree=degree,
        runtime_config=RuntimeConfig(execution="parallel"))
    servers = []
    logs = []
    for index, runtime in enumerate(runtimes):
        log = []
        logs.append(log)
        skew = skews[index] if skews else 0.0
        servers.append(OrderedBroadcastServer(runtime, log.append,
                                              clock_skew=skew))
    module_number = servers[0].module_addr.module
    return troupe, servers, logs, module_number


def test_single_broadcast_delivered_at_all_members():
    world = World(machines=6)
    troupe, servers, logs, module = make_broadcast_troupe(world)
    client = world.make_client()

    def body():
        yield from atomic_broadcast(client, troupe, module, b"m1", b"hello")
        yield Sleep(100.0)

    world.run(body())
    assert logs == [[b"hello"], [b"hello"], [b"hello"]]


def test_sequential_broadcasts_in_order():
    world = World(machines=6)
    troupe, servers, logs, module = make_broadcast_troupe(world)
    client = world.make_client()

    def body():
        for i in range(4):
            yield from atomic_broadcast(client, troupe, module,
                                        b"m%d" % i, b"payload-%d" % i)
        yield Sleep(100.0)

    world.run(body())
    expected = [b"payload-%d" % i for i in range(4)]
    assert logs == [expected, expected, expected]


def test_concurrent_broadcasts_never_interleaved():
    """The §5.4 guarantee: all recipients accept concurrent broadcasts in
    the same order."""
    world = World(machines=10)
    troupe, servers, logs, module = make_broadcast_troupe(world, degree=3)

    def make_broadcaster(tag, count, delay):
        client = world.make_client()

        def body():
            yield Sleep(delay)
            for i in range(count):
                yield from atomic_broadcast(
                    client, troupe, module,
                    b"%s-%d" % (tag, i), b"%s%d" % (tag, i))
        return body

    world.spawn(make_broadcaster(b"a", 5, 0.0)())
    world.spawn(make_broadcaster(b"b", 5, 7.0)())
    world.spawn(make_broadcaster(b"c", 5, 13.0)())
    world.sim.run()
    assert len(logs[0]) == 15
    assert logs[0] == logs[1] == logs[2]


def test_clock_skew_does_not_break_agreement():
    """Members with skewed (but bounded) clocks still agree on order
    because the accepted time is the maximum of all proposals."""
    world = World(machines=10)
    troupe, servers, logs, module = make_broadcast_troupe(
        world, degree=3, skews=[0.0, 2.5, -1.5])

    def make_broadcaster(tag, delay):
        client = world.make_client()

        def body():
            yield Sleep(delay)
            for i in range(3):
                yield from atomic_broadcast(
                    client, troupe, module,
                    b"%s-%d" % (tag, i), b"%s%d" % (tag, i))
        return body

    world.spawn(make_broadcaster(b"x", 0.0)())
    world.spawn(make_broadcaster(b"y", 4.0)())
    world.sim.run()
    assert len(logs[0]) == 6
    assert logs[0] == logs[1] == logs[2]


def test_delivery_respects_acceptance_order_not_proposal_order():
    """A message proposed earlier but accepted later must not jump the
    queue: servers hold delivery until earlier proposals resolve."""
    world = World(machines=6)
    troupe, servers, logs, module = make_broadcast_troupe(world, degree=2)
    client_a = world.make_client()
    client_b = world.make_client()
    done = []

    def a_body():
        yield from atomic_broadcast(client_a, troupe, module, b"a", b"A")
        done.append("a")

    def b_body():
        yield Sleep(1.0)
        yield from atomic_broadcast(client_b, troupe, module, b"b", b"B")
        done.append("b")

    world.spawn(a_body())
    world.spawn(b_body())
    world.sim.run()
    assert sorted(done) == ["a", "b"]
    assert logs[0] == logs[1]
    assert sorted(logs[0]) == [b"A", b"B"]


def test_backoff_delays_double():
    rng = RandomStream(1, "backoff")
    backoff = BinaryExponentialBackoff(rng, initial_mean=10.0)
    delays = [backoff.next_delay() for _ in range(6)]
    # Each delay is within its doubling envelope.
    for i, delay in enumerate(delays):
        assert 0.0 <= delay < 2.0 * min(10.0 * 2 ** i, 5000.0)
    backoff.reset()
    assert backoff.attempt == 0


def test_backoff_validates():
    with pytest.raises(ValueError):
        BinaryExponentialBackoff(RandomStream(0, "x"), initial_mean=0.0)
