"""Tests for two-phase locking and the waits-for graph."""

import pytest

from repro.sim import Simulator, Sleep
from repro.transactions import EXCLUSIVE, LockTable, SHARED, TransactionAborted


def test_shared_locks_compatible():
    sim = Simulator()
    table = LockTable(sim)

    def body():
        yield from table.acquire("T1", "x", SHARED)
        yield from table.acquire("T2", "x", SHARED)
        return table.holders("x")

    holders = sim.run_process(body())
    assert holders == {"T1": SHARED, "T2": SHARED}


def test_exclusive_blocks_until_release():
    sim = Simulator()
    table = LockTable(sim)
    events = []

    def holder():
        yield from table.acquire("T1", "x", EXCLUSIVE)
        events.append(("T1-acquired", sim.now))
        yield Sleep(10.0)
        table.release_all("T1")

    def waiter():
        yield Sleep(1.0)
        yield from table.acquire("T2", "x", EXCLUSIVE)
        events.append(("T2-acquired", sim.now))

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    assert events == [("T1-acquired", 0.0), ("T2-acquired", 10.0)]


def test_shared_blocks_exclusive():
    sim = Simulator()
    table = LockTable(sim)
    assert table.try_acquire("T1", "x", SHARED)
    assert not table.try_acquire("T2", "x", EXCLUSIVE)
    table.release_all("T1")
    assert table.try_acquire("T2", "x", EXCLUSIVE)


def test_reacquire_same_mode_is_noop():
    sim = Simulator()
    table = LockTable(sim)
    assert table.try_acquire("T1", "x", SHARED)
    assert table.try_acquire("T1", "x", SHARED)
    assert table.holders("x") == {"T1": SHARED}


def test_lock_upgrade_when_sole_holder():
    sim = Simulator()
    table = LockTable(sim)
    assert table.try_acquire("T1", "x", SHARED)
    assert table.try_acquire("T1", "x", EXCLUSIVE)
    assert table.holders("x") == {"T1": EXCLUSIVE}


def test_lock_upgrade_blocked_by_other_sharer():
    sim = Simulator()
    table = LockTable(sim)
    assert table.try_acquire("T1", "x", SHARED)
    assert table.try_acquire("T2", "x", SHARED)
    assert not table.try_acquire("T1", "x", EXCLUSIVE)


def test_exclusive_holder_can_read():
    sim = Simulator()
    table = LockTable(sim)
    assert table.try_acquire("T1", "x", EXCLUSIVE)
    assert table.try_acquire("T1", "x", SHARED)
    # The exclusive mode is retained, not downgraded.
    assert table.holders("x") == {"T1": EXCLUSIVE}


def test_waits_for_graph():
    sim = Simulator()
    table = LockTable(sim)

    def t1():
        yield from table.acquire("T1", "x", EXCLUSIVE)
        yield Sleep(100.0)

    def t2():
        yield Sleep(1.0)
        yield from table.acquire("T2", "x", EXCLUSIVE)

    sim.spawn(t1())
    sim.spawn(t2())
    sim.run(until=50.0)
    assert table.waits_for() == {"T2": {"T1"}}


def test_abort_waiter_raises_in_waiting_transaction():
    sim = Simulator()
    table = LockTable(sim)
    outcome = []

    def t1():
        yield from table.acquire("T1", "x", EXCLUSIVE)
        yield Sleep(100.0)

    def t2():
        yield Sleep(1.0)
        try:
            yield from table.acquire("T2", "x", EXCLUSIVE)
        except TransactionAborted:
            outcome.append("aborted")

    sim.spawn(t1())
    sim.spawn(t2())
    sim.schedule(10.0, table.abort_waiter, "T2")
    sim.run(until=50.0)
    assert outcome == ["aborted"]


def test_fifo_wakeup_order():
    sim = Simulator()
    table = LockTable(sim)
    order = []

    def holder():
        yield from table.acquire("T0", "x", EXCLUSIVE)
        yield Sleep(10.0)
        table.release_all("T0")

    def waiter(tag, delay):
        yield Sleep(delay)
        yield from table.acquire(tag, "x", EXCLUSIVE)
        order.append(tag)
        yield Sleep(5.0)
        table.release_all(tag)

    sim.spawn(holder())
    sim.spawn(waiter("T1", 1.0))
    sim.spawn(waiter("T2", 2.0))
    sim.run()
    assert order == ["T1", "T2"]


def test_ancestor_conflicts_ignored():
    """Moss rule: a child may lock what its ancestors hold."""
    ancestry = {"child": {"parent"}}
    sim = Simulator()
    table = LockTable(sim, ancestors=lambda t: ancestry.get(t, set()))
    assert table.try_acquire("parent", "x", EXCLUSIVE)
    assert table.try_acquire("child", "x", EXCLUSIVE)
    # An unrelated transaction is still blocked.
    assert not table.try_acquire("stranger", "x", SHARED)


def test_inherit_all_moves_locks_to_parent():
    sim = Simulator()
    table = LockTable(sim)
    assert table.try_acquire("child", "x", EXCLUSIVE)
    assert table.try_acquire("child", "y", SHARED)
    table.inherit_all("child", "parent")
    assert table.holders("x") == {"parent": EXCLUSIVE}
    assert table.holders("y") == {"parent": SHARED}
    assert table.held_keys("child") == set()
    assert table.held_keys("parent") == {"x", "y"}


def test_inherit_does_not_downgrade_parent_exclusive():
    sim = Simulator()
    table = LockTable(sim)
    ancestry = {"child": {"parent"}}
    table = LockTable(sim, ancestors=lambda t: ancestry.get(t, set()))
    assert table.try_acquire("parent", "x", EXCLUSIVE)
    assert table.try_acquire("child", "x", SHARED)
    table.inherit_all("child", "parent")
    assert table.holders("x") == {"parent": EXCLUSIVE}


def test_bad_mode_rejected():
    sim = Simulator()
    table = LockTable(sim)

    def body():
        yield from table.acquire("T1", "x", "intent-exclusive")

    with pytest.raises(ValueError):
        sim.run_process(body())
