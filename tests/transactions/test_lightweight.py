"""Tests for lightweight nested transactions and the transactional store."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Simulator
from repro.transactions import (
    TransactionAborted,
    TransactionManager,
    TransactionStatus,
    TransactionalStore,
)


def make_store(initial=None):
    sim = Simulator()
    manager = TransactionManager(sim)
    return sim, manager, TransactionalStore(manager, initial)


def run(sim, gen):
    return sim.run_process(gen)


def test_read_committed_state():
    sim, manager, store = make_store({"a": 1})
    txn = manager.begin()

    def body():
        return (yield from store.read(txn, "a"))

    assert run(sim, body()) == 1


def test_write_visible_to_self_but_not_globally():
    sim, manager, store = make_store()
    txn = manager.begin()

    def body():
        yield from store.write(txn, "k", "v")
        return (yield from store.read(txn, "k"))

    assert run(sim, body()) == "v"
    assert store.committed_get("k") is None


def test_commit_publishes_writes():
    sim, manager, store = make_store()
    txn = manager.begin()

    def body():
        yield from store.write(txn, "k", 42)

    run(sim, body())
    manager.commit(txn, store)
    assert store.committed_get("k") == 42
    assert txn.status == TransactionStatus.COMMITTED


def test_abort_discards_writes():
    sim, manager, store = make_store({"k": "old"})
    txn = manager.begin()

    def body():
        yield from store.write(txn, "k", "new")

    run(sim, body())
    manager.abort(txn)
    assert store.committed_get("k") == "old"
    assert txn.status == TransactionStatus.ABORTED


def test_operations_on_aborted_transaction_rejected():
    sim, manager, store = make_store()
    txn = manager.begin()
    manager.abort(txn)

    def body():
        yield from store.write(txn, "k", 1)

    with pytest.raises(TransactionAborted):
        run(sim, body())


def test_delete_is_tentative():
    sim, manager, store = make_store({"k": 1})
    txn = manager.begin()

    def body():
        yield from store.delete(txn, "k")
        return (yield from store.read(txn, "k"))

    assert run(sim, body()) is None
    assert store.committed_get("k") == 1
    manager.commit(txn, store)
    assert store.committed_get("k") is None


def test_nested_child_sees_parent_tentative_writes():
    sim, manager, store = make_store()
    parent = manager.begin()
    child = manager.begin(parent)

    def body():
        yield from store.write(parent, "k", "parent-value")
        return (yield from store.read(child, "k"))

    assert run(sim, body()) == "parent-value"


def test_committed_child_visible_to_parent_not_globally():
    sim, manager, store = make_store()
    parent = manager.begin()
    child = manager.begin(parent)

    def body():
        yield from store.write(child, "k", "child-value")

    run(sim, body())
    manager.commit(child, store)

    def read_parent():
        return (yield from store.read(parent, "k"))

    assert run(sim, read_parent()) == "child-value"
    assert store.committed_get("k") is None
    manager.commit(parent, store)
    assert store.committed_get("k") == "child-value"


def test_parent_abort_undoes_committed_child():
    """§2.3.2: if a transaction aborts, the effects of any committed
    subtransactions must be undone."""
    sim, manager, store = make_store({"k": "original"})
    parent = manager.begin()
    child = manager.begin(parent)

    def body():
        yield from store.write(child, "k", "child-value")

    run(sim, body())
    manager.commit(child, store)
    manager.abort(parent)
    assert store.committed_get("k") == "original"


def test_abort_cascades_to_active_children():
    sim, manager, store = make_store()
    parent = manager.begin()
    child = manager.begin(parent)
    manager.abort(parent)
    assert child.status == TransactionStatus.ABORTED


def test_commit_with_active_child_rejected():
    sim, manager, store = make_store()
    parent = manager.begin()
    manager.begin(parent)
    with pytest.raises(RuntimeError):
        manager.commit(parent, store)


def test_isolation_between_top_level_transactions():
    """T2 cannot read T1's tentative write; it blocks until T1 finishes."""
    sim, manager, store = make_store({"k": "committed"})
    t1 = manager.begin()
    t2 = manager.begin()
    reads = []

    def writer():
        yield from store.write(t1, "k", "tentative")
        from repro.sim import Sleep
        yield Sleep(10.0)
        manager.commit(t1, store)

    def reader():
        from repro.sim import Sleep
        yield Sleep(1.0)
        value = yield from store.read(t2, "k")
        reads.append((value, sim.now))

    sim.spawn(writer())
    sim.spawn(reader())
    sim.run()
    # The reader blocked until commit and then saw the committed value.
    assert reads == [("tentative", 10.0)]


def test_keys_visibility():
    sim, manager, store = make_store({"a": 1, "b": 2})
    txn = manager.begin()

    def body():
        yield from store.write(txn, "c", 3)
        yield from store.delete(txn, "a")
        return (yield from store.keys(txn))

    assert run(sim, body()) == {"b", "c"}


def test_snapshot_and_load_snapshot():
    """The get_state mechanism (§6.4.1): copy committed state to a new
    member."""
    sim, manager, store = make_store({"x": 1})
    snap = store.snapshot()
    sim2, manager2, store2 = make_store()
    store2.load_snapshot(snap)
    assert store2.committed_get("x") == 1
    # The snapshot is a copy, not an alias.
    snap["x"] = 999
    assert store.committed_get("x") == 1


@given(st.lists(st.tuples(st.sampled_from(["w", "d"]),
                          st.sampled_from(["a", "b", "c"]),
                          st.integers()),
                max_size=12))
def test_property_commit_equals_sequential_application(ops):
    """Committing a transaction applies its writes/deletes exactly as if
    they had been applied directly to a dict."""
    sim, manager, store = make_store({"a": 0})
    txn = manager.begin()

    def body():
        for op, key, value in ops:
            if op == "w":
                yield from store.write(txn, key, value)
            else:
                yield from store.delete(txn, key)

    run(sim, body())
    manager.commit(txn, store)

    expected = {"a": 0}
    for op, key, value in ops:
        if op == "w":
            expected[key] = value
        else:
            expected.pop(key, None)
    assert store.snapshot() == expected


@given(st.lists(st.tuples(st.sampled_from(["a", "b"]), st.integers()),
                max_size=10))
def test_property_abort_is_identity(ops):
    """An aborted transaction leaves no trace (atomicity, §2.3.1)."""
    initial = {"a": -1, "b": -2}
    sim, manager, store = make_store(initial)
    txn = manager.begin()

    def body():
        for key, value in ops:
            yield from store.write(txn, key, value)

    run(sim, body())
    manager.abort(txn)
    assert store.snapshot() == initial
