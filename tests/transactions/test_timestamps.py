"""Tests for wound-wait timestamp-ordered concurrency control (§5.4)."""

import pytest

from repro.sim import Simulator, Sleep
from repro.transactions import (
    TransactionAborted,
    TransactionManager,
    TransactionalStore,
    WoundWaitScheduler,
)


def make():
    sim = Simulator()
    manager = TransactionManager(sim)
    store = TransactionalStore(manager, {"x": 0, "y": 0})
    scheduler = WoundWaitScheduler(manager, retry_interval=2.0)
    return sim, manager, store, scheduler


def test_uncontended_acquire_succeeds():
    sim, manager, store, sched = make()
    txn = manager.begin()
    sched.assign(txn, 1.0)

    def body():
        yield from sched.write(store, txn, "x", 42)
        return (yield from sched.read(store, txn, "x"))

    assert sim.run_process(body()) == 42


def test_requires_timestamp():
    sim, manager, store, sched = make()
    txn = manager.begin()

    def body():
        yield from sched.write(store, txn, "x", 1)

    with pytest.raises(ValueError):
        sim.run_process(body())


def test_duplicate_timestamp_assignment_rejected():
    sim, manager, store, sched = make()
    txn = manager.begin()
    sched.assign(txn, 1.0)
    with pytest.raises(ValueError):
        sched.assign(txn, 2.0)


def test_older_wounds_younger_holder():
    """A younger transaction holds the lock; the older one aborts it and
    proceeds (never waits behind it)."""
    sim, manager, store, sched = make()
    young = manager.begin()
    old = manager.begin()
    sched.assign(young, timestamp=10.0)
    sched.assign(old, timestamp=1.0)
    log = []

    def young_body():
        yield from sched.write(store, young, "x", "young")
        log.append(("young-acquired", sim.now))
        yield Sleep(100.0)  # holds the lock "forever"
        # A wounded transaction discovers its fate at its next
        # transactional operation (here, the commit).
        try:
            manager.commit(young, store)
        except TransactionAborted:
            log.append(("young-found-wounded", sim.now))

    def old_body():
        yield Sleep(5.0)
        yield from sched.write(store, old, "x", "old")
        log.append(("old-acquired", sim.now))
        manager.commit(old, store)

    p1 = sim.spawn(young_body())
    sim.spawn(old_body())
    sim.run(until=200.0)
    assert ("old-acquired", 5.0) in log
    assert young.status == "aborted"
    assert sched.wounds == 1
    assert store.committed_get("x") == "old"
    p1.kill()


def test_younger_waits_for_older_holder():
    sim, manager, store, sched = make()
    old = manager.begin()
    young = manager.begin()
    sched.assign(old, timestamp=1.0)
    sched.assign(young, timestamp=10.0)
    log = []

    def old_body():
        yield from sched.write(store, old, "x", "old")
        yield Sleep(30.0)
        manager.commit(old, store)

    def young_body():
        yield Sleep(5.0)
        yield from sched.write(store, young, "x", "young")
        log.append(("young-acquired", sim.now))
        manager.commit(young, store)

    sim.spawn(old_body())
    sim.spawn(young_body())
    sim.run()
    assert log and log[0][1] >= 30.0
    assert store.committed_get("x") == "young"
    assert sched.wounds == 0


def test_no_deadlock_on_opposite_lock_orders():
    """x/y acquired in opposite orders: wound-wait resolves it without a
    deadlock detector — the older transaction always wins."""
    sim, manager, store, sched = make()
    t_old = manager.begin()
    t_young = manager.begin()
    sched.assign(t_old, 1.0)
    sched.assign(t_young, 2.0)
    outcomes = []

    def old_body():
        try:
            yield from sched.write(store, t_old, "x", 1)
            yield Sleep(5.0)
            yield from sched.write(store, t_old, "y", 1)
            manager.commit(t_old, store)
            outcomes.append("old-committed")
        except TransactionAborted:
            outcomes.append("old-aborted")

    def young_body():
        try:
            yield from sched.write(store, t_young, "y", 2)
            yield Sleep(5.0)
            yield from sched.write(store, t_young, "x", 2)
            manager.commit(t_young, store)
            outcomes.append("young-committed")
        except TransactionAborted:
            outcomes.append("young-aborted")

    sim.spawn(old_body())
    sim.spawn(young_body())
    sim.run(until=500.0)
    assert "old-committed" in outcomes
    assert "young-aborted" in outcomes
    assert store.committed_get("x") == 1
    assert store.committed_get("y") == 1


def test_serialization_order_is_a_function_of_timestamps():
    """§5.4 determinism: two 'members' processing the same transactions
    with the same timestamps commit the conflicting work in the same
    order, whatever the local interleaving."""
    def run_member(start_delays):
        sim, manager, store, sched = make()
        commit_order = []

        def txn_body(name, timestamp, delay):
            def body():
                yield Sleep(delay)
                while True:
                    txn = manager.begin()
                    if sched.timestamp(txn) is None:
                        sched.assign(txn, timestamp)
                    try:
                        yield from sched.write(store, txn, "shared", name)
                        yield Sleep(3.0)
                        manager.commit(txn, store)
                        commit_order.append(name)
                        return
                    except TransactionAborted:
                        sched.forget(txn)
                        yield Sleep(5.0)
            return body

        sim.spawn(txn_body("A", 1.0, start_delays[0])())
        sim.spawn(txn_body("B", 2.0, start_delays[1])())
        sim.spawn(txn_body("C", 3.0, start_delays[2])())
        sim.run(until=2000.0)
        return commit_order, store.committed_get("shared")

    # Different members see different arrival interleavings...
    order1, final1 = run_member([0.0, 1.0, 2.0])
    order2, final2 = run_member([2.0, 1.0, 0.0])
    # ...but conflicting transactions serialize by timestamp: the final
    # committed value is the last timestamp's write at every member.
    assert final1 == final2 == "C"
    assert set(order1) == set(order2) == {"A", "B", "C"}
