"""Command-line interface: run the paper's experiments directly.

    python -m repro table41            # UDP/TCP/Circus ms-per-call
    python -m repro table42            # syscall cost model
    python -m repro table43            # execution profile
    python -m repro fig48              # linearity series + fit
    python -m repro multicast          # the H_n * r analysis
    python -m repro deadlock           # Eq 5.1 Monte-Carlo
    python -m repro availability       # Eq 6.1/6.2
    python -m repro all                # everything above

    python -m repro trace examples/quickstart      # Chrome trace JSON
    python -m repro metrics quickstart             # metrics snapshot

Each experiment command prints a paper-vs-measured table (the same ones
the benchmark suite registers); ``trace`` and ``metrics`` drive the
observability layer (docs/OBSERVABILITY.md) over a canned scenario.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import (
    availability,
    deadlock_probability,
    expected_max_exponential,
    required_repair_time,
)
from repro.bench.echo import (
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    PAPER_TABLE_4_3,
    linear_fit,
    run_circus_series,
    run_tcp_echo,
    run_udp_echo,
)
from repro.bench.report import Table


def cmd_table41(args) -> None:
    iterations = args.iterations
    table = Table("Table 4.1: Performance of UDP, TCP, and Circus (ms/rpc)",
                  ["workload", "real(paper)", "real(sim)", "total(paper)",
                   "total(sim)", "user(sim)", "kernel(sim)"])
    udp = run_udp_echo(iterations)
    tcp = run_tcp_echo(iterations)
    table.add_row("UDP", PAPER_TABLE_4_1["UDP"]["real"], udp.real,
                  PAPER_TABLE_4_1["UDP"]["total"], udp.total, udp.user,
                  udp.kernel)
    table.add_row("TCP", PAPER_TABLE_4_1["TCP"]["real"], tcp.real,
                  PAPER_TABLE_4_1["TCP"]["total"], tcp.total, tcp.user,
                  tcp.kernel)
    for result in run_circus_series(iterations=iterations):
        degree = int(result.label[len("Circus("):-1])
        paper = PAPER_TABLE_4_1[degree]
        table.add_row(result.label, paper["real"], result.real,
                      paper["total"], result.total, result.user,
                      result.kernel)
    print(table.render())


def cmd_table42(args) -> None:
    from repro.harness import World
    table = Table("Table 4.2: syscall CPU costs (ms)",
                  ["syscall", "paper", "simulated"])
    world = World(machines=1)
    proc = world.machines[0].spawn_process("m")

    def measure(name):
        def body():
            start = world.sim.now
            yield from proc.syscall(name)
            return world.sim.now - start
        return world.run(body())

    for name, paper_cost in PAPER_TABLE_4_2.items():
        table.add_row(name, paper_cost, measure(name))
    print(table.render())


def cmd_table43(args) -> None:
    table = Table("Table 4.3: execution profile (% of per-call CPU)",
                  ["degree", "sendmsg(paper)", "sendmsg(sim)",
                   "select(sim)", "recvmsg(sim)", "setitimer(sim)",
                   "gettimeofday(sim)"])
    for result in run_circus_series(iterations=args.iterations):
        degree = int(result.label[len("Circus("):-1])
        pcts = result.profile_percentages()
        table.add_row(degree, PAPER_TABLE_4_3[degree]["sendmsg"],
                      pcts.get("sendmsg", 0.0), pcts.get("select", 0.0),
                      pcts.get("recvmsg", 0.0), pcts.get("setitimer", 0.0),
                      pcts.get("gettimeofday", 0.0))
    print(table.render())


def cmd_fig48(args) -> None:
    results = run_circus_series(iterations=args.iterations)
    xs = [1, 2, 3, 4, 5]
    table = Table("Figure 4.8: per-call time vs degree (ms/rpc)",
                  ["component", "n=1", "n=2", "n=3", "n=4", "n=5",
                   "slope", "R^2"])
    for name, ys in [("real", [r.real for r in results]),
                     ("total cpu", [r.total for r in results]),
                     ("user cpu", [r.user for r in results]),
                     ("kernel cpu", [r.kernel for r in results])]:
        slope, _b, r2 = linear_fit(xs, ys)
        table.add_row(name, *ys, slope, r2)
    print(table.render())


def cmd_multicast(args) -> None:
    table = Table("Sec 4.4.2: E[T] = H_n * r (r = 50 ms)",
                  ["n", "H_n*r"])
    for n in (1, 2, 4, 8, 16, 32):
        table.add_row(n, expected_max_exponential(n, 50.0))
    print(table.render())
    print("\n(run `pytest benchmarks/bench_multicast_logn.py` for the "
          "simulated comparison)")


def cmd_deadlock(args) -> None:
    table = Table("Eq 5.1: P[deadlock] = 1 - (1/k!)^(n-1)",
                  ["k \\ n"] + ["n=%d" % n for n in (1, 2, 3, 4)])
    for k in (1, 2, 3, 4, 5):
        table.add_row("k=%d" % k, *[deadlock_probability(k, n)
                                    for n in (1, 2, 3, 4)])
    print(table.render())


def cmd_availability(args) -> None:
    table = Table("Eq 6.1: availability A = 1 - (lam/(lam+mu))^n",
                  ["n", "A (1/lam=50, 1/mu=25)",
                   "required 1/mu for A=0.999 (lifetime 60)"])
    for n in (1, 2, 3, 5, 7):
        table.add_row(n, availability(n, 1 / 50.0, 1 / 25.0),
                      required_repair_time(n, 60.0, 0.999))
    print(table.render())
    print("\nPaper's worked example: n=3, 1-hour lifetime, 99.9%% => "
          "replace within %.2f minutes (6 min 40 s)"
          % required_repair_time(3, 60.0, 0.999))


# ---------------------------------------------------------------------------
# Observability scenarios (repro trace / repro metrics)
# ---------------------------------------------------------------------------

def _echo_module():
    from repro.core import ExportedModule

    def echo(ctx, args):
        yield from ctx.compute(1.0)
        return b"echo:" + args

    return ExportedModule("echo", {0: echo})


def _scenario_quickstart():
    """The examples/quickstart.py scenario: a 3-member echo troupe
    answering replicated calls while its machines crash underneath it."""
    from repro.core import TroupeFailure
    from repro.harness import World

    world = World(machines=5, seed=42)
    troupe, _members = world.make_troupe("echo-service", _echo_module,
                                         degree=3)
    client = world.make_client()

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"hello")
        world.machine(troupe.members[0].process.host).crash()
        yield from client.call_troupe(troupe, 0, 0, b"still there?")
        world.machine(troupe.members[1].process.host).crash()
        yield from client.call_troupe(troupe, 0, 0, b"last one?")
        world.machine(troupe.members[2].process.host).crash()
        try:
            yield from client.call_troupe(troupe, 0, 0, b"anyone?")
        except TroupeFailure:
            pass

    return world, body


def _scenario_protocol_trace():
    """The examples/protocol_trace.py scenario: one replicated call to a
    2-member troupe."""
    from repro.harness import World

    world = World(machines=3, seed=5,
                  machine_names=["client", "server-1", "server-2"])
    troupe, _ = world.make_troupe("echo", _echo_module, degree=2,
                                  on_machines=["server-1", "server-2"])
    client = world.make_client("client")

    def body():
        yield from client.call_troupe(troupe, 0, 0, b"hi")

    return world, body


def _scenario_circus(iterations: int):
    """``iterations`` sequential replicated calls to a 3-member troupe —
    the Table 4.1 Circus(3) shape, with the bus attached."""
    from repro.harness import World

    world = World(machines=4, seed=7)
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()

    def body():
        for i in range(iterations):
            yield from client.call_troupe(troupe, 0, 0, b"ping %d" % i)

    return world, body


def _scenario_lossy():
    """A 3-member troupe under a lossy, duplicating wire plus a machine
    crash mid-run: every recovery path (retransmission, duplicate
    suppression, crash declaration) exercises under the monitors.  The
    seed is fixed so the run — and its silence — is reproducible."""
    from repro.core import TroupeFailure
    from repro.harness import World
    from repro.net.network import NetworkConfig

    world = World(machines=5, seed=1234,
                  net_config=NetworkConfig(loss_probability=0.05,
                                           duplicate_probability=0.02))
    troupe, _ = world.make_troupe("echo", _echo_module, degree=3)
    client = world.make_client()

    def body():
        for i in range(10):
            yield from client.call_troupe(troupe, 0, 0, b"lossy %d" % i)
        world.machine(troupe.members[0].process.host).crash()
        try:
            for i in range(5):
                yield from client.call_troupe(troupe, 0, 0, b"after %d" % i)
        except TroupeFailure:
            pass

    return world, body


#: target name -> scenario factory (callable of no args).
TRACE_SCENARIOS = {
    "quickstart": _scenario_quickstart,
    "protocol_trace": _scenario_protocol_trace,
}

#: scenarios ``repro check`` can monitor; the circus and lossy shapes
#: join the traceable ones.
CHECK_SCENARIOS = {
    "quickstart": _scenario_quickstart,
    "protocol_trace": _scenario_protocol_trace,
    "circus": None,          # parameterized by --iterations
    "lossy": _scenario_lossy,
}


def _resolve_scenario(target: str):
    name = target.replace("\\", "/").rstrip("/")
    if name.endswith(".py"):
        name = name[:-3]
    if "/" in name:
        name = name.rsplit("/", 1)[1]
    if name not in TRACE_SCENARIOS:
        raise SystemExit(
            "unknown scenario %r (choose from: %s)"
            % (target, ", ".join(sorted(TRACE_SCENARIOS))))
    return name, TRACE_SCENARIOS[name]


def cmd_trace(args) -> None:
    from repro.obs import trace_calls

    name, factory = _resolve_scenario(args.target)
    world, body = factory()
    with trace_calls(world.sim) as tracer:
        world.run(body())
    out = args.out or ("%s_trace.json" % name)
    payload = tracer.to_chrome()
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2)
    calls = tracer.calls
    execs = sum(len(c.execs) for c in calls)
    print("traced %d replicated call(s), %d replica execution(s)"
          % (len(calls), execs))
    print("%d trace events -> %s (load in chrome://tracing or Perfetto)"
          % (len(payload["traceEvents"]), out))


def cmd_metrics(args) -> int:
    from repro.bench.report import Table
    from repro.obs import (SCHEMA_VERSION, CritPathAnalyzer,
                           MetricsCollector, TimeSeriesCollector,
                           openmetrics)

    bench = args.bench
    if bench == "circus":
        world, body = _scenario_circus(args.iterations)
    else:
        _name, factory = _resolve_scenario(bench)
        world, body = factory()
    want_om = getattr(args, "openmetrics", False)
    with MetricsCollector(world.sim.bus) as collector:
        if want_om:
            with TimeSeriesCollector(world.sim.bus) as ts_collector, \
                    CritPathAnalyzer(world.sim) as critpath:
                world.run(body())
                exposition = openmetrics(collector.registry,
                                         timeseries=ts_collector.registry,
                                         critpath=critpath)
        else:
            world.run(body())
    if want_om:
        print(exposition, end="")
    elif getattr(args, "json", False):
        # The same {"tables": [...]} shape --bench-json writes, so CI can
        # diff metrics snapshots with the same tooling as benchmarks —
        # schema-versioned and key-sorted, so two same-seed runs are
        # byte-identical.
        table = Table("metrics: %s" % bench, ["metric", "value"])
        for key, value in collector.registry.snapshot().items():
            table.add_row(key, value)
        print(json.dumps({"schema_version": SCHEMA_VERSION,
                          "tables": [table.to_dict()]}, indent=2,
                         sort_keys=True))
    else:
        print(collector.registry.render())
    return 0


def cmd_critpath(args) -> int:
    """Critical-path latency attribution over a canned scenario."""
    from repro.obs import SCHEMA_VERSION, CritPathAnalyzer

    bench = args.bench
    if bench == "circus":
        world, body = _scenario_circus(args.iterations)
    else:
        _name, factory = _resolve_scenario(bench)
        world, body = factory()
    with CritPathAnalyzer(world.sim) as critpath:
        world.run(body())
    report = critpath.report()
    if args.json:
        payload = {"schema_version": SCHEMA_VERSION,
                   "workload": bench,
                   "report": report}
        if args.per_call:
            payload["calls"] = [p.to_dict() for p in critpath.paths()]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(critpath.render())
        if args.per_call:
            for path in critpath.paths():
                d = path.to_dict()
                print("%-24s #%-4d %8.3f ms  dominant=%s%s" % (
                    d["call"], d["call_number"], d["duration_ms"],
                    d["dominant"],
                    "  [degraded]" if d["degraded"] else ""))
    return 0


def cmd_top(args) -> int:
    """Live per-troupe rates, stage breakdown, and task progress."""
    from repro.obs.top import live_top

    bench = args.bench
    if bench == "circus":
        world, body = _scenario_circus(args.iterations)
    else:
        _name, factory = _resolve_scenario(bench)
        world, body = factory()
    final = live_top(world, body(), slice_ms=args.slice,
                     max_frames=args.frames,
                     use_curses=not args.plain)
    print("final: t=%.1f ms, %d violation(s), troupes=%s"
          % (final["now"], final["violations"],
             ", ".join("%s:%d" % (name, row["done"])
                       for name, row in final["troupes"].items()) or "-"))
    return 1 if final["violations"] else 0


def _check_one(name: str, iterations: int, dump_dir: str) -> int:
    """Run one scenario under the monitor suite; dump + report on any
    violation or crash.  Returns the number of violations found."""
    import os

    from repro.obs.monitor import watch
    from repro.obs.recorder import render_postmortem

    if name == "circus":
        world, body = _scenario_circus(iterations)
    else:
        world, body = CHECK_SCENARIOS[name]()
    crashed = None
    with watch(world.sim, trace=True) as probe:
        try:
            world.run(body())
        except Exception as exc:   # recorded by watch() via re-raise path
            probe.recorder.record_crash(exc, t=world.sim.now)
            crashed = exc
    violations = probe.violations
    if not violations and crashed is None:
        print("check %-16s ok (%d events stamped, %d monitors silent)"
              % (name, probe.clocks.stamped, len(probe.suite.monitors)))
        return 0
    os.makedirs(dump_dir, exist_ok=True)
    path = os.path.join(dump_dir, "%s_postmortem.json" % name)
    report = probe.dump(path)
    print(render_postmortem(report))
    print("check %-16s FAILED: %d violation(s)%s -> %s"
          % (name, len(violations),
             ", crashed: %r" % crashed if crashed is not None else "",
             path))
    return max(len(violations), 1)


def cmd_check(args) -> int:
    names = sorted(CHECK_SCENARIOS) if args.scenario == "all" \
        else [_check_scenario_name(args.scenario)]
    failures = 0
    for name in names:
        failures += _check_one(name, args.iterations, args.dump_dir)
    return 1 if failures else 0


def _check_scenario_name(target: str) -> str:
    name = target.replace("\\", "/").rstrip("/")
    if name.endswith(".py"):
        name = name[:-3]
    if "/" in name:
        name = name.rsplit("/", 1)[1]
    if name not in CHECK_SCENARIOS:
        raise SystemExit(
            "unknown scenario %r (choose from: all, %s)"
            % (target, ", ".join(sorted(CHECK_SCENARIOS))))
    return name


def cmd_shard(args) -> int:
    """Run the capacity workload across shard kernels and report the
    merged, deterministic result; with ``--reference`` verify the
    byte-identical-digest contract against the 1-shard run.  The
    ``--json`` payload contains only deterministic fields, so two runs
    of the same seed must serialize identically (the CI shard-smoke
    job ``cmp``'s them)."""
    from repro.bench.workloads import capacity_builder
    from repro.sim.sharded import run_sharded

    builder = capacity_builder(
        cells=args.cells, sessions=args.sessions,
        calls_per_session=args.calls, rate=args.rate,
        degree=args.degree, arrival=args.arrival, seed=args.seed)
    result = run_sharded(builder, machines=args.machines,
                         shards=args.shards, seed=args.seed,
                         horizon=args.horizon, mode=args.mode)
    status = 0
    payload = result.to_json_dict()
    if args.reference:
        reference = run_sharded(builder, machines=args.machines, shards=1,
                                seed=args.seed, horizon=args.horizon)
        payload["reference_digest"] = reference.digest
        payload["digest_matches_reference"] = \
            result.digest == reference.digest
        if not payload["digest_matches_reference"]:
            status = 1
    if args.json:
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        calls = result.counters.get("calls_completed", 0)
        wall = result.wall_seconds or 1e-9
        print("shards-%d (%s): %d calls to t=%.0f ms in %.2f s wall "
              "(%.0f calls/sec)"
              % (result.shards, result.mode, calls, result.horizon,
                 result.wall_seconds, calls / wall))
        print("  digest          %s" % result.digest)
        print("  net events      %d   sync windows %d" %
              (result.events, result.windows))
        print("  cross-shard     %d envelopes (%.2f/call)"
              % (result.cross_shard_messages,
                 result.cross_shard_messages / calls if calls else 0.0))
        print("  packets         sent %d  delivered %d  dropped %d"
              % (result.network["packets_sent"],
                 result.network["packets_delivered"],
                 result.network["packets_dropped"]))
        if result.samples.get("latency_ms"):
            print("  latency ms      mean %.1f  p90 %.1f  p99 %.1f"
                  % (sum(result.samples["latency_ms"])
                     / len(result.samples["latency_ms"]),
                     result.percentile("latency_ms", 0.9),
                     result.percentile("latency_ms", 0.99)))
        if args.reference:
            print("  reference       digest %s (%s)"
                  % (payload["reference_digest"],
                     "MATCH" if payload["digest_matches_reference"]
                     else "MISMATCH"))
    return status


def cmd_elastic(args) -> int:
    """Run the §6.4.2 availability experiment under the autoscaler and
    report measured vs predicted (M/M/n/n) availability.  The ``--json``
    payload is wholly virtual-time-deterministic: two runs of the same
    seed serialize byte-identically (the CI elastic-smoke job ``cmp``'s
    them)."""
    from repro.elastic.scenario import payload_json, run_elastic

    payload = run_elastic(seed=args.seed, pool=args.pool,
                          duration=args.duration, mttf=args.mttf,
                          mttr=args.mttr)
    if args.json:
        sys.stdout.write(payload_json(payload))
        return 0
    calls = payload["calls"]
    avail = payload["availability"]
    membership = payload["membership"]
    print("elastic: pool=%d seed=%d, %.0f ms virtual "
          "(mttf %.0f ms, mttr %.0f ms)"
          % (payload["pool"], payload["seed"], payload["duration_ms"],
             payload["mttf_ms"], payload["mttr_ms"]))
    print("  calls           %d ok, %d failed  (p50 %.1f ms, p99 %.1f ms)"
          % (calls["ok"], calls["failed"], calls["p50_ms"], calls["p99_ms"]))
    print("  availability    machine %.6f measured vs %.6f M/M/n/n "
          "(delta %+.6f)"
          % (avail["measured_machine"], avail["predicted_mmnn"],
             avail["machine_delta"]))
    print("  troupe uptime   %.6f (reconfiguration lag)"
          % avail["measured_troupe"])
    print("  membership      %d joins, %d removes, %d cold restarts, "
          "%d failed ops; final %s"
          % (membership["joins"], membership["removes"],
             membership["cold_restarts"], membership["failed_ops"],
             ",".join(membership["final_members"]) or "-"))
    print("  machine churn   %d failures, %d repairs"
          % (payload["failures"]["machine_failures"],
             payload["failures"]["machine_repairs"]))
    print("  critpath        %d calls (%d degraded), dominant %s"
          % (payload["critpath"]["calls"],
             payload["critpath"]["degraded_calls"],
             payload["critpath"]["dominant"]))
    return 0


def cmd_perf(args) -> int:
    """Wall-clock throughput plus the deterministic proxy metric.

    ``--compare [BASELINE]`` instead rebuilds every CI-gated table and
    runs the BENCH_PERF.json drift gate locally (per-column deltas plus
    the 5% verdict) — the one-command equivalent of the pytest
    ``--bench-json`` + ``benchmarks/compare.py`` pipeline CI runs.

    ``--profile PATH`` additionally runs the circus workload under
    cProfile and writes a pstats dump for ``snakeviz``/``pstats``.
    """
    from repro import accel
    from repro.bench import perf

    if getattr(args, "compare", None) is not None:
        from repro.bench import gated
        from repro.bench.compare import (index_payload, load_tables,
                                         run_compare)
        print("build: %s" % accel.describe())
        print("rebuilding the %d gated tables (iterations=%d)..."
              % (len(gated.GATED_BUILDERS), args.iterations))
        tables = gated.all_gated_tables(iterations=args.iterations)
        results = index_payload({"tables": [t.to_dict() for t in tables]})
        baseline = load_tables(args.compare)
        status = run_compare(baseline, results, threshold=args.threshold,
                             require_all=True, baseline_name=args.compare)
        print("verdict: %s (threshold %.0f%%)"
              % ("FAIL" if status else "PASS", args.threshold))
        return status

    tables = []

    metrics = perf.proxy_metrics(iterations=args.iterations)
    seed = perf.SEED_PROXY["circus-200"]
    proxy_table = Table(
        "Kernel hot-path proxy metric (work per replicated call)",
        ["workload", "callbacks/call", "allocs/call",
         "proxy (callbacks+allocs)"],
        formats=[None, "%.2f", "%.2f", "%.2f"],
        notes="Deterministic; the CI gate compares the circus row "
              "against BENCH_PERF.json.")
    proxy_table.add_row("circus-200 (seed)", seed["callbacks_per_call"],
                        seed["allocs_per_call"], seed["proxy"])
    proxy_table.add_row("circus-%d" % args.iterations,
                        metrics["callbacks_per_call"],
                        metrics["allocs_per_call"], metrics["proxy"])
    tables.append(proxy_table)

    path_metrics = perf.message_path_metrics(iterations=args.iterations)
    path_seed = perf.SEED_MESSAGE_PATH["circus-200"]
    path_table = Table(
        "Message-path proxy metric (work per replicated call)",
        ["workload", "encodes/call", "daemons/call", "packets/call",
         "msg proxy (encodes+daemons)"],
        formats=[None, "%.2f", "%.2f", "%.2f", "%.2f"],
        notes="Deterministic; the CI gate compares the circus row "
              "against BENCH_PERF.json.  packets/call is pinned to the "
              "seed: the optimizations change per-packet work, not what "
              "goes on the wire.")
    path_table.add_row("circus-200 (seed)", path_seed["encodes_per_call"],
                       path_seed["daemons_per_call"],
                       path_seed["packets_per_call"], path_seed["msg_proxy"])
    path_table.add_row("circus-%d" % args.iterations,
                       path_metrics["encodes_per_call"],
                       path_metrics["daemons_per_call"],
                       path_metrics["packets_per_call"],
                       path_metrics["msg_proxy"])
    tables.append(path_table)

    kernel_table = Table(
        "Wall-clock: kernel events/sec (this machine)",
        ["workload", "events/sec"], formats=[None, "%.0f"])
    for kind in ("timer", "pingpong", "select"):
        rate, _snapshot = perf.kernel_events_per_sec(kind)
        kernel_table.add_row(kind, rate)
    tables.append(kernel_table)

    plain, watched, ratio = perf.monitor_overhead_ratio(
        iterations=min(args.iterations, 100))
    calls_table = Table(
        "Wall-clock: replicated calls/sec (this machine)",
        ["configuration", "calls/sec", "overhead ratio"],
        formats=[None, "%.0f", "%.2f"])
    calls_table.add_row("unobserved", plain, 1.0)
    calls_table.add_row("with-monitors", watched, ratio)
    tables.append(calls_table)

    obs_work = perf.obs_work_metrics(iterations=args.iterations)
    _plain, active, observed, obs_ratio = perf.observability_overhead_ratio(
        iterations=min(args.iterations, 100))
    obs_table = Table(
        "Observability telemetry (work per replicated call + overhead)",
        ["workload", "events/call", "ts updates/call", "milestones/call",
         "attributed %", "residual %", "overhead ratio (wall)"],
        formats=[None, "%.2f", "%.2f", "%.2f", "%.2f", "%.2f", "%.3f"],
        notes="Time-series + critical-path subscribers on the circus "
              "workload; the wall ratio is telemetry time over "
              "active-bus time per call (this machine).")
    obs_table.add_row("circus-%d" % args.iterations,
                      obs_work["events_per_call"],
                      obs_work["ts_updates_per_call"],
                      obs_work["milestones_per_call"],
                      obs_work["attributed_pct"],
                      obs_work["residual_pct"], obs_ratio)
    tables.append(obs_table)

    if getattr(args, "json", False):
        from repro.obs.export import SCHEMA_VERSION
        print(json.dumps({"schema_version": SCHEMA_VERSION,
                          "build": accel.status(),
                          "tables": [t.to_dict() for t in tables]},
                         indent=2, sort_keys=True))
    else:
        print("build: %s" % accel.describe())
        for table in tables:
            print(table.render())

    if args.profile:
        import cProfile

        from repro.cli import _scenario_circus
        world, body = _scenario_circus(args.iterations)
        profiler = cProfile.Profile()
        profiler.enable()
        world.run(body())
        profiler.disable()
        profiler.dump_stats(args.profile)
        print("\ncProfile of circus-%d written to %s "
              "(inspect with `python -m pstats %s`)"
              % (args.iterations, args.profile, args.profile))
    return 0


def _fuzz_seeds(args):
    if args.seed_file:
        with open(args.seed_file) as fh:
            data = json.load(fh)
        seeds = data["seeds"] if isinstance(data, dict) else data
        return [int(s) for s in seeds]
    return list(range(args.base_seed, args.base_seed + args.seeds))


def _fuzz_oracles(args):
    if not args.oracles:
        return None
    if args.oracles.strip() == "none":
        # Disable every online monitor (offline history checkers still
        # run — they are driven by the scenario's ``checker``, not by
        # this list): the "is the bug visible to clients at all?" mode.
        return []
    return [name.strip() for name in args.oracles.split(",") if name.strip()]


def cmd_fuzz(args) -> int:
    """Seeded fault-schedule fuzzing: sweep, shrink, replay.

    Everything printed under ``--json`` is deterministic — two identical
    invocations must produce byte-identical output (the property the CI
    smoke job checks by diffing the digests of two runs).
    """
    import os

    from repro import explore
    from repro.obs.export import PROGRESS, SCHEMA_VERSION
    from repro.obs.recorder import render_postmortem

    oracles = _fuzz_oracles(args)

    if args.list_scenarios:
        table = Table("fuzz scenarios", ["name", "machines-faulted",
                                         "horizon", "description"])
        for name in sorted(explore.SCENARIOS):
            scn = explore.SCENARIOS[name]
            table.add_row(name, "servers", scn.horizon, scn.description)
        print(table.render())
        return 0

    if args.replay:
        result = explore.replay_file(args.replay, budget=args.budget,
                                     oracles=oracles)
        print("replay %s: %s" % (args.replay, result.summary()))
        print("digest: %s" % result.digest())
        if not result.ok and result.postmortem is not None:
            print(render_postmortem(result.postmortem))
        return 0 if result.ok else 1

    scenario = explore.get_scenario(args.scenario)
    seeds = _fuzz_seeds(args)
    results = []
    failures = []
    for done, seed in enumerate(seeds, 1):
        result = explore.run(scenario, seed, budget=args.budget,
                             oracles=oracles,
                             artifacts=bool(args.artifacts))
        entry = {
            "seed": seed,
            "ok": result.ok,
            "digest": result.digest(),
            "actions": len(result.schedule.actions),
            "invariants": result.invariants(),
            "crash": result.crash,
        }
        if not result.ok:
            failures.append((result, entry))
            if not args.json:
                print(result.summary())
        results.append(entry)
        PROGRESS.publish("fuzz.%s" % scenario.name, done=done,
                         total=len(seeds), failures=len(failures),
                         seed=seed)
    PROGRESS.finish("fuzz.%s" % scenario.name)

    for result, entry in failures:
        os.makedirs(args.out_dir, exist_ok=True)
        stem = os.path.join(args.out_dir, "%s-seed%d"
                            % (result.scenario, result.seed))
        schedule = result.schedule
        if args.shrink:
            schedule, attempts = explore.shrink_failure(
                result, max_attempts=args.shrink_attempts)
            entry["shrunk_actions"] = len(schedule.actions)
            entry["shrink_attempts"] = attempts
        entry["repro_file"] = stem + ".schedule.json"
        schedule.save(entry["repro_file"])
        if result.postmortem is not None:
            with open(stem + ".postmortem.json", "w") as fh:
                json.dump(result.postmortem, fh, indent=2)
                fh.write("\n")
        if args.artifacts and result.artifacts is not None:
            os.makedirs(args.artifacts, exist_ok=True)
            astem = os.path.join(args.artifacts, "%s-seed%d"
                                 % (result.scenario, result.seed))
            with open(astem + ".openmetrics.txt", "w") as fh:
                fh.write(result.artifacts["openmetrics"])
            with open(astem + ".trace.json", "w") as fh:
                json.dump(result.artifacts["trace"], fh, indent=2)
                fh.write("\n")
            entry["artifact_stem"] = astem
        if args.history_artifacts and result.history is not None:
            from repro.obs.history import canonical_dumps
            os.makedirs(args.history_artifacts, exist_ok=True)
            entry["history_file"] = os.path.join(
                args.history_artifacts, "%s-seed%d.history.json"
                % (result.scenario, result.seed))
            with open(entry["history_file"], "w") as fh:
                fh.write(canonical_dumps(result.history))
        if not args.json:
            print("  repro script: %s" % entry["repro_file"])
            print("  replay with:  repro fuzz --replay %s"
                  % entry["repro_file"])

    sweep_digest = explore.digest_of([entry["digest"] for entry in results])
    report = {
        "format": "repro.fuzz.sweep/1",
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario.name,
        "oracles": oracles,
        "seeds": len(seeds),
        "failures": len(failures),
        "digest": sweep_digest,
        "results": results,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print("fuzz %-16s %d seed(s), %d failure(s)"
              % (scenario.name, len(seeds), len(failures)))
        print("sweep digest: %s" % sweep_digest)
    return 1 if failures else 0


def cmd_postmortem(args) -> int:
    from repro.obs.recorder import render_postmortem

    with open(args.dump) as fh:
        report = json.load(fh)
    print(render_postmortem(report))
    return 1 if (report.get("violations") or report.get("crash")) else 0


def cmd_lincheck(args) -> int:
    """Re-check a saved operation history offline (docs/CHECKING.md)."""
    from repro.obs.history import OperationHistory, format_operation
    from repro.obs.lincheck import check_history

    history = OperationHistory.load(args.history)
    result = check_history(history, semantics=args.semantics or None)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.ok else 1
    print("history: %s (scenario %s, seed %d, %d operation(s))"
          % (args.history, history.scenario or "?", history.seed,
             len(history)))
    if result.ok:
        print("%s: OK — %d operation(s) checked"
              % (result.semantics, result.checked))
        return 0
    print("%s: VIOLATION — %s" % (result.semantics, result.reason))
    if result.key is not None:
        print("key: %r" % result.key)
    print("minimal violating sub-history (%d operation(s)):"
          % len(result.violation))
    for op in result.violation:
        print("  " + format_operation(op.to_dict()))
    return 1


COMMANDS = {
    "table41": cmd_table41,
    "table42": cmd_table42,
    "table43": cmd_table43,
    "fig48": cmd_fig48,
    "multicast": cmd_multicast,
    "deadlock": cmd_deadlock,
    "availability": cmd_availability,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Replicated Distributed "
                    "Programs' (Cooper, 1985).")
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    experiments = sorted(COMMANDS) + ["all"]
    for name in experiments:
        cmd = sub.add_parser(name, help="run the %s experiment" % name
                             if name != "all" else "run every experiment")
        cmd.add_argument("--iterations", type=int, default=30,
                         help="measurement loop length (default 30)")
    trace_cmd = sub.add_parser(
        "trace", help="run a scenario with call tracing; write Chrome "
                      "trace_event JSON")
    trace_cmd.add_argument(
        "target", help="scenario: examples/quickstart or "
                       "examples/protocol_trace")
    trace_cmd.add_argument("--out", default=None,
                           help="output path (default <scenario>_trace.json)")
    metrics_cmd = sub.add_parser(
        "metrics", help="run a workload with the metrics collector; print "
                        "the snapshot")
    metrics_cmd.add_argument(
        "bench", help="workload: quickstart, protocol_trace, or circus")
    metrics_cmd.add_argument("--iterations", type=int, default=30,
                             help="calls for the circus workload "
                                  "(default 30)")
    metrics_cmd.add_argument("--json", action="store_true",
                             help="emit the snapshot as --bench-json-style "
                                  "{\"tables\": [...]} JSON")
    metrics_cmd.add_argument("--openmetrics", action="store_true",
                             help="emit the snapshot in OpenMetrics text "
                                  "format (with time-series rates)")
    critpath_cmd = sub.add_parser(
        "critpath", help="decompose each replicated call's latency into "
                         "named critical-path stages")
    critpath_cmd.add_argument(
        "bench", nargs="?", default="circus",
        help="workload: quickstart, protocol_trace, or circus (default)")
    critpath_cmd.add_argument("--iterations", type=int, default=200,
                              help="calls for the circus workload "
                                   "(default 200)")
    critpath_cmd.add_argument("--json", action="store_true",
                              help="emit a deterministic JSON report")
    critpath_cmd.add_argument("--per-call", action="store_true",
                              help="also list every call's breakdown")
    top_cmd = sub.add_parser(
        "top", help="live view of a running scenario: per-troupe call "
                    "rates, stage breakdown, violations, task progress")
    top_cmd.add_argument(
        "bench", nargs="?", default="circus",
        help="workload: quickstart, protocol_trace, or circus (default)")
    top_cmd.add_argument("--iterations", type=int, default=200,
                         help="calls for the circus workload (default 200)")
    top_cmd.add_argument("--slice", type=float, default=50.0,
                         help="virtual ms simulated per frame (default 50)")
    top_cmd.add_argument("--frames", type=int, default=None,
                         help="stop after N frames (default: run to "
                              "completion)")
    top_cmd.add_argument("--plain", action="store_true",
                         help="re-print frames instead of the curses UI "
                              "(automatic when stdout is not a tty)")
    check_cmd = sub.add_parser(
        "check", help="run a scenario under the invariant monitors; exit "
                      "nonzero (with a post-mortem dump) on any violation")
    check_cmd.add_argument(
        "scenario", help="scenario: %s, or all"
                         % ", ".join(sorted(CHECK_SCENARIOS)))
    check_cmd.add_argument("--iterations", type=int, default=30,
                           help="calls for the circus scenario (default 30)")
    check_cmd.add_argument("--dump-dir", default=".",
                           help="where post-mortem dumps go (default .)")
    pm_cmd = sub.add_parser(
        "postmortem", help="render a post-mortem dump written by "
                           "'repro check'")
    pm_cmd.add_argument("dump", help="path to a *_postmortem.json file")
    fuzz_cmd = sub.add_parser(
        "fuzz", help="explore seeded fault schedules under the invariant "
                     "monitors; shrink and dump failures as replayable "
                     "repro scripts")
    fuzz_cmd.add_argument("--scenario", default="echo",
                          help="workload to fuzz (see --list; default "
                               "echo)")
    fuzz_cmd.add_argument("--seeds", type=int, default=50,
                          help="number of seeds to sweep (default 50)")
    fuzz_cmd.add_argument("--base-seed", type=int, default=0,
                          help="first seed of the sweep (default 0)")
    fuzz_cmd.add_argument("--seed-file", default=None, metavar="PATH",
                          help="JSON seed corpus ([..] or {\"seeds\": "
                               "[..]}); overrides --seeds/--base-seed")
    fuzz_cmd.add_argument("--budget", type=float, default=None,
                          help="virtual-time budget per run (ms; default: "
                               "the scenario's)")
    fuzz_cmd.add_argument("--oracles", default=None,
                          help="comma-separated invariant slugs (default: "
                               "the scenario's oracle set)")
    fuzz_cmd.add_argument("--shrink", action="store_true",
                          help="minimize failing schedules before writing "
                               "their repro scripts")
    fuzz_cmd.add_argument("--shrink-attempts", type=int, default=200,
                          help="re-run budget per shrink (default 200)")
    fuzz_cmd.add_argument("--out-dir", default="fuzz-out",
                          help="where repro scripts and post-mortems go "
                               "(default fuzz-out)")
    fuzz_cmd.add_argument("--artifacts", default=None, metavar="DIR",
                          help="also write OpenMetrics snapshots and "
                               "Chrome traces for failing seeds to DIR "
                               "(what nightly CI uploads)")
    fuzz_cmd.add_argument("--history-artifacts", default=None,
                          metavar="DIR",
                          help="also write each failing seed's checked "
                               "operation history (repro.history/1 JSON, "
                               "re-checkable with 'repro lincheck') to "
                               "DIR")
    fuzz_cmd.add_argument("--json", action="store_true",
                          help="emit a deterministic JSON sweep report")
    fuzz_cmd.add_argument("--replay", default=None, metavar="PATH",
                          help="re-run one repro script instead of "
                               "sweeping")
    fuzz_cmd.add_argument("--list", dest="list_scenarios",
                          action="store_true",
                          help="list the scenario catalog and exit")
    lincheck_cmd = sub.add_parser(
        "lincheck", help="check a saved operation history offline for "
                         "linearizability / strict serializability")
    lincheck_cmd.add_argument("history",
                              help="path to a repro.history/1 JSON file "
                                   "(see fuzz --history-artifacts)")
    lincheck_cmd.add_argument("--semantics", default=None,
                              choices=["register", "list-append", "bank",
                                       "total-order"],
                              help="checker semantics (default: the one "
                                   "recorded in the history)")
    lincheck_cmd.add_argument("--json", action="store_true",
                              help="emit the CheckResult as JSON")
    perf_cmd = sub.add_parser(
        "perf", help="measure simulator throughput: wall-clock events/sec "
                     "and the deterministic proxy metric")
    perf_cmd.add_argument("--iterations", type=int, default=200,
                          help="circus calls for the proxy metric "
                               "(default 200, the gated row)")
    perf_cmd.add_argument("--json", action="store_true",
                          help="emit {\"tables\": [...]} JSON")
    perf_cmd.add_argument("--profile", default=None, metavar="PATH",
                          help="also cProfile the circus workload; write "
                               "a pstats dump to PATH")
    perf_cmd.add_argument("--compare", nargs="?", const="BENCH_PERF.json",
                          default=None, metavar="BASELINE",
                          help="rebuild every CI-gated table and run the "
                               "drift gate against BASELINE (default "
                               "BENCH_PERF.json): per-column deltas plus "
                               "the 5%% verdict; exit 1 on regression")
    perf_cmd.add_argument("--threshold", type=float, default=5.0,
                          help="--compare gate threshold percent "
                               "(default 5, matching CI)")
    shard_cmd = sub.add_parser(
        "shard", help="run the capacity workload across shard kernels "
                      "with conservative-lookahead exchange "
                      "(repro.sim.sharded)")
    shard_cmd.add_argument("--shards", type=int, default=2,
                           help="shard kernels to partition the hosts "
                                "across (default 2)")
    shard_cmd.add_argument("--machines", type=int, default=12,
                           help="hosts in the world (default 12)")
    shard_cmd.add_argument("--cells", type=int, default=4,
                           help="machine cells, one echo troupe each "
                                "(default 4; must divide --machines)")
    shard_cmd.add_argument("--sessions", type=int, default=24,
                           help="client sessions (default 24)")
    shard_cmd.add_argument("--degree", type=int, default=3,
                           help="troupe members per cell (default 3)")
    shard_cmd.add_argument("--calls", type=int, default=3,
                           help="calls per session (default 3)")
    shard_cmd.add_argument("--rate", type=float, default=40.0,
                           help="per-session offered calls/sec "
                                "(default 40)")
    shard_cmd.add_argument("--arrival", default="pareto",
                           choices=["fixed", "poisson", "pareto"],
                           help="interarrival process (default pareto)")
    shard_cmd.add_argument("--horizon", type=float, default=3000.0,
                           help="virtual-time horizon in ms "
                                "(default 3000)")
    shard_cmd.add_argument("--seed", type=int, default=7)
    shard_cmd.add_argument("--mode", default="inproc",
                           choices=["inproc", "process"],
                           help="step shards in this process or fork one "
                                "OS process per shard (default inproc)")
    shard_cmd.add_argument("--reference", action="store_true",
                           help="also run the single-process (1-shard) "
                                "reference and fail unless the packet "
                                "digests are byte-identical")
    shard_cmd.add_argument("--json", action="store_true",
                           help="emit the deterministic result fields as "
                                "JSON (byte-identical across reruns of "
                                "the same seed)")
    elastic_cmd = sub.add_parser(
        "elastic", help="run the autoscaled availability experiment "
                        "(repro.elastic) and compare measured vs M/M/n/n "
                        "predicted availability")
    elastic_cmd.add_argument("--pool", type=int, default=4,
                             help="member-pool machines the failure "
                                  "process churns (default 4)")
    elastic_cmd.add_argument("--duration", type=float, default=30000.0,
                             help="virtual-time experiment length in ms "
                                  "(default 30000)")
    elastic_cmd.add_argument("--mttf", type=float, default=8000.0,
                             help="mean machine lifetime in virtual ms "
                                  "(default 8000)")
    elastic_cmd.add_argument("--mttr", type=float, default=1200.0,
                             help="mean machine repair time in virtual ms "
                                  "(default 1200)")
    elastic_cmd.add_argument("--seed", type=int, default=0)
    elastic_cmd.add_argument("--json", action="store_true",
                             help="emit the deterministic report as JSON "
                                  "(byte-identical across reruns of the "
                                  "same seed)")
    args = parser.parse_args(argv)
    if args.command == "trace":
        cmd_trace(args)
    elif args.command == "metrics":
        return cmd_metrics(args)
    elif args.command == "critpath":
        return cmd_critpath(args)
    elif args.command == "top":
        return cmd_top(args)
    elif args.command == "check":
        return cmd_check(args)
    elif args.command == "postmortem":
        return cmd_postmortem(args)
    elif args.command == "fuzz":
        return cmd_fuzz(args)
    elif args.command == "lincheck":
        return cmd_lincheck(args)
    elif args.command == "perf":
        return cmd_perf(args)
    elif args.command == "shard":
        return cmd_shard(args)
    elif args.command == "elastic":
        return cmd_elastic(args)
    elif args.command == "all":
        for name in sorted(COMMANDS):
            COMMANDS[name](args)
    else:
        COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
