"""repro — a reproduction of *Replicated Distributed Programs*
(Eric C. Cooper, Berkeley, 1985): troupes, replicated procedure call, and
the Circus system, rebuilt on a deterministic discrete-event simulation.

Quick tour
----------

    from repro.harness import World
    from repro.core import ExportedModule

    world = World(machines=6, seed=42)

    def echo_factory():
        def echo(ctx, args):
            return b"echo:" + args
        return ExportedModule("echo", {0: echo})

    troupe, members = world.make_troupe("echo-svc", echo_factory, degree=3)
    client = world.make_client()

    def body():
        return (yield from client.call_troupe(troupe, 0, 0, b"hello"))

    print(world.run(body()))   # b'echo:hello' — exactly-once at 3 replicas

Packages
--------

=====================  ====================================================
``repro.sim``          discrete-event kernel (processes, events, timers)
``repro.net``          simulated wire, UDP and TCP analogues
``repro.host``         machines, OS processes, the Table 4.2 cost model
``repro.pairedmsg``    the Circus paired message protocol (§4.2)
``repro.rpc``          call/return messages, thread IDs (§3.4.1, §4.3)
``repro.core``         troupes, replicated calls, collators (§3.5, §4.3)
``repro.model``        the Chapter 3 formal model, executable
``repro.transactions`` lightweight transactions, troupe commit, ordered
                       broadcast (Chapter 5)
``repro.binding``      the Ringmaster binding agent, reconfiguration
                       (Chapter 6)
``repro.stubs``        IDL, stub compiler, explicit binding/replication
                       (Chapter 7)
``repro.config``       troupe configuration language and manager (§7.5)
``repro.analysis``     the paper's closed-form models (Eq 5.1, 6.1, 6.2,
                       harmonic-number call-time analysis)
``repro.harness``      convenience assembly of simulated worlds
=====================  ====================================================
"""

__version__ = "1.0.0"

from repro.core import (
    CollationError,
    ExportedModule,
    FirstComeCollator,
    MajorityCollator,
    StaleBindingError,
    TroupeDescriptor,
    TroupeFailure,
    TroupeRuntime,
    UnanimousCollator,
)
from repro.harness import World

__all__ = [
    "CollationError",
    "ExportedModule",
    "FirstComeCollator",
    "MajorityCollator",
    "StaleBindingError",
    "TroupeDescriptor",
    "TroupeFailure",
    "TroupeRuntime",
    "UnanimousCollator",
    "World",
    "__version__",
]
