"""Simulated internetwork substrate.

The paper's experiments ran over a single 10 Mb/s Ethernet carrying UDP
datagrams (§4.4.1); the protocols assume datagrams "may be lost, delayed,
duplicated, or garbled" (§2.2) with garbling converted to loss by checksums.
This package provides that substrate:

- :mod:`repro.net.addresses` — host / process / module addresses (§4.2.1, §4.3)
- :mod:`repro.net.network` — the wire: loss, duplication, delay, jitter,
  partitions, and hardware multicast (§2.2, §4.3.5)
- :mod:`repro.net.udp` — unreliable datagram sockets (the UDP analogue)
- :mod:`repro.net.tcp` — a reliable byte-stream protocol with a three-way
  handshake (the TCP analogue used as a baseline in Table 4.1)
"""

from repro.net.addresses import (
    BROADCAST_HOST,
    HostAddress,
    ModuleAddress,
    ProcessAddress,
)
from repro.net.network import Host, LinkFault, Network, NetworkConfig
from repro.net.udp import PortInUse, UdpSocket
from repro.net.tcp import ConnectionClosed, ConnectionRefused, TcpListener, TcpSocket

__all__ = [
    "BROADCAST_HOST",
    "ConnectionClosed",
    "ConnectionRefused",
    "Host",
    "HostAddress",
    "LinkFault",
    "ModuleAddress",
    "Network",
    "NetworkConfig",
    "PortInUse",
    "ProcessAddress",
    "TcpListener",
    "TcpSocket",
    "UdpSocket",
]
