"""Unreliable datagram sockets: the UDP analogue.

A :class:`UdpSocket` binds a port on a host and exposes the two operations
any paired-message implementation needs (§4.4.1): send a datagram, and
receive a datagram with an optional timeout to detect losses.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addresses import HostAddress, ProcessAddress, validate_port
from repro.net.network import Datagram, Network
from repro.sim.events import Queue
from repro.sim.kernel import AnyOf, Sleep


class PortInUse(Exception):
    """Raised when binding a port that already has a socket."""


class UdpSocket:
    """A datagram socket bound to one (host, port) endpoint."""

    def __init__(self, network: Network, host: HostAddress,
                 port: Optional[int] = None):
        self.network = network
        host_obj = network.host(host)
        if port is None:
            port = host_obj.allocate_port()
        else:
            validate_port(port)
        self.addr = ProcessAddress(host, port)
        self._incoming: Queue = Queue(network.sim, "udp:%s" % (self.addr,))
        self.closed = False
        try:
            network.bind(self.addr, self._incoming.put)
        except ValueError as exc:
            raise PortInUse(str(exc)) from exc

    def __repr__(self) -> str:
        return "<UdpSocket %s%s>" % (self.addr, " closed" if self.closed else "")

    def sendto(self, payload: bytes, dst: ProcessAddress) -> None:
        self._check_open()
        self.network.send(Datagram(self.addr, dst, payload))

    def multicast(self, payload: bytes, destinations) -> None:
        """Send one hardware multicast to several destinations (§4.3.3)."""
        self._check_open()
        self.network.multicast(self.addr, list(destinations), payload)

    def broadcast(self, payload: bytes, port: int) -> None:
        self._check_open()
        self.network.broadcast(self.addr, port, payload)

    def recv(self):
        """Waitable: resumes with the next :class:`Datagram`."""
        self._check_open()
        return self._incoming.get()

    def recv_timeout(self, timeout: float):
        """Generator: the next datagram, or ``None`` after ``timeout`` ms.

        Use as ``dgram = yield from sock.recv_timeout(50.0)``.
        """
        self._check_open()
        index, value = yield AnyOf(self._incoming.get(), Sleep(timeout))
        if index == 1:
            return None
        return value

    def recv_nowait(self) -> Optional[Datagram]:
        """The next queued datagram, or ``None`` if the queue is empty."""
        self._check_open()
        try:
            return self._incoming.get_nowait()
        except LookupError:
            return None

    def pending(self) -> int:
        return len(self._incoming)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self.network.unbind(self.addr)

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("operation on closed socket %s" % (self.addr,))
