"""The simulated wire.

Models the paper's network assumptions (§2.2): packets may be lost,
delayed, or duplicated; garbled packets are already converted to lost
packets by checksums, so garbling is folded into the loss probability.
Broadcast/multicast is supported but per-recipient delivery remains
independently unreliable, exactly as §2.2 specifies ("the reliability of
delivery may vary from recipient to recipient").

Network partitions (§4.3.5) are modeled by assigning hosts to groups;
packets cross group boundaries only when no partition is installed.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.addresses import (
    BROADCAST_HOST,
    HostAddress,
    ProcessAddress,
    validate_port,
)
from repro.obs import events as obs_events
from repro.sim.kernel import Simulator
from repro.sim.rng import RandomStream


@dataclasses.dataclass
class NetworkConfig:
    """Wire characteristics.

    Times are milliseconds; bandwidth is bytes per millisecond.  The
    defaults approximate the paper's lightly loaded 10 Mb/s Ethernet:
    10 Mb/s = 1250 bytes/ms, sub-millisecond propagation.
    """

    latency: float = 0.2           # propagation delay per packet (ms)
    jitter: float = 0.05           # uniform extra delay in [0, jitter) (ms)
    bandwidth: float = 1250.0      # bytes per ms (10 Mb/s)
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    header_bytes: int = 64         # link + IP + UDP framing overhead
    mtu: int = 1500                # maximum transmission unit (§4.2.4)

    def transit_time(self, size: int, rng: RandomStream) -> float:
        delay = self.latency + (size + self.header_bytes) / self.bandwidth
        if self.jitter > 0.0:
            delay += rng.uniform(0.0, self.jitter)
        return delay


@dataclasses.dataclass
class Datagram:
    """A packet in flight: source, destination, and uninterpreted payload."""

    src: ProcessAddress
    dst: ProcessAddress
    #: delivered by reference end-to-end: the network never copies or
    #: mutates a payload, so one wire buffer serves retransmissions,
    #: duplicates, multicast fan-out, and the receiver's zero-copy
    #: decode (``seg.decode`` slices it with a memoryview).
    payload: bytes

    @property
    def size(self) -> int:
        return len(self.payload)

    def __repr__(self) -> str:
        return "<Datagram %s -> %s (%d bytes)>" % (self.src, self.dst, self.size)


class Host:
    """A network attachment point: up/down state and bound ports."""

    def __init__(self, network: "Network", name: HostAddress):
        self.network = network
        self.name = name
        self.up = True
        # port -> handler(datagram)
        self.ports: Dict[int, Callable[[Datagram], None]] = {}
        self._next_ephemeral = 1024

    def __repr__(self) -> str:
        return "<Host %s (%s)>" % (self.name, "up" if self.up else "down")

    def allocate_port(self) -> int:
        """Pick an unused ephemeral port (the UDP implementation's job,
        per §4.2.1: 'the assignment of port numbers to processes is left
        to the UDP implementation')."""
        while self._next_ephemeral in self.ports:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port


@dataclasses.dataclass
class LinkFault:
    """A temporary degradation of one link (or of the whole wire).

    ``src``/``dst`` restrict the fault to packets between two hosts
    (``None`` matches any host), so a fault schedule can degrade a single
    direction of a single link while the rest of the network stays
    healthy.  Installed and removed through :meth:`Network.add_fault` /
    :meth:`Network.remove_fault` — typically by a
    :class:`repro.explore.driver.ScheduleDriver` opening and closing
    loss/duplication/delay/reordering windows.
    """

    loss: float = 0.0            # extra drop probability on matching packets
    duplicate: float = 0.0       # extra duplication probability
    extra_delay: float = 0.0     # fixed extra latency (ms)
    reorder: float = 0.0         # probability a packet is held back ...
    reorder_hold: float = 5.0    # ... for uniform(0, reorder_hold) extra ms
    src: Optional[HostAddress] = None   # None = any source host
    dst: Optional[HostAddress] = None   # None = any destination host

    def matches(self, src: HostAddress, dst: HostAddress) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst))


class Network:
    """The shared medium connecting all hosts."""

    def __init__(self, sim: Simulator, seed: int = 0,
                 config: Optional[NetworkConfig] = None):
        self.sim = sim
        self.config = config or NetworkConfig()
        self.rng = RandomStream(seed, "network")
        self.hosts: Dict[HostAddress, Host] = {}
        self._partition_of: Dict[HostAddress, int] = {}
        self.partitioned = False
        self._faults: List[LinkFault] = []
        # Statistics: observable without instrumenting protocols.
        self.packets_sent = 0
        self.packets_delivered = 0
        self.packets_dropped = 0
        self.packets_duplicated = 0
        self.bytes_sent = 0
        self.multicasts_sent = 0

    # -- topology ----------------------------------------------------------

    def add_host(self, name: HostAddress) -> Host:
        if name in self.hosts:
            raise ValueError("duplicate host name: %r" % name)
        if name == BROADCAST_HOST:
            raise ValueError("host name %r is reserved for broadcast" % name)
        host = Host(self, name)
        self.hosts[name] = host
        return host

    def host(self, name: HostAddress) -> Host:
        return self.hosts[name]

    def set_host_up(self, name: HostAddress, up: bool) -> None:
        self.hosts[name].up = up

    def partition(self, groups: Iterable[Iterable[HostAddress]]) -> None:
        """Split the network: hosts communicate only within their group.

        Hosts not named in any group form an implicit final group.
        """
        self._partition_of = {}
        for index, group in enumerate(groups):
            for name in group:
                if name not in self.hosts:
                    raise ValueError("unknown host in partition: %r" % name)
                self._partition_of[name] = index
        leftover = [n for n in self.hosts if n not in self._partition_of]
        for name in leftover:
            self._partition_of[name] = -1
        self.partitioned = True

    def heal(self) -> None:
        """Remove any partition."""
        self._partition_of = {}
        self.partitioned = False

    def reachable(self, src: HostAddress, dst: HostAddress) -> bool:
        if not self.partitioned:
            return True
        return self._partition_of.get(src) == self._partition_of.get(dst)

    # -- link faults -------------------------------------------------------

    def add_fault(self, fault: LinkFault) -> LinkFault:
        """Install a :class:`LinkFault`; returns it (the removal handle)."""
        self._faults.append(fault)
        return fault

    def remove_fault(self, fault: LinkFault) -> None:
        if fault in self._faults:
            self._faults.remove(fault)

    def clear_faults(self) -> None:
        self._faults = []

    # -- ports -------------------------------------------------------------

    def bind(self, addr: ProcessAddress,
             handler: Callable[[Datagram], None]) -> None:
        validate_port(addr.port)
        host = self.hosts[addr.host]
        if addr.port in host.ports:
            raise ValueError("port already bound: %s" % (addr,))
        host.ports[addr.port] = handler

    def unbind(self, addr: ProcessAddress) -> None:
        host = self.hosts.get(addr.host)
        if host is not None:
            host.ports.pop(addr.port, None)

    # -- transmission ------------------------------------------------------

    def send(self, datagram: Datagram) -> None:
        """Transmit one datagram (unreliably)."""
        self.packets_sent += 1
        self.bytes_sent += datagram.size
        self._transmit(datagram)

    def multicast(self, src: ProcessAddress,
                  destinations: List[ProcessAddress],
                  payload: bytes) -> None:
        """One hardware multicast: a single wire transmission delivered to
        every destination, each with its own independent loss/delay.

        §4.3.3: with multicast, a call to an n-member troupe costs one send
        instead of n — the basis of the §4.4.2 logarithmic analysis.
        """
        self.multicasts_sent += 1
        self.packets_sent += 1
        self.bytes_sent += len(payload)
        for dst in destinations:
            self._transmit(Datagram(src, dst, payload))

    def broadcast(self, src: ProcessAddress, port: int, payload: bytes) -> None:
        """Deliver to the given port on every up host (Ethernet broadcast)."""
        self.multicasts_sent += 1
        self.packets_sent += 1
        self.bytes_sent += len(payload)
        for name in self.hosts:
            if name != src.host:
                self._transmit(Datagram(src, ProcessAddress(name, port), payload))

    def _transmit(self, datagram: Datagram) -> None:
        bus = self.sim.bus
        if bus.active:
            bus.emit(obs_events.PacketSent(
                t=self.sim.now, src=datagram.src, dst=datagram.dst,
                payload=datagram.payload))
        src_host = self.hosts.get(datagram.src.host)
        dst_host = self.hosts.get(datagram.dst.host)
        if src_host is None or dst_host is None:
            self._drop(datagram, "no-host")
            return
        if not src_host.up:
            # A crashed machine sends nothing.
            self._drop(datagram, "host-down")
            return
        if not self.reachable(datagram.src.host, datagram.dst.host):
            self._drop(datagram, "partition")
            return
        if self.rng.chance(self.config.loss_probability):
            self._drop(datagram, "loss")
            return
        copies = 1
        if self.rng.chance(self.config.duplicate_probability):
            copies = 2
            self.packets_duplicated += 1
            if bus.active:
                bus.emit(obs_events.PacketDuplicated(
                    t=self.sim.now, src=datagram.src, dst=datagram.dst))
        # Link-fault windows.  When no faults are installed this loop makes
        # no rng draws, so installing-then-removing faults elsewhere never
        # perturbs an unfaulted run's random sequence.
        extra_delay = 0.0
        for fault in self._faults:
            if not fault.matches(datagram.src.host, datagram.dst.host):
                continue
            if fault.loss and self.rng.chance(fault.loss):
                self._drop(datagram, "fault-loss")
                return
            if copies == 1 and fault.duplicate \
                    and self.rng.chance(fault.duplicate):
                copies = 2
                self.packets_duplicated += 1
                if bus.active:
                    bus.emit(obs_events.PacketDuplicated(
                        t=self.sim.now, src=datagram.src, dst=datagram.dst))
            extra_delay += fault.extra_delay
            if fault.reorder and self.rng.chance(fault.reorder):
                extra_delay += self.rng.uniform(0.0, fault.reorder_hold)
        for _ in range(copies):
            delay = extra_delay + self.config.transit_time(
                datagram.size, self.rng)
            self.sim.schedule(delay, self._deliver, datagram)

    def _drop(self, datagram: Datagram, reason: str) -> None:
        self.packets_dropped += 1
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.PacketDropped(
                t=self.sim.now, src=datagram.src, dst=datagram.dst,
                reason=reason))

    def _deliver(self, datagram: Datagram) -> None:
        dst_host = self.hosts.get(datagram.dst.host)
        if dst_host is None or not dst_host.up:
            # The destination crashed while the packet was in flight.
            self._drop(datagram, "dst-down")
            return
        if self.partitioned and not self.reachable(
                datagram.src.host, datagram.dst.host):
            # The partition appeared while the packet was in flight.
            self._drop(datagram, "partition-in-flight")
            return
        handler = dst_host.ports.get(datagram.dst.port)
        if handler is None:
            # No process bound to the port: silently discarded, as UDP does.
            self._drop(datagram, "no-port")
            return
        self.packets_delivered += 1
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.PacketDelivered(
                t=self.sim.now, src=datagram.src, dst=datagram.dst,
                size=datagram.size))
        handler(datagram)
