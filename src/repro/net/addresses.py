"""Address formats (§4.2.1 and §4.3 of the paper).

- A *host address* identifies a machine (the paper uses a 32-bit internet
  address; here a string name suffices).
- A *process address* is a host address plus a 16-bit port number —
  "the same address format used by the underlying UDP layer".
- A *module address* refines a process address with a 16-bit module number
  identifying the module among those exported by the process (§4.3).
"""

from __future__ import annotations

from typing import NamedTuple

HostAddress = str

#: Destination host meaning "every host on the local network" (broadcast).
BROADCAST_HOST: HostAddress = "*"

MAX_PORT = 0xFFFF
MAX_MODULE = 0xFFFF


class ProcessAddress(NamedTuple):
    """host + port: the endpoint of datagram communication."""

    host: HostAddress
    port: int

    def __str__(self) -> str:
        return "%s:%d" % (self.host, self.port)


class ModuleAddress(NamedTuple):
    """process address + module number: one exported module instance."""

    process: ProcessAddress
    module: int

    def __str__(self) -> str:
        return "%s/m%d" % (self.process, self.module)

    @property
    def host(self) -> HostAddress:
        return self.process.host


def validate_port(port: int) -> int:
    if not 0 <= port <= MAX_PORT:
        raise ValueError("port out of range: %r" % port)
    return port


def validate_module_number(module: int) -> int:
    if not 0 <= module <= MAX_MODULE:
        raise ValueError("module number out of range: %r" % module)
    return module
