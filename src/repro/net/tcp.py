"""A reliable stream protocol: the TCP analogue used as a Table 4.1 baseline.

The paper compares Circus against Berkeley 4.2BSD TCP (§4.4.1, Figure 4.6):
the client connects once, then exchanges messages over the established
stream.  This module implements a compact but real reliable transport on
top of the unreliable datagram layer:

- three-way handshake (SYN / SYN-ACK / ACK) before any data moves, the very
  property §4.2 criticizes ("does not even begin to transfer data until the
  connection has been established by a three-way handshake");
- message segmentation to the MTU, go-back-N retransmission with cumulative
  acknowledgments, duplicate suppression, and in-order delivery;
- connection teardown with FIN.

Each accepted connection is moved to its own ephemeral port on the server,
so the wire protocol demultiplexes per connection.
"""

from __future__ import annotations

import struct
from typing import Dict, Optional, Tuple

from repro.net.addresses import HostAddress, ProcessAddress
from repro.net.network import Datagram, Network
from repro.net.udp import UdpSocket
from repro.sim.events import Event, Queue
from repro.sim.kernel import Simulator

# Packet types.
SYN = 0
SYN_ACK = 1
ACK = 2
DATA = 3
FIN = 4

_HEADER = struct.Struct("!BIIHH")  # type, seq, ack, msg_id, more(0/1)+pad

RETRANSMIT_INTERVAL = 50.0   # ms
MAX_RETRIES = 20
DEFAULT_MSS = 1436           # bytes of data per segment (MTU 1500 - headers)


class ConnectionRefused(Exception):
    """No listener at the destination, or the handshake timed out."""


class ConnectionClosed(Exception):
    """The peer closed the connection (or it was reset)."""


def _pack(ptype: int, seq: int, ack: int, msg_id: int = 0,
          more: int = 0, data: bytes = b"") -> bytes:
    return _HEADER.pack(ptype, seq, ack, msg_id, more) + data


def _unpack(payload: bytes) -> Tuple[int, int, int, int, int, bytes]:
    ptype, seq, ack, msg_id, more = _HEADER.unpack(payload[:_HEADER.size])
    return ptype, seq, ack, msg_id, more, payload[_HEADER.size:]


class TcpSocket:
    """One endpoint of an established (or connecting) stream."""

    def __init__(self, network: Network, host: HostAddress,
                 mss: int = DEFAULT_MSS):
        self.network = network
        self.sim: Simulator = network.sim
        self.mss = mss
        self._sock = UdpSocket(network, host)
        self.peer: Optional[ProcessAddress] = None
        self.established = False
        self.closed = False
        # Sender state (go-back-N over segments).
        self._next_seq = 0            # next sequence number to assign
        self._unacked: Dict[int, bytes] = {}   # seq -> raw packet
        self._base_seq = 0            # lowest unacknowledged seq
        self._retransmit_handle = None
        self._retries = 0
        self._send_done: Optional[Event] = None
        # Receiver state.
        self._expected_seq = 0
        self._segments: list = []     # in-order segments of the message being assembled
        self._messages: Queue = Queue(self.sim, "tcp-in")
        # The pump starts only once the connection is established, so the
        # handshake code can consume replies from the raw socket itself.
        self._pump = None

    def _start_pump(self) -> None:
        self._pump = self.sim.spawn(self._receive_loop(), name="tcp-pump",
                                    daemon=True)

    @property
    def addr(self) -> ProcessAddress:
        return self._sock.addr

    def __repr__(self) -> str:
        state = "established" if self.established else "closed" if self.closed else "opening"
        return "<TcpSocket %s -> %s (%s)>" % (self.addr, self.peer, state)

    # -- connection establishment -------------------------------------

    def connect(self, dst: ProcessAddress):
        """Generator: perform the three-way handshake with a listener.

        ``yield from sock.connect(addr)``.
        """
        if self.established or self.closed:
            raise RuntimeError("connect on used socket")
        handshake_seq = self._next_seq
        fins_seen = set()  # sources whose FIN raced ahead of their SYN-ACK
        for attempt in range(MAX_RETRIES):
            self._sock.sendto(_pack(SYN, handshake_seq, 0), dst)
            reply = yield from self._sock.recv_timeout(RETRANSMIT_INTERVAL)
            if reply is None:
                continue
            ptype, seq, ack, _msg, _more, _data = _unpack(reply.payload)
            if ptype == SYN_ACK and ack == handshake_seq:
                # The server moved us to a per-connection port.
                self.peer = reply.src
                self.established = True
                self._next_seq = handshake_seq + 1
                self._base_seq = self._next_seq
                self._expected_seq = seq + 1
                self._sock.sendto(_pack(ACK, self._next_seq, seq), self.peer)
                self._start_pump()
                if self.peer in fins_seen:
                    # The peer accepted and closed immediately; the FIN was
                    # reordered before the SYN-ACK.  Report EOF, not refusal.
                    self._reset()
                return self
            if ptype == FIN:
                if reply.src == dst:
                    raise ConnectionRefused("connection refused by %s" % (dst,))
                fins_seen.add(reply.src)
        raise ConnectionRefused("handshake with %s timed out" % (dst,))

    # -- sending --------------------------------------------------------

    def send(self, message: bytes):
        """Generator: reliably send one message; returns when acknowledged."""
        self._require_established()
        if self._unacked:
            # The Berkeley kernel RPC sockets enforced write-read alternation
            # (§4.2.4); we enforce one outstanding send per direction.
            raise RuntimeError("send while a previous send is unacknowledged")
        segments = [message[i:i + self.mss]
                    for i in range(0, len(message), self.mss)] or [b""]
        msg_id = self._next_seq & 0xFFFF
        seqs = []
        for index, segment in enumerate(segments):
            more = 1 if index < len(segments) - 1 else 0
            seq = self._next_seq
            self._next_seq += 1
            raw = _pack(DATA, seq, self._expected_seq, msg_id, more, segment)
            self._unacked[seq] = raw
            seqs.append(seq)
            self._sock.sendto(raw, self.peer)
        self._arm_retransmit()
        done = Event(self.sim, "tcp-send-done")
        self._send_done = done
        yield done
        # A close that raced with the final ack only matters if some of our
        # segments were in fact never acknowledged.
        if any(seq in self._unacked for seq in seqs):
            raise ConnectionClosed("connection closed during send")

    def _arm_retransmit(self) -> None:
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
        self._retransmit_handle = self.sim.schedule(
            RETRANSMIT_INTERVAL, self._retransmit)

    def _retransmit(self) -> None:
        self._retransmit_handle = None
        if not self._unacked or self.closed:
            return
        self._retries += 1
        if self._retries > MAX_RETRIES:
            self._reset()
            return
        # Go-back-N: resend everything outstanding, lowest seq first.
        for seq in sorted(self._unacked):
            self._sock.sendto(self._unacked[seq], self.peer)
        self._arm_retransmit()

    def _handle_ack(self, ack: int) -> None:
        acked = [seq for seq in self._unacked if seq <= ack]
        for seq in acked:
            del self._unacked[seq]
        if acked:
            self._retries = 0
        if not self._unacked:
            if self._retransmit_handle is not None:
                self._retransmit_handle.cancel()
                self._retransmit_handle = None
            if self._send_done is not None and not self._send_done.fired:
                self._send_done.fire()
                self._send_done = None

    # -- receiving ------------------------------------------------------

    def recv(self):
        """Waitable: resumes with the next complete message (bytes).

        Raises :class:`ConnectionClosed` via the queued marker when the
        peer closes — callers use :func:`receive` for that translation.
        """
        return self._messages.get()

    def receive(self):
        """Generator: the next message, raising ConnectionClosed on EOF."""
        message = yield self._messages.get()
        if message is _EOF:
            raise ConnectionClosed("peer closed the connection")
        return message

    def _receive_loop(self):
        while not self.closed:
            datagram = yield self._sock.recv()
            if not isinstance(datagram, Datagram):
                return  # socket closed underneath us
            self._handle_packet(datagram)

    def _handle_packet(self, datagram: Datagram) -> None:
        ptype, seq, ack, _msg_id, more, data = _unpack(datagram.payload)
        if ptype == ACK:
            self._handle_ack(ack)
            return
        if ptype == FIN:
            # The FIN carries the peer's cumulative ack; honour it first so
            # a send whose data did arrive is not reported as failed.
            self._handle_ack(ack)
            self._sock.sendto(_pack(ACK, self._next_seq, seq), datagram.src)
            self._reset()
            return
        if ptype == DATA:
            self._handle_ack(ack)  # piggybacked acknowledgment
            if seq == self._expected_seq:
                self._expected_seq += 1
                self._segments.append(data)
                if not more:
                    self._messages.put(b"".join(self._segments))
                    self._segments = []
            # Cumulative ack for the last in-order segment (duplicates and
            # out-of-order segments are dropped, as go-back-N does).
            self._sock.sendto(
                _pack(ACK, self._next_seq, self._expected_seq - 1),
                datagram.src)

    # -- teardown --------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        if self.established and self.peer is not None:
            self._sock.sendto(
                _pack(FIN, self._next_seq, self._expected_seq - 1), self.peer)
        self._reset()

    def _reset(self) -> None:
        self.closed = True
        self.established = False
        if self._retransmit_handle is not None:
            self._retransmit_handle.cancel()
            self._retransmit_handle = None
        if self._send_done is not None and not self._send_done.fired:
            self._send_done.fire()
            self._send_done = None
        if not self._messages.closed:
            self._messages.put(_EOF)
        if self._pump is not None:
            self._pump.kill()
        self._sock.close()

    def _require_established(self) -> None:
        if self.closed:
            raise ConnectionClosed("socket is closed")
        if not self.established:
            raise RuntimeError("socket is not connected")


class _EofMarker:
    def __repr__(self) -> str:
        return "<tcp eof>"


_EOF = _EofMarker()


class TcpListener:
    """A passive socket accepting stream connections on a well-known port."""

    def __init__(self, network: Network, host: HostAddress, port: int):
        self.network = network
        self.sim = network.sim
        self.host = host
        self._sock = UdpSocket(network, host, port)
        self._accepted: Queue = Queue(self.sim, "tcp-accept")
        self.closed = False
        self._pump = self.sim.spawn(self._listen_loop(), name="tcp-listen",
                                    daemon=True)

    @property
    def addr(self) -> ProcessAddress:
        return self._sock.addr

    def accept(self):
        """Waitable: resumes with an established :class:`TcpSocket`."""
        return self._accepted.get()

    def _listen_loop(self):
        while not self.closed:
            datagram = yield self._sock.recv()
            ptype, seq, _ack, _msg, _more, _data = _unpack(datagram.payload)
            if ptype != SYN:
                continue
            conn = TcpSocket(self.network, self.host)
            conn.peer = datagram.src
            conn.established = True
            conn._expected_seq = seq + 1
            server_seq = conn._next_seq
            conn._next_seq = server_seq + 1
            conn._base_seq = conn._next_seq
            # SYN-ACK from the per-connection port; retransmitted SYNs for
            # the same client create duplicate connections only if the
            # SYN-ACK is lost, in which case the dead twin is GC'd by FIN.
            conn._sock.sendto(_pack(SYN_ACK, server_seq, seq), datagram.src)
            conn._start_pump()
            self._accepted.put(conn)

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._pump.kill()
            self._sock.close()
