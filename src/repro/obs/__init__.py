"""Unified observability: event bus, metrics, tracing, invariants.

Every :class:`~repro.sim.kernel.Simulator` owns an :class:`EventBus`
(``sim.bus``); every protocol layer emits typed events
(:mod:`repro.obs.events`) to it when — and only when — a subscriber is
attached.  On top of the bus sit the standard observers:

* :class:`MetricsCollector` — aggregates events into a
  :class:`MetricsRegistry` of counters, gauges and virtual-time
  histograms, labelled per endpoint / troupe / host.
* :class:`CallTracer` — reconstructs replicated calls as span trees
  (client call → per-replica execution → collation) and exports Chrome
  ``trace_event`` JSON keyed by virtual time.
* :class:`MonitorSuite` / :func:`watch` — online invariant monitors
  checking the paper's correctness claims over the live event stream,
  with every event stamped by Lamport + dynamic vector clocks
  (:class:`ClockDomain`) so violations carry their causal cut.
* :class:`FlightRecorder` — a bounded ring of recent events that dumps
  a causally ordered post-mortem on violation or crash.
* :class:`TimeSeriesCollector` — the same events, bucketed into windowed
  virtual-time series (:class:`TimeSeriesRegistry`) with wall-clock
  co-timestamps, for rate curves and the live ``repro top`` view.
* :class:`CritPathAnalyzer` — decomposes each replicated call's latency
  into named critical-path stages (encode/send, gather wait, execute,
  return, collation) with per-stage histograms.
* :func:`openmetrics` / :class:`ProgressChannel` — OpenMetrics text
  export and the progress channel long workloads publish through.
* :class:`OperationHistoryRecorder` / :func:`check_history` — records a
  workload's client-visible operation history and checks it offline for
  linearizability / strict serializability (``docs/CHECKING.md``).

See ``docs/OBSERVABILITY.md`` for the event taxonomy, metric names,
trace format and the invariant catalog, and ``repro trace`` /
``repro metrics`` / ``repro check`` / ``repro postmortem`` on the CLI.
"""

from repro.obs import events
from repro.obs.bus import EventBus, Subscription
from repro.obs.clocks import (ClockDomain, concurrent, happens_before,
                              host_of, vc_leq, vc_merge)
from repro.obs.critpath import STAGES, CallPath, CritPathAnalyzer
from repro.obs.export import (PROGRESS, SCHEMA_VERSION, ProgressChannel,
                              openmetrics)
from repro.obs.history import (HISTORY_FORMAT, HistoryClient, Operation,
                               OperationHistory, OperationHistoryRecorder,
                               format_operation)
from repro.obs.lincheck import (SEMANTICS, CheckResult, HistoryOracle,
                                check_history)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsCollector,
                               MetricsRegistry)
from repro.obs.monitor import (DEFAULT_MONITORS, CollationMonitor,
                               CommitMonitor, CrashSilenceMonitor,
                               ExactlyOnceMonitor, IncarnationMonitor,
                               InvariantMonitor, MonitorSuite,
                               TroupeDeterminismMonitor, watch)
from repro.obs.recorder import FlightRecorder, render_postmortem
from repro.obs.timeseries import (TimeSeriesCollector, TimeSeriesRegistry,
                                  WindowedCounter, WindowedGauge,
                                  WindowedHistogram)
from repro.obs.top import TopModel, live_top, render_frame
from repro.obs.trace import CallTracer, trace_calls

__all__ = [
    "events",
    "EventBus",
    "Subscription",
    "ClockDomain",
    "vc_leq",
    "vc_merge",
    "happens_before",
    "concurrent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "CallTracer",
    "trace_calls",
    "InvariantMonitor",
    "ExactlyOnceMonitor",
    "TroupeDeterminismMonitor",
    "CollationMonitor",
    "CommitMonitor",
    "CrashSilenceMonitor",
    "IncarnationMonitor",
    "DEFAULT_MONITORS",
    "MonitorSuite",
    "watch",
    "FlightRecorder",
    "render_postmortem",
    "HISTORY_FORMAT",
    "Operation",
    "OperationHistory",
    "OperationHistoryRecorder",
    "HistoryClient",
    "format_operation",
    "SEMANTICS",
    "CheckResult",
    "HistoryOracle",
    "check_history",
    "host_of",
    "TimeSeriesCollector",
    "TimeSeriesRegistry",
    "WindowedCounter",
    "WindowedGauge",
    "WindowedHistogram",
    "CritPathAnalyzer",
    "CallPath",
    "STAGES",
    "openmetrics",
    "SCHEMA_VERSION",
    "ProgressChannel",
    "PROGRESS",
    "TopModel",
    "render_frame",
    "live_top",
]
