"""Unified observability: event bus, virtual-time metrics, call tracing.

Every :class:`~repro.sim.kernel.Simulator` owns an :class:`EventBus`
(``sim.bus``); every protocol layer emits typed events
(:mod:`repro.obs.events`) to it when — and only when — a subscriber is
attached.  On top of the bus sit two standard observers:

* :class:`MetricsCollector` — aggregates events into a
  :class:`MetricsRegistry` of counters, gauges and virtual-time
  histograms, labelled per endpoint / troupe / host.
* :class:`CallTracer` — reconstructs replicated calls as span trees
  (client call → per-replica execution → collation) and exports Chrome
  ``trace_event`` JSON keyed by virtual time.

See ``docs/OBSERVABILITY.md`` for the event taxonomy, metric names and
trace format, and ``repro trace`` / ``repro metrics`` on the CLI.
"""

from repro.obs import events
from repro.obs.bus import EventBus, Subscription
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsCollector,
                               MetricsRegistry)
from repro.obs.trace import CallTracer, trace_calls

__all__ = [
    "events",
    "EventBus",
    "Subscription",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "CallTracer",
    "trace_calls",
]
