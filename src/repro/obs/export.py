"""Exporters and the shared progress channel.

Two jobs live here:

- :func:`openmetrics` renders a :class:`~repro.obs.metrics.MetricsRegistry`
  (plus, optionally, time-series rates and a critical-path report) in the
  OpenMetrics text exposition format, deterministically — sorted families,
  sorted label sets, a ``schema_version`` info metric, terminated by
  ``# EOF``.  CI diffing two same-seed exports byte-for-byte is the
  intended consumer as much as any scraper.

- :class:`ProgressChannel` is the one channel long-running workloads
  (the fuzz sweep, the wall-clock benchmarks) publish progress through,
  and ``repro top`` renders from.  It is process-local and synchronous:
  ``publish()`` updates the named task's row and pokes listeners.

The exporter's data model maps onto OpenMetrics as:

- ``Counter`` -> ``counter`` family, sample ``<name>_total``;
- ``Gauge`` -> ``gauge`` family;
- ``Histogram`` -> ``summary`` family (``_count``/``_sum`` plus exact
  ``quantile`` samples — registry histograms keep every observation).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)

#: Version stamp carried by every machine-readable artifact this layer
#: emits (OpenMetrics info metric, ``repro metrics --json``, ``repro
#: critpath --json``, fuzz sweep reports).  Bump on breaking shape
#: changes; CI compares artifacts byte-for-byte within one version.
SCHEMA_VERSION = "repro.obs/1"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str) -> str:
    """An OpenMetrics-legal metric name (dots and dashes become ``_``)."""
    out = _NAME_OK.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(labelset, extra: str = "") -> str:
    parts = ['%s="%s"' % (metric_name(k), _escape(v)) for k, v in labelset]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return "0"


def openmetrics(registry: MetricsRegistry,
                timeseries=None, critpath=None,
                prefix: str = "repro_") -> str:
    """The registry as OpenMetrics text exposition; deterministic.

    ``timeseries`` (a :class:`~repro.obs.timeseries.TimeSeriesRegistry`)
    adds per-series rate/total gauges; ``critpath`` (a
    :class:`~repro.obs.critpath.CritPathAnalyzer`) adds per-stage totals
    and the attribution summary.
    """
    lines: List[str] = []
    lines.append("# TYPE %sschema info" % prefix)
    lines.append('%sschema_info{version="%s"} 1' % (prefix, SCHEMA_VERSION))

    families: Dict[str, List] = {}
    for (name, labelset), metric in sorted(registry._metrics.items()):
        families.setdefault(name, []).append((labelset, metric))

    for name in sorted(families):
        samples = families[name]
        family = prefix + metric_name(name)
        kind = type(samples[0][1])
        if kind is Counter:
            lines.append("# TYPE %s counter" % family)
            for labelset, metric in samples:
                lines.append("%s_total%s %s" % (
                    family, _labels(labelset), _fmt(metric.value)))
        elif kind is Gauge:
            lines.append("# TYPE %s gauge" % family)
            for labelset, metric in samples:
                lines.append("%s%s %s" % (
                    family, _labels(labelset), _fmt(metric.value)))
        elif kind is Histogram:
            lines.append("# TYPE %s summary" % family)
            for labelset, metric in samples:
                for q in (0.5, 0.9, 0.99):
                    lines.append("%s%s %s" % (
                        family,
                        _labels(labelset, 'quantile="%s"' % q),
                        _fmt(metric.percentile(q * 100.0))))
                lines.append("%s_count%s %s" % (
                    family, _labels(labelset), _fmt(metric.count)))
                lines.append("%s_sum%s %s" % (
                    family, _labels(labelset), _fmt(float(metric.total))))

    if timeseries is not None:
        lines.append("# TYPE %sts_window_total gauge" % prefix)
        lines.append("# TYPE %sts_rate_per_sec gauge" % prefix)
        rate_lines = []
        for name in timeseries.names():
            for labelset, series in timeseries.labeled(name):
                if not hasattr(series, "total"):
                    continue
                sample = _labels(
                    labelset, 'series="%s"' % _escape(metric_name(name)))
                lines.append("%sts_window_total%s %s" % (
                    prefix, sample, _fmt(series.total())))
                rate_lines.append("%sts_rate_per_sec%s %s" % (
                    prefix, sample, _fmt(series.rate_per_sec())))
        lines.extend(rate_lines)

    if critpath is not None:
        report = critpath.report()
        lines.append("# TYPE %scritpath_attributed_pct gauge" % prefix)
        lines.append("%scritpath_attributed_pct %s" % (
            prefix, _fmt(float(report["attributed_pct"]))))
        lines.append("# TYPE %scritpath_residual_ms gauge" % prefix)
        lines.append("%scritpath_residual_ms %s" % (
            prefix, _fmt(float(report["residual_ms"]))))
        lines.append("# TYPE %scritpath_stage_ms gauge" % prefix)
        for stage, row in report["stages"].items():
            lines.append('%scritpath_stage_ms{stage="%s"} %s' % (
                prefix, _escape(stage), _fmt(float(row["total_ms"]))))
        lines.append("# TYPE %scritpath_dominant_calls gauge" % prefix)
        for stage, count in report["dominant"].items():
            lines.append('%scritpath_dominant_calls{stage="%s"} %s' % (
                prefix, _escape(stage), _fmt(count)))

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class ProgressChannel:
    """Named progress rows published by workloads, read by ``repro top``.

    ``publish("fuzz.sweep", done=120, total=1000, failures=2)`` upserts
    the row; listeners (the live view) are poked synchronously.  Rows are
    plain dicts plus a monotone ``seq`` so renderers can spot updates.
    """

    def __init__(self):
        self._rows: Dict[str, Dict[str, Any]] = {}
        self._listeners: List[Callable[[str, Dict[str, Any]], None]] = []
        self._seq = 0

    def publish(self, task: str, **fields: Any) -> None:
        self._seq += 1
        row = self._rows.setdefault(task, {})
        row.update(fields)
        row["seq"] = self._seq
        for listener in list(self._listeners):
            listener(task, row)

    def finish(self, task: str) -> None:
        """Drop a completed task's row."""
        self._rows.pop(task, None)

    def listen(self, fn: Callable[[str, Dict[str, Any]], None]) -> None:
        self._listeners.append(fn)

    def unlisten(self, fn) -> None:
        try:
            self._listeners.remove(fn)
        except ValueError:
            pass

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Task name -> row, task-sorted (deterministic)."""
        return {task: dict(self._rows[task])
                for task in sorted(self._rows)}


#: The process-wide default channel: workloads publish here unless handed
#: a channel explicitly, so `repro top` sees fuzz/bench progress with no
#: plumbing.
PROGRESS = ProgressChannel()
