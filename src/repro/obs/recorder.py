"""The flight recorder: a bounded ring of recent bus events that turns
into a causally ordered post-mortem when something goes wrong.

The recorder subscribes to *everything* and keeps the last ``capacity``
events.  When an :class:`~repro.obs.events.InvariantViolation` arrives
(or the monitored block raises — see
:func:`repro.obs.monitor.watch`), the ring is sliced along the
violation's vector clock: every retained event whose stamp satisfies
``vc_leq(event.vc, violation.vc)`` is in the violation's causal past and
belongs to the *causal cut*; the cut is linearized by Lamport clock (a
causally consistent order) and attached to the report together with the
vector-clock frontier and, when a
:class:`~repro.obs.trace.CallTracer` is watching, the call spans the
offending events belong to.

Reports serialize to JSON (``dump``) and render to text
(:func:`render_postmortem`); the ``repro postmortem`` CLI subcommand
re-renders a dumped report.
"""

from __future__ import annotations

import collections
import dataclasses
import json
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs import events as obs_events
from repro.obs.clocks import causal_sort_key, vc_leq


def event_to_dict(event) -> Dict[str, Any]:
    """A JSON-ready view of any bus event: kind, virtual time, causal
    stamp (when present) and the dataclass payload with addresses
    stringified, payload bytes reduced to sizes, and evidence events
    summarized one level deep."""
    out: Dict[str, Any] = {"kind": event.kind, "t": event.t}
    node = getattr(event, "node", None)
    if node is not None:
        out["node"] = node
        out["lamport"] = getattr(event, "lamport", 0)
        out["vc"] = dict(getattr(event, "vc", {}) or {})
    for field in dataclasses.fields(event):
        if field.name == "t":
            continue
        value = getattr(event, field.name)
        if isinstance(value, bytes):
            out[field.name + "_size"] = len(value)
        elif field.name == "evidence":
            out["evidence"] = [event_to_dict(e) for e in value]
        elif isinstance(value, (str, int, float, bool)) or value is None:
            out[field.name] = value
        elif isinstance(value, (list, tuple)):
            out[field.name] = [str(v) if not isinstance(
                v, (str, int, float, bool)) else v for v in value]
        else:
            out[field.name] = str(value)
    return out


class FlightRecorder:
    """Keep the last ``capacity`` bus events; cut and dump on demand."""

    def __init__(self, bus, capacity: int = 2048):
        self.bus = bus
        self.capacity = capacity
        self.ring: collections.deque = collections.deque(maxlen=capacity)
        self.dropped = 0
        self.violations: List[obs_events.InvariantViolation] = []
        self.monitor_errors: List[obs_events.MonitorError] = []
        self.crash: Optional[Dict[str, Any]] = None
        #: the full membership history, outside the ring: every
        #: ``bind.member`` event as a troupe-ID timeline entry.  Ring
        #: eviction never loses a reconfiguration, so a post-mortem
        #: always shows which incarnation of each troupe a violation
        #: happened against.
        self.membership: List[Dict[str, Any]] = []
        #: arbitrary JSON-able context included in the post-mortem — the
        #: fault explorer stores the offending schedule and seed here so
        #: a dumped report is replayable on its own.
        self.context: Dict[str, Any] = {}
        self._overflow_warned = False
        self._warning_inflight = False
        self._sub = bus.subscribe(self._record)

    def detach(self) -> None:
        if self._sub is not None:
            self.bus.unsubscribe(self._sub)
            self._sub = None

    def _record(self, event) -> None:
        if self._warning_inflight and event.kind == "mon.warn":
            # Our own overflow warning coming back around the bus: other
            # subscribers should see it, but recording it here would
            # evict one more real event and inflate the drop count.
            return
        overflowed = len(self.ring) == self.capacity
        if overflowed:
            self.dropped += 1
        self.ring.append(event)
        kind = event.kind
        if kind == "mon.violation":
            self.violations.append(event)
        elif kind == "mon.error":
            self.monitor_errors.append(event)
        elif kind == "bind.member":
            self.membership.append({
                "t": event.t,
                "name": event.name,
                "op": event.op,
                "old_id": event.old_id,
                "new_id": event.new_id,
                "members": event.members,
            })
        if overflowed and not self._overflow_warned:
            # Truncated post-mortems are self-announcing: the first drop
            # puts a mon.warn on the bus (once).
            self._overflow_warned = True
            self._warning_inflight = True
            try:
                self.bus.emit(obs_events.MonitorWarning(
                    t=getattr(event, "t", 0.0), source="FlightRecorder",
                    message="ring overflowed (capacity %d); oldest events "
                            "are being dropped" % self.capacity,
                    dropped=self.dropped))
            finally:
                self._warning_inflight = False

    def record_crash(self, exc: BaseException, t: float = 0.0) -> None:
        """Note an unexpected simulation crash (an exception escaping
        the watched block) so the post-mortem reports it."""
        self.crash = {
            "type": type(exc).__name__,
            "message": str(exc),
            "t": t,
        }

    # -- the causal cut ----------------------------------------------------

    def causal_cut(self, violation) -> List[Any]:
        """Every retained event in the violation's causal past (its own
        evidence included), linearized causally.  Without clocks the cut
        degrades to everything recorded up to the violation, in
        emission order."""
        frontier = getattr(violation, "vc", None)
        if frontier:
            cut = [e for e in self.ring
                   if getattr(e, "vc", None)
                   and e is not violation
                   and vc_leq(e.vc, frontier)]
            cut.sort(key=causal_sort_key)
            return cut
        cut = []
        for e in self.ring:
            if e is violation:
                break
            cut.append(e)
        return cut

    # -- reports -----------------------------------------------------------

    def postmortem(self, tracer=None, critpath=None) -> Dict[str, Any]:
        """The full post-mortem report as a JSON-ready dictionary.

        ``critpath`` (a :class:`~repro.obs.critpath.CritPathAnalyzer`
        that watched the run) embeds each violating call's critical-path
        stage breakdown, so the report says *where* the latency sat, not
        just which invariant fired."""
        report: Dict[str, Any] = {
            "format": "repro.postmortem/1",
            "recorded": len(self.ring),
            "dropped": self.dropped,
            "violations": [self._violation_dict(v, tracer, critpath)
                           for v in self.violations],
            "monitor_errors": [event_to_dict(e)
                               for e in self.monitor_errors],
            "crash": self.crash,
        }
        if self.context:
            report["context"] = self.context
        if self.membership:
            report["membership"] = list(self.membership)
        if self.crash is not None:
            # No violation frontier to cut at: give the investigator the
            # causally linearized tail of the ring instead.
            tail = sorted(self.ring, key=causal_sort_key)
            report["tail"] = [event_to_dict(e) for e in tail[-64:]]
        return report

    def _violation_dict(self, violation, tracer,
                        critpath=None) -> Dict[str, Any]:
        out = event_to_dict(violation)
        cut = self.causal_cut(violation)
        out["causal_cut"] = [event_to_dict(e) for e in cut]
        out["frontier"] = dict(getattr(violation, "vc", {}) or {})
        if tracer is not None:
            out["spans"] = self._involved_spans(violation, tracer)
        if critpath is not None:
            paths = [path.to_dict() for path in critpath.paths()
                     if (path.call.thread_id, path.call.call_number)
                     in self._evidence_contexts(violation)]
            if paths:
                out["critical_path"] = paths
        return out

    @staticmethod
    def _evidence_contexts(violation) -> Set[Tuple[str, int]]:
        """The (thread_id, call_number) trace contexts in the evidence."""
        contexts: Set[Tuple[str, int]] = set()
        for e in violation.evidence:
            thread_id = getattr(e, "thread_id", None)
            call_number = getattr(e, "call_number", None)
            if thread_id is not None and call_number is not None:
                contexts.add((thread_id, call_number))
        return contexts

    def _involved_spans(self, violation, tracer) -> List[Dict[str, Any]]:
        """Call spans whose trace context appears in the evidence."""
        contexts = self._evidence_contexts(violation)
        spans = []
        for span in tracer.calls:
            if (span.thread_id, span.call_number) in contexts:
                spans.append(tracer._call_dict(span))
        return spans

    def dump(self, path, tracer=None, critpath=None) -> Dict[str, Any]:
        """Write the post-mortem to ``path`` as JSON; returns it."""
        report = self.postmortem(tracer=tracer, critpath=critpath)
        with open(path, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=False)
            fh.write("\n")
        return report


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------

def _fmt_vc(vc: Dict[str, int]) -> str:
    if not vc:
        return "{}"
    return "{%s}" % ", ".join(
        "%s:%d" % (node, vc[node]) for node in sorted(vc))

_STAMP_FIELDS = ("kind", "t", "node", "lamport", "vc", "evidence",
                 "causal_cut", "frontier", "spans")


def _fmt_event(e: Dict[str, Any]) -> str:
    payload = ", ".join(
        "%s=%s" % (k, v) for k, v in e.items() if k not in _STAMP_FIELDS)
    line = "[L%-4s t=%-8g] %-16s %s" % (
        e.get("lamport", "?"), e.get("t", 0.0), e.get("kind", "?"), payload)
    node = e.get("node")
    if node:
        line += "   @%s" % node
    return line


def render_postmortem(report: Dict[str, Any]) -> str:
    """Render a dumped post-mortem report for humans."""
    lines: List[str] = []
    push = lines.append
    push("=== post-mortem (%s) ===" % report.get("format", "?"))
    push("ring: %d events retained, %d dropped" % (
        report.get("recorded", 0), report.get("dropped", 0)))
    crash = report.get("crash")
    if crash:
        push("CRASH: %s: %s (t=%g)" % (
            crash.get("type"), crash.get("message"), crash.get("t", 0.0)))
    violations = report.get("violations", [])
    push("%d violation(s)" % len(violations))
    for i, v in enumerate(violations):
        push("")
        push("--- violation %d: %s [%s, §%s] ---" % (
            i + 1, v.get("invariant"), v.get("monitor"), v.get("section")))
        push("  subject: %s" % v.get("subject"))
        push("  %s" % v.get("message"))
        if v.get("frontier"):
            push("  frontier: %s" % _fmt_vc(v["frontier"]))
        evidence = v.get("evidence", [])
        if evidence:
            push("  offending events:")
            for e in evidence:
                push("    " + _fmt_event(e))
        cut = v.get("causal_cut", [])
        if cut:
            push("  causal past (%d events, causal order):" % len(cut))
            for e in cut:
                push("    " + _fmt_event(e))
        for span in v.get("spans", []) or []:
            push("  involved span: %s by %s (call#%s, %s)" % (
                span.get("name"), span.get("client"),
                span.get("call_number"), span.get("outcome")))
        for path in v.get("critical_path", []) or []:
            push("  critical path of %s (call#%s, %.3f ms, dominant: %s):"
                 % (path.get("call"), path.get("call_number"),
                    path.get("duration_ms", 0.0), path.get("dominant")))
            for stage, dur in path.get("stages", []):
                push("    %-18s %10.3f ms" % (stage, dur))
    membership = report.get("membership", [])
    if membership:
        push("")
        push("membership history (%d change(s)):" % len(membership))
        for entry in membership:
            push("  [t=%-8g] %-8s %-20s id %d -> %d (%d member(s))" % (
                entry.get("t", 0.0), entry.get("op", "?"),
                entry.get("name", "?"), entry.get("old_id", 0),
                entry.get("new_id", 0), entry.get("members", 0)))
    lincheck = report.get("lincheck")
    if lincheck:
        push("")
        push("--- offline history check (%s) ---" % lincheck.get("semantics"))
        push("  verdict: %s over %d operation(s)" % (
            "OK" if lincheck.get("ok") else "VIOLATION",
            lincheck.get("checked", 0)))
        if lincheck.get("reason"):
            push("  %s" % lincheck["reason"])
        if lincheck.get("key") is not None:
            push("  key: %r" % lincheck["key"])
        violation_ops = lincheck.get("violation", [])
        if violation_ops:
            from repro.obs.history import format_operation
            push("  minimal violating sub-history (%d operation(s)):"
                 % len(violation_ops))
            for op in violation_ops:
                push("    " + format_operation(op))
    errors = report.get("monitor_errors", [])
    if errors:
        push("")
        push("%d monitor error(s) contained by the bus:" % len(errors))
        for e in errors:
            push("  %s during %s: %s" % (
                e.get("handler"), e.get("event_kind"), e.get("error")))
    tail = report.get("tail", [])
    if tail:
        push("")
        push("last %d events before the crash (causal order):" % len(tail))
        for e in tail:
            push("  " + _fmt_event(e))
    push("")
    return "\n".join(lines)
