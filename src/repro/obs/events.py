"""The event taxonomy: one typed dataclass per observable occurrence.

Kinds are dotted names grouped by layer; subscribe with a prefix filter
(``"pm."`` for every paired-message event).  The full taxonomy is
documented in ``docs/OBSERVABILITY.md``.

=========  ==========================================================
prefix     layer
=========  ==========================================================
``sim.``   simulation kernel: process spawn/exit, timer fires
``net.``   the wire: per-datagram send/deliver/drop/duplicate
``pm.``    paired messages: sends, retransmits, acks, probes, crashes
``rpc.``   replicated calls: one-to-many start, per-replica results,
           collation verdicts, many-to-one gather/execute/return
``txn.``   transactions: lock waits, deadlocks, commit votes/outcomes
``bind.``  the Ringmaster: lookups, membership changes, stale
           bindings, get_state transfers
=========  ==========================================================

Every event carries ``t``, the virtual time (ms) at emission.  Fields
referencing addresses hold :class:`~repro.net.addresses.ProcessAddress`
values (render with ``str``); thread IDs are pre-stringified so events
are cheap to serialize.
"""

from __future__ import annotations

import dataclasses
from typing import Any, ClassVar, Optional, Tuple


@dataclasses.dataclass
class ObsEvent:
    """Base class: a kind tag plus the virtual time of emission."""

    kind: ClassVar[str] = "event"
    t: float


# ---------------------------------------------------------------------------
# sim.* — the discrete-event kernel
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class ProcessSpawned(ObsEvent):
    kind: ClassVar[str] = "sim.spawn"
    name: str = ""
    daemon: bool = False


@dataclasses.dataclass
class ProcessExited(ObsEvent):
    kind: ClassVar[str] = "sim.exit"
    name: str = ""
    killed: bool = False
    failed: bool = False     # terminated by an unhandled exception


@dataclasses.dataclass
class TimerFired(ObsEvent):
    kind: ClassVar[str] = "sim.timer"
    due: int = 0             # timers dispatched by this alarm


# ---------------------------------------------------------------------------
# net.* — the simulated wire
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class PacketSent(ObsEvent):
    """One datagram handed to the wire (multicast emits one per
    destination, mirroring per-recipient delivery)."""

    kind: ClassVar[str] = "net.send"
    src: Any = None          # ProcessAddress
    dst: Any = None          # ProcessAddress
    payload: bytes = b""

    @property
    def size(self) -> int:
        return len(self.payload)


@dataclasses.dataclass
class PacketDelivered(ObsEvent):
    kind: ClassVar[str] = "net.deliver"
    src: Any = None
    dst: Any = None
    size: int = 0


@dataclasses.dataclass
class PacketDropped(ObsEvent):
    kind: ClassVar[str] = "net.drop"
    src: Any = None
    dst: Any = None
    #: why: 'loss' | 'host-down' | 'partition' | 'no-host' | 'no-port'
    #: | 'dst-down' | 'partition-in-flight'
    reason: str = "loss"


@dataclasses.dataclass
class PacketDuplicated(ObsEvent):
    kind: ClassVar[str] = "net.dup"
    src: Any = None
    dst: Any = None


# ---------------------------------------------------------------------------
# pm.* — the paired message protocol (§4.2)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class MessageSent(ObsEvent):
    """A call/return message began transmission (all initial segments)."""

    kind: ClassVar[str] = "pm.send"
    endpoint: Any = None     # sender's ProcessAddress
    peer: Any = None
    msg_type: int = 0
    call_number: int = 0
    segments: int = 0
    size: int = 0
    proc: str = ""           # owning process name (causal attribution)


@dataclasses.dataclass
class SegmentRetransmitted(ObsEvent):
    kind: ClassVar[str] = "pm.retransmit"
    endpoint: Any = None
    peer: Any = None
    msg_type: int = 0
    call_number: int = 0
    segment: int = 0
    proc: str = ""


@dataclasses.dataclass
class DuplicateSuppressed(ObsEvent):
    """A segment of an already-delivered message arrived again (§4.2.4)."""

    kind: ClassVar[str] = "pm.dup"
    endpoint: Any = None
    peer: Any = None
    msg_type: int = 0
    call_number: int = 0
    proc: str = ""


@dataclasses.dataclass
class ExplicitAckReceived(ObsEvent):
    kind: ClassVar[str] = "pm.ack_explicit"
    endpoint: Any = None
    peer: Any = None
    msg_type: int = 0
    call_number: int = 0
    ack_number: int = 0
    proc: str = ""


@dataclasses.dataclass
class ImplicitAck(ObsEvent):
    """A data segment served as the acknowledgment of an earlier
    transfer: a return acks its call, a call acks earlier returns."""

    kind: ClassVar[str] = "pm.ack_implicit"
    endpoint: Any = None
    peer: Any = None
    call_number: int = 0
    by: str = "return"       # 'return' | 'call'
    proc: str = ""


@dataclasses.dataclass
class ProbeSent(ObsEvent):
    kind: ClassVar[str] = "pm.probe"
    endpoint: Any = None
    peer: Any = None
    call_number: int = 0
    proc: str = ""


@dataclasses.dataclass
class PeerCrashDeclared(ObsEvent):
    kind: ClassVar[str] = "pm.crash"
    endpoint: Any = None
    peer: Any = None
    silence: float = 0.0     # ms since last heard
    call_number: int = 0     # the transfer whose silence triggered it
    proc: str = ""


@dataclasses.dataclass
class TransferTimedOut(ObsEvent):
    kind: ClassVar[str] = "pm.timeout"
    endpoint: Any = None
    peer: Any = None
    call_number: int = 0
    proc: str = ""


@dataclasses.dataclass
class MessageDelivered(ObsEvent):
    """A fully reassembled message was handed to the layer above."""

    kind: ClassVar[str] = "pm.deliver"
    endpoint: Any = None
    peer: Any = None
    msg_type: int = 0
    call_number: int = 0
    size: int = 0
    proc: str = ""


# ---------------------------------------------------------------------------
# rpc.* — replicated procedure calls (§4.3)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class CallStarted(ObsEvent):
    """One-to-many multicast begins: the client half of a replicated
    call.  ``(thread_id, call_number)`` is the propagated trace context —
    it rides the §3.4.1 call header to every replica."""

    kind: ClassVar[str] = "rpc.call_start"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    troupe: str = ""
    troupe_id: int = 0       # the target troupe's incarnation ID
    members: int = 0
    module: int = 0
    procedure: int = 0


@dataclasses.dataclass
class ReplicaResult(ObsEvent):
    """One member's return message arrived at (or crash was declared to)
    the calling client."""

    kind: ClassVar[str] = "rpc.result"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    member: Any = None
    status: str = "ok"       # 'ok' | 'crashed'


@dataclasses.dataclass
class Collated(ObsEvent):
    """The collator's verdict over the result set."""

    kind: ClassVar[str] = "rpc.collate"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    troupe: str = ""
    #: 'agreed' (needs-all collator satisfied) | 'decided_early'
    #: | 'disagreement' (collator rejected a conflicting response)
    #: | 'failed' (no decision from the final set)
    verdict: str = "agreed"
    responses: int = 0


@dataclasses.dataclass
class CallCompleted(ObsEvent):
    kind: ClassVar[str] = "rpc.call_end"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    troupe: str = ""
    #: 'ok' | 'remote_error:<kind>' | 'stale_binding' | 'troupe_failure'
    #: | 'collation_error' | the exception type name
    outcome: str = "ok"


@dataclasses.dataclass
class GatherStarted(ObsEvent):
    """Server half: the first call message of a replicated call arrived
    and the many-to-one gather began (§4.3.2)."""

    kind: ClassVar[str] = "rpc.gather"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    expected: int = -1       # -1: client troupe membership unknown


@dataclasses.dataclass
class ExecutionStarted(ObsEvent):
    kind: ClassVar[str] = "rpc.exec_start"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    troupe_id: int = 0       # the serving member's own troupe ID
    module: int = 0
    procedure: int = 0
    callers: int = 0
    group_complete: bool = True


@dataclasses.dataclass
class ExecutionFinished(ObsEvent):
    kind: ClassVar[str] = "rpc.exec_end"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    module: int = 0
    procedure: int = 0
    outcome: str = "ok"      # 'ok' | the RemoteError kind


@dataclasses.dataclass
class ReturnSent(ObsEvent):
    """Many-to-one completion: results go to the client troupe."""

    kind: ClassVar[str] = "rpc.return"
    host: str = ""
    proc: str = ""
    thread_id: str = ""
    call_number: int = 0
    recipients: int = 0


@dataclasses.dataclass
class StaleCallRejected(ObsEvent):
    """A member rejected a call bearing a stale destination troupe ID
    (§6.2) — the server side of binding invalidation."""

    kind: ClassVar[str] = "rpc.stale"
    host: str = ""
    proc: str = ""
    call_number: int = 0
    expected_id: int = 0


# ---------------------------------------------------------------------------
# txn.* — transactions (Chapter 5)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class LockWait(ObsEvent):
    kind: ClassVar[str] = "txn.lock_wait"
    txn: str = ""
    key: str = ""
    mode: str = ""
    holders: Tuple[str, ...] = ()


@dataclasses.dataclass
class LockGranted(ObsEvent):
    """A blocked acquisition finally succeeded; ``waited`` is the time
    spent in the queue (ms)."""

    kind: ClassVar[str] = "txn.lock_grant"
    txn: str = ""
    key: str = ""
    mode: str = ""
    waited: float = 0.0


@dataclasses.dataclass
class DeadlockDetected(ObsEvent):
    kind: ClassVar[str] = "txn.deadlock"
    cycle: Tuple[str, ...] = ()
    victim: str = ""


@dataclasses.dataclass
class CommitVote(ObsEvent):
    """One server member's ready_to_commit vote, as seen by the
    coordinator (§5.3)."""

    kind: ClassVar[str] = "txn.vote"
    host: str = ""
    proc: str = ""
    peer: Any = None
    serial: int = 0
    ready: bool = True


@dataclasses.dataclass
class CommitOutcome(ObsEvent):
    kind: ClassVar[str] = "txn.commit"
    host: str = ""
    proc: str = ""
    decision: str = "commit"     # 'commit' | 'abort'
    votes: int = 0
    group_complete: bool = True
    serials: Tuple[int, ...] = ()   # per-peer serials, vote order


# ---------------------------------------------------------------------------
# bind.* — the Ringmaster binding agent (Chapter 6)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class BindingLookup(ObsEvent):
    kind: ClassVar[str] = "bind.lookup"
    host: str = ""
    proc: str = ""
    op: str = "by_name"      # 'by_name' | 'by_id' | 'rebind' | 'list'
    name: str = ""
    found: bool = True


@dataclasses.dataclass
class MembershipChanged(ObsEvent):
    kind: ClassVar[str] = "bind.member"
    host: str = ""
    proc: str = ""
    op: str = "add"          # 'register' | 'add' | 'remove'
    name: str = ""
    new_id: int = 0
    members: int = 0
    old_id: int = 0          # incarnation being replaced (0: fresh)


@dataclasses.dataclass
class StaleBindingInvalidated(ObsEvent):
    """Client side: a cached binding was discovered stale and must be
    refreshed via rebind (§6.1)."""

    kind: ClassVar[str] = "bind.stale"
    host: str = ""
    proc: str = ""
    troupe: str = ""


@dataclasses.dataclass
class StateTransferred(ObsEvent):
    """A get_state call externalized a member's state for a joining
    replica (§6.4.1)."""

    kind: ClassVar[str] = "bind.get_state"
    module: str = ""
    size: int = 0


# ---------------------------------------------------------------------------
# mon.* — the invariant monitors (repro.obs.monitor)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class InvariantViolation(ObsEvent):
    """An online monitor caught the protocol breaking one of the paper's
    correctness claims.  ``evidence`` holds the bus events (in emission
    order) whose combination violates the predicate; when causal clocks
    are installed the violation's own vector clock is the merge of the
    evidence clocks — the causal frontier the flight recorder cuts at."""

    kind: ClassVar[str] = "mon.violation"
    monitor: str = ""        # monitor class name
    invariant: str = ""      # short invariant slug, e.g. 'exactly-once'
    section: str = ""        # paper section the claim comes from
    message: str = ""
    subject: str = ""        # the entity that violated (call, troupe, …)
    evidence: Tuple[Any, ...] = ()


@dataclasses.dataclass
class MonitorError(ObsEvent):
    """A bus subscriber raised; the exception was contained by the bus
    instead of unwinding into (and killing) the emitting protocol code."""

    kind: ClassVar[str] = "mon.error"
    handler: str = ""        # repr of the failing handler
    event_kind: str = ""     # kind of the event being delivered
    error: str = ""          # repr of the exception


@dataclasses.dataclass
class MonitorWarning(ObsEvent):
    """Degraded observability, announced on the bus itself — e.g. the
    flight-recorder ring overflowed, so the eventual post-mortem only
    covers a suffix of the run."""

    kind: ClassVar[str] = "mon.warn"
    source: str = ""         # who is warning (e.g. 'FlightRecorder')
    message: str = ""
    dropped: int = 0         # events lost so far, when applicable


#: every event class, keyed by kind — for documentation and validation.
ALL_EVENTS = {
    cls.kind: cls
    for cls in (
        ProcessSpawned, ProcessExited, TimerFired,
        PacketSent, PacketDelivered, PacketDropped, PacketDuplicated,
        MessageSent, SegmentRetransmitted, DuplicateSuppressed,
        ExplicitAckReceived, ImplicitAck, ProbeSent, PeerCrashDeclared,
        TransferTimedOut, MessageDelivered,
        CallStarted, ReplicaResult, Collated, CallCompleted,
        GatherStarted, ExecutionStarted, ExecutionFinished, ReturnSent,
        StaleCallRejected,
        LockWait, LockGranted, DeadlockDetected, CommitVote, CommitOutcome,
        BindingLookup, MembershipChanged, StaleBindingInvalidated,
        StateTransferred,
        InvariantViolation, MonitorError, MonitorWarning,
    )
}
