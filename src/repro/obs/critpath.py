"""Critical-path latency attribution for replicated calls.

A circus call's latency is one opaque number in the metrics registry
(``rpc.call_ms``).  This module decomposes it: for every completed call
span the analyzer walks the :class:`~repro.obs.trace.CallTracer` tree
plus the paired-message timeline and partitions ``[call_start,
call_end]`` into named *stages*, each bounded by a protocol milestone on
the call's critical path:

======================  ====================================================
stage                   covers
======================  ====================================================
``encode_send``         call issued -> last CALL segment handed to the wire
                        (argument encoding + kernel send queueing)
``gather_wait``         CALL on the wire -> the *critical replica* starts
                        executing (network flight, reassembly, the §4.3.2
                        many-to-one gather, server scheduling)
``execute``             the critical replica runs the procedure body
``return_send``         execution done -> RETURN segments handed to the wire
``return_wait``         RETURN on the wire -> the critical result reaches
                        the calling client (flight + reassembly)
``collate_wait``        critical result in hand -> collation verdict
                        (waiting on the needs-all/unanimity decision)
``complete``            verdict -> the call actually returns to the caller
``retransmit_stall``    carved out of ``gather_wait``/``return_wait``: the
                        tail of the stage after its first retransmission —
                        latency bought by loss, not by the protocol
======================  ====================================================

The *critical replica* is the member whose result completed the
collation set: the last result at or before the collation verdict.  Its
execution span and RETURN transmission bound the server-side stages.

The stage intervals telescope — consecutive milestones are clamped
monotonically into ``[start, end]`` — so per-call stage durations sum to
the call's latency *exactly*; a missing milestone (crashed replica,
degraded trace) merges its interval into the following stage and marks
the call ``degraded`` rather than leaking time.  Residual is therefore
zero for every attributed call, and attribution is deterministic: two
same-seed runs produce identical stage sums.

When a :class:`~repro.obs.clocks.ClockDomain` is installed the analyzer
also checks each adjacent milestone pair against the recorded vector
clocks (:func:`~repro.obs.clocks.happens_before`) and counts any pair
whose stamps are *concurrent* — a cross-check that the walked path is a
real causal chain (``causal_violations`` stays 0 on healthy runs).

    with CritPathAnalyzer(world.sim) as cp:
        world.run(body())
    print(cp.render())
    cp.report()["stages"]["execute"]["share_pct"]
"""

from __future__ import annotations

import collections
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as ev
from repro.obs.clocks import host_of, vc_leq
from repro.obs.metrics import Histogram
from repro.obs.trace import CallSpan, CallTracer

# Paired-message type codes (repro.pairedmsg.segments.MSG_CALL /
# MSG_RETURN), bound lazily on first analyzer construction: repro.obs
# must stay importable below the protocol stack.
_MSG_CODES: List[int] = []


def _msg_codes() -> List[int]:
    if not _MSG_CODES:
        from repro.pairedmsg.segments import MSG_CALL, MSG_RETURN
        _MSG_CODES.extend((MSG_CALL, MSG_RETURN))
    return _MSG_CODES

#: Stage names, critical-path order.  ``retransmit_stall`` is carved out
#: of the waiting stages; ``unattributed`` only appears for calls whose
#: span never closed (excluded from attribution percentages).
STAGES = ("encode_send", "gather_wait", "execute", "return_send",
          "return_wait", "collate_wait", "complete", "retransmit_stall")

#: Cap on remembered pm.send/pm.retransmit entries per (endpoint, type)
#: key — a single call never needs more; keeps long runs bounded.
_TIMELINE_CAP = 4096


class CallPath:
    """One completed call's stage decomposition."""

    __slots__ = ("call", "stages", "dominant", "retransmits", "degraded",
                 "causal_violations")

    def __init__(self, call: CallSpan, stages: List[Tuple[str, float]],
                 retransmits: int, degraded: bool, causal_violations: int):
        self.call = call
        #: ``[(stage, duration_ms), ...]`` in path order; durations >= 0
        #: and summing exactly to ``call.end - call.start``.
        self.stages = stages
        self.retransmits = retransmits
        self.degraded = degraded
        self.causal_violations = causal_violations
        self.dominant = max(stages, key=lambda s: (s[1], -stages.index(s)))[0] \
            if stages else "unattributed"

    @property
    def duration(self) -> float:
        return (self.call.end or self.call.start) - self.call.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "call": self.call.name,
            "client": "%s/%s" % (self.call.host, self.call.proc),
            "call_number": self.call.call_number,
            "t0": round(self.call.start, 3),
            "duration_ms": round(self.duration, 3),
            "dominant": self.dominant,
            "degraded": self.degraded,
            "retransmits": self.retransmits,
            "stages": [[name, round(dur, 6)] for name, dur in self.stages],
        }


class CritPathAnalyzer:
    """Builds :class:`CallPath` decompositions from a traced run.

    Owns a :class:`CallTracer` unless one is passed in, and additionally
    records the ``pm.send`` / ``pm.retransmit`` timeline needed to place
    the wire milestones.  Attach before the run; analysis happens on
    demand (:meth:`paths` / :meth:`report`) after it.
    """

    def __init__(self, sim, tracer: Optional[CallTracer] = None):
        self.sim = sim
        self._msg_call, self._msg_return = _msg_codes()
        self._owns_tracer = tracer is None
        self.tracer = tracer or CallTracer(sim)
        #: (endpoint_host, proc, call_number, msg_type) ->
        #: [(t, peer_host), ...] in emission order.
        self._sends: Dict[Tuple[str, str, int, int], List[Tuple[float, str]]]
        self._sends = collections.defaultdict(list)
        #: same key -> [t, ...] of retransmitted segments.
        self._retransmits: Dict[Tuple[str, str, int, int], List[float]]
        self._retransmits = collections.defaultdict(list)
        #: deterministic work counter: timeline entries recorded (the
        #: observability-overhead proxy reads this).
        self.milestones = 0
        self._paths: Optional[List[CallPath]] = None
        self._sub = sim.bus.subscribe(
            self._on_event, kinds=(ev.MessageSent.kind,
                                   ev.SegmentRetransmitted.kind))

    def close(self) -> None:
        self.sim.bus.unsubscribe(self._sub)
        if self._owns_tracer:
            self.tracer.close()

    def __enter__(self) -> "CritPathAnalyzer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- timeline capture --------------------------------------------------

    def _on_event(self, event) -> None:
        key = (host_of(event.endpoint), event.proc, event.call_number,
               event.msg_type)
        self._paths = None
        if event.kind == ev.MessageSent.kind:
            bucket = self._sends[key]
            if len(bucket) < _TIMELINE_CAP:
                bucket.append((event.t, host_of(event.peer)))
                self.milestones += 1
        else:
            bucket = self._retransmits[key]
            if len(bucket) < _TIMELINE_CAP:
                bucket.append(event.t)
                self.milestones += 1

    # -- analysis ----------------------------------------------------------

    def paths(self) -> List[CallPath]:
        """Stage decompositions for every *completed* call, start order."""
        if self._paths is None:
            self._paths = [self._analyze(call) for call in self.tracer.calls
                           if call.end is not None]
        return self._paths

    def _analyze(self, call: CallSpan) -> CallPath:
        start, end = call.start, call.end
        degraded = False

        # Milestone 1: the last CALL segment batch the client handed to
        # the wire for this call (multicast emits one pm.send per peer).
        call_sends = self._sends.get(
            (call.host, call.proc, call.call_number, self._msg_call), ())
        call_sends = [t for t, _peer in call_sends if start <= t <= end]
        m_sent = max(call_sends) if call_sends else None

        # The critical replica: whose result completed the collation set.
        collate_t = call.collation[0] if call.collation is not None else end
        critical = None
        for t, member, _status in call.results:
            if t <= collate_t and (critical is None or t >= critical[0]):
                critical = (t, member)
        m_result = critical[0] if critical is not None else None
        crit_host = host_of(critical[1]) if critical is not None else None

        # Its execution span (latest exec on that host within the call).
        crit_exec = None
        for span in call.execs:
            if crit_host is not None and span.host != crit_host:
                continue
            if span.end is None or span.end > end:
                continue
            if crit_exec is None or span.end > crit_exec.end:
                crit_exec = span
        m_exec_start = crit_exec.start if crit_exec is not None else None
        m_exec_end = crit_exec.end if crit_exec is not None else None

        # Milestone 4: the critical replica's RETURN transmission back to
        # the calling host (last send at or before the result arrival).
        m_ret_sent = None
        if crit_exec is not None:
            ret_sends = self._sends.get(
                (crit_exec.host, crit_exec.proc, call.call_number,
                 self._msg_return), ())
            limit = m_result if m_result is not None else end
            for t, peer_host in ret_sends:
                if peer_host == call.host and t <= limit:
                    if m_ret_sent is None or t > m_ret_sent:
                        m_ret_sent = t

        m_collate = call.collation[0] if call.collation is not None else None

        milestones = [
            ("encode_send", m_sent),
            ("gather_wait", m_exec_start),
            ("execute", m_exec_end),
            ("return_send", m_ret_sent),
            ("return_wait", m_result),
            ("collate_wait", m_collate),
            ("complete", end),
        ]

        # Telescoping partition with monotone clamping: each stage covers
        # [previous milestone, its own]; a missing milestone contributes a
        # zero-width stage and its time merges into the next stage.
        intervals: List[Tuple[str, float, float]] = []
        cursor = start
        for name, t in milestones:
            if t is None:
                degraded = True
                t = cursor
            t = min(max(t, cursor), end)
            intervals.append((name, cursor, t))
            cursor = t
        if cursor < end:             # end milestone always lands on end
            intervals.append(("complete", cursor, end))
            degraded = True

        # Carve retransmit stalls out of the waiting stages: everything
        # after a stage's first retransmission was bought by loss.
        retx = self._retransmit_times(call, crit_exec)
        stage_totals: Dict[str, float] = {name: 0.0 for name in STAGES}
        for name, a, b in intervals:
            if b <= a:
                continue
            if name in ("gather_wait", "return_wait"):
                first = None
                for t in retx:
                    if a < t < b and (first is None or t < first):
                        first = t
                if first is not None:
                    stage_totals[name] += first - a
                    stage_totals["retransmit_stall"] += b - first
                    continue
            stage_totals[name] += b - a

        stages = [(name, stage_totals[name]) for name in STAGES
                  if stage_totals[name] > 0.0]
        if not stages:               # zero-latency call: all stages empty
            stages = [("complete", 0.0)]
        return CallPath(call, stages, retransmits=len(retx),
                        degraded=degraded,
                        causal_violations=self._causal_check(call, crit_exec))

    def _retransmit_times(self, call: CallSpan, crit_exec) -> List[float]:
        """Retransmission instants on this call's critical path: the
        client's CALL segments plus the critical replica's RETURN."""
        out = list(self._retransmits.get(
            (call.host, call.proc, call.call_number, self._msg_call), ()))
        if crit_exec is not None:
            out.extend(self._retransmits.get(
                (crit_exec.host, crit_exec.proc, call.call_number,
                 self._msg_return), ()))
        end = call.end if call.end is not None else call.start
        return sorted(t for t in out if call.start <= t <= end)

    def _causal_check(self, call: CallSpan, crit_exec) -> int:
        """Vector-clock cross-check: adjacent critical-path endpoints must
        be causally ordered when a ClockDomain stamped the run.  Returns
        the number of *concurrent* adjacent pairs (0 when unstamped)."""
        domain = getattr(self.sim.bus, "stamper", None)
        if domain is None or crit_exec is None:
            return 0
        chain = []
        client_vc = domain.clock_of("%s/%s" % (call.host, call.proc))
        exec_vc = domain.clock_of("%s/%s" % (crit_exec.host, crit_exec.proc))
        if client_vc:
            chain.append(client_vc)
        if exec_vc:
            chain.append(exec_vc)
        violations = 0
        for a, b in zip(chain, chain[1:]):
            if not (vc_leq(a, b) or vc_leq(b, a)):
                violations += 1
        return violations

    # -- reporting ---------------------------------------------------------

    def stage_histograms(self) -> Dict[str, Histogram]:
        """One exact histogram of per-call durations per stage."""
        hists: Dict[str, Histogram] = {}
        for path in self.paths():
            for name, dur in path.stages:
                hists.setdefault(name, Histogram()).observe(dur)
        return hists

    def report(self) -> Dict[str, Any]:
        """Deterministic JSON-friendly summary of the whole run."""
        paths = self.paths()
        total = sum(p.duration for p in paths)
        attributed = sum(dur for p in paths for _, dur in p.stages)
        dominant: Dict[str, int] = {}
        for p in paths:
            dominant[p.dominant] = dominant.get(p.dominant, 0) + 1
        stages: Dict[str, Any] = {}
        for name, hist in sorted(self.stage_histograms().items(),
                                 key=lambda kv: STAGES.index(kv[0])
                                 if kv[0] in STAGES else len(STAGES)):
            stages[name] = {
                "count": hist.count,
                "total_ms": round(hist.total, 3),
                "share_pct": round(100.0 * hist.total / total, 2)
                if total else 0.0,
                "p50_ms": round(hist.percentile(50), 3),
                "p90_ms": round(hist.percentile(90), 3),
                "max_ms": round(max(hist.values), 3),
            }
        return {
            "calls": len(paths),
            "degraded_calls": sum(1 for p in paths if p.degraded),
            "causal_violations": sum(p.causal_violations for p in paths),
            "total_latency_ms": round(total, 3),
            "attributed_ms": round(attributed, 3),
            "attributed_pct": round(100.0 * attributed / total, 2)
            if total else 100.0,
            "residual_ms": round(total - attributed, 3),
            "residual_pct": round(100.0 * (total - attributed) / total, 2)
            if total else 0.0,
            "dominant": {k: dominant[k] for k in sorted(dominant)},
            "stages": stages,
        }

    def render(self) -> str:
        """Human-readable stage table plus attribution line."""
        rep = self.report()
        lines = ["critical path over %d call(s): %.3f ms total, "
                 "%.2f%% attributed (residual %.3f ms)" % (
                     rep["calls"], rep["total_latency_ms"],
                     rep["attributed_pct"], rep["residual_ms"])]
        header = "%-18s %6s %12s %8s %10s %10s %10s" % (
            "stage", "calls", "total ms", "share", "p50 ms", "p90 ms",
            "max ms")
        lines.append(header)
        lines.append("-" * len(header))
        for name, row in rep["stages"].items():
            lines.append("%-18s %6d %12.3f %7.2f%% %10.3f %10.3f %10.3f" % (
                name, row["count"], row["total_ms"], row["share_pct"],
                row["p50_ms"], row["p90_ms"], row["max_ms"]))
        if rep["dominant"]:
            lines.append("dominant stages: " + ", ".join(
                "%s=%d" % kv for kv in rep["dominant"].items()))
        if rep["degraded_calls"]:
            lines.append("degraded calls (missing milestones): %d"
                         % rep["degraded_calls"])
        if rep["causal_violations"]:
            lines.append("CAUSAL VIOLATIONS on critical path: %d"
                         % rep["causal_violations"])
        return "\n".join(lines)
