"""Windowed virtual-time time-series: the *when* of a run's metrics.

:class:`~repro.obs.metrics.MetricsCollector` answers "how many, in
total"; this module answers "how many, per 10 ms of virtual time" — the
shape the capacity curves, the live ``repro top`` view, and throughput
plots need.  The same typed bus events feed both.

Every series is a ring of fixed-width *buckets* aligned to virtual-time
boundaries (bucket ``k`` covers ``[k*width, (k+1)*width)`` virtual ms).
The ring holds the last ``capacity`` buckets; older buckets are evicted
and counted in ``evicted`` so a long run stays bounded.  Three series
flavours exist:

- :class:`WindowedCounter` — increments per bucket (event rates);
- :class:`WindowedGauge` — last value seen per bucket (queue depths);
- :class:`WindowedHistogram` — a per-bucket *sketch* of observations
  (count, sum, min, max, and power-of-two bins), cheap enough to keep
  per window where the exact global histogram would not be.

Wall-clock co-timestamps
------------------------

Each bucket additionally records the wall-clock instant
(``time.perf_counter()``) at which its first event landed, kept in a
side table (:attr:`TimeSeriesRegistry.wall_anchors`) so throughput
plots can line virtual-time series up with ``bench_wallclock``'s
wall-clock rates.  Wall anchors never participate in snapshots or
digests — everything deterministic stays deterministic.

    registry = TimeSeriesRegistry(bucket_ms=10.0)
    with TimeSeriesCollector(world.sim.bus, registry):
        world.run(body())
    registry.counter("rpc.calls_completed", troupe="echo").points()
    # -> [(0.0, 2), (10.0, 3), ...]
"""

from __future__ import annotations

import collections
import math
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as ev
from repro.obs.bus import EventBus
from repro.obs.metrics import LabelSet, _labelset, _render_key

#: Default bucket width in virtual ms.
DEFAULT_BUCKET_MS = 10.0
#: Default ring capacity (buckets retained per series).
DEFAULT_CAPACITY = 512


class _WindowedSeries:
    """Shared ring mechanics: bucket index -> cell, bounded, evicting."""

    __slots__ = ("width", "capacity", "cells", "evicted", "updates")

    def __init__(self, width: float, capacity: int):
        self.width = width
        self.capacity = capacity
        #: bucket index -> cell, insertion-ordered (buckets only move
        #: forward in virtual time, so order == bucket order).
        self.cells: "collections.OrderedDict[int, Any]" = \
            collections.OrderedDict()
        self.evicted = 0
        #: total cell updates ever applied (the deterministic work
        #: counter the observability-overhead proxy reads).
        self.updates = 0

    def _cell(self, t: float):
        index = int(t // self.width)
        cell = self.cells.get(index)
        if cell is None:
            cell = self.cells[index] = self._new_cell()
            while len(self.cells) > self.capacity:
                self.cells.popitem(last=False)
                self.evicted += 1
        self.updates += 1
        return cell

    def _new_cell(self):
        raise NotImplementedError

    def points(self) -> List[Tuple[float, Any]]:
        """``[(bucket_start_virtual_ms, value), ...]`` in time order."""
        return [(index * self.width, self._value_of(cell))
                for index, cell in self.cells.items()]

    def _value_of(self, cell):
        return cell

    def to_dict(self) -> Dict[str, Any]:
        return {
            "width_ms": self.width,
            "evicted": self.evicted,
            "points": [[t, v] for t, v in self.points()],
        }


class WindowedCounter(_WindowedSeries):
    """Per-bucket increments; ``points()`` yields counts per window."""

    __slots__ = ()

    def _new_cell(self):
        return 0

    def inc(self, t: float, n: int = 1) -> None:
        index = int(t // self.width)
        current = self.cells.get(index)
        if current is None:
            self._cell(t)
            self.cells[index] = n
        else:
            self.updates += 1
            self.cells[index] = current + n

    def total(self) -> int:
        """Sum over the retained window (evicted buckets excluded)."""
        return sum(self.cells.values())

    def rate_per_sec(self, last: Optional[int] = None) -> float:
        """Events per virtual second over the last ``last`` buckets
        (default: every retained bucket)."""
        cells = list(self.cells.values())
        if last is not None:
            cells = cells[-last:]
        if not cells:
            return 0.0
        return sum(cells) / (len(cells) * self.width / 1000.0)


class WindowedGauge(_WindowedSeries):
    """Last value seen per bucket."""

    __slots__ = ()

    def _new_cell(self):
        return 0

    def set(self, t: float, value: Any) -> None:
        self._cell(t)
        self.cells[int(t // self.width)] = value

    def last(self) -> Any:
        if not self.cells:
            return 0
        return next(reversed(self.cells.values()))


class _Sketch:
    """A per-bucket histogram sketch: count/sum/min/max plus
    power-of-two bins (bin ``i`` holds observations in
    ``(2**(i-1), 2**i]`` ms; bin 0 holds everything <= 1 ms)."""

    __slots__ = ("count", "sum", "min", "max", "bins")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bins: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bin_index = 0 if value <= 1.0 else int(math.ceil(math.log2(value)))
        self.bins[bin_index] = self.bins.get(bin_index, 0) + 1

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (``q`` in [0, 1])
        from the power-of-two bins — exact to within one octave."""
        if not self.count:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        seen = 0
        for bin_index in sorted(self.bins):
            seen += self.bins[bin_index]
            if seen >= rank:
                return float(2 ** bin_index)
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": round(self.min, 6),
            "max": round(self.max, 6),
            "bins": {str(k): self.bins[k] for k in sorted(self.bins)},
        }


class WindowedHistogram(_WindowedSeries):
    """A :class:`_Sketch` per bucket."""

    __slots__ = ()

    def _new_cell(self):
        return _Sketch()

    def observe(self, t: float, value: float) -> None:
        self._cell(t).observe(value)

    def _value_of(self, cell):
        return cell.to_dict()

    def merged(self) -> _Sketch:
        """One sketch over every retained bucket."""
        out = _Sketch()
        for cell in self.cells.values():
            out.count += cell.count
            out.sum += cell.sum
            if cell.count:
                out.min = min(out.min, cell.min)
                out.max = max(out.max, cell.max)
            for bin_index, n in cell.bins.items():
                out.bins[bin_index] = out.bins.get(bin_index, 0) + n
        return out


class TimeSeriesRegistry:
    """Get-or-create windowed series keyed ``(name, labels)``, exactly
    like :class:`~repro.obs.metrics.MetricsRegistry` but per-window."""

    def __init__(self, bucket_ms: float = DEFAULT_BUCKET_MS,
                 capacity: int = DEFAULT_CAPACITY):
        self.bucket_ms = bucket_ms
        self.capacity = capacity
        self._series: Dict[Tuple[str, LabelSet], _WindowedSeries] = {}
        #: bucket index -> wall-clock perf_counter() of the first event
        #: that landed in it (any series).  Side data only: never part
        #: of snapshots, so determinism checks are unaffected.
        self.wall_anchors: Dict[int, float] = {}
        self._wall_clock = time.perf_counter

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        key = (name, _labelset(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(self.bucket_ms, self.capacity)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise TypeError("series %r is a %s, not a %s" % (
                name, type(series).__name__, cls.__name__))
        return series

    def counter(self, name: str, **labels) -> WindowedCounter:
        return self._get(WindowedCounter, name, labels)

    def gauge(self, name: str, **labels) -> WindowedGauge:
        return self._get(WindowedGauge, name, labels)

    def histogram(self, name: str, **labels) -> WindowedHistogram:
        return self._get(WindowedHistogram, name, labels)

    def anchor(self, t: float) -> None:
        """Record the wall-clock co-timestamp for ``t``'s bucket."""
        index = int(t // self.bucket_ms)
        if index not in self.wall_anchors:
            self.wall_anchors[index] = self._wall_clock()

    # -- reading -----------------------------------------------------------

    def names(self) -> List[str]:
        return sorted({name for name, _ in self._series})

    def series(self, name: str, **labels) -> Optional[_WindowedSeries]:
        return self._series.get((name, _labelset(labels)))

    def labeled(self, name: str) -> List[Tuple[LabelSet, _WindowedSeries]]:
        """Every (labels, series) registered under ``name``, sorted."""
        return sorted(((labels, series)
                       for (n, labels), series in self._series.items()
                       if n == name), key=lambda item: item[0])

    def updates(self) -> int:
        """Total cell updates across every series (the deterministic
        observability-work counter)."""
        return sum(series.updates for series in self._series.values())

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic JSON-friendly mapping: rendered key ->
        series dict.  Wall anchors are deliberately excluded."""
        out: Dict[str, Any] = {}
        for (name, labels), series in sorted(self._series.items()):
            out[_render_key(name, labels)] = series.to_dict()
        return out

    def wall_points(self) -> List[Tuple[float, float]]:
        """``[(virtual_ms, wall_seconds), ...]`` co-timestamp pairs for
        lining virtual-time series up against wall-clock plots."""
        return [(index * self.bucket_ms, wall)
                for index, wall in sorted(self.wall_anchors.items())]


class TimeSeriesCollector:
    """The standard event-to-series aggregation: the same typed events
    :class:`~repro.obs.metrics.MetricsCollector` consumes, bucketed.

    Maintains, per bucket:

    - ``rpc.calls_started`` / ``rpc.calls_completed{troupe=,outcome=}``
      counters (per-troupe call rates for ``repro top``);
    - ``rpc.call_ms{troupe=}`` latency sketches;
    - ``net.packets_sent`` / ``net.packets_dropped`` counters;
    - ``pm.retransmits`` / ``pm.crashes_declared`` counters;
    - ``txn.commit_decisions{decision=}`` counters;
    - ``mon.violations{invariant=}`` counters;
    - an ``rpc.open_calls`` gauge (calls started minus completed).

    Usable as a context manager; :meth:`close` detaches from the bus.
    """

    def __init__(self, bus: EventBus,
                 registry: Optional[TimeSeriesRegistry] = None,
                 bucket_ms: float = DEFAULT_BUCKET_MS,
                 capacity: int = DEFAULT_CAPACITY):
        self.bus = bus
        self.registry = registry or TimeSeriesRegistry(bucket_ms, capacity)
        self._open_calls = 0
        self._call_started: Dict[Tuple[str, str, str, int], float] = {}
        # The unlabelled hot-path series, resolved once: packet events
        # outnumber everything else, so the per-event registry lookup
        # (labelset + dict get) is worth skipping.
        reg = self.registry
        self._packets_sent = reg.counter("net.packets_sent")
        self._packets_dropped = reg.counter("net.packets_dropped")
        self._retransmits = reg.counter("pm.retransmits")
        self._crashes_declared = reg.counter("pm.crashes_declared")
        self._open_gauge = reg.gauge("rpc.open_calls")
        self._sub = bus.subscribe(self._on_event,
                                  kinds=tuple(self._HANDLERS))

    def close(self) -> None:
        self.bus.unsubscribe(self._sub)

    def __enter__(self) -> "TimeSeriesCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event dispatch ----------------------------------------------------

    def _on_event(self, event) -> None:
        handler = self._HANDLERS.get(event.kind)
        if handler is not None:
            self.registry.anchor(event.t)
            handler(self, event)

    def _on_call_start(self, event):
        reg = self.registry
        reg.counter("rpc.calls_started", troupe=event.troupe).inc(event.t)
        self._call_started[(event.host, event.proc, event.thread_id,
                            event.call_number)] = event.t
        self._open_calls += 1
        self._open_gauge.set(event.t, self._open_calls)

    def _on_call_end(self, event):
        reg = self.registry
        reg.counter("rpc.calls_completed", troupe=event.troupe,
                    outcome=event.outcome).inc(event.t)
        self._open_calls = max(0, self._open_calls - 1)
        self._open_gauge.set(event.t, self._open_calls)
        started = self._call_started.pop(
            (event.host, event.proc, event.thread_id, event.call_number),
            None)
        if started is not None:
            reg.histogram("rpc.call_ms", troupe=event.troupe).observe(
                event.t, event.t - started)

    def _on_net_send(self, event):
        self._packets_sent.inc(event.t)

    def _on_net_drop(self, event):
        self._packets_dropped.inc(event.t)

    def _on_retransmit(self, event):
        self._retransmits.inc(event.t)

    def _on_pm_crash(self, event):
        self._crashes_declared.inc(event.t)

    def _on_commit(self, event):
        self.registry.counter("txn.commit_decisions",
                              decision=event.decision).inc(event.t)

    def _on_violation(self, event):
        self.registry.counter("mon.violations",
                              invariant=event.invariant).inc(event.t)

    _HANDLERS = {
        ev.CallStarted.kind: _on_call_start,
        ev.CallCompleted.kind: _on_call_end,
        ev.PacketSent.kind: _on_net_send,
        ev.PacketDropped.kind: _on_net_drop,
        ev.SegmentRetransmitted.kind: _on_retransmit,
        ev.PeerCrashDeclared.kind: _on_pm_crash,
        ev.CommitOutcome.kind: _on_commit,
        ev.InvariantViolation.kind: _on_violation,
    }
