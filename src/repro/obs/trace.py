"""Replicated-call tracing: span trees and Chrome trace_event export.

A replicated call is identified by its ``(thread ID, call number)`` pair
— the trace context.  Circus already propagates both in every call header
(§3.4.1/§4.3.2): the thread ID is adopted by every replica that executes
on the thread's behalf, and the call number groups the many-to-one
gather.  The tracer therefore reconstructs a cross-process span tree from
bus events alone, with no extra wire bytes:

    client call span
    ├── per-replica execution span (one per server troupe member)
    ├── per-replica result arrival (instant)
    └── collation verdict (instant)

Nested replicated calls (a handler calling another troupe) attach under
the execution span of the replica that issued them, matched by thread ID.

Export is Chrome ``trace_event`` JSON keyed by virtual time (1 virtual ms
= 1 exported µs ×1000, i.e. ``ts`` is virtual microseconds): load it in
``chrome://tracing`` / Perfetto with one process lane per simulated host.

    with trace_calls(world.sim) as tracer:
        world.run(body())
    open("trace.json", "w").write(tracer.to_json())
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as ev

#: (thread_id, call_number): the trace context that rides the call header.
CallKey = Tuple[str, int]
#: (host, proc, thread_id, call_number): one client half's call.  The
#: trace context alone is not unique — a nested call reuses the thread ID
#: with its issuer's own call numbering, and in a many-to-many call every
#: member of the client troupe opens a span with the same context — so
#: client spans are additionally keyed by the issuing process.
ClientKey = Tuple[str, str, str, int]


class ExecSpan:
    """One replica's execution of a replicated call (server side)."""

    def __init__(self, event: ev.ExecutionStarted):
        self.host = event.host
        self.proc = event.proc
        self.thread_id = event.thread_id
        self.call_number = event.call_number
        self.troupe_id = event.troupe_id
        self.module = event.module
        self.procedure = event.procedure
        self.callers = event.callers
        self.group_complete = event.group_complete
        self.start = event.t
        self.end: Optional[float] = None
        self.outcome = "unfinished"
        #: nested replicated calls issued while this span was open.
        self.calls: List["CallSpan"] = []

    @property
    def name(self) -> str:
        return "exec %d.%d" % (self.module, self.procedure)


class CallSpan:
    """The client half of one replicated call and everything under it."""

    def __init__(self, event: ev.CallStarted):
        self.host = event.host
        self.proc = event.proc
        self.thread_id = event.thread_id
        self.call_number = event.call_number
        self.troupe = event.troupe
        self.troupe_id = event.troupe_id
        self.members = event.members
        self.module = event.module
        self.procedure = event.procedure
        self.start = event.t
        self.end: Optional[float] = None
        self.outcome = "unfinished"
        self.results: List[Tuple[float, str, str]] = []   # (t, member, status)
        self.collation: Optional[Tuple[float, str, int]] = None
        self.execs: List[ExecSpan] = []

    @property
    def name(self) -> str:
        return "call %s %d.%d" % (self.troupe, self.module, self.procedure)

    @property
    def key(self) -> ClientKey:
        return (self.host, self.proc, self.thread_id, self.call_number)


class CallTracer:
    """Builds span trees from ``rpc.*`` bus events.

    Attach before the traced run (events are not replayable); detach with
    :meth:`close` or use the :func:`trace_calls` context manager.
    """

    def __init__(self, sim):
        self.sim = sim
        self._open_calls: Dict[ClientKey, CallSpan] = {}
        self._open_execs: Dict[Tuple[CallKey, str, str], ExecSpan] = {}
        #: root call spans (not nested under any execution), in start order.
        self.roots: List[CallSpan] = []
        #: every call span ever opened, in start order.
        self.calls: List[CallSpan] = []
        #: every execution span ever opened, in start order.
        self.execs: List[ExecSpan] = []
        self._returns: List[ev.ReturnSent] = []
        self._sub = sim.bus.subscribe(self._on_event, kinds=("rpc.",))

    def close(self) -> None:
        self.sim.bus.unsubscribe(self._sub)

    # -- event handling ----------------------------------------------------

    def _on_event(self, event) -> None:
        kind = event.kind
        if kind == ev.CallStarted.kind:
            span = CallSpan(event)
            self._open_calls[span.key] = span
            self.calls.append(span)
            parent = self._enclosing_exec(event.thread_id, event.host,
                                          event.proc)
            if parent is not None:
                parent.calls.append(span)
            else:
                self.roots.append(span)
        elif kind == ev.ReplicaResult.kind:
            span = self._open_calls.get(
                (event.host, event.proc, event.thread_id, event.call_number))
            if span is not None:
                span.results.append((event.t, str(event.member),
                                     event.status))
        elif kind == ev.Collated.kind:
            span = self._open_calls.get(
                (event.host, event.proc, event.thread_id, event.call_number))
            if span is not None:
                span.collation = (event.t, event.verdict, event.responses)
        elif kind == ev.CallCompleted.kind:
            span = self._open_calls.pop(
                (event.host, event.proc, event.thread_id, event.call_number),
                None)
            if span is not None:
                span.end = event.t
                span.outcome = event.outcome
        elif kind == ev.ExecutionStarted.kind:
            span = ExecSpan(event)
            key = ((event.thread_id, event.call_number),
                   event.host, event.proc)
            self._open_execs[key] = span
            self.execs.append(span)
            # Attach under every open client half of this call: the target
            # troupe ID separates the call to this troupe from an outer or
            # nested call sharing the same (thread, call number) context;
            # in a many-to-many call each calling member's span gets it.
            for call in self._open_calls.values():
                if (call.thread_id == event.thread_id
                        and call.call_number == event.call_number
                        and call.troupe_id == event.troupe_id):
                    call.execs.append(span)
        elif kind == ev.ExecutionFinished.kind:
            key = ((event.thread_id, event.call_number),
                   event.host, event.proc)
            span = self._open_execs.pop(key, None)
            if span is not None:
                span.end = event.t
                span.outcome = event.outcome
        elif kind == ev.ReturnSent.kind:
            self._returns.append(event)

    def _enclosing_exec(self, thread_id: str, host: str,
                        proc: str) -> Optional[ExecSpan]:
        """The open execution span this call was issued from, if any: a
        nested call shares the thread ID and originates on the same
        simulated process as the replica executing the outer call."""
        for span in self._open_execs.values():
            if (span.thread_id == thread_id and span.host == host
                    and span.proc == proc):
                return span
        return None

    # -- span tree ---------------------------------------------------------

    def span_tree(self) -> List[Dict[str, Any]]:
        """The trace as nested dictionaries — exact and deterministic,
        suitable for golden-file comparison."""
        return [self._call_dict(span) for span in self.roots]

    def _call_dict(self, span: CallSpan) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": span.name,
            "troupe": span.troupe,
            "client": "%s/%s" % (span.host, span.proc),
            "thread_id": span.thread_id,
            "call_number": span.call_number,
            "members": span.members,
            "t0": round(span.start, 3),
            "t1": round(span.end, 3) if span.end is not None else None,
            "outcome": span.outcome,
            "results": [
                {"t": round(t, 3), "member": member, "status": status}
                for t, member, status in span.results],
            "executions": [self._exec_dict(e)
                           for e in sorted(span.execs,
                                           key=lambda e: (e.start, e.host))],
        }
        if span.collation is not None:
            t, verdict, responses = span.collation
            out["collation"] = {"t": round(t, 3), "verdict": verdict,
                                "responses": responses}
        else:
            out["collation"] = None
        return out

    def _exec_dict(self, span: ExecSpan) -> Dict[str, Any]:
        return {
            "name": span.name,
            "replica": "%s/%s" % (span.host, span.proc),
            "t0": round(span.start, 3),
            "t1": round(span.end, 3) if span.end is not None else None,
            "outcome": span.outcome,
            "group_complete": span.group_complete,
            "calls": [self._call_dict(c) for c in span.calls],
        }

    # -- Chrome trace_event export ----------------------------------------

    def to_chrome(self) -> Dict[str, Any]:
        """The trace in Chrome ``trace_event`` JSON object format."""
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[str, str], int] = {}
        trace_events: List[Dict[str, Any]] = []

        def lane(host: str, proc: str) -> Tuple[int, int]:
            if host not in pids:
                pids[host] = len(pids) + 1
                trace_events.append({
                    "ph": "M", "name": "process_name", "pid": pids[host],
                    "tid": 0, "args": {"name": host}})
            key = (host, proc)
            if key not in tids:
                tids[key] = len(tids) + 1
                trace_events.append({
                    "ph": "M", "name": "thread_name", "pid": pids[host],
                    "tid": tids[key], "args": {"name": proc}})
            return pids[host], tids[key]

        def us(t: float) -> float:
            return round(t * 1000.0, 3)   # virtual ms -> exported µs

        for call in self.calls:
            pid, tid = lane(call.host, call.proc)
            end = call.end if call.end is not None else call.start
            trace_events.append({
                "ph": "X", "name": call.name, "cat": "rpc",
                "ts": us(call.start), "dur": us(end - call.start),
                "pid": pid, "tid": tid,
                "args": {"troupe": call.troupe,
                         "thread_id": call.thread_id,
                         "call_number": call.call_number,
                         "members": call.members,
                         "outcome": call.outcome}})
            for t, member, status in call.results:
                trace_events.append({
                    "ph": "i", "name": "result %s" % status, "cat": "rpc",
                    "ts": us(t), "pid": pid, "tid": tid, "s": "t",
                    "args": {"member": member,
                             "call_number": call.call_number}})
            if call.collation is not None:
                t, verdict, responses = call.collation
                trace_events.append({
                    "ph": "i", "name": "collate %s" % verdict, "cat": "rpc",
                    "ts": us(t), "pid": pid, "tid": tid, "s": "t",
                    "args": {"responses": responses,
                             "call_number": call.call_number}})
        # Executions are emitted from the global list: a many-to-many
        # call attaches one execution span under several client spans,
        # but it is one slice of server time — one trace event.
        for span in self.execs:
            epid, etid = lane(span.host, span.proc)
            eend = span.end if span.end is not None else span.start
            trace_events.append({
                "ph": "X", "name": span.name, "cat": "rpc.exec",
                "ts": us(span.start), "dur": us(eend - span.start),
                "pid": epid, "tid": etid,
                "args": {"thread_id": span.thread_id,
                         "call_number": span.call_number,
                         "callers": span.callers,
                         "group_complete": span.group_complete,
                         "outcome": span.outcome}})
        for event in self._returns:
            pid, tid = lane(event.host, event.proc)
            trace_events.append({
                "ph": "i", "name": "return", "cat": "rpc", "ts": us(event.t),
                "pid": pid, "tid": tid, "s": "t",
                "args": {"recipients": event.recipients,
                         "call_number": event.call_number}})
        trace_events.sort(key=lambda e: (e.get("ts", -1.0), e["pid"],
                                         e["tid"]))
        return {"traceEvents": trace_events, "displayTimeUnit": "ms",
                "otherData": {"clock": "virtual",
                              "source": "repro.obs.trace"}}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_chrome(), indent=indent, sort_keys=False)


@contextmanager
def trace_calls(sim):
    """Context manager: trace every replicated call while the body runs."""
    tracer = CallTracer(sim)
    try:
        yield tracer
    finally:
        tracer.close()
