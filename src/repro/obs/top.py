"""``repro top``: a live view of a running simulated world.

The model/view split keeps this testable: :class:`TopModel` samples the
attached collectors (time-series registry, critical-path analyzer,
metrics, the shared :class:`~repro.obs.export.ProgressChannel`) into a
plain dict, and :func:`render_frame` turns one sample into a text frame.
:func:`live_top` owns the drive loop — it steps the simulation in
virtual-time slices and renders a frame between slices, so the "live"
view is exact: nothing is sampled mid-callback, and the observed run
stays byte-identical in virtual time (collectors are ordinary bus
subscribers).

Renderers: plain mode re-prints the frame (CI- and pipe-friendly);
curses mode repaints in place when a real terminal is available.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.obs.critpath import CritPathAnalyzer
from repro.obs.export import PROGRESS, ProgressChannel
from repro.obs.timeseries import TimeSeriesCollector, TimeSeriesRegistry

#: Buckets of history used for the "recent" rate columns.
RATE_WINDOW_BUCKETS = 20


class TopModel:
    """Samples collectors into one deterministic frame dict."""

    def __init__(self, sim,
                 timeseries: TimeSeriesRegistry,
                 critpath: Optional[CritPathAnalyzer] = None,
                 progress: Optional[ProgressChannel] = None):
        self.sim = sim
        self.timeseries = timeseries
        self.critpath = critpath
        self.progress = progress if progress is not None else PROGRESS

    def sample(self) -> Dict[str, Any]:
        ts = self.timeseries
        troupes: Dict[str, Dict[str, Any]] = {}
        for labelset, series in ts.labeled("rpc.calls_completed"):
            labels = dict(labelset)
            row = troupes.setdefault(labels.get("troupe", "?"), {
                "done": 0, "rate": 0.0, "errors": 0})
            done = series.total()
            rate = series.rate_per_sec(RATE_WINDOW_BUCKETS)
            row["done"] += done
            row["rate"] += rate
            if labels.get("outcome", "ok") != "ok":
                row["errors"] += done
        violations = sum(
            series.total()
            for _, series in ts.labeled("mon.violations"))
        sample: Dict[str, Any] = {
            "now": self.sim.now,
            "pending": self.sim.pending_events(),
            "open_calls": (ts.series("rpc.open_calls").last()
                           if ts.series("rpc.open_calls") else 0),
            "troupes": {name: troupes[name] for name in sorted(troupes)},
            "violations": violations,
            "rates": {
                name: sum(s.rate_per_sec(RATE_WINDOW_BUCKETS)
                          for _, s in ts.labeled(name))
                for name in ("net.packets_sent", "net.packets_dropped",
                             "pm.retransmits")},
            "progress": self.progress.snapshot(),
        }
        if self.critpath is not None:
            report = self.critpath.report()
            sample["critpath"] = {
                "calls": report["calls"],
                "attributed_pct": report["attributed_pct"],
                "stages": {name: row["share_pct"]
                           for name, row in report["stages"].items()},
                "dominant": report["dominant"],
            }
        return sample


def _bar(pct: float, width: int = 24) -> str:
    filled = int(round(pct / 100.0 * width))
    return "#" * filled + "." * (width - filled)


def render_frame(sample: Dict[str, Any], width: int = 80) -> str:
    """One text frame from a :meth:`TopModel.sample` dict."""
    lines: List[str] = []
    lines.append("repro top — t=%.1f ms virtual   pending=%d   "
                 "open calls=%d" % (sample["now"], sample["pending"],
                                    sample["open_calls"]))
    violations = sample["violations"]
    lines.append("monitors: %s" % (
        "OK (0 violations)" if not violations
        else "*** %d VIOLATION(S) ***" % violations))
    rates = sample["rates"]
    lines.append("wire: %.0f pkt/s sent   %.0f/s dropped   "
                 "%.0f/s retransmitted" % (
                     rates.get("net.packets_sent", 0.0),
                     rates.get("net.packets_dropped", 0.0),
                     rates.get("pm.retransmits", 0.0)))
    lines.append("")
    lines.append("%-20s %10s %12s %8s" % ("troupe", "calls", "calls/s",
                                          "errors"))
    for name, row in sample["troupes"].items():
        lines.append("%-20s %10d %12.1f %8d" % (
            name, row["done"], row["rate"], row["errors"]))
    if not sample["troupes"]:
        lines.append("  (no completed calls yet)")
    critpath = sample.get("critpath")
    if critpath:
        lines.append("")
        lines.append("critical path (%d calls, %.1f%% attributed):"
                     % (critpath["calls"], critpath["attributed_pct"]))
        for stage, share in critpath["stages"].items():
            lines.append("  %-18s %6.2f%% %s" % (stage, share,
                                                 _bar(share)))
    progress = sample.get("progress")
    if progress:
        lines.append("")
        lines.append("tasks:")
        for task, row in progress.items():
            done, total = row.get("done"), row.get("total")
            if isinstance(done, int) and isinstance(total, int) and total:
                pct = 100.0 * done / total
                detail = "%d/%d (%.0f%%)" % (done, total, pct)
            else:
                detail = ", ".join(
                    "%s=%s" % (k, v) for k, v in sorted(row.items())
                    if k != "seq")
            lines.append("  %-24s %s" % (task, detail))
    return "\n".join(line[:width] for line in lines)


def live_top(world, body, slice_ms: float = 50.0,
             max_frames: Optional[int] = None,
             render: Optional[Callable[[str], None]] = None,
             use_curses: bool = False,
             progress: Optional[ProgressChannel] = None) -> Dict[str, Any]:
    """Drive ``body`` (a generator) on ``world`` in ``slice_ms`` slices,
    rendering a frame after each slice; returns the final sample.

    ``render`` receives each finished text frame (default: print with a
    separator).  ``use_curses`` repaints in place instead when stdout is
    a terminal; it degrades to plain mode otherwise.
    """
    with TimeSeriesCollector(world.sim.bus) as ts_collector, \
            CritPathAnalyzer(world.sim) as critpath:
        model = TopModel(world.sim, ts_collector.registry, critpath,
                         progress=progress)
        if use_curses and _curses_usable():
            return _curses_loop(world, body, model, slice_ms, max_frames)
        return _plain_loop(world, body, model, slice_ms, max_frames,
                           render)


def _curses_usable() -> bool:
    """True iff curses can actually take over this terminal — checked
    *before* driving anything, so a failed takeover can still fall back
    to plain mode without double-running the workload."""
    import sys
    try:
        import curses  # noqa: F401
    except ImportError:
        return False
    return bool(getattr(sys.stdout, "isatty", lambda: False)())


def _step(world, proc, slice_ms: float) -> bool:
    """One slice; True while the driven process is still alive."""
    world.sim.run(until=world.sim.now + slice_ms)
    return proc.alive and world.sim.pending_events() > 0


def _drive(world, body, model, slice_ms, max_frames, emit) -> Dict[str, Any]:
    proc = world.spawn(body, name="top-body")
    proc.observed = True
    frames = 0
    running = True
    while running:
        running = _step(world, proc, slice_ms)
        frames += 1
        sample = model.sample()
        emit(render_frame(sample))
        if max_frames is not None and frames >= max_frames:
            break
    if proc.exception is not None:
        raise proc.exception
    return model.sample()


def _plain_loop(world, body, model, slice_ms, max_frames,
                render) -> Dict[str, Any]:
    if render is None:
        def render(frame: str) -> None:
            print(frame)
            print("-" * 8)
    return _drive(world, body, model, slice_ms, max_frames, render)


def _curses_loop(world, body, model, slice_ms, max_frames) -> Dict[str, Any]:
    import curses

    holder: Dict[str, Any] = {}

    def main(screen) -> None:
        curses.use_default_colors()
        screen.nodelay(True)

        def emit(frame: str) -> None:
            screen.erase()
            height, width = screen.getmaxyx()
            for y, line in enumerate(frame.splitlines()):
                if y >= height - 1:
                    break
                screen.addnstr(y, 0, line, width - 1)
            screen.refresh()
            if screen.getch() in (ord("q"), 27):
                raise KeyboardInterrupt

        holder["final"] = _drive(world, body, model, slice_ms, max_frames,
                                 emit)

    curses.wrapper(main)
    return holder["final"]
