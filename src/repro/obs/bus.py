"""The process-wide event bus: structured observation of every layer.

Every protocol layer — the simulation kernel, the wire, the paired
message endpoints, the replicated call runtime, the transaction machinery
and the Ringmaster — emits typed events (:mod:`repro.obs.events`) to the
bus hanging off its :class:`~repro.sim.kernel.Simulator`.  Observers
(metrics collectors, call tracers, the MSC packet trace) subscribe with
an optional kind filter.

Zero overhead when unobserved
-----------------------------

Emission sites are guarded by the :attr:`EventBus.active` flag::

    bus = self.sim.bus
    if bus.active:
        bus.emit(events.PacketSent(t=self.sim.now, ...))

When nothing is subscribed, observing a run costs exactly one attribute
load and one branch per event site: no event object is ever constructed.
Subscribers never perturb virtual time — they run synchronously inside
the emitting callback and must not touch the simulation.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Tuple, Union

#: An event handler: called synchronously with each matching event.
Handler = Callable[[object], None]


class Subscription:
    """A live subscription; pass back to :meth:`EventBus.unsubscribe`."""

    __slots__ = ("handler", "prefixes")

    def __init__(self, handler: Handler,
                 prefixes: Optional[Tuple[str, ...]]):
        self.handler = handler
        self.prefixes = prefixes  # None: every event

    def matches(self, kind: str) -> bool:
        if self.prefixes is None:
            return True
        for prefix in self.prefixes:
            if kind.startswith(prefix):
                return True
        return False

    def __repr__(self) -> str:
        return "<Subscription %s>" % (
            "*" if self.prefixes is None else ",".join(self.prefixes))


class EventBus:
    """Synchronous publish/subscribe hub for observability events.

    ``kinds`` filters are *prefixes* of the dotted event kind: subscribing
    with ``("pm.",)`` receives every paired-message event, ``("pm.send",)``
    exactly one kind, and ``None`` everything.
    """

    __slots__ = ("active", "_subs", "stamper", "_by_kind")

    def __init__(self):
        #: True iff at least one subscriber is attached.  Emission sites
        #: check this flag before constructing an event — the
        #: no-subscriber fast path.
        self.active = False
        self._subs: List[Subscription] = []
        #: Optional causal-clock stamper (repro.obs.clocks.ClockDomain):
        #: ``stamper.stamp(event)`` runs once per emitted event, before
        #: dispatch, but only past the no-subscriber fast path — with
        #: nothing attached, no clock is ever touched.
        self.stamper = None
        #: kind -> [matching subscriptions, in subscription order]; built
        #: lazily per kind on first emit, invalidated on (un)subscribe.
        #: Event kinds are a small fixed vocabulary, so this stays tiny
        #: while emit() stops copying and prefix-scanning the full
        #: subscriber list for every event.
        self._by_kind: dict = {}

    def subscribe(self, handler: Handler,
                  kinds: Union[None, str, Iterable[str]] = None
                  ) -> Subscription:
        """Attach ``handler``; returns the subscription token."""
        if isinstance(kinds, str):
            prefixes: Optional[Tuple[str, ...]] = (kinds,)
        elif kinds is None:
            prefixes = None
        else:
            prefixes = tuple(kinds)
        sub = Subscription(handler, prefixes)
        self._subs.append(sub)
        self._by_kind = {}
        self.active = True
        return sub

    def unsubscribe(self, subscription: Subscription) -> None:
        """Detach; unknown tokens are ignored (idempotent)."""
        try:
            self._subs.remove(subscription)
        except ValueError:
            pass
        self._by_kind = {}
        self.active = bool(self._subs)

    def emit(self, event) -> None:
        """Deliver ``event`` (anything with a ``kind`` attribute) to every
        matching subscriber, synchronously, in subscription order.

        A raising handler must not unwind into the emitting protocol
        code — that would abort the simulation over an observer bug.
        The exception is contained and republished as a
        :class:`~repro.obs.events.MonitorError` event (except when the
        failing delivery *was* a ``mon.error``, which is dropped rather
        than allowed to recurse).
        """
        if not self._subs:
            return
        if self.stamper is not None:
            # The stamper is an observer too: a raising stamp() must be
            # contained exactly like a raising handler, not allowed to
            # unwind into protocol code (the event just goes unstamped).
            try:
                self.stamper.stamp(event)
            except Exception as exc:   # noqa: BLE001 — isolation
                if event.kind != "mon.error":
                    from repro.obs import events as _events
                    self.emit(_events.MonitorError(
                        t=getattr(event, "t", 0.0),
                        handler=repr(self.stamper),
                        event_kind=event.kind,
                        error="%s: %s" % (type(exc).__name__, exc)))
        kind = event.kind
        by_kind = self._by_kind
        matched = by_kind.get(kind)
        if matched is None:
            matched = [s for s in self._subs if s.matches(kind)]
            by_kind[kind] = matched
        failures = None
        # ``matched`` is a stable snapshot: a handler that (un)subscribes
        # mid-emit replaces the index, and this delivery finishes against
        # the membership that existed when the event was emitted (the same
        # semantics the previous per-emit list copy gave).
        for sub in matched:
            try:
                sub.handler(event)
            except Exception as exc:   # noqa: BLE001 — isolation
                if failures is None:
                    failures = []
                failures.append((sub, exc))
        if failures and kind != "mon.error":
            from repro.obs import events as _events
            t = getattr(event, "t", 0.0)
            for sub, exc in failures:
                self.emit(_events.MonitorError(
                    t=t, handler=repr(sub.handler), event_kind=kind,
                    error="%s: %s" % (type(exc).__name__, exc)))

    def subscriber_count(self) -> int:
        return len(self._subs)

    def __repr__(self) -> str:
        return "<EventBus (%d subscribers)>" % len(self._subs)
