"""Causal clocks: Lamport and dynamic vector stamps on every bus event.

Every event emitted while a :class:`ClockDomain` is installed on the bus
is stamped, *at emission time*, with three extra attributes:

``event.node``
    the logical node the event occurred on — ``"host/proc"`` for
    protocol events, ``"kernel"`` for simulator events, ``"wire:host"``
    for packets whose owning process is not yet known;
``event.lamport``
    the node's Lamport clock after the event;
``event.vc``
    a copy of the node's vector clock after the event (a plain
    ``{node: count}`` dict).

The vector clocks are *dynamic*: there is no fixed process count, and a
node's entry appears in other clocks only once it has emitted an event
that causally reaches them — so the clocks grow as troupe members are
added via ``add_troupe_member``, exactly the situation a static
N-process vector cannot handle (the dynamic vector-clock scheme).

Happens-before edges are threaded through the protocol layers' existing
emission sites:

- same node: every stamped event ticks its node's clocks, so events of
  one simulated process are totally ordered;
- paired messages: ``pm.send`` (and each ``pm.retransmit``) records the
  sender's stamp under the message identity ``(sender, msg_type,
  call_number, receiver)``; the matching ``pm.deliver`` merges it — the
  exact §4.2 message edge;
- replicated calls: ``rpc.call_start`` records under the propagated
  trace context ``(thread_id, call_number, troupe_id)`` and every
  member's ``rpc.exec_start`` merges it; ``rpc.return`` records under
  ``(thread_id, call_number)`` and the client's ``rpc.result`` merges
  the members' return frontier;
- violations: a ``mon.violation`` event merges the stamps of its
  evidence events, so its vector clock *is* the causal frontier of the
  violation — the flight recorder cuts the ring buffer with it.

Control traffic (explicit acks, probe replies) carries no recorded
edge: it only confirms reception of data segments whose edge already
exists.  Wire-level events are stamped on the sending/receiving node
but create no edge of their own — the first layer with a reliable
message identity is the paired message protocol.

Zero overhead when unobserved: the stamper runs inside
:meth:`EventBus.emit`, *after* the no-subscriber fast path, so with
monitors detached no clock is ever touched.
"""

from __future__ import annotations

import collections
from typing import Any, Dict, Optional, Tuple

#: A vector clock: node name -> event count.  Plain dicts keep stamping
#: cheap; use the module helpers to compare.
VC = Dict[str, int]


# ---------------------------------------------------------------------------
# Vector clock algebra
# ---------------------------------------------------------------------------

def vc_leq(a: VC, b: VC) -> bool:
    """True iff ``a`` <= ``b`` pointwise (``a`` is in ``b``'s causal past
    or equal to it); absent entries count as zero."""
    for node, count in a.items():
        if count > b.get(node, 0):
            return False
    return True


def vc_merge(into: VC, other: VC) -> VC:
    """Pointwise max, in place; returns ``into``."""
    for node, count in other.items():
        if into.get(node, 0) < count:
            into[node] = count
    return into


def happens_before(a: VC, b: VC) -> bool:
    """Strict happens-before: ``a`` <= ``b`` and ``a`` != ``b``."""
    return vc_leq(a, b) and a != b


def concurrent(a: VC, b: VC) -> bool:
    """Neither happens before the other."""
    return not vc_leq(a, b) and not vc_leq(b, a)


class _Bounded(collections.OrderedDict):
    """An insertion-ordered dict that evicts its oldest entry past a cap
    (in-flight edge tables must not grow with run length)."""

    def __init__(self, cap: int):
        super().__init__()
        self.cap = cap

    def put(self, key, value) -> None:
        if key in self:
            del self[key]
        self[key] = value
        while len(self) > self.cap:
            self.popitem(last=False)


#: An edge payload: (vector clock snapshot, lamport value).
Stamp = Tuple[VC, int]


def host_of(addr) -> str:
    """The host part of a ProcessAddress (or an ``"host:port"`` string —
    synthetic events in tests carry plain strings)."""
    host = getattr(addr, "host", None)
    if host is not None:
        return host
    return str(addr).split(":", 1)[0]


_host_of = host_of


class ClockDomain:
    """Per-simulation clock state; install on a bus with :meth:`install`.

    One domain serves one simulation world.  Nodes (and their vector
    clock entries) are created lazily the first time they emit.
    """

    def __init__(self, inflight_cap: int = 8192):
        #: node -> its current vector clock (shared, mutated in place;
        #: events get copies).
        self._vc: Dict[str, VC] = {}
        self._lamport: Dict[str, int] = {}
        #: endpoint address string -> node, learned from pm.* events so
        #: wire events can be attributed to the owning process.
        self._addr_node: Dict[str, str] = {}
        self._pm_edges = _Bounded(inflight_cap)
        self._call_edges = _Bounded(inflight_cap)
        self._return_edges = _Bounded(inflight_cap)
        self.stamped = 0
        self._bus = None

    # -- lifecycle ---------------------------------------------------------

    def install(self, bus) -> "ClockDomain":
        """Become the bus's stamper (one stamper per bus)."""
        bus.stamper = self
        self._bus = bus
        return self

    def uninstall(self) -> None:
        if self._bus is not None and self._bus.stamper is self:
            self._bus.stamper = None
        self._bus = None

    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._vc))

    def clock_of(self, node: str) -> VC:
        return dict(self._vc.get(node, {}))

    # -- stamping ----------------------------------------------------------

    def stamp(self, event) -> None:
        """Attach ``node`` / ``lamport`` / ``vc`` to ``event``, merging
        any incoming happens-before edge and recording outgoing ones."""
        kind = event.kind
        node = self._node_of(event, kind)
        vc = self._vc.get(node)
        if vc is None:
            vc = self._vc[node] = {}
        lamport = self._lamport.get(node, 0)
        incoming = self._incoming(event, kind)
        if incoming is not None:
            src_vc, src_lamport = incoming
            vc_merge(vc, src_vc)
            if src_lamport > lamport:
                lamport = src_lamport
        vc[node] = vc.get(node, 0) + 1
        lamport += 1
        self._lamport[node] = lamport
        event.node = node
        event.lamport = lamport
        event.vc = dict(vc)
        self.stamped += 1
        self._outgoing(event, kind, vc, lamport)

    # -- node attribution --------------------------------------------------

    def _node_of(self, event, kind: str) -> str:
        if kind.startswith("pm."):
            endpoint = event.endpoint
            proc = getattr(event, "proc", "")
            if proc:
                node = "%s/%s" % (_host_of(endpoint), proc)
            else:
                node = str(endpoint)
            self._addr_node[str(endpoint)] = node
            return node
        if kind.startswith(("rpc.", "txn.")):
            host = getattr(event, "host", "")
            if host:
                return "%s/%s" % (host, event.proc)
            # lock-table events (txn.lock_wait/_grant, txn.deadlock)
            # carry no process identity; attribute them to the world
            # rather than refuse to stamp.
            return "world"
        if kind.startswith("bind."):
            host = getattr(event, "host", "")
            if host:
                return "%s/%s" % (host, event.proc)
            return "ringmaster"
        if kind.startswith("net."):
            if kind in ("net.deliver", "net.dup"):
                addr = event.dst
            else:
                addr = event.src
            mapped = self._addr_node.get(str(addr))
            if mapped is not None:
                return mapped
            return "wire:%s" % (_host_of(addr) if addr is not None else "?")
        if kind.startswith("sim."):
            return "kernel"
        if kind == "mon.violation":
            return "monitor:%s" % event.monitor
        if kind.startswith("mon."):
            return "monitor"
        return "world"

    # -- happens-before edges ---------------------------------------------

    def _incoming(self, event, kind: str) -> Optional[Stamp]:
        if kind == "pm.deliver":
            # The sender recorded under its own (endpoint, peer) roles;
            # swap them to look the edge up from the receiving side.
            return self._pm_edges.pop(
                (str(event.peer), event.msg_type, event.call_number,
                 str(event.endpoint)), None)
        if kind == "rpc.exec_start":
            return self._call_edges.get(
                (event.thread_id, event.call_number, event.troupe_id))
        if kind == "rpc.result":
            return self._return_edges.get(
                (event.thread_id, event.call_number))
        if kind == "mon.violation":
            frontier: VC = {}
            lamport = 0
            for cause in getattr(event, "evidence", ()):
                cause_vc = getattr(cause, "vc", None)
                if cause_vc:
                    vc_merge(frontier, cause_vc)
                lamport = max(lamport, getattr(cause, "lamport", 0))
            if frontier:
                return frontier, lamport
        return None

    def _outgoing(self, event, kind: str, vc: VC, lamport: int) -> None:
        if kind in ("pm.send", "pm.retransmit"):
            # A retransmission refreshes the edge: the delivery that
            # finally completes the message has seen the latest segment.
            self._pm_edges.put(
                (str(event.endpoint), event.msg_type, event.call_number,
                 str(event.peer)),
                (dict(vc), lamport))
        elif kind == "rpc.call_start":
            key = (event.thread_id, event.call_number, event.troupe_id)
            prior = self._call_edges.get(key)
            stamp = (dict(vc), lamport)
            if prior is not None:
                # Many-to-many: every client troupe member records; the
                # execution depends on the whole calling frontier.
                stamp = (vc_merge(prior[0], stamp[0]),
                         max(prior[1], lamport))
            self._call_edges.put(key, stamp)
        elif kind == "rpc.return":
            key = (event.thread_id, event.call_number)
            prior = self._return_edges.get(key)
            stamp = (dict(vc), lamport)
            if prior is not None:
                stamp = (vc_merge(prior[0], stamp[0]),
                         max(prior[1], lamport))
            self._return_edges.put(key, stamp)


def stamp_of(event) -> Optional[Stamp]:
    """The (vc, lamport) stamp of an event, or None if never stamped."""
    vc = getattr(event, "vc", None)
    if vc is None:
        return None
    return vc, getattr(event, "lamport", 0)


def causal_sort_key(event) -> Tuple[int, float, int]:
    """Sort key yielding a causally consistent linear order for stamped
    events: Lamport clocks respect happens-before, virtual time and the
    vector-clock magnitude break ties deterministically."""
    vc = getattr(event, "vc", None)
    return (getattr(event, "lamport", 0),
            getattr(event, "t", 0.0),
            sum(vc.values()) if vc else 0)
