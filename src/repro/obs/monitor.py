"""Online invariant monitors: the paper's correctness claims as
predicates over the event stream.

Each monitor is a plain bus subscriber that incrementally checks one of
Cooper's claims and, on a breach, emits a structured
:class:`~repro.obs.events.InvariantViolation` carrying the evidence
events whose combination violates the predicate.  With causal clocks
installed (the default under :class:`MonitorSuite`), the violation's
vector clock is the merge of the evidence clocks — the exact causal cut
the flight recorder uses to slice its ring buffer into a post-mortem.

=====================  =======  ===========================================
monitor                section  invariant
=====================  =======  ===========================================
ExactlyOnce            §4.3     a call executes at most once per (call,
                                replica) despite retransmission
TroupeDeterminism      §3.3     all live members of a troupe observe the
                                same per-thread sequence of call messages
Collation              §4.3.3   a needs-all verdict only after results
                                from every non-crashed member; a
                                disagreement verdict never happens at all
Commit                 §5.3     commit iff every member voted ready and
                                the vote group was complete; coordinators
                                over the same serials agree
CrashSilence           §4.2.3   no retransmission or probe to a peer
                                after declaring it crashed (per transfer)
Incarnation            §6.2     a troupe's incarnation ID is strictly
                                monotonic and chains old -> new at every
                                Ringmaster member
=====================  =======  ===========================================

Monitors deduplicate per subject: once an entity (a call, a troupe, a
transfer) has fired, further breaches of the *same* invariant by the
same entity are suppressed — a single divergence would otherwise flood
the bus with one violation per subsequent event.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as obs_events
from repro.obs.clocks import ClockDomain

# Mirrored from repro.core.runtime; importing it here would cycle
# (core.runtime -> repro.obs -> monitor -> core.runtime).
CONTROL_MODULE = 0xFFFF     # membership-transition control traffic
NO_TROUPE = 0               # unreplicated processes share this ID


class InvariantMonitor:
    """Base class: subscribe on :meth:`attach`, check in :meth:`observe`,
    raise breaches with :meth:`report`."""

    #: kind prefixes this monitor wants (passed to ``bus.subscribe``).
    kinds: Tuple[str, ...] = ()
    #: short invariant slug, e.g. ``"exactly-once"``.
    invariant: str = ""
    #: paper section the claim comes from.
    section: str = ""

    def __init__(self):
        self.violations: List[obs_events.InvariantViolation] = []
        self._fired: set = set()
        self._bus = None
        self._sub = None

    @property
    def name(self) -> str:
        return type(self).__name__

    def attach(self, bus) -> "InvariantMonitor":
        self._bus = bus
        self._sub = bus.subscribe(self.observe, kinds=self.kinds)
        return self

    def detach(self) -> None:
        if self._bus is not None and self._sub is not None:
            self._bus.unsubscribe(self._sub)
        self._bus = None
        self._sub = None

    def observe(self, event) -> None:
        raise NotImplementedError

    def report(self, message: str, subject: str,
               evidence: Tuple[Any, ...]) -> None:
        """Emit one violation per subject; later breaches by the same
        subject are suppressed."""
        if subject in self._fired:
            return
        self._fired.add(subject)
        t = getattr(evidence[-1], "t", 0.0) if evidence else 0.0
        violation = obs_events.InvariantViolation(
            t=t, monitor=self.name, invariant=self.invariant,
            section=self.section, message=message, subject=subject,
            evidence=tuple(evidence))
        self.violations.append(violation)
        if self._bus is not None:
            self._bus.emit(violation)


class ExactlyOnceMonitor(InvariantMonitor):
    """§4.3: duplicate suppression means a call body runs at most once
    per replica, no matter how many times its segments are retransmitted
    or duplicated by the wire."""

    kinds = ("rpc.exec_start",)
    invariant = "exactly-once"
    section = "4.3"

    def __init__(self):
        super().__init__()
        self._seen: Dict[Tuple[str, str, str, int],
                         obs_events.ObsEvent] = {}

    def observe(self, event) -> None:
        key = (event.host, event.proc, event.thread_id, event.call_number)
        first = self._seen.get(key)
        if first is None:
            self._seen[key] = event
            return
        self.report(
            "call (thread=%s, #%d) executed twice at %s/%s" % (
                event.thread_id, event.call_number,
                event.host, event.proc),
            subject="%s/%s:%s#%d" % key,
            evidence=(first, event))


class TroupeDeterminismMonitor(InvariantMonitor):
    """§3.3: replicas are deterministic, so every live member of a
    troupe must observe the same sequence of call messages *per client
    thread* (calls of one thread are serial; calls of distinct threads
    may interleave differently without breaking determinism).

    The first member to reach position *i* of a ``(troupe, thread)``
    stream defines the canonical call at that position; any member whose
    stream diverges from the canonical prefix has seen a different call
    sequence.  Unreplicated processes (troupe ID 0) and membership
    control traffic (module 0xFFFF) are exempt — control calls are not
    part of the application call stream.
    """

    kinds = ("rpc.exec_start",)
    invariant = "troupe-determinism"
    section = "3.3"

    def __init__(self):
        super().__init__()
        #: (troupe_id, thread_id) -> [(call_number, module, procedure)]
        self._canonical: Dict[Tuple[int, str], List[Tuple[int, int, int]]] = {}
        #: evidence for each canonical position (the defining event).
        self._defined_by: Dict[Tuple[int, str], List[obs_events.ObsEvent]] = {}
        #: (troupe_id, thread_id, host, proc) -> next stream position.
        self._pos: Dict[Tuple[int, str, str, str], int] = {}

    def observe(self, event) -> None:
        if event.troupe_id == NO_TROUPE or event.module == CONTROL_MODULE:
            return
        stream = (event.troupe_id, event.thread_id)
        call = (event.call_number, event.module, event.procedure)
        member = stream + (event.host, event.proc)
        pos = self._pos.get(member, 0)
        self._pos[member] = pos + 1
        canonical = self._canonical.setdefault(stream, [])
        witnesses = self._defined_by.setdefault(stream, [])
        if pos == len(canonical):
            canonical.append(call)
            witnesses.append(event)
            return
        if canonical[pos] == call:
            return
        self.report(
            "troupe %d: member %s/%s saw call #%d (module %d proc %d) at "
            "position %d of thread %s, but the troupe's canonical stream "
            "has call #%d (module %d proc %d) there" % (
                event.troupe_id, event.host, event.proc,
                call[0], call[1], call[2], pos, event.thread_id,
                canonical[pos][0], canonical[pos][1], canonical[pos][2]),
            subject="troupe=%d member=%s/%s" % (
                event.troupe_id, event.host, event.proc),
            evidence=(witnesses[pos], event))


class CollationMonitor(InvariantMonitor):
    """§4.3.3: a collator's verdict must account for every member — an
    ``agreed`` or ``failed`` verdict may only be announced once a result
    (or crash declaration) from each of the call's members has arrived,
    and a unanimous collator reporting ``disagreement`` means replicas
    returned conflicting answers (a determinism breach surfacing at the
    client).  ``decided_early`` verdicts are the sanctioned early exit
    of first-come / majority collators."""

    kinds = ("rpc.call_start", "rpc.result", "rpc.collate")
    invariant = "collation-completeness"
    section = "4.3.3"

    def __init__(self):
        super().__init__()
        #: call key -> (call_start event, results list)
        self._calls: Dict[Tuple[str, str, str, int],
                          Tuple[obs_events.ObsEvent, list]] = {}

    @staticmethod
    def _key(event) -> Tuple[str, str, str, int]:
        return (event.host, event.proc, event.thread_id, event.call_number)

    def observe(self, event) -> None:
        key = self._key(event)
        if event.kind == "rpc.call_start":
            self._calls[key] = (event, [])
            return
        entry = self._calls.get(key)
        if event.kind == "rpc.result":
            if entry is not None:
                entry[1].append(event)
            return
        # rpc.collate
        subject = "%s/%s thread=%s call#%d" % key
        if event.verdict == "disagreement":
            evidence = (entry[1][-1], event) if entry and entry[1] \
                else (event,)
            self.report(
                "collator rejected conflicting replica responses for %s "
                "— troupe members disagreed" % subject,
                subject=subject + ":disagreement", evidence=evidence)
        elif event.verdict in ("agreed", "failed"):
            if entry is None:
                return
            start, results = entry
            if len(results) < start.members:
                self.report(
                    "verdict %r for %s announced after %d of %d member "
                    "results" % (event.verdict, subject,
                                 len(results), start.members),
                    subject=subject,
                    evidence=(start,) + tuple(results) + (event,))
        if entry is not None and event.verdict != "decided_early":
            del self._calls[key]


class CommitMonitor(InvariantMonitor):
    """§5.3: a transaction commits iff *every* server troupe member
    voted ready and the vote group was complete (unanimity/atomicity);
    and coordinators that collected the same member serials must reach
    the same decision."""

    kinds = ("txn.vote", "txn.commit")
    invariant = "commit-unanimity"
    section = "5.3"

    def __init__(self):
        super().__init__()
        #: coordinator (host, proc) -> votes since its last outcome.
        self._votes: Dict[Tuple[str, str], List[obs_events.ObsEvent]] = {}
        #: sorted serials tuple -> (decision, outcome event).
        self._decisions: Dict[Tuple[int, ...],
                              Tuple[str, obs_events.ObsEvent]] = {}

    def observe(self, event) -> None:
        coord = (event.host, event.proc)
        if event.kind == "txn.vote":
            self._votes.setdefault(coord, []).append(event)
            return
        votes = self._votes.pop(coord, [])
        subject = "%s/%s@%g" % (event.host, event.proc, event.t)
        # Mirror §5.3 exactly: commit iff the vote group was complete
        # and no member voted abort.
        unanimous = event.group_complete and all(v.ready for v in votes)
        expected = "commit" if unanimous else "abort"
        if event.decision != expected:
            self.report(
                "coordinator %s/%s decided %r but votes demand %r "
                "(%d votes, ready=%s, group_complete=%s)" % (
                    event.host, event.proc, event.decision, expected,
                    len(votes), [v.ready for v in votes],
                    event.group_complete),
                subject=subject, evidence=tuple(votes) + (event,))
        serials = tuple(sorted(event.serials))
        if serials:
            prior = self._decisions.get(serials)
            if prior is None:
                self._decisions[serials] = (event.decision, event)
            elif prior[0] != event.decision:
                self.report(
                    "coordinators split over serials %s: %r vs %r" % (
                        list(serials), prior[0], event.decision),
                    subject="serials=%s" % (serials,),
                    evidence=(prior[1], event))


class CrashSilenceMonitor(InvariantMonitor):
    """§4.2.3: once an endpoint declares a peer crashed for a transfer,
    it must stop talking to it about that transfer — no further
    retransmissions or probes for the same ``(endpoint, peer, call)``.
    New calls to the (possibly restarted) peer are legitimate, so the
    invariant is scoped per call number."""

    kinds = ("pm.crash", "pm.retransmit", "pm.probe")
    invariant = "crash-silence"
    section = "4.2.3"

    def __init__(self):
        super().__init__()
        self._crashed: Dict[Tuple[str, str, int], obs_events.ObsEvent] = {}

    def observe(self, event) -> None:
        key = (str(event.endpoint), str(event.peer), event.call_number)
        if event.kind == "pm.crash":
            self._crashed.setdefault(key, event)
            return
        crash = self._crashed.get(key)
        if crash is None:
            return
        what = "retransmitted to" if event.kind == "pm.retransmit" \
            else "probed"
        self.report(
            "%s %s for call#%d after declaring it crashed at t=%g" % (
                what, event.peer, event.call_number, crash.t),
            subject="%s->%s#%d" % key,
            evidence=(crash, event))


class IncarnationMonitor(InvariantMonitor):
    """§6.2: every membership change gives the troupe a *new* incarnation
    ID so stale bindings are detectable — at each Ringmaster member the
    ID sequence for a troupe name must be strictly increasing, and each
    change must chain from the incarnation it replaces."""

    kinds = ("bind.member",)
    invariant = "incarnation-monotonic"
    section = "6.2"

    def __init__(self):
        super().__init__()
        #: (ringmaster host, proc, troupe name) -> (last id, event)
        self._last: Dict[Tuple[str, str, str],
                         Tuple[int, obs_events.ObsEvent]] = {}

    def observe(self, event) -> None:
        key = (event.host, event.proc, event.name)
        prior = self._last.get(key)
        subject = "%s/%s:%s" % key
        if prior is not None:
            last_id, last_event = prior
            if event.new_id <= last_id:
                self.report(
                    "troupe %r rebound to incarnation %#x, not above the "
                    "previous %#x" % (event.name, event.new_id, last_id),
                    subject=subject, evidence=(last_event, event))
            elif (event.op in ("add", "remove") and event.old_id
                    and event.old_id != last_id):
                # old_id == 0 marks a fresh creation (first export under
                # a name, possibly after the troupe emptied out) — there
                # is no incarnation to chain from.
                self.report(
                    "troupe %r %s chained from incarnation %#x but the "
                    "Ringmaster last issued %#x" % (
                        event.name, event.op, event.old_id, last_id),
                    subject=subject, evidence=(last_event, event))
        self._last[key] = (event.new_id, event)


#: the monitors installed by default, in subscription order.
DEFAULT_MONITORS = (
    ExactlyOnceMonitor,
    TroupeDeterminismMonitor,
    CollationMonitor,
    CommitMonitor,
    CrashSilenceMonitor,
    IncarnationMonitor,
)

#: invariant slug -> monitor class, for oracle selection by name
#: (``repro fuzz --oracles exactly-once,crash-silence``).
MONITORS_BY_INVARIANT = {cls.invariant: cls for cls in DEFAULT_MONITORS}


def monitors_for(invariants) -> List[type]:
    """Resolve invariant slugs (e.g. ``"exactly-once"``) to monitor
    classes; raises ``KeyError`` naming any unknown slug."""
    unknown = [name for name in invariants
               if name not in MONITORS_BY_INVARIANT]
    if unknown:
        raise KeyError("unknown invariant(s) %s (choose from: %s)"
                       % (unknown, ", ".join(sorted(MONITORS_BY_INVARIANT))))
    return [MONITORS_BY_INVARIANT[name] for name in invariants]


class MonitorSuite:
    """All monitors over one simulation's bus, with causal clocks.

    ``monitors`` may hold classes or ready instances; by default every
    monitor in :data:`DEFAULT_MONITORS` is attached.  Installing the
    suite puts a :class:`~repro.obs.clocks.ClockDomain` on the bus
    (unless one is already there), so every event the monitors weigh —
    and every violation they emit — carries a happens-before stamp.
    """

    def __init__(self, sim, monitors=None):
        self.sim = sim
        self.bus = sim.bus
        self._owns_clocks = self.bus.stamper is None
        if self._owns_clocks:
            self.clocks = ClockDomain().install(self.bus)
        else:
            self.clocks = self.bus.stamper
        specs = DEFAULT_MONITORS if monitors is None else monitors
        self.monitors: List[InvariantMonitor] = []
        for spec in specs:
            monitor = spec() if isinstance(spec, type) else spec
            self.monitors.append(monitor.attach(self.bus))

    @property
    def violations(self) -> List[obs_events.InvariantViolation]:
        found: List[obs_events.InvariantViolation] = []
        for monitor in self.monitors:
            found.extend(monitor.violations)
        found.sort(key=lambda v: (v.t, getattr(v, "lamport", 0)))
        return found

    def __getitem__(self, name: str) -> InvariantMonitor:
        for monitor in self.monitors:
            if monitor.name == name:
                return monitor
        raise KeyError(name)

    def detach(self) -> None:
        for monitor in self.monitors:
            monitor.detach()
        if self._owns_clocks:
            self.clocks.uninstall()


class Watch:
    """What :func:`watch` yields: the suite, the recorder, and the
    optional tracer and critical-path analyzer, with convenience
    accessors."""

    def __init__(self, suite, recorder, tracer=None, critpath=None):
        self.suite = suite
        self.recorder = recorder
        self.tracer = tracer
        self.critpath = critpath

    @property
    def violations(self):
        return self.suite.violations

    @property
    def clocks(self):
        return self.suite.clocks

    def postmortem(self) -> dict:
        return self.recorder.postmortem(tracer=self.tracer,
                                        critpath=self.critpath)

    def dump(self, path) -> dict:
        return self.recorder.dump(path, tracer=self.tracer,
                                  critpath=self.critpath)


@contextlib.contextmanager
def watch(sim, monitors=None, capacity=2048, trace=False):
    """Monitor a simulation for the duration of a ``with`` block::

        with watch(world.sim) as probe:
            world.run(body())
        assert not probe.violations

    Attaches a :class:`MonitorSuite` and a flight recorder (and, when
    ``trace=True``, a :class:`~repro.obs.trace.CallTracer` plus a
    :class:`~repro.obs.critpath.CritPathAnalyzer` sharing its spans, so
    post-mortems carry each violating call's stage breakdown); if the
    block raises, the exception is recorded in the flight recorder as an
    unexpected crash (for the post-mortem) and re-raised.  Everything is
    detached on exit, restoring the bus's zero-overhead idle state.
    """
    from repro.obs.critpath import CritPathAnalyzer
    from repro.obs.recorder import FlightRecorder
    from repro.obs.trace import CallTracer

    suite = MonitorSuite(sim, monitors)
    recorder = FlightRecorder(sim.bus, capacity=capacity)
    tracer = CallTracer(sim) if trace else None
    critpath = CritPathAnalyzer(sim, tracer=tracer) if trace else None
    probe = Watch(suite, recorder, tracer, critpath)
    try:
        yield probe
    except BaseException as exc:
        recorder.record_crash(exc, t=getattr(sim, "now", 0.0))
        raise
    finally:
        if critpath is not None:
            critpath.close()
        if tracer is not None:
            tracer.close()
        recorder.detach()
        suite.detach()
