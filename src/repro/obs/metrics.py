"""Virtual-time metrics: counters, gauges, histograms, and the standard
collector that aggregates bus events per endpoint/troupe/call.

The registry is deliberately simulation-flavoured: histograms record
*virtual* milliseconds and keep every observation (runs are deterministic
and bounded), so percentiles are exact rather than bucketed estimates.

    registry = MetricsRegistry()
    with MetricsCollector(world.sim.bus, registry):
        world.run(body())
    print(registry.render())
    snap = registry.snapshot()   # {"pm.retransmits{endpoint=...}": 3, ...}
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import events as ev
from repro.obs.bus import EventBus


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value: Any = 0

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """Exact distribution of virtual-time observations (ms)."""

    __slots__ = ("values",)

    def __init__(self):
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile (nearest-rank); ``p`` in [0, 100]."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, int(math.ceil(p / 100.0 * len(ordered))))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, float]:
        if not self.values:
            return {"count": 0}
        return {
            "count": len(self.values),
            "mean": self.mean,
            "min": min(self.values),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "max": max(self.values),
        }


LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, Any]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _quote_label(value: str) -> str:
    """Quote a label value iff it contains rendering metacharacters, so
    distinct label sets can never collapse to one rendered key (e.g.
    ``{a: 'b,c=d'}`` vs ``{a: 'b', c: 'd'}``)."""
    if any(c in value for c in ',={}"'):
        return '"%s"' % value.replace("\\", "\\\\").replace('"', '\\"')
    return value


def _render_key(name: str, labels: LabelSet) -> str:
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join(
        "%s=%s" % (k, _quote_label(v)) for k, v in labels))


class MetricsRegistry:
    """Get-or-create metric instruments keyed by (name, labels)."""

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelSet], Any] = {}

    def _get(self, cls, name: str, labels: Dict[str, Any]):
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError("metric %r is a %s, not a %s" % (
                name, type(metric).__name__, cls.__name__))
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- reading -----------------------------------------------------------

    def value(self, name: str, **labels) -> Any:
        """The current value of a counter/gauge (0 if never touched)."""
        metric = self._metrics.get((name, _labelset(labels)))
        return metric.value if metric is not None else 0

    def total(self, name: str) -> int:
        """Sum of a counter across every label set."""
        return sum(m.value for (n, _), m in self._metrics.items()
                   if n == name and isinstance(m, Counter))

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly flat mapping of every instrument."""
        out: Dict[str, Any] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            key = _render_key(name, labels)
            if isinstance(metric, Histogram):
                out[key] = metric.summary()
            else:
                out[key] = metric.value
        return out

    def render(self) -> str:
        """Human-readable snapshot, one instrument per line."""
        lines = []
        for key, value in self.snapshot().items():
            if isinstance(value, dict):
                detail = " ".join(
                    "%s=%.3f" % (k, v) if isinstance(v, float) else
                    "%s=%s" % (k, v)
                    for k, v in value.items())
                lines.append("%-56s %s" % (key, detail))
            else:
                lines.append("%-56s %s" % (key, value))
        return "\n".join(lines)


class MetricsCollector:
    """The standard event-to-metric aggregation.

    Subscribes to the whole bus and maintains the metric names documented
    in ``docs/OBSERVABILITY.md``: packet counters per drop reason,
    paired-message counters per endpoint, replicated-call counters and
    latency histograms per troupe, transaction and binding counters.

    Usable as a context manager; :meth:`close` detaches from the bus.
    """

    def __init__(self, bus: EventBus, registry: Optional[MetricsRegistry] = None):
        self.bus = bus
        self.registry = registry or MetricsRegistry()
        #: open call start times keyed (host, proc, thread_id,
        #: call_number) — the issuing process disambiguates nested and
        #: many-to-many calls that reuse the (thread, call number) context.
        self._call_started: Dict[Tuple[str, str, str, int], float] = {}
        self._exec_started: Dict[Tuple[str, str, str, int], float] = {}
        self._sub = bus.subscribe(self._on_event)

    def close(self) -> None:
        self.bus.unsubscribe(self._sub)

    def __enter__(self) -> "MetricsCollector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event dispatch ----------------------------------------------------

    def _on_event(self, event) -> None:
        handler = self._HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event)

    # sim.*
    def _on_spawn(self, event):
        self.registry.counter("sim.processes_spawned").inc()

    def _on_exit(self, event):
        self.registry.counter("sim.processes_exited").inc()

    def _on_timer(self, event):
        self.registry.counter("sim.timer_fires").inc()

    # net.*
    def _on_net_send(self, event):
        self.registry.counter("net.packets_sent").inc()
        self.registry.counter("net.bytes_sent").inc(len(event.payload))

    def _on_net_deliver(self, event):
        self.registry.counter("net.packets_delivered").inc()

    def _on_net_drop(self, event):
        self.registry.counter("net.packets_dropped", reason=event.reason).inc()

    def _on_net_dup(self, event):
        self.registry.counter("net.packets_duplicated").inc()

    # pm.*
    def _on_pm_send(self, event):
        self.registry.counter("pm.messages_sent",
                              endpoint=event.endpoint).inc()
        self.registry.counter("pm.segments_sent",
                              endpoint=event.endpoint).inc(event.segments)

    def _on_pm_retransmit(self, event):
        self.registry.counter("pm.retransmits", endpoint=event.endpoint).inc()

    def _on_pm_dup(self, event):
        self.registry.counter("pm.duplicates_suppressed",
                              endpoint=event.endpoint).inc()

    def _on_pm_ack_explicit(self, event):
        self.registry.counter("pm.explicit_acks",
                              endpoint=event.endpoint).inc()

    def _on_pm_ack_implicit(self, event):
        self.registry.counter("pm.implicit_acks", endpoint=event.endpoint,
                              by=event.by).inc()

    def _on_pm_probe(self, event):
        self.registry.counter("pm.probes", endpoint=event.endpoint).inc()

    def _on_pm_crash(self, event):
        self.registry.counter("pm.crashes_declared",
                              endpoint=event.endpoint).inc()

    def _on_pm_timeout(self, event):
        self.registry.counter("pm.send_timeouts",
                              endpoint=event.endpoint).inc()

    def _on_pm_deliver(self, event):
        self.registry.counter("pm.messages_delivered",
                              endpoint=event.endpoint).inc()

    # rpc.*
    def _on_call_start(self, event):
        self.registry.counter("rpc.calls_started", troupe=event.troupe).inc()
        self._call_started[(event.host, event.proc, event.thread_id,
                            event.call_number)] = event.t

    def _on_result(self, event):
        self.registry.counter("rpc.replica_results",
                              status=event.status).inc()

    def _on_collate(self, event):
        self.registry.counter("rpc.collations", verdict=event.verdict).inc()

    def _on_call_end(self, event):
        self.registry.counter("rpc.calls_completed", troupe=event.troupe,
                              outcome=event.outcome).inc()
        started = self._call_started.pop(
            (event.host, event.proc, event.thread_id, event.call_number),
            None)
        if started is not None:
            self.registry.histogram("rpc.call_ms",
                                    troupe=event.troupe).observe(
                event.t - started)

    def _on_gather(self, event):
        self.registry.counter("rpc.gathers", host=event.host).inc()

    def _on_exec_start(self, event):
        key = (event.host, event.proc, event.thread_id, event.call_number)
        self._exec_started[key] = event.t
        if not event.group_complete:
            self.registry.counter("rpc.incomplete_gathers",
                                  host=event.host).inc()

    def _on_exec_end(self, event):
        self.registry.counter("rpc.executions", host=event.host,
                              outcome=event.outcome).inc()
        key = (event.host, event.proc, event.thread_id, event.call_number)
        started = self._exec_started.pop(key, None)
        if started is not None:
            self.registry.histogram("rpc.exec_ms",
                                    host=event.host).observe(
                event.t - started)

    def _on_return(self, event):
        self.registry.counter("rpc.returns_sent", host=event.host).inc()

    def _on_rpc_stale(self, event):
        self.registry.counter("rpc.stale_calls_rejected",
                              host=event.host).inc()

    # txn.*
    def _on_lock_wait(self, event):
        self.registry.counter("txn.lock_waits").inc()

    def _on_lock_grant(self, event):
        self.registry.histogram("txn.lock_wait_ms").observe(event.waited)

    def _on_deadlock(self, event):
        self.registry.counter("txn.deadlocks").inc()

    def _on_vote(self, event):
        self.registry.counter(
            "txn.votes", ready="true" if event.ready else "false").inc()

    def _on_commit(self, event):
        self.registry.counter("txn.commit_decisions",
                              decision=event.decision).inc()

    # bind.*
    def _on_lookup(self, event):
        self.registry.counter("bind.lookups", op=event.op).inc()

    def _on_member(self, event):
        self.registry.counter("bind.membership_changes", op=event.op).inc()

    def _on_stale(self, event):
        self.registry.counter("bind.stale_bindings").inc()

    def _on_get_state(self, event):
        self.registry.counter("bind.state_transfers").inc()

    _HANDLERS = {
        ev.ProcessSpawned.kind: _on_spawn,
        ev.ProcessExited.kind: _on_exit,
        ev.TimerFired.kind: _on_timer,
        ev.PacketSent.kind: _on_net_send,
        ev.PacketDelivered.kind: _on_net_deliver,
        ev.PacketDropped.kind: _on_net_drop,
        ev.PacketDuplicated.kind: _on_net_dup,
        ev.MessageSent.kind: _on_pm_send,
        ev.SegmentRetransmitted.kind: _on_pm_retransmit,
        ev.DuplicateSuppressed.kind: _on_pm_dup,
        ev.ExplicitAckReceived.kind: _on_pm_ack_explicit,
        ev.ImplicitAck.kind: _on_pm_ack_implicit,
        ev.ProbeSent.kind: _on_pm_probe,
        ev.PeerCrashDeclared.kind: _on_pm_crash,
        ev.TransferTimedOut.kind: _on_pm_timeout,
        ev.MessageDelivered.kind: _on_pm_deliver,
        ev.CallStarted.kind: _on_call_start,
        ev.ReplicaResult.kind: _on_result,
        ev.Collated.kind: _on_collate,
        ev.CallCompleted.kind: _on_call_end,
        ev.GatherStarted.kind: _on_gather,
        ev.ExecutionStarted.kind: _on_exec_start,
        ev.ExecutionFinished.kind: _on_exec_end,
        ev.ReturnSent.kind: _on_return,
        ev.StaleCallRejected.kind: _on_rpc_stale,
        ev.LockWait.kind: _on_lock_wait,
        ev.LockGranted.kind: _on_lock_grant,
        ev.DeadlockDetected.kind: _on_deadlock,
        ev.CommitVote.kind: _on_vote,
        ev.CommitOutcome.kind: _on_commit,
        ev.BindingLookup.kind: _on_lookup,
        ev.MembershipChanged.kind: _on_member,
        ev.StaleBindingInvalidated.kind: _on_stale,
        ev.StateTransferred.kind: _on_get_state,
    }
