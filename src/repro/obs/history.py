"""Client-visible operation histories (§3.3.1, made live).

``repro.model.histories`` formalizes the paper's event sequences;
this module feeds that notion real executions: an
:class:`OperationHistoryRecorder` rides a simulation's bus and turns a
workload's replicated calls into *operations* — invocation/response
records with virtual-time intervals, the recording client's process id,
and the vector-clock stamps the :class:`~repro.obs.clocks.ClockDomain`
puts on ``rpc.call_start`` / ``rpc.call_end``.

The split of responsibilities mirrors Jepsen: the *workload* knows the
semantics of each call (``w x=1``, ``r x``), so it declares operations
through a :class:`HistoryClient` handle (``invoke`` / ``ok`` / ``fail``
/ ``info``); the *bus* knows the wire-level identity of each call
(thread id, call number, causal stamps), so the recorder correlates the
next ``rpc.call_start`` on the declaring client's node with the open
operation.  Each logical client is a sequential process (one
outstanding operation), which makes the correlation exact.

Operation status is Jepsen's three-valued outcome:

``ok``
    the call returned; for a mutator the effect definitely applied.
``fail``
    the call definitely did **not** take effect (a clean
    ``TransactionAborted`` — §5.3 aborts discard tentative writes at
    every member), so checkers may discard it.
``info``
    outcome unknown (timeout, troupe failure, collation error, run cut
    off by the budget): a mutator *may* have applied, and the offline
    checkers must try both possibilities.

Histories serialize to canonical JSON (sorted keys, fixed layout) under
``HISTORY_FORMAT``; the same seed and scenario produce byte-identical
files in different processes — the determinism contract ``repro fuzz``
extends to histories.  ``repro lincheck <history.json>`` re-checks a
saved history offline (see :mod:`repro.obs.lincheck`).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Optional

from repro.obs.export import SCHEMA_VERSION

#: history file format tag (bump on layout changes).
HISTORY_FORMAT = "repro.history/1"


@dataclasses.dataclass
class Operation:
    """One client-visible operation: an invocation/response pair.

    ``inv_seq`` / ``ret_seq`` are positions in the recorder's global
    event sequence — a total order consistent with the simulation's
    real-time order, so checkers can use strict inequalities instead of
    tie-breaking equal virtual times.  ``ret_seq`` is ``None`` while the
    response is missing (``info`` operations never get one).
    """

    index: int
    process: str                 # logical client name ("c1")
    op: str                      # "r" | "w" | "append" | "xfer" | ...
    key: str = ""
    args: Any = None             # JSON-able argument summary
    result: Any = None           # JSON-able decoded result
    status: str = "open"         # "open" -> "ok" | "fail" | "info"
    invoked_at: float = 0.0      # virtual ms
    returned_at: Optional[float] = None
    inv_seq: int = 0
    ret_seq: Optional[int] = None
    node: str = ""               # "host/proc" of the calling runtime
    thread_id: str = ""
    call_number: int = -1
    vc_invoke: Dict[str, int] = dataclasses.field(default_factory=dict)
    vc_return: Dict[str, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "process": self.process,
            "op": self.op,
            "key": self.key,
            "args": self.args,
            "result": self.result,
            "status": self.status,
            "invoked_at": self.invoked_at,
            "returned_at": self.returned_at,
            "inv_seq": self.inv_seq,
            "ret_seq": self.ret_seq,
            "node": self.node,
            "thread_id": self.thread_id,
            "call_number": self.call_number,
            "vc_invoke": dict(self.vc_invoke),
            "vc_return": dict(self.vc_return),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Operation":
        return cls(**{field.name: data.get(field.name)
                      for field in dataclasses.fields(cls)
                      if field.name in data})


def format_operation(op: Dict[str, Any]) -> str:
    """One-line human rendering of an operation dict (shared by
    ``repro lincheck`` and the post-mortem renderer)."""
    what = op.get("op", "?")
    if op.get("key"):
        what += " %s" % op["key"]
    if op.get("args") is not None:
        what += "=%s" % (op["args"],)
    arrow = op.get("result")
    line = "#%-3s %-4s %-22s" % (op.get("index", "?"),
                                 op.get("process", "?"), what)
    line += " -> %-5s" % op.get("status", "?")
    if arrow is not None:
        line += " %s" % (arrow,)
    returned = op.get("returned_at")
    line += "   [%g, %s]" % (op.get("invoked_at", 0.0),
                             "..." if returned is None else "%g" % returned)
    if op.get("call_number", -1) >= 0:
        line += " call#%d" % op["call_number"]
    return line


def canonical_dumps(payload: Dict[str, Any]) -> str:
    """The canonical history serialization: sorted keys, two-space
    indent, trailing newline — byte-identical across processes."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


class OperationHistory:
    """A finished (or loaded) operation history plus its metadata."""

    def __init__(self, ops: List[Operation], scenario: str = "",
                 seed: int = 0, semantics: str = "",
                 initial: Optional[Dict[str, Any]] = None):
        self.ops = list(ops)
        self.scenario = scenario
        self.seed = seed
        self.semantics = semantics
        #: initial value per key (what a read sees before any write);
        #: the serialization-graph checker grounds version chains here.
        self.initial: Dict[str, Any] = dict(initial or {})

    def __len__(self) -> int:
        return len(self.ops)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": HISTORY_FORMAT,
            "schema_version": SCHEMA_VERSION,
            "scenario": self.scenario,
            "seed": self.seed,
            "semantics": self.semantics,
            "initial": dict(self.initial),
            "ops": [op.to_dict() for op in self.ops],
        }

    def dumps(self) -> str:
        return canonical_dumps(self.to_dict())

    def save(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.dumps())

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "OperationHistory":
        if data.get("format") != HISTORY_FORMAT:
            raise ValueError("not an operation history (format %r, "
                             "expected %r)" % (data.get("format"),
                                               HISTORY_FORMAT))
        return cls([Operation.from_dict(op) for op in data.get("ops", [])],
                   scenario=data.get("scenario", ""),
                   seed=data.get("seed", 0),
                   semantics=data.get("semantics", ""),
                   initial=data.get("initial") or {})

    @classmethod
    def load(cls, path) -> "OperationHistory":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


class HistoryClient:
    """One logical client's recording handle: a sequential process that
    declares its operations around each replicated call."""

    def __init__(self, recorder: "OperationHistoryRecorder", name: str,
                 node: str):
        self._recorder = recorder
        self.name = name
        self.node = node

    def invoke(self, op: str, key: str = "", args: Any = None) -> Operation:
        """Declare an operation about to be issued; the next
        ``rpc.call_start`` on this client's node stamps it."""
        return self._recorder._invoke(self, op, key, args)

    def ok(self, operation: Operation, result: Any = None) -> Operation:
        return self._recorder._respond(self, operation, "ok", result)

    def fail(self, operation: Operation) -> Operation:
        """The operation definitely did not take effect."""
        return self._recorder._respond(self, operation, "fail", None)

    def info(self, operation: Operation) -> Operation:
        """Outcome unknown (timeout / failure mid-call)."""
        return self._recorder._respond(self, operation, "info", None)


class OperationHistoryRecorder:
    """Record a workload's client-visible operation history off the bus.

    Subscribes to ``rpc.call_start`` / ``rpc.call_end`` for the wire
    identity and causal stamps of each declared operation; the workload
    declares semantics through :meth:`client` handles.  Detach (or
    :meth:`finalize`) when the run ends; operations still open become
    ``info``.
    """

    def __init__(self, sim, scenario: str = "", seed: int = 0,
                 semantics: str = "", initial: Optional[Dict] = None):
        self.sim = sim
        self.bus = sim.bus
        self.scenario = scenario
        self.seed = seed
        self.semantics = semantics
        self.initial = dict(initial or {})
        self.ops: List[Operation] = []
        self._seq = 0
        #: node -> the one open (invoked, unresponded) operation there.
        self._open_by_node: Dict[str, Operation] = {}
        self._sub = self.bus.subscribe(
            self._observe, kinds=("rpc.call_start", "rpc.call_end"))

    # -- workload side -----------------------------------------------------

    def client(self, name: str, runtime=None) -> HistoryClient:
        """A recording handle for one logical client.  ``runtime`` (a
        :class:`~repro.core.runtime.TroupeRuntime`) binds the handle to
        its process's node so bus events can be correlated; omit it for
        hand-built histories."""
        node = ""
        if runtime is not None:
            process = runtime.process
            node = "%s/%s" % (process.host, process.name)
        return HistoryClient(self, name, node)

    def _invoke(self, client: HistoryClient, op: str, key: str,
                args: Any) -> Operation:
        operation = Operation(
            index=len(self.ops), process=client.name, op=op, key=key,
            args=args, status="open", invoked_at=self.sim.now,
            inv_seq=self._next_seq(), node=client.node)
        self.ops.append(operation)
        if client.node:
            self._open_by_node[client.node] = operation
        return operation

    def _respond(self, client: HistoryClient, operation: Operation,
                 status: str, result: Any) -> Operation:
        operation.status = status
        operation.result = result
        operation.returned_at = self.sim.now
        operation.ret_seq = self._next_seq()
        if self._open_by_node.get(client.node) is operation:
            del self._open_by_node[client.node]
        return operation

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    # -- bus side ----------------------------------------------------------

    def _observe(self, event) -> None:
        node = "%s/%s" % (event.host, event.proc)
        operation = self._open_by_node.get(node)
        if operation is None:
            return
        if event.kind == "rpc.call_start":
            if operation.call_number < 0:
                operation.call_number = event.call_number
                operation.thread_id = event.thread_id
                operation.vc_invoke = dict(getattr(event, "vc", {}) or {})
        elif operation.call_number == event.call_number:
            operation.vc_return = dict(getattr(event, "vc", {}) or {})

    # -- lifecycle ---------------------------------------------------------

    def finalize(self) -> None:
        """Close the recording: operations still open (the run ended
        mid-call) become ``info`` — their effects are unknown."""
        for operation in self.ops:
            if operation.status == "open":
                operation.status = "info"
        self._open_by_node.clear()
        self.detach()

    def detach(self) -> None:
        if self._sub is not None:
            self.bus.unsubscribe(self._sub)
            self._sub = None

    def history(self) -> OperationHistory:
        return OperationHistory(self.ops, scenario=self.scenario,
                                seed=self.seed, semantics=self.semantics,
                                initial=self.initial)
