"""Offline consistency checking of recorded operation histories.

Three checkers over :class:`~repro.obs.history.OperationHistory`:

* **Wing–Gong linearizability** (``register`` / ``list-append``
  semantics): the classic backtracking search [Wing & Gong 1993] with
  the Lowe memoization refinement (a seen set of
  ``(completed-mask, model-state)`` pairs) and **P-compositionality**:
  linearizability is compositional [Herlihy & Wing 1990], so the
  history is partitioned per key and each sub-history checked
  independently — turning one exponential search into many small ones.

* **Strict serializability via serialization graph** (``bank``
  semantics): transactions report the versions they read and wrote;
  every written version is a globally unique cell, so the checker can
  build the direct serialization graph (write-read, write-write,
  read-write edges) plus real-time precedence edges, and report any
  cycle.  Lost updates (two committed transactions replacing the same
  predecessor version) and aborted reads are detected directly.

* **Total order** (``total-order`` semantics, for ordered-broadcast /
  troupe-commit delivery histories): each process reports its local
  delivery sequence; pairwise order disagreements form a precedence
  graph whose cycles witness the violation.

Unknown-outcome (``info``) operations are handled Jepsen-style: a
mutator whose response was lost *may* have taken effect, so the search
may linearize it or discard it; an ``info`` read is discarded outright
(it constrains nothing).  ``fail`` operations definitely did not take
effect and are dropped.

Every rejection carries a *minimal violating sub-history*: the failing
per-key partition is shrunk by greedy single-operation removal (each
candidate removal re-checked) so the report shows only operations that
are jointly necessary for the contradiction.

:class:`HistoryOracle` adapts a checker verdict to the explorer's
invariant-monitor protocol, so ``repro fuzz`` can hunt for consistency
violations with the same shrinking/triage machinery as the online
monitors (see docs/CHECKING.md).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.history import Operation, OperationHistory
from repro.obs.monitor import InvariantMonitor

#: semantics slug -> the invariant name the oracle reports under.
SEMANTICS = {
    "register": "linearizable-register",
    "list-append": "linearizable-list",
    "bank": "strict-serializable",
    "total-order": "total-order-delivery",
}

#: give up minimizing partitions larger than this (the re-check per
#: removed op is itself a search; beyond ~40 ops the shrunken schedule,
#: not the checker, is the minimization tool).
_MINIMIZE_LIMIT = 40


@dataclasses.dataclass
class CheckResult:
    """Verdict of one history check."""

    ok: bool
    semantics: str
    checked: int                     # operations actually considered
    reason: str = ""
    key: Optional[str] = None        # failing partition, if per-key
    violation: List[Operation] = dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "semantics": self.semantics,
            "checked": self.checked,
            "reason": self.reason,
            "key": self.key,
            "violation": [op.to_dict() for op in self.violation],
        }


# ---------------------------------------------------------------------------
# sequential models for the Wing–Gong search


class RegisterSemantics:
    """A single read/write register.  State is the current value."""

    name = "register"

    def initial(self, value: Any) -> Any:
        return value

    def apply(self, state: Any, op: Operation) -> Tuple[bool, Any]:
        if op.op == "w":
            return True, op.args
        if op.op == "r":
            # an info read constrains nothing (no observed result)
            if op.status != "ok":
                return True, state
            return op.result == state, state
        raise ValueError("register model cannot apply op %r" % op.op)


class ListAppendSemantics:
    """An append-only list.  State is the tuple of appended elements."""

    name = "list-append"

    def initial(self, value: Any) -> Tuple:
        return tuple(value or ())

    def apply(self, state: Tuple, op: Operation) -> Tuple[bool, Any]:
        if op.op == "append":
            return True, state + (op.args,)
        if op.op == "r":
            if op.status != "ok":
                return True, state
            return tuple(op.result or ()) == state, state
        raise ValueError("list model cannot apply op %r" % op.op)


_MODELS = {"register": RegisterSemantics(), "list-append": ListAppendSemantics()}


def _is_mutator(op: Operation) -> bool:
    return op.op != "r"


def _partition_by_key(ops: Sequence[Operation]) -> Dict[str, List[Operation]]:
    parts: Dict[str, List[Operation]] = {}
    for op in ops:
        parts.setdefault(op.key, []).append(op)
    return parts


def _wg_linearizable(ops: Sequence[Operation], model, initial: Any) -> bool:
    """The Wing–Gong search: is there a legal sequential order of
    ``ops`` consistent with their real-time (inv_seq/ret_seq) order?

    ``info`` mutators additionally carry a "never happened" branch.
    Returns True iff such an order exists.
    """
    ops = list(ops)
    n = len(ops)
    if n == 0:
        return True
    if n > 62:            # bitmask domain; partitions this large are
        return True       # out of scope (and would never terminate)
    inv = [op.inv_seq for op in ops]
    ret = [op.ret_seq if op.ret_seq is not None else float("inf")
           for op in ops]
    is_info = [op.status == "info" for op in ops]
    full = (1 << n) - 1

    seen = set()
    # frames: (done_mask, dropped_mask, state); done includes dropped.
    stack = [(0, 0, model.initial(initial))]
    while stack:
        done, dropped, state = stack.pop()
        if done == full:
            return True
        marker = (done, dropped, state)
        if marker in seen:
            continue
        seen.add(marker)
        # an op is a candidate for "next linearized" iff no pending op
        # returned before it was invoked (real-time order respected)
        horizon = min((ret[i] for i in range(n) if not done >> i & 1),
                      default=float("inf"))
        for i in range(n):
            if done >> i & 1 or inv[i] > horizon:
                continue
            accepts, new_state = model.apply(state, ops[i])
            if accepts:
                stack.append((done | 1 << i, dropped, new_state))
            if is_info[i]:
                # unknown outcome: maybe it never took effect
                stack.append((done | 1 << i, dropped | 1 << i, state))
    return False


def _minimize(ops: List[Operation], still_fails) -> List[Operation]:
    """Greedy delta-debugging: drop ops one at a time while the check
    still fails.  ``still_fails(subset) -> bool``."""
    if len(ops) > _MINIMIZE_LIMIT:
        return ops
    current = list(ops)
    shrunk = True
    while shrunk:
        shrunk = False
        for i in range(len(current)):
            trial = current[:i] + current[i + 1:]
            if still_fails(trial):
                current = trial
                shrunk = True
                break
    return current


def _check_linearizable(history: OperationHistory,
                        semantics: str) -> CheckResult:
    model = _MODELS[semantics]
    # fail = definitely no effect; info reads constrain nothing.
    ops = [op for op in history.ops
           if op.status == "ok"
           or (op.status == "info" and _is_mutator(op))]
    for key, part in sorted(_partition_by_key(ops).items()):
        initial = history.initial.get(key)
        if not _wg_linearizable(part, model, initial):
            minimal = _minimize(
                part, lambda sub: not _wg_linearizable(sub, model, initial))
            return CheckResult(
                ok=False, semantics=semantics, checked=len(ops),
                reason="no linearization of %d operation(s) on key %r "
                       "exists" % (len(minimal), key),
                key=key, violation=minimal)
    return CheckResult(ok=True, semantics=semantics, checked=len(ops))


# ---------------------------------------------------------------------------
# strict serializability via the direct serialization graph


def _cycle(graph: Dict[int, set]) -> Optional[List[int]]:
    """First cycle found by iterative DFS, as a list of node ids."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    parent: Dict[int, int] = {}
    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack = [(root, iter(sorted(graph[root])))]
        color[root] = GREY
        while stack:
            node, edges = stack[-1]
            advanced = False
            for nxt in edges:
                if nxt not in color:
                    continue
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(graph[nxt]))))
                    advanced = True
                    break
                if color[nxt] == GREY:
                    cycle = [nxt, node]
                    walk = node
                    while walk != nxt:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.pop()          # drop the duplicated start
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def _check_serializable(history: OperationHistory) -> CheckResult:
    """Bank semantics: each committed transaction's result is
    ``{"reads": {key: cell}, "writes": {key: cell}}`` where a *cell* is
    a globally unique version id (``value@opid``).  Build the direct
    serialization graph and hunt for anomalies."""
    semantics = "bank"
    committed = [op for op in history.ops
                 if op.status == "ok" and isinstance(op.result, dict)]
    aborted = [op for op in history.ops if op.status == "fail"]

    def reads(op: Operation) -> Dict[str, Any]:
        return op.result.get("reads", {}) if isinstance(op.result, dict) else {}

    def writes(op: Operation) -> Dict[str, Any]:
        return op.result.get("writes", {}) if isinstance(op.result, dict) else {}

    # cell -> writing op; seed the version chains with the initial cells
    writer: Dict[Tuple[str, Any], Optional[Operation]] = {}
    for key, cell in history.initial.items():
        writer[(key, cell)] = None
    for op in committed:
        for key, cell in writes(op).items():
            if (key, cell) in writer:
                other = writer[(key, cell)]
                pair = [op] if other is None else [other, op]
                return CheckResult(
                    ok=False, semantics=semantics, checked=len(committed),
                    reason="duplicate version %r of key %r written twice "
                           "(replica divergence)" % (cell, key),
                    key=key, violation=pair)
            writer[(key, cell)] = op

    aborted_cells = {(key, cell)
                     for op in aborted if isinstance(op.result, dict)
                     for key, cell in writes(op).items()}

    # key -> cell -> successor cell, from each txn's read->write pairs;
    # lost update = two committed txns replacing the same version.
    replaced: Dict[Tuple[str, Any], Operation] = {}
    for op in committed:
        for key, new_cell in writes(op).items():
            pred = reads(op).get(key)
            if pred is None:
                continue
            slot = (key, pred)
            if slot in replaced:
                return CheckResult(
                    ok=False, semantics=semantics, checked=len(committed),
                    reason="lost update on key %r: two transactions both "
                           "replaced version %r" % (key, pred),
                    key=key, violation=[replaced[slot], op])
            replaced[slot] = op

    graph: Dict[int, set] = {op.index: set() for op in committed}
    by_index = {op.index: op for op in committed}
    for op in committed:
        for key, cell in reads(op).items():
            if (key, cell) in aborted_cells:
                return CheckResult(
                    ok=False, semantics=semantics, checked=len(committed),
                    reason="aborted read: version %r of key %r came from "
                           "an aborted transaction" % (cell, key),
                    key=key, violation=[op])
            if (key, cell) not in writer:
                return CheckResult(
                    ok=False, semantics=semantics, checked=len(committed),
                    reason="read of version %r of key %r that no "
                           "transaction wrote" % (cell, key),
                    key=key, violation=[op])
            source = writer[(key, cell)]
            if source is not None and source is not op:
                graph[source.index].add(op.index)          # wr edge
            successor = replaced.get((key, cell))
            if (successor is not None and successor is not op
                    and source is not successor):
                graph[op.index].add(successor.index)       # rw edge
                if source is not None:
                    graph[source.index].add(successor.index)  # ww edge
    # real-time (strictness) edges: a returned before b was invoked
    finite = [op for op in committed if op.ret_seq is not None]
    for a in finite:
        for b in committed:
            if a is not b and a.ret_seq < b.inv_seq:
                graph[a.index].add(b.index)

    cycle = _cycle(graph)
    if cycle is not None:
        return CheckResult(
            ok=False, semantics=semantics, checked=len(committed),
            reason="serialization graph cycle over %d transaction(s)"
                   % len(cycle),
            violation=[by_index[i] for i in cycle])
    return CheckResult(ok=True, semantics=semantics, checked=len(committed))


# ---------------------------------------------------------------------------
# total delivery order


def _check_total_order(history: OperationHistory) -> CheckResult:
    """Each ``ok`` operation is a delivery: ``process`` is the observer,
    ``args`` the delivered message id.  All observers must agree on a
    single total order."""
    semantics = "total-order"
    sequences: Dict[str, List[Operation]] = {}
    for op in history.ops:
        if op.status == "ok":
            sequences.setdefault(op.process, []).append(op)
    for seq in sequences.values():
        seq.sort(key=lambda op: op.inv_seq)

    graph: Dict[Any, set] = {}
    witness: Dict[Tuple[Any, Any], Operation] = {}
    for seq in sequences.values():
        for i, earlier in enumerate(seq):
            for later in seq[i + 1:]:
                graph.setdefault(earlier.args, set()).add(later.args)
                graph.setdefault(later.args, set())
                witness.setdefault((earlier.args, later.args), later)
    checked = sum(len(seq) for seq in sequences.values())
    cycle = _cycle({msg: nxt for msg, nxt in graph.items()})
    if cycle is not None:
        ops = []
        ring = cycle + cycle[:1]
        for a, b in zip(ring, ring[1:]):
            witness_op = witness.get((a, b))
            if witness_op is not None and witness_op not in ops:
                ops.append(witness_op)
        return CheckResult(
            ok=False, semantics=semantics, checked=checked,
            reason="delivery orders disagree: messages %s form a "
                   "precedence cycle" % (cycle,),
            violation=ops)
    return CheckResult(ok=True, semantics=semantics, checked=checked)


# ---------------------------------------------------------------------------
# entry points


def check_history(history: OperationHistory,
                  semantics: Optional[str] = None) -> CheckResult:
    """Check ``history`` under ``semantics`` (defaults to the history's
    own recorded semantics)."""
    semantics = semantics or history.semantics
    if semantics in ("register", "list-append"):
        return _check_linearizable(history, semantics)
    if semantics == "bank":
        return _check_serializable(history)
    if semantics == "total-order":
        return _check_total_order(history)
    raise ValueError("unknown history semantics %r (have: %s)"
                     % (semantics, ", ".join(sorted(SEMANTICS))))


class HistoryOracle(InvariantMonitor):
    """Adapt an offline checker verdict to the invariant-monitor
    protocol, so the explorer treats a consistency violation exactly
    like an online monitor firing (shrinking, post-mortems, triage).

    Not bus-driven: call :meth:`check` once the run is over.
    """

    kinds = ()            # nothing to observe live
    invariant = "linearizable"
    section = "3.3/5.3"

    def __init__(self, recorder, semantics: Optional[str] = None):
        super().__init__()
        self.recorder = recorder
        self.semantics = semantics or recorder.semantics
        self.invariant = SEMANTICS.get(self.semantics, "linearizable")
        self.result: Optional[CheckResult] = None

    def observe(self, event) -> None:     # pragma: no cover - kinds=()
        pass

    def check(self, t: float = 0.0) -> CheckResult:
        """Finalize the recording and run the checker; report a
        violation through the monitor protocol if it fails."""
        self.recorder.finalize()
        history = self.recorder.history()
        self.result = check_history(history, self.semantics)
        if not self.result.ok:
            subject = "%s:%s" % (self.semantics,
                                 self.result.key
                                 if self.result.key is not None
                                 else "history")
            self.report(self.result.reason, subject=subject, evidence=())
        return self.result
