"""Benchmark-table drift comparison (the BENCH_*.json gate logic).

Used from two front doors with identical semantics:

- ``benchmarks/compare.py`` — the CI entry point, comparing a
  ``--bench-json`` results file against a committed baseline;
- ``repro perf --compare`` — the local one-command equivalent, which
  rebuilds the gated tables in-process and compares them against
  ``BENCH_PERF.json``.

Both baselines hold the ``{"tables": [Table.to_dict(), ...]}`` shape.
Tables are matched by title and rows by their first column (the
workload label); every shared numeric cell gets a delta.  A table's
``gate_columns`` (when present) restricts which columns can fail the
gate — the rest are reported informationally.

The simulation is deterministic, so most columns should match the
baseline exactly; drift means the protocol's behaviour changed, which
is exactly what a PR reviewer wants surfaced.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: title -> (columns, {row_label -> row}, gate_columns)
TableIndex = Dict[str, Tuple[List[str], Dict[str, list], Optional[List[str]]]]


def index_payload(payload: dict) -> TableIndex:
    """Index a ``{"tables": [...]}`` payload for comparison.

    ``gate_columns`` is ``None`` when the table gates every numeric
    column (the default), else the subset of column names the gate
    enforces — the rest are reported informationally."""
    tables: TableIndex = {}
    for table in payload.get("tables", []):
        rows = {str(row[0]): row for row in table.get("rows", []) if row}
        tables[table["title"]] = (table.get("columns", []), rows,
                                  table.get("gate_columns"))
    return tables


def load_tables(path: str) -> TableIndex:
    """Load and index a benchmark JSON file."""
    with open(path) as fh:
        return index_payload(json.load(fh))


def percent_delta(base, new):
    if base == 0:
        return None if new == 0 else float("inf")
    return (new - base) / abs(base) * 100.0


def compare(baseline: TableIndex, results: TableIndex, threshold: float,
            require_all: bool = False):
    """Yield (table, row, column, base, new, delta%) for every shared
    numeric cell; collect regressions past the threshold.

    With ``require_all``, a baseline table or row missing from the
    results is itself a regression (the perf gate uses this so a deleted
    benchmark cannot silently pass)."""
    regressions = []
    lines = []
    for title, (columns, base_rows, gate_columns) in sorted(baseline.items()):
        if title not in results:
            lines.append("MISSING table in results: %s" % title)
            if require_all:
                regressions.append((title, None, None, None, None, None))
            continue
        _new_columns, new_rows, _ = results[title]
        header_shown = False
        for label, base_row in base_rows.items():
            new_row = new_rows.get(label)
            if new_row is None:
                lines.append("  MISSING row %r in %s" % (label, title))
                if require_all:
                    regressions.append((title, label, None, None, None,
                                        None))
                continue
            for i, (b, n) in enumerate(zip(base_row, new_row)):
                if i == 0 or not isinstance(b, (int, float)) \
                        or not isinstance(n, (int, float)) \
                        or isinstance(b, bool):
                    continue
                delta = percent_delta(b, n)
                if delta is None or delta == 0.0:
                    continue
                if not header_shown:
                    lines.append(title)
                    header_shown = True
                column = columns[i] if i < len(columns) else "col%d" % i
                gated = gate_columns is None or column in gate_columns
                flag = "" if gated else "  (informational, not gated)"
                if gated and threshold and abs(delta) > threshold:
                    flag = "  <-- exceeds %.0f%%" % threshold
                    regressions.append((title, label, column, b, n, delta))
                lines.append("  %-20s %-18s %12g -> %-12g %+8.2f%%%s"
                             % (label, column, b, n, delta, flag))
    for title in sorted(set(results) - set(baseline)):
        lines.append("NEW table (not in baseline): %s" % title)
    return lines, regressions


def run_compare(baseline: TableIndex, results: TableIndex,
                threshold: float, require_all: bool = False,
                baseline_name: str = "baseline") -> int:
    """Print the report and the verdict; returns the exit status."""
    lines, regressions = compare(baseline, results, threshold,
                                 require_all=require_all)
    if lines:
        print("\n".join(lines))
    else:
        print("no deltas: results match the baseline exactly")
    if regressions:
        print("\n%d regression(s) against %s (threshold %.0f%%)"
              % (len(regressions), baseline_name, threshold))
        return 1
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="report per-benchmark deltas against the committed "
                    "baseline")
    parser.add_argument("results", help="a --bench-json output file")
    parser.add_argument("--baseline", default="BENCH_BASELINE.json",
                        help="baseline file (default BENCH_BASELINE.json)")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="fail when any |delta| exceeds this percent "
                             "(default 0: report only)")
    parser.add_argument("--require-all", action="store_true",
                        help="also fail when a baseline table or row is "
                             "missing from the results")
    args = parser.parse_args(argv)
    return run_compare(load_tables(args.baseline), load_tables(args.results),
                       args.threshold, require_all=args.require_all,
                       baseline_name=args.baseline)
