"""Paper-vs-measured reporting.

Benchmarks register their result tables here; a pytest hook in
``benchmarks/conftest.py`` prints every registered table in the terminal
summary, so ``pytest benchmarks/ --benchmark-only`` emits the same rows
the paper reports next to the measured values.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


class Table:
    """A formatted experiment table.

    ``formats`` optionally supplies a printf-style format string per
    column (``None`` entries keep the magnitude default).  Percentages
    that happen to be >= 10 and sub-10-ms latencies get the format their
    column asks for instead of the magnitude guess:

        Table("...", ["n", "P[deadlock] (%)", "latency (ms)"],
              formats=[None, "%.1f", "%.2f"])
    """

    def __init__(self, title: str, columns: Sequence[str],
                 notes: Optional[str] = None,
                 formats: Optional[Sequence[Optional[str]]] = None,
                 gate_columns: Optional[Sequence[str]] = None):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[Any]] = []
        self.notes = notes
        if formats is not None and len(formats) != len(self.columns):
            raise ValueError("formats has %d entries; table has %d columns"
                             % (len(formats), len(self.columns)))
        self.formats = list(formats) if formats is not None else None
        if gate_columns is not None:
            unknown = set(gate_columns) - set(self.columns)
            if unknown:
                raise ValueError("gate_columns not in table: %s"
                                 % ", ".join(sorted(unknown)))
        #: When set, ``benchmarks/compare.py`` only fails the perf gate
        #: on these columns; the rest are reported informationally (how
        #: a wall-clock column can ride in a gated table).  ``None``
        #: keeps the default: every numeric column gates.
        self.gate_columns = list(gate_columns) \
            if gate_columns is not None else None

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError("row has %d values; table has %d columns"
                             % (len(values), len(self.columns)))
        self.rows.append(list(values))

    def _fmt(self, value: Any, column: int) -> str:
        fmt = self.formats[column] if self.formats is not None else None
        if fmt is not None and isinstance(value, (int, float)):
            return fmt % value
        if isinstance(value, float):
            # Probabilities and ratios keep three decimals; larger
            # magnitudes (milliseconds) keep one.
            return "%.3f" % value if abs(value) < 10.0 else "%.1f" % value
        return str(value)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [self._fmt(v, i) for i, v in enumerate(row)]
            widths = [max(w, len(r)) for w, r in zip(widths, rendered)]
            rendered_rows.append(rendered)
        def line(cells):
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        out = ["", "=" * len(self.title), self.title, "=" * len(self.title),
               line(self.columns),
               line(["-" * w for w in widths])]
        for row in rendered_rows:
            out.append(line(row))
        if self.notes:
            out.append("")
            out.append(self.notes)
        return "\n".join(out)

    def to_dict(self) -> Dict[str, Any]:
        """The table as plain JSON-serializable data (``--bench-json``)."""
        out = {
            "title": self.title,
            "columns": self.columns,
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
        }
        if self.gate_columns is not None:
            out["gate_columns"] = self.gate_columns
        return out


_REGISTRY: Dict[str, Table] = {}


def register_table(table: Table) -> Table:
    """Register (or replace) a table for end-of-run printing."""
    _REGISTRY[table.title] = table
    return table


def registered_tables() -> List[Table]:
    return [
        _REGISTRY[title] for title in sorted(_REGISTRY)
    ]


def clear_tables() -> None:
    _REGISTRY.clear()
