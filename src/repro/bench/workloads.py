"""Workload generators for capacity experiments.

The paper's measurements are closed-loop (one client, back-to-back calls).
Downstream users also want open-loop and multi-client workloads, so this
module provides both:

- :class:`ClosedLoopClient` — N clients, each issuing the next call as
  soon as the previous returns (the Figure 4.5-4.7 pattern, generalized);
- :class:`OpenLoopGenerator` — Poisson arrivals at a configurable offered
  load, each call in its own thread (measures queueing behaviour);
- :func:`run_load_sweep` — throughput and latency of a troupe across a
  range of offered loads.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.core.runtime import ExportedModule, RuntimeConfig, TroupeRuntime
from repro.core.troupe import TroupeDescriptor
from repro.harness import World
from repro.pairedmsg.endpoint import PairedMessageConfig
from repro.rpc.threads import ThreadId
from repro.sim.kernel import Simulator, Sleep
from repro.sim.rng import RandomStream


@dataclasses.dataclass
class WorkloadResult:
    """Aggregate outcome of a workload run."""

    offered_rate: float          # calls/second offered (0 = closed loop)
    completed: int
    duration_ms: float
    latencies: List[float]

    @property
    def throughput(self) -> float:
        """Completed calls per second of virtual time."""
        if self.duration_ms <= 0:
            return 0.0
        return 1000.0 * self.completed / self.duration_ms

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile_latency(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class ClosedLoopClient:
    """N independent clients issuing back-to-back calls."""

    def __init__(self, world: World, troupe: TroupeDescriptor,
                 clients: int = 1, calls_per_client: int = 20,
                 procedure: int = 0, payload: bytes = b"w"):
        self.world = world
        self.troupe = troupe
        self.clients = clients
        self.calls_per_client = calls_per_client
        self.procedure = procedure
        self.payload = payload

    def run(self) -> WorkloadResult:
        world = self.world
        latencies: List[float] = []
        done: List[int] = []

        def client_body(runtime):
            def body():
                for _ in range(self.calls_per_client):
                    start = world.sim.now
                    yield from runtime.call_troupe(
                        self.troupe, 0, self.procedure, self.payload)
                    latencies.append(world.sim.now - start)
                done.append(1)
            return body

        start = world.sim.now
        for _ in range(self.clients):
            world.spawn(client_body(world.make_client())())
        world.sim.run(stop_when=lambda: len(done) == self.clients)
        return WorkloadResult(0.0, len(latencies),
                              world.sim.now - start, latencies)


class OpenLoopGenerator:
    """Poisson arrivals at ``rate`` calls/second, one thread per call."""

    def __init__(self, world: World, troupe: TroupeDescriptor,
                 rate: float, total_calls: int = 50,
                 procedure: int = 0, payload: bytes = b"w", seed: int = 0):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.world = world
        self.troupe = troupe
        self.rate = rate
        self.total_calls = total_calls
        self.procedure = procedure
        self.payload = payload
        self.rng = RandomStream(seed, "open-loop")

    def run(self) -> WorkloadResult:
        world = self.world
        latencies: List[float] = []
        finished: List[int] = []
        client = world.make_client()
        serial = [0]

        def one_call():
            # Each arrival runs on its own logical thread so calls overlap.
            serial[0] += 1
            thread_id = ThreadId("open-loop", serial[0])

            def body():
                start = world.sim.now
                yield from client.call_troupe(
                    self.troupe, 0, self.procedure, self.payload,
                    thread_id=thread_id)
                latencies.append(world.sim.now - start)
                finished.append(1)
            return body

        def arrivals():
            for _ in range(self.total_calls):
                world.spawn(one_call()())
                yield Sleep(self.rng.expovariate(self.rate / 1000.0))

        start = world.sim.now
        world.spawn(arrivals())
        world.sim.run(
            stop_when=lambda: len(finished) == self.total_calls)
        return WorkloadResult(self.rate, len(latencies),
                              world.sim.now - start, latencies)


def echo_troupe(world: World, degree: int,
                service_ms: float = 2.0) -> TroupeDescriptor:
    """A troupe whose procedure costs ``service_ms`` of user CPU."""
    def factory():
        def serve(ctx, args):
            yield from ctx.compute(service_ms)
            return b"ok"
        return ExportedModule("load-echo", {0: serve})

    troupe, _ = world.make_troupe("load-echo", factory, degree=degree)
    return troupe


def run_load_sweep(rates: List[float], degree: int = 3,
                   total_calls: int = 40, seed: int = 0):
    """Open-loop throughput/latency of a troupe across offered loads.

    Returns a list of WorkloadResults, one per offered rate.
    """
    results = []
    for rate in rates:
        paired = PairedMessageConfig(retransmit_interval=800.0,
                                     probe_interval=2000.0,
                                     crash_timeout=20000.0)
        world = World(machines=degree + 1, seed=seed,
                      runtime_config=RuntimeConfig(execution="parallel",
                                                   paired=paired))
        troupe = echo_troupe(world, degree)
        generator = OpenLoopGenerator(world, troupe, rate,
                                      total_calls=total_calls, seed=seed)
        results.append(generator.run())
    return results
