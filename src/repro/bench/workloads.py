"""Workload generators for capacity experiments.

The paper's measurements are closed-loop (one client, back-to-back calls).
Downstream users also want open-loop and multi-client workloads, so this
module provides both:

- :class:`ClosedLoopClient` — N clients, each issuing the next call as
  soon as the previous returns (the Figure 4.5-4.7 pattern, generalized);
- :class:`OpenLoopGenerator` — open-loop arrivals (fixed, Poisson, or
  heavy-tailed Pareto interarrivals) at a configurable offered load,
  each call in its own thread (measures queueing behaviour);
- :func:`run_load_sweep` — throughput and latency of a troupe across a
  range of offered loads;
- :func:`capacity_builder` — the sharded capacity workload: machine
  cells each hosting an echo troupe, client sessions with Zipf key
  popularity and heavy-tailed arrivals, ownership-gated so the same
  builder drives every shard of a :func:`repro.sim.sharded.run_sharded`
  world (and its single-process reference) identically.

All randomness is drawn from seed-derived :class:`RandomStream`\\ s —
per session, never shared — so traffic patterns are deterministic and
independent of shard layout.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import List, Optional

from repro.core.runtime import ExportedModule, RuntimeConfig, TroupeRuntime
from repro.core.troupe import TroupeDescriptor
from repro.harness import World
from repro.pairedmsg.endpoint import PairedMessageConfig
from repro.rpc.threads import ThreadId
from repro.sim.kernel import Simulator, Sleep
from repro.sim.rng import RandomStream


#: supported interarrival processes for open-loop generators.
ARRIVAL_KINDS = ("fixed", "poisson", "pareto")


def interarrival_ms(kind: str, rng: RandomStream, rate: float,
                    pareto_alpha: float = 1.5) -> float:
    """One interarrival gap (ms) for an offered load of ``rate``
    calls/second.

    - ``fixed``: the deterministic mean gap;
    - ``poisson``: exponential gaps (memoryless arrivals);
    - ``pareto``: heavy-tailed gaps via inverse-CDF sampling, scaled so
      the mean matches ``rate`` (finite for ``pareto_alpha > 1``) —
      bursts of close arrivals separated by long quiet stretches, the
      shape real user traffic has.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    mean = 1000.0 / rate
    if kind == "fixed":
        return mean
    if kind == "poisson":
        return rng.expovariate(rate / 1000.0)
    if kind == "pareto":
        if pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must exceed 1 for a finite "
                             "mean (got %r)" % pareto_alpha)
        scale = mean * (pareto_alpha - 1.0) / pareto_alpha
        u = 1.0 - rng.random()          # in (0, 1]: never divides by zero
        return scale / u ** (1.0 / pareto_alpha)
    raise ValueError("unknown arrival kind %r (expected one of %s)"
                     % (kind, ", ".join(ARRIVAL_KINDS)))


class ZipfSampler:
    """Zipf(s) popularity over ranks ``0..n-1`` (rank 0 most popular),
    sampled by bisecting a precomputed CDF — O(log n) per draw, no
    rejection, deterministic under :class:`RandomStream`."""

    def __init__(self, n: int, s: float = 1.1):
        if n < 1:
            raise ValueError("need at least one rank")
        self.n = n
        self.s = s
        cdf = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / rank ** s
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self, rng: RandomStream) -> int:
        return bisect.bisect_left(self._cdf, rng.random() * self._total)


@dataclasses.dataclass
class WorkloadResult:
    """Aggregate outcome of a workload run."""

    offered_rate: float          # calls/second offered (0 = closed loop)
    completed: int
    duration_ms: float
    latencies: List[float]

    @property
    def throughput(self) -> float:
        """Completed calls per second of virtual time."""
        if self.duration_ms <= 0:
            return 0.0
        return 1000.0 * self.completed / self.duration_ms

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile_latency(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class ClosedLoopClient:
    """N independent clients issuing back-to-back calls."""

    def __init__(self, world: World, troupe: TroupeDescriptor,
                 clients: int = 1, calls_per_client: int = 20,
                 procedure: int = 0, payload: bytes = b"w"):
        self.world = world
        self.troupe = troupe
        self.clients = clients
        self.calls_per_client = calls_per_client
        self.procedure = procedure
        self.payload = payload

    def run(self) -> WorkloadResult:
        world = self.world
        latencies: List[float] = []
        done: List[int] = []

        def client_body(runtime):
            def body():
                for _ in range(self.calls_per_client):
                    start = world.sim.now
                    yield from runtime.call_troupe(
                        self.troupe, 0, self.procedure, self.payload)
                    latencies.append(world.sim.now - start)
                done.append(1)
            return body

        start = world.sim.now
        for _ in range(self.clients):
            world.spawn(client_body(world.make_client())())
        world.sim.run(stop_when=lambda: len(done) == self.clients)
        return WorkloadResult(0.0, len(latencies),
                              world.sim.now - start, latencies)


class OpenLoopGenerator:
    """Open-loop arrivals at ``rate`` calls/second, one thread per call.

    ``arrival`` picks the interarrival process (:data:`ARRIVAL_KINDS`);
    the default is the historical Poisson behaviour."""

    def __init__(self, world: World, troupe: TroupeDescriptor,
                 rate: float, total_calls: int = 50,
                 procedure: int = 0, payload: bytes = b"w", seed: int = 0,
                 arrival: str = "poisson", pareto_alpha: float = 1.5):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if arrival not in ARRIVAL_KINDS:
            raise ValueError("unknown arrival kind %r (expected one of %s)"
                             % (arrival, ", ".join(ARRIVAL_KINDS)))
        self.world = world
        self.troupe = troupe
        self.rate = rate
        self.total_calls = total_calls
        self.procedure = procedure
        self.payload = payload
        self.arrival = arrival
        self.pareto_alpha = pareto_alpha
        self.rng = RandomStream(seed, "open-loop")

    def run(self) -> WorkloadResult:
        world = self.world
        latencies: List[float] = []
        finished: List[int] = []
        client = world.make_client()
        serial = [0]

        def one_call():
            # Each arrival runs on its own logical thread so calls overlap.
            serial[0] += 1
            thread_id = ThreadId("open-loop", serial[0])

            def body():
                start = world.sim.now
                yield from client.call_troupe(
                    self.troupe, 0, self.procedure, self.payload,
                    thread_id=thread_id)
                latencies.append(world.sim.now - start)
                finished.append(1)
            return body

        def arrivals():
            for _ in range(self.total_calls):
                world.spawn(one_call()())
                yield Sleep(interarrival_ms(self.arrival, self.rng,
                                            self.rate, self.pareto_alpha))

        start = world.sim.now
        world.spawn(arrivals())
        world.sim.run(
            stop_when=lambda: len(finished) == self.total_calls)
        return WorkloadResult(self.rate, len(latencies),
                              world.sim.now - start, latencies)


def echo_troupe(world: World, degree: int,
                service_ms: float = 2.0) -> TroupeDescriptor:
    """A troupe whose procedure costs ``service_ms`` of user CPU."""
    def factory():
        def serve(ctx, args):
            yield from ctx.compute(service_ms)
            return b"ok"
        return ExportedModule("load-echo", {0: serve})

    troupe, _ = world.make_troupe("load-echo", factory, degree=degree)
    return troupe


def run_load_sweep(rates: List[float], degree: int = 3,
                   total_calls: int = 40, seed: int = 0,
                   arrival: str = "poisson", pareto_alpha: float = 1.5):
    """Open-loop throughput/latency of a troupe across offered loads.

    ``arrival`` selects the interarrival process (``fixed``, ``poisson``
    or heavy-tailed ``pareto``); gaps are seed-derived either way.
    Returns a list of WorkloadResults, one per offered rate.
    """
    results = []
    for rate in rates:
        paired = PairedMessageConfig(retransmit_interval=800.0,
                                     probe_interval=2000.0,
                                     crash_timeout=20000.0)
        world = World(machines=degree + 1, seed=seed,
                      runtime_config=RuntimeConfig(execution="parallel",
                                                   paired=paired))
        troupe = echo_troupe(world, degree)
        generator = OpenLoopGenerator(world, troupe, rate,
                                      total_calls=total_calls, seed=seed,
                                      arrival=arrival,
                                      pareto_alpha=pareto_alpha)
        results.append(generator.run())
    return results


# ---------------------------------------------------------------------------
# the sharded capacity workload
# ---------------------------------------------------------------------------

def capacity_builder(*, cells: int, sessions: int,
                     calls_per_session: int = 4, rate: float = 20.0,
                     degree: int = 3, arrival: str = "pareto",
                     pareto_alpha: float = 1.5, zipf_s: float = 1.1,
                     service_ms: float = 2.0, payload: bytes = b"w",
                     seed: int = 0):
    """A ``builder(world)`` for :func:`repro.sim.sharded.run_sharded`.

    The world's machines split into ``cells`` equal contiguous blocks;
    each cell hosts one ``degree``-member echo troupe on its first
    machines.  ``sessions`` client sessions are laid out round-robin
    over all machines; each session issues ``calls_per_session``
    sequential calls, picking a target cell by Zipf(``zipf_s``)
    popularity and sleeping a seed-derived heavy-tailed gap between
    calls — open-loop across sessions, closed within one.

    Everything the builder does is a pure function of the world's
    machine list and ``seed``: troupes and the registry are built in
    every shard identically (ghost replicas are inert), while sessions
    are ownership-gated so each runs on exactly one shard.  Traffic is
    therefore byte-identical for any shard count; when shard boundaries
    align with cell boundaries, the Zipf-popular cells keep most of it
    intra-shard."""
    if cells < 1:
        raise ValueError("need at least one cell")

    # Queueing near saturation must read as latency, not as member
    # death: the same load-tolerant paired-message profile the load
    # sweep uses (retransmits and crash verdicts far beyond the knee).
    tolerant = RuntimeConfig(
        execution="parallel",
        paired=PairedMessageConfig(retransmit_interval=800.0,
                                   probe_interval=2000.0,
                                   crash_timeout=20000.0))

    def builder(world: World) -> None:
        names = [m.name for m in world.machines]
        if len(names) % cells:
            raise ValueError("%d machines do not split into %d cells"
                             % (len(names), cells))
        cell_size = len(names) // cells
        if degree > cell_size:
            raise ValueError("cell size %d cannot host a %d-member troupe"
                             % (cell_size, degree))

        def factory():
            def serve(ctx, args):
                yield from ctx.compute(service_ms)
                return b"ok"
            return ExportedModule("cell-echo", {0: serve})

        # Troupes first — in every shard, in the same order, so ports,
        # addresses and troupe IDs agree replica-for-replica.
        troupes = []
        for cell in range(cells):
            block = names[cell * cell_size:(cell + 1) * cell_size]
            troupe, _ = world.make_troupe("cell-%d" % cell, factory,
                                          degree=degree,
                                          on_machines=block[:degree],
                                          runtime_config=tolerant)
            troupes.append(troupe)
        zipf = ZipfSampler(cells, zipf_s)
        world.counters.setdefault("calls_completed", 0)
        world.counters.setdefault("calls_issued", 0)
        world.samples.setdefault("latency_ms", [])

        def session(index: int, home: str):
            client = world.make_client(home, runtime_config=tolerant)
            rng = RandomStream(seed, "session-%d" % index)

            def body():
                # Stagger the start so a million sessions do not arrive
                # as one t=0 batch.
                yield Sleep(rng.uniform(0.0, 1000.0 / rate))
                for call in range(calls_per_session):
                    cell = zipf.sample(rng)
                    world.counters["calls_issued"] += 1
                    start = world.sim.now
                    yield from client.call_troupe(
                        troupes[cell], 0, 0, payload,
                        thread_id=ThreadId("sess-%d" % index, call))
                    world.samples["latency_ms"].append(
                        world.sim.now - start)
                    world.counters["calls_completed"] += 1
                    yield Sleep(interarrival_ms(arrival, rng, rate,
                                                pareto_alpha))
            return body()

        # Sessions after every troupe exists; creation order within one
        # home machine is the same subsequence on its owning shard as in
        # the single-process run, so client ports agree too.
        for index in range(sessions):
            home = names[index % len(names)]
            if not world.owns(home):
                continue
            world.spawn(session(index, home), name="sess-%d" % index)

    return builder
