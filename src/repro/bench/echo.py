"""The §4.4.1 echo experiments: UDP, TCP, and Circus replicated calls.

The experimental setup mirrors the paper's: "six identically configured
VAX-11/750 systems, connected by a single 10 megabit per second Ethernet
cable", lightly loaded.  The client measures the time of day and its
user/kernel CPU time around a loop of echo calls (Figures 4.5-4.7) and
reports milliseconds per call.

The measured quantities come from the simulated process's CPU accounting,
which is charged by the Table 4.2 syscall cost model — so these workloads
reproduce the *shape* of Table 4.1: TCP faster than UDP under the
streamlined read/write interface, an unreplicated Circus call roughly
twice a raw UDP exchange, and a 10-20 ms increment per additional troupe
member (Figure 4.8's linear growth).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.runtime import ExportedModule, RuntimeConfig
from repro.harness import World
from repro.net.tcp import TcpListener, TcpSocket


#: Table 4.1 of the paper (milliseconds per call).
PAPER_TABLE_4_1 = {
    "UDP": {"real": 26.5, "total": 13.3, "user": 0.8, "kernel": 12.4},
    "TCP": {"real": 23.2, "total": 8.3, "user": 0.5, "kernel": 7.8},
    1: {"real": 48.0, "total": 24.1, "user": 5.9, "kernel": 18.2},
    2: {"real": 58.0, "total": 45.2, "user": 10.0, "kernel": 35.2},
    3: {"real": 69.4, "total": 66.8, "user": 13.0, "kernel": 53.8},
    4: {"real": 90.2, "total": 87.2, "user": 16.8, "kernel": 70.4},
    5: {"real": 109.5, "total": 107.2, "user": 21.0, "kernel": 86.1},
}

#: Table 4.2 of the paper (CPU ms per system call).
PAPER_TABLE_4_2 = {
    "sendmsg": 8.1,
    "recvmsg": 2.8,
    "select": 1.8,
    "setitimer": 1.2,
    "gettimeofday": 0.7,
    "sigblock": 0.4,
}

#: Table 4.3 of the paper (% of total CPU per syscall, by degree).
PAPER_TABLE_4_3 = {
    1: {"sendmsg": 27.2, "select": 11.2, "recvmsg": 9.2},
    2: {"sendmsg": 28.8, "select": 12.7, "recvmsg": 10.6},
    3: {"sendmsg": 32.5, "select": 11.7, "recvmsg": 11.9},
    4: {"sendmsg": 32.9, "select": 10.3, "recvmsg": 10.7},
    5: {"sendmsg": 33.0, "select": 9.9, "recvmsg": 11.1},
}


@dataclasses.dataclass
class EchoResult:
    """Per-call averages over the measurement loop (ms/rpc)."""

    label: str
    iterations: int
    real: float
    user: float
    kernel: float
    #: kernel CPU per syscall name, for the Table 4.3 profile.
    profile: Dict[str, float] = dataclasses.field(default_factory=dict)
    user_total: float = 0.0

    @property
    def total(self) -> float:
        return self.user + self.kernel

    def profile_percentages(self) -> Dict[str, float]:
        total = (sum(self.profile.values()) + self.user_total) or 1.0
        return {name: 100.0 * ms / total
                for name, ms in self.profile.items()}


ECHO_PAYLOAD = b"x" * 64


def run_udp_echo(iterations: int = 50, seed: int = 0) -> EchoResult:
    """Figure 4.5: sendmsg / alarm / recvmsg / alarm against an echo
    server — the lower bound for any datagram-based RPC."""
    world = World(machines=2, seed=seed)
    client_proc = world.machines[0].spawn_process("udp-client")
    server_proc = world.machines[1].spawn_process("udp-server")
    client_sock = client_proc.udp_socket()
    server_sock = server_proc.udp_socket(700)

    def server():
        while True:
            datagram = yield from server_proc.recvmsg(server_sock)
            yield from server_proc.sendmsg(server_sock, datagram.payload,
                                           datagram.src)

    world.sim.spawn(server(), name="udp-server", daemon=True)

    def client():
        start_real = world.sim.now
        start_user, start_kernel = client_proc.user_time, client_proc.kernel_time
        for _ in range(iterations):
            yield from client_proc.sendmsg(client_sock, ECHO_PAYLOAD,
                                           server_sock.addr)
            yield from client_proc.syscall("setitimer")   # alarm(timeout)
            yield from client_proc.recvmsg(client_sock)
            yield from client_proc.syscall("setitimer")   # alarm(0)
            yield from client_proc.compute(0.8)           # loop body
        return (world.sim.now - start_real,
                client_proc.user_time - start_user,
                client_proc.kernel_time - start_kernel)

    real, user, kernel = world.run(client(), name="udp-client")
    return EchoResult("UDP", iterations, real / iterations,
                      user / iterations, kernel / iterations)


def run_tcp_echo(iterations: int = 50, seed: int = 0) -> EchoResult:
    """Figure 4.6: one connection, then a write/read loop.  The
    streamlined read/write interface (no scatter/gather copying) makes
    this *faster* than the UDP test, as the paper found."""
    world = World(machines=2, seed=seed)
    client_proc = world.machines[0].spawn_process("tcp-client")
    server_proc = world.machines[1].spawn_process("tcp-server")
    listener = TcpListener(world.net, world.machines[1].name, 700)

    def server():
        conn = yield listener.accept()
        while True:
            msg = yield from conn.receive()
            yield from server_proc.syscall("read")
            yield from server_proc.syscall("write")
            yield from conn.send(msg)

    world.sim.spawn(server(), name="tcp-server", daemon=True)

    def client():
        sock = TcpSocket(world.net, world.machines[0].name)
        yield from sock.connect(listener.addr)
        start_real = world.sim.now
        start_user, start_kernel = client_proc.user_time, client_proc.kernel_time
        for _ in range(iterations):
            yield from client_proc.syscall("write")
            yield from sock.send(ECHO_PAYLOAD)
            yield from sock.receive()
            yield from client_proc.syscall("read")
            yield from client_proc.compute(0.5)
        result = (world.sim.now - start_real,
                  client_proc.user_time - start_user,
                  client_proc.kernel_time - start_kernel)
        sock.close()
        return result

    real, user, kernel = world.run(client(), name="tcp-client")
    return EchoResult("TCP", iterations, real / iterations,
                      user / iterations, kernel / iterations)


def run_circus_echo(degree: int, iterations: int = 50, seed: int = 0,
                    use_multicast: bool = False,
                    payload: bytes = ECHO_PAYLOAD) -> EchoResult:
    """Figure 4.7: the rpctest echo interface served by a troupe of the
    given degree, called through the full Circus stack."""
    from repro.pairedmsg.endpoint import PairedMessageConfig
    # A retransmission interval comfortably above the longest per-call
    # time, so steady-state implicit acknowledgment works as §4.2.2
    # intends (an interval shorter than the call loop makes every return
    # retransmit and ack explicitly, which the real system avoided).
    paired = PairedMessageConfig(retransmit_interval=500.0,
                                 probe_interval=1500.0,
                                 crash_timeout=8000.0)
    world = World(machines=degree + 1, seed=seed,
                  runtime_config=RuntimeConfig(use_multicast=use_multicast,
                                               paired=paired))

    def echo_module():
        def echo(ctx, args):
            yield from ctx.compute(1.0)   # result := argument
            return args
        return ExportedModule("rpctest", {0: echo})

    troupe, _runtimes = world.make_troupe("rpctest", echo_module,
                                          degree=degree)
    client = world.make_client()
    proc = client.process

    def body():
        # Warm-up call (binding, first-exchange effects), then measure.
        yield from client.call_troupe(troupe, 0, 0, payload)
        start_real = world.sim.now
        start_user, start_kernel = proc.user_time, proc.kernel_time
        start_profile = dict(proc.syscall_times)
        for _ in range(iterations):
            yield from client.call_troupe(troupe, 0, 0, payload)
        profile = {
            name: (ms - start_profile.get(name, 0.0)) / iterations
            for name, ms in proc.syscall_times.items()
            if ms - start_profile.get(name, 0.0) > 0.0}
        return (world.sim.now - start_real,
                proc.user_time - start_user,
                proc.kernel_time - start_kernel,
                profile)

    real, user, kernel, profile = world.run(body(), name="circus-client")
    result = EchoResult("Circus(%d)" % degree, iterations,
                        real / iterations, user / iterations,
                        kernel / iterations, profile=profile,
                        user_total=user / iterations)
    return result


def run_circus_series(degrees=(1, 2, 3, 4, 5), iterations: int = 50,
                      seed: int = 0,
                      use_multicast: bool = False) -> List[EchoResult]:
    return [run_circus_echo(degree, iterations, seed,
                            use_multicast=use_multicast)
            for degree in degrees]


def linear_fit(xs: List[float], ys: List[float]):
    """Least-squares slope, intercept, and R^2 (for Figure 4.8's
    linear-growth claim)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2
                 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys) or 1.0
    return slope, intercept, 1.0 - ss_res / ss_tot
