"""The deterministic, CI-gated benchmark tables, built in one place.

``benchmarks/bench_wallclock.py`` registers these tables (plus its
machine-dependent wall-clock ones) under ``--bench-json`` for the CI
perf job, and ``repro perf --compare`` rebuilds exactly the same tables
locally and runs the same 5% drift verdict against ``BENCH_PERF.json``
— one command instead of the two-step pytest + ``benchmarks/compare.py``
dance.

Every builder returns ``(table, aux)``: the :class:`Table` with the
gated rows (titles and row labels must match ``BENCH_PERF.json``
byte-for-byte — they are the join keys the comparator matches on) and
an ``aux`` dict carrying the raw metrics for the benchmark's
acceptance asserts.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bench import perf
from repro.bench.report import Table


def kernel_proxy_table(iterations: int = 200) -> Tuple[Table, Dict]:
    metrics = perf.proxy_metrics(iterations=iterations)
    again = perf.proxy_metrics(iterations=iterations)
    table = Table(
        "Kernel hot-path proxy metric (work per replicated call)",
        ["workload", "callbacks/call", "allocs/call",
         "proxy (callbacks+allocs)"],
        formats=[None, "%.2f", "%.2f", "%.2f"],
        notes="Deterministic (machine-independent); CI gates the live "
              "row against BENCH_PERF.json at 5%.  The seed row is the "
              "unoptimized kernel, kept as the trajectory reference.")
    seed = perf.SEED_PROXY["circus-200"]
    table.add_row("circus-200 (seed)", seed["callbacks_per_call"],
                  seed["allocs_per_call"], seed["proxy"])
    table.add_row("circus-200", metrics["callbacks_per_call"],
                  metrics["allocs_per_call"], metrics["proxy"])
    return table, {"metrics": metrics, "again": again, "seed": seed}


def message_path_table(iterations: int = 200) -> Tuple[Table, Dict]:
    metrics = perf.message_path_metrics(iterations=iterations)
    again = perf.message_path_metrics(iterations=iterations)
    table = Table(
        "Message-path proxy metric (work per replicated call)",
        ["workload", "encodes/call", "daemons/call", "packets/call",
         "msg proxy (encodes+daemons)"],
        formats=[None, "%.2f", "%.2f", "%.2f", "%.2f"],
        notes="Deterministic (machine-independent); CI gates the live "
              "row against BENCH_PERF.json at 5%.  The seed row is the "
              "pre-optimization protocol stack: one encode per "
              "transmission and one retransmit daemon per transfer.")
    seed = perf.SEED_MESSAGE_PATH["circus-200"]
    table.add_row("circus-200 (seed)", seed["encodes_per_call"],
                  seed["daemons_per_call"], seed["packets_per_call"],
                  seed["msg_proxy"])
    table.add_row("circus-200", metrics["encodes_per_call"],
                  metrics["daemons_per_call"], metrics["packets_per_call"],
                  metrics["msg_proxy"])
    return table, {"metrics": metrics, "again": again, "seed": seed}


def delayed_ack_table() -> Tuple[Table, Dict]:
    off = perf.lossy_transfer_metrics(delayed_acks=False)
    on = perf.lossy_transfer_metrics(delayed_acks=True)
    table = Table(
        "Message-path: delayed-ack coalescing (pm-loss15, deterministic)",
        ["configuration", "ms/transfer", "packets/transfer",
         "acks/transfer", "acks coalesced/transfer"],
        formats=[None, "%.4f", "%.3f", "%.3f", "%.3f"],
        notes="13-segment (6 KB) calls at 15% seeded loss.  delayed_acks "
              "holds the highest cumulative ack per message and flushes "
              "one batch per 10 ms interval; probe replies stay "
              "immediate so crash detection is unchanged.")
    for label, row in (("immediate-acks", off), ("delayed-acks", on)):
        table.add_row(label, row["ms_per_transfer"],
                      row["packets_per_transfer"], row["acks_per_transfer"],
                      row["acks_coalesced_per_transfer"])
    return table, {"off": off, "on": on,
                   "seed": perf.SEED_MESSAGE_PATH["pm-loss15"]}


def zero_copy_table(iterations: int = 200) -> Tuple[Table, Dict]:
    metrics = perf.zero_copy_metrics(iterations=iterations)
    again = perf.zero_copy_metrics(iterations=iterations)
    lossy = perf.lossy_transfer_metrics(delayed_acks=False)
    table = Table(
        "Message-path zero-copy (bytes copied per call)",
        ["workload", "bytes copied per call/transfer"],
        formats=[None, "%.3f"],
        notes="bytes_copied counts payload+header bytes written into "
              "fresh message-path buffers: one wire per segment, one "
              "marked wire per retransmitted segment, one join per "
              "delivered message; decode and reassembly are memoryviews "
              "and contribute zero.  The seed rows are the copying path "
              "(encode copied the payload twice, decode sliced it, "
              "wire_marked copied the whole wire twice).  Deterministic "
              "and CI-gated at 5%.")
    table.add_row("circus-200 (seed)",
                  perf.SEED_ZERO_COPY["circus-200"]["bytes_copied_per_call"])
    table.add_row("circus-200", metrics["bytes_copied_per_call"])
    table.add_row("pm-loss15 (seed)",
                  perf.SEED_ZERO_COPY["pm-loss15"][
                      "bytes_copied_per_transfer"])
    table.add_row("pm-loss15", lossy["bytes_copied_per_transfer"])
    return table, {"metrics": metrics, "again": again, "lossy": lossy}


def dispatch_table(iterations: int = 200) -> Tuple[Table, Dict]:
    metrics = perf.dispatch_metrics(iterations=iterations)
    again = perf.dispatch_metrics(iterations=iterations)
    table = Table(
        "Kernel batched dispatch (per replicated call)",
        ["workload", "callbacks/call", "ready lane/call", "lane share %"],
        formats=[None, "%.2f", "%.3f", "%.2f"],
        notes="Same-timestamp callbacks drain through a ready lane that "
              "bypasses the heap (no push+pop per entry).  callbacks/call "
              "must stay pinned — batching reorders nothing, it only "
              "cheapens dispatch; the lane share is how many dispatches "
              "took the batched path.  Deterministic and CI-gated at 5%.")
    seed = perf.SEED_DISPATCH["circus-200"]
    table.add_row("circus-200 (seed)", seed["callbacks_per_call"],
                  seed["ready_per_call"], seed["lane_share_pct"])
    table.add_row("circus-200", metrics["callbacks_per_call"],
                  metrics["ready_per_call"], metrics["lane_share_pct"])
    return table, {"metrics": metrics, "again": again, "seed": seed}


def observability_table(iterations: int = 200,
                        overhead_iterations: int = 60) -> Tuple[Table, Dict]:
    work = perf.obs_work_metrics(iterations=iterations)
    again = perf.obs_work_metrics(iterations=iterations)
    history = perf.history_work_metrics(iterations=iterations)
    plain, active, observed, ratio = perf.observability_overhead_ratio(
        iterations=overhead_iterations)
    _active_h, _recorded_h, history_ratio = perf.history_overhead_ratio(
        iterations=overhead_iterations)
    table = Table(
        "Observability telemetry (work per replicated call + overhead)",
        ["workload", "events/call", "ts updates/call", "milestones/call",
         "attributed %", "residual %", "virtual end (ms)",
         "overhead ratio (wall)"],
        formats=[None, "%.2f", "%.2f", "%.2f", "%.2f", "%.2f", "%.3f",
                 "%.3f"],
        gate_columns=["events/call", "ts updates/call", "milestones/call",
                      "attributed %", "residual %", "virtual end (ms)"],
        notes="Time-series collector + critical-path analyzer attached "
              "to the circus workload.  Work columns are deterministic "
              "and CI-gated at 5%; the wall ratio (telemetry time over "
              "active-bus time per call) is machine-dependent and "
              "informational.  virtual end (ms) must equal the "
              "unobserved run's — subscribers never move virtual time.  "
              "The +history row adds the operation-history recorder; its "
              "work columns must equal the base row exactly (the "
              "recorder is a pure reader) and its wall ratio is the "
              "recorder's incremental cost on an active bus.")
    table.add_row("circus-200", work["events_per_call"],
                  work["ts_updates_per_call"], work["milestones_per_call"],
                  work["attributed_pct"], work["residual_pct"],
                  work["virtual_end_ms"], ratio)
    table.add_row("circus-200+history", history["events_per_call"],
                  history["ts_updates_per_call"],
                  history["milestones_per_call"],
                  history["attributed_pct"], history["residual_pct"],
                  history["virtual_end_ms"], history_ratio)
    return table, {"work": work, "again": again, "history": history,
                   "plain": plain, "active": active, "observed": observed,
                   "ratio": ratio, "history_ratio": history_ratio}


def sharded_exchange_table() -> Tuple[Table, Dict]:
    """The sharded-simulation determinism table: the same capacity
    workload driven through 1, 2 and 4 shard kernels must complete the
    same calls with the same wire traffic and a byte-identical packet
    digest — the whole contract of :mod:`repro.sim.sharded`."""
    rows = {shards: perf.sharded_exchange_metrics(shards)
            for shards in (1, 2, 4)}
    again = perf.sharded_exchange_metrics(2)
    reference = rows[1]["digest"]
    table = Table(
        "Sharded simulation: conservative cross-shard exchange "
        "(deterministic)",
        ["configuration", "calls", "packets/call", "cross-shard/call",
         "sync windows", "digest == 1-shard"],
        formats=[None, None, "%.2f", "%.2f", None, None],
        notes="12-host capacity workload (4 cells x 3-member echo "
              "troupes, 24 Zipf/Pareto sessions) partitioned across "
              "shard kernels with conservative lookahead on the link "
              "latency.  Every column is deterministic and CI-gated at "
              "5%; the digest flag is the byte-identical-behaviour "
              "contract (canonical multiset digest over net.* events).")
    for shards, metrics in rows.items():
        table.add_row("shards-%d" % shards, metrics["calls"],
                      metrics["packets_per_call"],
                      metrics["cross_shard_per_call"], metrics["windows"],
                      1 if metrics["digest"] == reference else 0)
    return table, {"rows": rows, "again": again, "reference": reference}


def sharded_speedup_table() -> Tuple[Table, Dict]:
    """The sharded wall-clock table: calls/sec of real time vs shard
    count on a 1000-host world.  calls and p99 are deterministic and
    gated; the wall-clock columns are machine-dependent (they scale with
    the runner's core count — a single core cannot speed up) and ride
    informationally via ``gate_columns``."""
    rows = {}
    for shards in (1, 2, 4):
        rows[shards] = perf.sharded_wallclock_metrics(shards)
    base = rows[1]["calls_per_sec"] or 1.0
    table = Table(
        "Sharded simulation wall-clock speedup (1000-host capacity "
        "workload)",
        ["configuration", "calls", "p99 ms", "wall s",
         "calls/sec (wall)", "speedup x"],
        formats=[None, None, "%.1f", "%.2f", "%.1f", "%.2f"],
        gate_columns=["calls", "p99 ms"],
        notes="1000 hosts in 250 cells (one 3-member troupe each), 1500 "
              "heavy-tailed Zipf sessions; shards-2/4 run one forked OS "
              "process per shard.  calls and p99 are deterministic and "
              "CI-gated at 5% (virtual time never depends on the shard "
              "count); wall columns are informational and scale with "
              "cores — expect >= 2x at 4 shards on a >= 4-core runner, "
              "and ~1/shards on a single core.")
    for shards, metrics in rows.items():
        table.add_row("shards-%d" % shards, metrics["calls"],
                      metrics["p99_ms"], metrics["wall_seconds"],
                      metrics["calls_per_sec"],
                      metrics["calls_per_sec"] / base)
    return table, {"rows": rows}


def elastic_table() -> Tuple[Table, Dict]:
    """The elastic grow-shrink table: the §6.4.2 availability experiment
    with the autoscaler reconfiguring the troupe through the §6.4.1
    protocols while an exponential failure process churns the pool.
    Every column is virtual-time-deterministic."""
    metrics = perf.elastic_metrics()
    again = perf.elastic_metrics()
    table = Table(
        "Elastic troupe grow-shrink (autoscaled availability experiment)",
        ["workload", "calls ok", "joins", "removes", "p99 ms",
         "troupe avail", "virtual end (ms)"],
        formats=[None, None, None, None, "%.3f", "%.6f", "%.3f"],
        notes="4-machine member pool, 12 s virtual, mttf 8 s / mttr "
              "1.2 s; the autoscaler grows on burst load, shrinks in "
              "quiet phases, and replaces fail-stopped members through "
              "§6.4.1 state transfer.  Every column is deterministic "
              "(virtual time only) and CI-gated at 5%: joins/removes "
              "pin the reconfiguration cadence, troupe avail is the "
              "uptime the M/M/n/n machine model cannot see.")
    table.add_row("elastic-pool4", metrics["calls_ok"], metrics["joins"],
                  metrics["removes"], metrics["p99_ms"],
                  metrics["troupe_availability"],
                  metrics["virtual_end_ms"])
    return table, {"metrics": metrics, "again": again}


#: every gated builder, in BENCH_PERF.json order.
GATED_BUILDERS = (
    kernel_proxy_table,
    dispatch_table,
    message_path_table,
    delayed_ack_table,
    zero_copy_table,
    observability_table,
    sharded_exchange_table,
    sharded_speedup_table,
    elastic_table,
)

#: builders with a fixed workload (no iterations knob).
_FIXED_WORKLOAD_BUILDERS = (delayed_ack_table, sharded_exchange_table,
                            sharded_speedup_table, elastic_table)


def all_gated_tables(iterations: int = 200) -> List[Table]:
    """Build every CI-gated table (the ``repro perf --compare`` set)."""
    tables = []
    for builder in GATED_BUILDERS:
        if builder in _FIXED_WORKLOAD_BUILDERS:
            table, _aux = builder()
        else:
            table, _aux = builder(iterations=iterations)
        tables.append(table)
    return tables
