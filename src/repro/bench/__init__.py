"""Benchmark workloads and reporting for the paper's evaluation (§4.4).

- :mod:`repro.bench.echo` — the UDP / TCP / Circus echo tests of
  Figures 4.5-4.7, producing the rows of Table 4.1, the profile of
  Table 4.3, and the series of Figure 4.8, plus the paper's reference
  values for side-by-side comparison;
- :mod:`repro.bench.report` — registered paper-vs-measured tables,
  printed in the benchmark run's terminal summary.

The experiment drivers for Eq 5.1, Eq 6.1/6.2, the §4.4.2 multicast
analysis, and the ablations live in the ``benchmarks/`` suite itself.
"""

from repro.bench.echo import (
    EchoResult,
    run_circus_echo,
    run_tcp_echo,
    run_udp_echo,
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    PAPER_TABLE_4_3,
)
from repro.bench.report import Table, register_table, registered_tables

__all__ = [
    "EchoResult",
    "PAPER_TABLE_4_1",
    "PAPER_TABLE_4_2",
    "PAPER_TABLE_4_3",
    "Table",
    "register_table",
    "registered_tables",
    "run_circus_echo",
    "run_tcp_echo",
    "run_udp_echo",
]
