"""Wall-clock and proxy-metric performance workloads.

Two kinds of measurement share these workloads:

- **Wall-clock throughput** (events/sec, packets/sec, calls/sec) —
  machine-dependent, reported by ``benchmarks/bench_wallclock.py`` and
  ``python -m repro perf`` but never compared against a committed
  baseline.
- **The deterministic proxy metric** — kernel callbacks executed plus
  ``_ScheduledCall`` objects allocated per replicated call.  The
  simulation is deterministic, so these counters are identical on every
  machine and every run; CI gates on them (``BENCH_PERF.json``) instead
  of flaky wall-clock numbers.

The proxy tracks exactly what the hot-path optimizations target: fewer
allocations per call (freelist hits) and no spurious callbacks.  A code
change that adds kernel work per call moves the proxy even when
wall-clock noise would hide it.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

#: Frozen counters from the unoptimized seed kernel (measured once with
#: the same circus workload before the hot-path pass).  Kept as data so
#: every report shows the trajectory next to the current numbers.
SEED_PROXY = {
    "circus-200": {
        "callbacks_per_call": 162.935,
        "allocs_per_call": 171.85,
        "proxy": 334.785,
    },
}

#: Frozen message-path counters from the seed protocol stack (measured
#: once with the same workloads before the encode-once / scheduler
#: pass): segment encodes, endpoint helper daemons spawned, and packets
#: per replicated circus call.  ``msg_proxy`` is encodes + daemons —
#: the deterministic work-per-call number the CI perf job gates.
SEED_MESSAGE_PATH = {
    "circus-200": {
        "encodes_per_call": 11.990,
        "daemons_per_call": 6.020,
        "packets_per_call": 11.990,
        "msg_proxy": 18.010,
    },
    #: the deterministic lossy paired-message exchange (seed 11, 15%
    #: loss, 13-segment calls) the delayed-ack rows run on.
    "pm-loss15": {
        "packets_per_transfer": 23.125,
        "ms_per_transfer": 226.52244269964925,
    },
}

#: Frozen ``bytes_copied`` counters from the copying message path
#: (measured once, before the zero-copy pass, by instrumenting its
#: materialization points: ``header + bytes(data)`` on encode, the
#: ``bytes`` slice on decode, the bytearray splice + ``bytes`` on
#: wire_marked, and the reassembly join).  The counter's meaning is
#: "payload+header bytes written into fresh message-path buffers"; the
#: zero-copy pass leaves exactly one materialization per wire and one
#: per delivered message, so the gated live rows must sit well below
#: these.
SEED_ZERO_COPY = {
    "circus-200": {
        "bytes_copied_per_call": 885.165,
    },
    "pm-loss15": {
        "bytes_copied_per_transfer": 26893.25,
    },
}

#: Frozen dispatch counters from the pre-batching kernel: every
#: callback went through the heap (no ready lane), so the lane columns
#: are zero by construction and callbacks/call is the PR-3/4 figure.
SEED_DISPATCH = {
    "circus-200": {
        "callbacks_per_call": 162.96,
        "ready_per_call": 0.0,
        "lane_share_pct": 0.0,
    },
}


# ---------------------------------------------------------------------------
# Kernel microbenchmarks (pure Simulator, no protocol stack)
# ---------------------------------------------------------------------------

def _workload_timer(sim, procs: int, steps: int):
    """Every process repeatedly sleeps: the timer-wheel hot path."""
    from repro.sim.kernel import Sleep

    def worker():
        for _ in range(steps):
            yield Sleep(1.0)

    for _ in range(procs):
        sim.spawn(worker())
    return procs * steps


def _workload_pingpong(sim, procs: int, steps: int):
    """Pairs of processes bouncing items through queues: the event /
    blocking-get hot path."""
    from repro.sim.events import Queue

    pairs = max(1, procs // 2)

    def player(inbox, outbox, serve):
        if serve:
            outbox.put(0)
        while True:
            n = yield inbox.get()
            if n >= steps:
                return
            outbox.put(n + 1)

    for _ in range(pairs):
        a, b = Queue(sim, "a"), Queue(sim, "b")
        sim.spawn(player(a, b, True))
        sim.spawn(player(b, a, False))
    return pairs * steps


def _workload_select(sim, procs: int, steps: int):
    """AnyOf(event-that-never-fires, timeout): the select/timeout shape
    every retransmission loop uses — each round leaves a cancelled
    subscription behind, exercising tombstoning and compaction."""
    from repro.sim.events import Event
    from repro.sim.kernel import AnyOf, Sleep

    def worker():
        for _ in range(steps):
            never = Event(sim, "never")
            yield AnyOf(never, Sleep(1.0))

    for _ in range(procs):
        sim.spawn(worker())
    return procs * steps


KERNEL_WORKLOADS: Dict[str, Callable] = {
    "timer": _workload_timer,
    "pingpong": _workload_pingpong,
    "select": _workload_select,
}


def kernel_events_per_sec(kind: str, procs: int = 100, steps: int = 1000,
                          repeats: int = 3) -> Tuple[float, dict]:
    """Best-of-``repeats`` wall-clock events/sec for a kernel workload.

    Returns ``(events_per_sec, perf_snapshot)`` of the fastest run.
    """
    from repro.sim.kernel import Simulator

    best = 0.0
    snapshot = {}
    for _ in range(repeats):
        sim = Simulator()
        events = KERNEL_WORKLOADS[kind](sim, procs, steps)
        start = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - start
        rate = events / elapsed if elapsed > 0 else 0.0
        if rate > best:
            best = rate
            snapshot = sim.perf_snapshot()
    return best, snapshot


# ---------------------------------------------------------------------------
# Protocol-stack workloads
# ---------------------------------------------------------------------------

def paired_message_packets_per_sec(transfers: int = 200,
                                   repeats: int = 3) -> float:
    """Wall-clock packets/sec through the paired-message endpoints
    (multi-segment calls, acks, retransmission timers)."""
    from repro.harness import World
    from repro.pairedmsg import PairedEndpoint, PairedMessageConfig

    message = bytes(range(256)) * 8            # 2048 bytes -> segments

    best = 0.0
    for _ in range(repeats):
        world = World(machines=2, seed=11)
        config = PairedMessageConfig(max_segment_data=512)
        client_proc = world.machines[0].spawn_process("pm-client")
        server_proc = world.machines[1].spawn_process("pm-server")
        client = PairedEndpoint(client_proc, config=config)
        server = PairedEndpoint(server_proc, port=600, config=config)

        def server_loop():
            while True:
                msg = yield from server.next_call()
                yield from server.send_return(msg.peer, msg.call_number,
                                              b"ok")

        server_proc.spawn(server_loop(), daemon=True)

        def body():
            for number in range(1, transfers + 1):
                yield from client.call(server.addr, number, message)

        start = time.perf_counter()
        world.run(body())
        elapsed = time.perf_counter() - start
        rate = world.net.packets_sent / elapsed if elapsed > 0 else 0.0
        best = max(best, rate)
    return best


def replicated_calls_per_sec(iterations: int = 100, monitors: bool = False,
                             repeats: int = 3) -> float:
    """Wall-clock end-to-end replicated calls/sec on the circus
    workload, optionally with the full monitor suite attached."""
    best = 0.0
    for _ in range(repeats):
        elapsed = _run_circus(iterations, monitors)[0]
        rate = iterations / elapsed if elapsed > 0 else 0.0
        best = max(best, rate)
    return best


def _run_circus(iterations: int, monitors: bool) -> Tuple[float, dict]:
    """One circus run; returns (wall seconds, kernel perf snapshot)."""
    from repro.cli import _scenario_circus

    world, body = _scenario_circus(iterations)
    if monitors:
        from repro.obs.monitor import watch
        with watch(world.sim):
            start = time.perf_counter()
            world.run(body())
            elapsed = time.perf_counter() - start
    else:
        start = time.perf_counter()
        world.run(body())
        elapsed = time.perf_counter() - start
    return elapsed, world.sim.perf_snapshot()


def monitor_overhead_ratio(iterations: int = 100) -> Tuple[float, float, float]:
    """(unobserved calls/sec, monitored calls/sec, overhead ratio).

    The ratio is monitored-time / unobserved-time: how much slower a run
    gets with the invariant monitors subscribed to the bus."""
    plain = replicated_calls_per_sec(iterations, monitors=False)
    watched = replicated_calls_per_sec(iterations, monitors=True)
    ratio = plain / watched if watched > 0 else float("inf")
    return plain, watched, ratio


def _circus_rate(iterations: int, repeats: int, attach) -> float:
    """Best-of-``repeats`` circus calls/sec with ``attach(world)``
    installing observers first (it returns a detach callable or None)."""
    from repro.cli import _scenario_circus

    best = 0.0
    for _ in range(repeats):
        world, body = _scenario_circus(iterations)
        detach = attach(world)
        start = time.perf_counter()
        world.run(body())
        elapsed = time.perf_counter() - start
        if detach is not None:
            detach()
        rate = iterations / elapsed if elapsed > 0 else 0.0
        best = max(best, rate)
    return best


def observability_overhead_ratio(iterations: int = 100, repeats: int = 3,
                                 ) -> Tuple[float, float, float, float]:
    """(unobserved, active-bus, telemetry calls/sec, overhead ratio).

    Like :func:`monitor_overhead_ratio`, but for the streaming-telemetry
    layer: the time-series collector and the critical-path analyzer
    attached together (what ``repro top`` and ``World.observe`` cost).

    The ratio is active-bus-time over telemetry-time per call — the
    *incremental* cost of the telemetry subscribers on a bus that is
    already publishing events.  Turning the bus on at all (event
    construction + stamping) is the pre-existing price every observer
    shares — the monitor-overhead row budgets that — and the unobserved
    fast path stays byte-identical, so an unobserved run pays nothing.
    """
    def attach_none(world):
        return None

    def attach_minimal(world):
        sub = world.sim.bus.subscribe(lambda event: None)
        return lambda: world.sim.bus.unsubscribe(sub)

    def attach_telemetry(world):
        from repro.obs import CritPathAnalyzer, TimeSeriesCollector
        collector = TimeSeriesCollector(world.sim.bus)
        analyzer = CritPathAnalyzer(world.sim)

        def detach():
            analyzer.close()
            collector.close()
        return detach

    plain = _circus_rate(iterations, repeats, attach_none)
    active = _circus_rate(iterations, repeats, attach_minimal)
    observed = _circus_rate(iterations, repeats, attach_telemetry)
    ratio = active / observed if observed > 0 else float("inf")
    return plain, active, observed, ratio


def _telemetry_work(iterations: int, attach_extra=None) -> Dict[str, float]:
    """Shared body of :func:`obs_work_metrics` /
    :func:`history_work_metrics`: the deterministic telemetry counters on
    the circus workload, with ``attach_extra(world)`` optionally
    installing one more observer (it returns a detach callable)."""
    from repro.cli import _scenario_circus
    from repro.obs import CritPathAnalyzer, TimeSeriesCollector

    # Reference run with the bus inactive: the unobserved fast path.
    world, body = _scenario_circus(iterations)
    world.run(body())
    unobserved_end = world.sim.now

    world, body = _scenario_circus(iterations)
    delivered = [0]

    def count(_event):
        delivered[0] += 1

    sub = world.sim.bus.subscribe(count)
    detach_extra = attach_extra(world) if attach_extra is not None else None
    with TimeSeriesCollector(world.sim.bus) as ts:
        analyzer = CritPathAnalyzer(world.sim)
        try:
            world.run(body())
            report = analyzer.report()
        finally:
            analyzer.close()
    if detach_extra is not None:
        detach_extra()
    world.sim.bus.unsubscribe(sub)
    if world.sim.now != unobserved_end:
        raise AssertionError(
            "observers moved virtual time: %r != %r"
            % (world.sim.now, unobserved_end))
    return {
        "events_per_call": delivered[0] / iterations,
        "ts_updates_per_call": ts.registry.updates() / iterations,
        "milestones_per_call": analyzer.milestones / iterations,
        "attributed_pct": report["attributed_pct"],
        "residual_pct": report["residual_pct"],
        "virtual_end_ms": round(unobserved_end, 6),
    }


def obs_work_metrics(iterations: int = 200) -> Dict[str, float]:
    """Deterministic observability-work counters on the circus workload
    with the telemetry layer attached: bus events delivered, time-series
    cell updates, and critical-path wire milestones per replicated call,
    plus the attribution quality of the critical-path decomposition.

    ``virtual_end_ms`` is pinned to the unobserved run's end time — bus
    subscribers must never move virtual time, so this column catches an
    observer that perturbs the simulation even when the work counters
    happen to match.
    """
    return _telemetry_work(iterations)


def history_work_metrics(iterations: int = 200) -> Dict[str, float]:
    """The same deterministic telemetry counters with an
    :class:`~repro.obs.history.OperationHistoryRecorder` additionally
    attached — the ``circus-200+history`` row of the gated table.

    Every column must come out identical to :func:`obs_work_metrics`:
    the recorder correlates ``rpc.call_start`` / ``rpc.call_end`` events
    against declared operations but never emits, never touches the
    simulation, and adds no telemetry work of its own.  A recorder that
    perturbed any counter (or virtual time) would move this row and
    fail the 5% gate.
    """
    from repro.obs.history import OperationHistoryRecorder

    state = {}

    def attach_recorder(world):
        recorder = OperationHistoryRecorder(world.sim, scenario="circus")
        state["recorder"] = recorder
        return recorder.detach

    metrics = _telemetry_work(iterations, attach_extra=attach_recorder)
    # The circus workload declares no operations, so the recorder must
    # have recorded none — its bus-side correlation is the entire cost.
    if state["recorder"].ops:
        raise AssertionError("recorder invented operations: %r"
                             % state["recorder"].ops)
    return metrics


def history_overhead_ratio(iterations: int = 100, repeats: int = 3,
                           ) -> Tuple[float, float, float]:
    """(active-bus calls/sec, recorder-attached calls/sec, ratio).

    The wall-clock price of the operation-history recorder: circus
    calls/sec with one no-op subscriber (the shared cost of an active
    bus) versus the same plus an ``OperationHistoryRecorder``.  The
    ratio is active-bus time over recorded time per call — the
    *incremental* cost of recording, mirroring
    :func:`observability_overhead_ratio`.
    """
    from repro.obs.history import OperationHistoryRecorder

    def attach_minimal(world):
        sub = world.sim.bus.subscribe(lambda event: None)
        return lambda: world.sim.bus.unsubscribe(sub)

    def attach_history(world):
        sub = world.sim.bus.subscribe(lambda event: None)
        recorder = OperationHistoryRecorder(world.sim, scenario="circus")

        def detach():
            recorder.detach()
            world.sim.bus.unsubscribe(sub)
        return detach

    active = _circus_rate(iterations, repeats, attach_minimal)
    recorded = _circus_rate(iterations, repeats, attach_history)
    ratio = active / recorded if recorded > 0 else float("inf")
    return active, recorded, ratio


def message_path_metrics(iterations: int = 200) -> Dict[str, float]:
    """Deterministic work counters for the message path on the circus
    workload: segment encodes, endpoint helper daemons spawned, and
    packets per replicated call.  ``msg_proxy`` (encodes + daemons) is
    the CI-gated number; ``packets_per_call`` must match the seed row
    exactly — the optimizations may not change what goes on the wire.
    """
    from repro.cli import _scenario_circus

    world, body = _scenario_circus(iterations)
    world.run(body())
    totals = world.endpoint_stats()
    encodes = totals["segment_encodes"] / iterations
    daemons = totals["daemons_spawned"] / iterations
    packets = world.net.packets_sent / iterations
    return {
        "encodes_per_call": encodes,
        "daemons_per_call": daemons,
        "packets_per_call": packets,
        "msg_proxy": encodes + daemons,
    }


def lossy_transfer_metrics(delayed_acks: bool = False, transfers: int = 8,
                           loss: float = 0.15,
                           seed: int = 11) -> Dict[str, float]:
    """The deterministic lossy paired-message exchange (13-segment call
    messages, seeded loss) with or without ack coalescing — the
    benchmark row for ``PairedMessageConfig.delayed_acks``."""
    from repro.harness import World
    from repro.net.network import NetworkConfig
    from repro.pairedmsg import PairedEndpoint, PairedMessageConfig

    message = bytes(range(256)) * 24          # 6144 bytes -> 13 segments
    world = World(machines=2, seed=seed,
                  net_config=NetworkConfig(loss_probability=loss))
    config = PairedMessageConfig(max_segment_data=512,
                                 retransmit_interval=30.0,
                                 delayed_acks=delayed_acks)
    client_proc = world.machines[0].spawn_process("pm-client")
    server_proc = world.machines[1].spawn_process("pm-server")
    client = PairedEndpoint(client_proc, config=config)
    server = PairedEndpoint(server_proc, port=600, config=config)

    def server_loop():
        while True:
            msg = yield from server.next_call()
            yield from server.send_return(msg.peer, msg.call_number, b"ok")

    server_proc.spawn(server_loop(), daemon=True)

    def body():
        start = world.sim.now
        for number in range(1, transfers + 1):
            yield from client.call(server.addr, number, message)
        return (world.sim.now - start) / transfers

    latency = world.run(body())
    acks_sent = (client.counters["acks_sent"]
                 + server.counters["acks_sent"])
    acks_coalesced = (client.counters["acks_coalesced"]
                      + server.counters["acks_coalesced"])
    bytes_copied = (client.counters["bytes_copied"]
                    + server.counters["bytes_copied"])
    return {
        "ms_per_transfer": latency,
        "packets_per_transfer": world.net.packets_sent / transfers,
        "acks_per_transfer": acks_sent / transfers,
        "acks_coalesced_per_transfer": acks_coalesced / transfers,
        "bytes_copied_per_transfer": bytes_copied / transfers,
    }


def proxy_metrics(iterations: int = 200) -> Dict[str, float]:
    """The deterministic CI-gated metric: kernel callbacks executed and
    handles allocated per replicated call on the circus workload.

    Identical on every machine and every run (the simulation is
    deterministic); gated against ``BENCH_PERF.json`` at 5%.
    """
    _elapsed, snapshot = _run_circus(iterations, monitors=False)
    callbacks = snapshot["callbacks_run"] / iterations
    allocs = snapshot["calls_allocated"] / iterations
    return {
        "callbacks_per_call": callbacks,
        "allocs_per_call": allocs,
        "proxy": callbacks + allocs,
    }


def zero_copy_metrics(iterations: int = 200) -> Dict[str, float]:
    """Deterministic ``bytes_copied`` per replicated call on the circus
    workload: payload+header bytes written into fresh message-path
    buffers (one wire per segment, one marked wire per retransmitted
    segment, one join per delivered message — decode and reassembly are
    views and contribute zero).  Gated against ``BENCH_PERF.json``; the
    recorded seed row (:data:`SEED_ZERO_COPY`) is the copying path this
    pass replaced, so the live row dropping is the zero-copy win."""
    from repro.cli import _scenario_circus

    world, body = _scenario_circus(iterations)
    world.run(body())
    totals = world.endpoint_stats()
    return {
        "bytes_copied_per_call": totals["bytes_copied"] / iterations,
    }


def dispatch_metrics(iterations: int = 200) -> Dict[str, float]:
    """Deterministic batched-dispatch counters on the circus workload:
    kernel callbacks per call, ready-lane entries drained per call (the
    same-timestamp batching path that bypasses the heap), and the lane's
    share of all dispatches.  The seed row (:data:`SEED_DISPATCH`) is
    the pre-batching kernel, where every callback paid a heap push+pop.
    """
    _elapsed, snapshot = _run_circus(iterations, monitors=False)
    callbacks = snapshot["callbacks_run"] / iterations
    ready = snapshot["ready_dispatched"] / iterations
    share = (100.0 * snapshot["ready_dispatched"] / snapshot["callbacks_run"]
             if snapshot["callbacks_run"] else 0.0)
    return {
        "callbacks_per_call": callbacks,
        "ready_per_call": ready,
        "lane_share_pct": round(share, 4),
    }


# ---------------------------------------------------------------------------
# sharded simulation metrics
# ---------------------------------------------------------------------------

#: the deterministic sharded-exchange reference workload: 12 hosts in 4
#: cells (one 3-member echo troupe each), 24 Zipf/Pareto client sessions.
SHARDED_WORKLOAD = dict(machines=12, cells=4, sessions=24,
                        calls_per_session=3, rate=40.0, seed=7,
                        horizon=3000.0)


def _sharded_builder(spec):
    from repro.bench.workloads import capacity_builder

    return capacity_builder(
        cells=spec["cells"], sessions=spec["sessions"],
        calls_per_session=spec["calls_per_session"], rate=spec["rate"],
        seed=spec["seed"])


def sharded_exchange_metrics(shards: int, spec=None) -> Dict[str, float]:
    """Deterministic cross-shard exchange counters on the capacity
    workload: completed calls, wire packets and cross-shard envelopes
    per call, synchronization windows, and the canonical packet digest.
    Identical on every machine; the digest must match the 1-shard row
    (the byte-identical-behaviour contract of repro.sim.sharded)."""
    from repro.sim.sharded import run_sharded

    spec = spec or SHARDED_WORKLOAD
    result = run_sharded(_sharded_builder(spec), machines=spec["machines"],
                         shards=shards, seed=spec["seed"],
                         horizon=spec["horizon"])
    calls = result.counters.get("calls_completed", 0) or 1
    return {
        "calls": result.counters.get("calls_completed", 0),
        "packets_per_call": result.network["packets_sent"] / calls,
        "cross_shard_per_call": result.cross_shard_messages / calls,
        "windows": result.windows,
        "digest": result.digest,
    }


#: the wall-clock speedup workload: a 1000-host world (250 cells, one
#: 3-member troupe each) under 1500 heavy-tailed Zipf sessions.
SHARDED_SPEEDUP_WORKLOAD = dict(machines=1000, cells=250, sessions=1500,
                                calls_per_session=2, rate=20.0, seed=7,
                                horizon=1200.0)


def sharded_wallclock_metrics(shards: int, spec=None,
                              mode: str = "process") -> Dict[str, float]:
    """Wall-clock throughput of the sharded driver (machine-dependent,
    informational): completed calls/sec of real time and p99 latency on
    the 1000-host capacity workload.  ``calls`` and ``p99_ms`` are
    deterministic; ``wall_seconds``/``calls_per_sec`` scale with the
    host's core count (1 core cannot speed up, by construction)."""
    from repro.sim.sharded import run_sharded

    spec = spec or SHARDED_SPEEDUP_WORKLOAD
    result = run_sharded(_sharded_builder(spec), machines=spec["machines"],
                         shards=shards, seed=spec["seed"],
                         horizon=spec["horizon"],
                         mode=mode if shards > 1 else "inproc")
    calls = result.counters.get("calls_completed", 0)
    wall = result.wall_seconds or 1e-9
    return {
        "calls": calls,
        "wall_seconds": wall,
        "calls_per_sec": calls / wall,
        "p99_ms": result.percentile("latency_ms", 0.99),
        "digest": result.digest,
        "mode": result.mode,
    }


#: the elastic grow-shrink workload: a 4-machine member pool under the
#: §6.4.2 exponential churn, autoscaler keeping the troupe populated.
ELASTIC_WORKLOAD = dict(seed=3, pool=4, duration=12000.0,
                        mttf=8000.0, mttr=1200.0)


def elastic_metrics(spec=None) -> Dict[str, float]:
    """Deterministic grow-shrink counters from the autoscaled
    availability experiment (:mod:`repro.elastic`): completed/failed
    calls, membership churn performed through the §6.4.1 join and
    remove protocols, and the measured troupe-level availability.
    Virtual-time only — identical on every machine."""
    from repro.elastic.scenario import run_elastic

    spec = spec or ELASTIC_WORKLOAD
    payload = run_elastic(**spec)
    membership = payload["membership"]
    return {
        "calls_ok": payload["calls"]["ok"],
        "calls_failed": payload["calls"]["failed"],
        "p99_ms": payload["calls"]["p99_ms"],
        "joins": membership["joins"],
        "removes": membership["removes"],
        "cold_restarts": membership["cold_restarts"],
        "troupe_availability":
            payload["availability"]["measured_troupe"],
        "virtual_end_ms": payload["virtual_end_ms"],
    }
