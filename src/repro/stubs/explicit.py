"""Stubs with explicit replication (§7.4).

"With this explicit replication option, the stub compiler translates a
procedure of the form ``procedure (x) returns (y)`` into generator-passing
procedures": on the client side the procedure returns a *result
generator* yielding each server troupe member's response (Figure 7.6); on
the server side the procedure receives an *argument generator* yielding
each client troupe member's argument (Figure 7.7).

The client can stop iterating as soon as an acceptable response arrives;
the server can collate divergent arguments itself (the temperature
controller averages them).  The collators of Figures 7.8-7.10 are
available over decoded values via :func:`collate`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.core.collators import Collator
from repro.core.runtime import (
    CallContext,
    CallResult,
    ExplicitProcedure,
    ExportedModule,
    TroupeRuntime,
)
from repro.core.troupe import TroupeDescriptor
from repro.rpc.messages import RemoteError
from repro.stubs.idl import InterfaceSpec, ProcedureSpec
from repro.stubs.types import MarshalError


class ResultGenerator:
    """The client-side result generator of Figure 7.6: yields each server
    troupe member's decoded response in arrival order.

        pages = yield from stub.Read(file="f")
        while True:
            page = yield from pages.next()
            if page is None or acceptable(page.value):
                break
        pages.cancel()
    """

    def __init__(self, proc: ProcedureSpec, stream):
        self.proc = proc
        self.stream = stream

    def next(self):
        """Generator: the next DecodedResult, or None when exhausted."""
        result = yield from self.stream.next()
        if result is None:
            return None
        return DecodedResult(self.proc, result)

    def cancel(self) -> None:
        """Early loop exit: discard the remaining responses."""
        self.stream.cancel()


class DecodedResult:
    """One member's response: value, error, or crash notification."""

    def __init__(self, proc: ProcedureSpec, result: CallResult):
        self.member = result.member
        self.status = result.status
        self.error = result.error
        if result.status == "ok":
            results = proc.result_record.internalize(result.data)
            if not proc.results:
                self.value = None
            elif len(proc.results) == 1:
                self.value = results[proc.results[0][0]]
            else:
                self.value = results
        else:
            self.value = None

    def __repr__(self) -> str:
        return "<DecodedResult %s from %s: %r>" % (
            self.status, self.member, self.value)


class ReplicatedClientStub:
    """Client stubs with the explicit replication option (§7.4)."""

    def __init__(self, spec: InterfaceSpec, runtime: TroupeRuntime,
                 binding, module: Optional[int] = None):
        self._spec = spec
        self._runtime = runtime
        self._binding = binding
        self._module = module
        for name, proc in spec.procedures.items():
            setattr(self, name, self._make_method(proc))

    def _descriptor(self) -> TroupeDescriptor:
        if callable(self._binding):
            return self._binding()
        return self._binding

    def _make_method(self, proc: ProcedureSpec):
        def method(**kwargs):
            args = proc.arg_record.externalize(kwargs)
            stream = yield from self._runtime.call_troupe_stream(
                self._descriptor(), self._module, proc.number, args)
            return ResultGenerator(proc, stream)
        method.__name__ = proc.name
        return method


class ArgumentGenerator:
    """The server-side argument generator of Figure 7.7: iterates over
    (caller, decoded arguments) pairs of a many-to-one call."""

    def __init__(self, proc: ProcedureSpec, args_by_peer: Dict):
        self.proc = proc
        self._items = sorted(args_by_peer.items())

    def __iter__(self):
        for peer, raw in self._items:
            yield peer, self.proc.arg_record.internalize(raw)

    def values(self) -> Iterable[Any]:
        """Decoded argument records (drop the callers)."""
        for _peer, decoded in self:
            yield decoded

    def __len__(self) -> int:
        return len(self._items)


def explicit_server_module(spec: InterfaceSpec,
                           implementation: Any) -> ExportedModule:
    """A server module with the explicit replication option: each
    implementation method receives ``(ctx, arguments)`` where arguments
    is an :class:`ArgumentGenerator` (Figure 7.7's collating server)."""
    procedures = {}
    for name, proc in spec.procedures.items():
        impl = getattr(implementation, name, None)
        if impl is None:
            raise TypeError("implementation lacks procedure %r" % name)
        procedures[proc.number] = ExplicitProcedure(
            _make_explicit_handler(proc, impl))
    return ExportedModule(spec.name, procedures)


def _make_explicit_handler(proc: ProcedureSpec, impl):
    def handler(ctx: CallContext, args_by_peer: Dict) -> Any:
        try:
            generator = ArgumentGenerator(proc, args_by_peer)
        except MarshalError as exc:
            raise RemoteError("MarshalError", str(exc))
        result = impl(ctx, generator)
        if hasattr(result, "send"):
            inner = yield from result
            result = inner
        if not proc.results:
            return proc.result_record.externalize({})
        if len(proc.results) == 1 and not isinstance(result, dict):
            result = {proc.results[0][0]: result}
        return proc.result_record.externalize(result)
    handler.__name__ = proc.name
    return handler


# -- the Figure 7.8-7.10 collators over decoded values -------------------

def collate(result_generator: ResultGenerator, collator: Collator,
            expected: int):
    """Generator: drive a ResultGenerator through a value-level collator.

    This is how the transparent collators are programmed *from* the
    explicit machinery, which is the paper's point: Figures 7.8-7.10 are
    ordinary user code once generators exist.
    """
    collator.reset(expected)
    while True:
        result = yield from result_generator.next()
        if result is None:
            break
        if result.status != "ok":
            continue
        done, value = collator.add(result.member, result.value)
        if done and not collator.needs_all:
            result_generator.cancel()
            return value
    return collator.finish()
