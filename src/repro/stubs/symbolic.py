"""Lisp-style symbolic stubs (§7.1.3).

"Stub procedures are effectively unnecessary in pure Lisp, because the
language itself defines a standard external form: the usual parenthesized
representation of list structure.  Externalization and internalization
are trivial, thanks to the standard Lisp functions print and read."

Python's analogue of print/read is ``repr``/``ast.literal_eval``: any
value built from literals (numbers, strings, booleans, None, tuples,
lists, dicts, sets) round-trips exactly.  As in the paper's Lisp system,
"no attempt was made to handle objects not present in pure Lisp, such as
circular or shared list structure" — literal_eval rejects them.

Procedures are identified symbolically (by name) in the message, not by
compiled procedure numbers — the property that let the Lisp system call
services without any generated stubs.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, Optional

from repro.core.collators import Collator
from repro.core.runtime import CallContext, ExportedModule, TroupeRuntime
from repro.core.troupe import TroupeDescriptor
from repro.rpc.messages import RemoteError

#: All symbolic calls use procedure number 0; the procedure *name*
#: travels inside the message, like a Lisp form.
SYMBOLIC_PROC = 0


def vector_print(form: Any) -> bytes:
    """Convert a form to a vector of bytes (the paper's vector-print)."""
    return repr(form).encode("utf-8")


def vector_read(raw: bytes) -> Any:
    """Convert a vector of bytes back to the original form (vector-read).

    The essential property: ``vector_read(vector_print(x)) == x`` for any
    pure-literal form.
    """
    return ast.literal_eval(raw.decode("utf-8"))


class SymbolicClientStub:
    """Call remote procedures by name with literal arguments:

        value = yield from stub.call("lookup", "printer", 3)
    """

    def __init__(self, runtime: TroupeRuntime, binding,
                 collator: Optional[Collator] = None,
                 module: Optional[int] = None):
        self._runtime = runtime
        self._binding = binding
        self._collator = collator
        self._module = module

    def _descriptor(self) -> TroupeDescriptor:
        if callable(self._binding):
            return self._binding()
        return self._binding

    def call(self, procedure_name: str, *args):
        """Generator: a symbolic replicated call."""
        payload = vector_print((procedure_name, list(args)))
        raw = yield from self._runtime.call_troupe(
            self._descriptor(), self._module, SYMBOLIC_PROC, payload,
            collator=self._collator)
        return vector_read(raw)


def symbolic_server_module(name: str,
                           procedures: Dict[str, Callable]) -> ExportedModule:
    """A server module dispatching symbolic calls by procedure name.

    Each procedure receives ``(ctx, *args)`` and returns any pure-literal
    form (or a generator producing one).
    """

    def dispatch(ctx: CallContext, raw: bytes):
        try:
            form = vector_read(raw)
            proc_name, args = form
        except (ValueError, SyntaxError) as exc:
            raise RemoteError("MarshalError", str(exc))
        impl = procedures.get(proc_name)
        if impl is None:
            raise RemoteError("BadProcedure", proc_name)
        result = impl(ctx, *args)
        if hasattr(result, "send"):
            result = yield from result
        return vector_print(result)

    return ExportedModule(name, {SYMBOLIC_PROC: dispatch})
