"""Stub compilers and programming-language integration (Chapter 7).

The purpose of a stub compiler is to translate a module interface into
stub procedures for the client and server halves of a remote interface
(§7.1): externalizing and internalizing data, passing parameters, results,
and exceptions, and talking to the binding agent.

This package provides a Courier-flavoured interface definition language
(the paper's Figure 7.2 parses unchanged apart from keyword case), a
marshaling layer implementing the Courier external representation rules,
and a stub compiler producing:

- conventional transparent stubs (implicit binding, §7.1),
- stubs with *explicit binding* handles (§7.3, Figure 7.5),
- stubs with *explicit replication*: per-member result streams on the
  client and argument generators on the server (§7.4, Figures 7.6-7.11),
- Python source text for the generated stubs (the artifact a stub
  compiler traditionally emits), and
- a "symbolic" Lisp-style stub where values travel in their printed
  representation (§7.1.3).
"""

from repro.stubs.types import (
    ArrayType,
    BooleanType,
    CardinalType,
    ChoiceType,
    EnumerationType,
    IntegerType,
    LongCardinalType,
    LongIntegerType,
    MarshalError,
    RecordType,
    SequenceType,
    StringType,
    UnspecifiedType,
)
from repro.stubs.idl import InterfaceSpec, ParseError, ProcedureSpec, parse_interface
from repro.stubs.compiler import (
    ClientStub,
    CourierError,
    ExplicitBindingStub,
    ServerStub,
    compile_interface,
    generate_source,
)
from repro.stubs.explicit import ReplicatedClientStub, explicit_server_module
from repro.stubs.symbolic import SymbolicClientStub, symbolic_server_module

__all__ = [
    "ArrayType",
    "BooleanType",
    "CardinalType",
    "ChoiceType",
    "ClientStub",
    "CourierError",
    "EnumerationType",
    "ExplicitBindingStub",
    "InterfaceSpec",
    "IntegerType",
    "LongCardinalType",
    "LongIntegerType",
    "MarshalError",
    "ParseError",
    "ProcedureSpec",
    "RecordType",
    "ReplicatedClientStub",
    "SequenceType",
    "ServerStub",
    "StringType",
    "SymbolicClientStub",
    "UnspecifiedType",
    "compile_interface",
    "explicit_server_module",
    "generate_source",
    "parse_interface",
    "symbolic_server_module",
]
