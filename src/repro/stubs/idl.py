"""The interface definition language: a Courier-flavoured IDL (§7.1.1).

The grammar follows the paper's Figure 7.2 example:

    NameServer: PROGRAM 26 VERSION 1 =
    BEGIN
        Name: TYPE = STRING;
        Property: TYPE = RECORD [name: Name, value: SEQUENCE OF UNSPECIFIED];
        Properties: TYPE = SEQUENCE OF Property;
        AlreadyExists: ERROR = 0;
        NotFound: ERROR = 1;
        Register: PROCEDURE [name: Name, properties: Properties]
            REPORTS [AlreadyExists] = 0;
        Lookup: PROCEDURE [name: Name]
            RETURNS [properties: Properties]
            REPORTS [NotFound] = 1;
        Delete: PROCEDURE [name: Name] REPORTS [NotFound] = 2;
    END.

Supported types: BOOLEAN, CARDINAL, LONG CARDINAL, INTEGER, LONG INTEGER,
UNSPECIFIED, STRING, ENUMERATION {a(0), ...}, ARRAY n OF T, SEQUENCE OF T,
RECORD [f: T, ...], CHOICE OF {arm(0) => T, ...}, and names of previously
declared types.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Tuple

from repro.stubs.types import (
    ArrayType,
    BooleanType,
    CardinalType,
    ChoiceType,
    EnumerationType,
    IntegerType,
    LongCardinalType,
    LongIntegerType,
    RecordType,
    SequenceType,
    StringType,
    TypeNode,
    UnspecifiedType,
)


class ParseError(Exception):
    """The interface text is not well-formed."""


@dataclasses.dataclass
class ProcedureSpec:
    name: str
    number: int
    args: List[Tuple[str, TypeNode]]
    results: List[Tuple[str, TypeNode]]
    reports: List[str]

    @property
    def arg_record(self) -> RecordType:
        return RecordType(self.args)

    @property
    def result_record(self) -> RecordType:
        return RecordType(self.results)


@dataclasses.dataclass
class InterfaceSpec:
    name: str
    program_number: int
    version: int
    types: Dict[str, TypeNode]
    errors: Dict[str, int]
    procedures: Dict[str, ProcedureSpec]
    constants: Dict[str, object] = dataclasses.field(default_factory=dict)

    def procedure_by_number(self, number: int) -> Optional[ProcedureSpec]:
        for proc in self.procedures.values():
            if proc.number == number:
                return proc
        return None


_TOKEN_RE = re.compile(r"""
    (?P<comment>--[^\n]*)
  | (?P<string>"[^"]*")
  | (?P<number>\d+)
  | (?P<name>[A-Za-z][A-Za-z0-9_]*)
  | (?P<punct>=>|[:;=\[\],.(){}])
  | (?P<ws>\s+)
  | (?P<bad>.)
""", re.VERBOSE)

_KEYWORDS = {
    "PROGRAM", "VERSION", "BEGIN", "END", "TYPE", "ERROR", "PROCEDURE",
    "RETURNS", "REPORTS", "BOOLEAN", "CARDINAL", "LONG", "INTEGER",
    "STRING", "UNSPECIFIED", "ENUMERATION", "ARRAY", "SEQUENCE", "RECORD",
    "CHOICE", "OF",
}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup
        if kind in ("ws", "comment"):
            continue
        if kind == "bad":
            raise ParseError("unexpected character %r" % match.group())
        tokens.append((kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.types: Dict[str, TypeNode] = {}
        self.errors: Dict[str, int] = {}
        self.procedures: Dict[str, ProcedureSpec] = {}
        self.constants: Dict[str, object] = {}

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Optional[str]:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos][1]
        return None

    def next(self) -> str:
        if self.pos >= len(self.tokens):
            raise ParseError("unexpected end of interface")
        token = self.tokens[self.pos][1]
        self.pos += 1
        return token

    def expect(self, literal: str) -> None:
        token = self.next()
        if token != literal:
            raise ParseError("expected %r, found %r" % (literal, token))

    def expect_number(self) -> int:
        token = self.next()
        if not token.isdigit():
            raise ParseError("expected a number, found %r" % token)
        return int(token)

    def expect_name(self) -> str:
        token = self.next()
        if not re.match(r"[A-Za-z]", token):
            raise ParseError("expected a name, found %r" % token)
        return token

    # -- grammar ---------------------------------------------------------

    def parse(self) -> InterfaceSpec:
        name = self.expect_name()
        self.expect(":")
        self.expect("PROGRAM")
        program = self.expect_number()
        self.expect("VERSION")
        version = self.expect_number()
        self.expect("=")
        self.expect("BEGIN")
        while self.peek() != "END":
            self._declaration()
        self.expect("END")
        self.expect(".")
        return InterfaceSpec(name, program, version, self.types,
                             self.errors, self.procedures, self.constants)

    def _declaration(self) -> None:
        name = self.expect_name()
        self.expect(":")
        kind = self.peek()
        if kind == "TYPE":
            self.next()
            self.expect("=")
            self.types[name] = self._type()
            self.expect(";")
        elif kind == "ERROR":
            self.next()
            self.expect("=")
            self.errors[name] = self.expect_number()
            self.expect(";")
        elif kind == "PROCEDURE":
            self.next()
            self.procedures[name] = self._procedure(name)
        else:
            # A constant declaration: Name: <type> = <literal>;
            const_type = self._type()
            self.expect("=")
            self.constants[name] = self._constant_literal(const_type)
            self.expect(";")

    def _constant_literal(self, const_type: TypeNode):
        token = self.next()
        if token.isdigit():
            value = int(token)
        elif token == "TRUE":
            value = True
        elif token == "FALSE":
            value = False
        elif token.startswith('"'):
            value = token[1:-1]
        else:
            # Enumeration member names and the like.
            value = token
        try:
            const_type.check(value)
        except Exception as exc:
            raise ParseError("constant does not fit its type: %s" % exc)
        return value

    def _procedure(self, name: str) -> ProcedureSpec:
        args = self._field_list() if self.peek() == "[" else []
        results: List[Tuple[str, TypeNode]] = []
        reports: List[str] = []
        while self.peek() in ("RETURNS", "REPORTS"):
            keyword = self.next()
            if keyword == "RETURNS":
                results = self._field_list()
            else:
                reports = self._name_list()
        self.expect("=")
        number = self.expect_number()
        self.expect(";")
        for report in reports:
            if report not in self.errors:
                raise ParseError("undeclared error %r in REPORTS of %s"
                                 % (report, name))
        return ProcedureSpec(name, number, args, results, reports)

    def _field_list(self) -> List[Tuple[str, TypeNode]]:
        self.expect("[")
        fields: List[Tuple[str, TypeNode]] = []
        if self.peek() != "]":
            while True:
                field = self.expect_name()
                self.expect(":")
                fields.append((field, self._type()))
                if self.peek() != ",":
                    break
                self.next()
        self.expect("]")
        return fields

    def _name_list(self) -> List[str]:
        self.expect("[")
        names = []
        if self.peek() != "]":
            while True:
                names.append(self.expect_name())
                if self.peek() != ",":
                    break
                self.next()
        self.expect("]")
        return names

    def _type(self) -> TypeNode:
        token = self.next()
        if token == "BOOLEAN":
            return BooleanType()
        if token == "STRING":
            return StringType()
        if token == "UNSPECIFIED":
            return UnspecifiedType()
        if token == "CARDINAL":
            return CardinalType()
        if token == "INTEGER":
            return IntegerType()
        if token == "LONG":
            sub = self.next()
            if sub == "CARDINAL":
                return LongCardinalType()
            if sub == "INTEGER":
                return LongIntegerType()
            raise ParseError("LONG must be followed by CARDINAL or INTEGER")
        if token == "ENUMERATION":
            return self._enumeration()
        if token == "ARRAY":
            length = self.expect_number()
            self.expect("OF")
            return ArrayType(length, self._type())
        if token == "SEQUENCE":
            self.expect("OF")
            return SequenceType(self._type())
        if token == "RECORD":
            return RecordType(self._field_list())
        if token == "CHOICE":
            self.expect("OF")
            return self._choice()
        if token in _KEYWORDS:
            raise ParseError("unexpected keyword %r in type" % token)
        # A reference to a previously declared type.
        if token in self.types:
            return self.types[token]
        raise ParseError("unknown type name %r" % token)

    def _enumeration(self) -> EnumerationType:
        self.expect("{")
        members: Dict[str, int] = {}
        while True:
            member = self.expect_name()
            self.expect("(")
            members[member] = self.expect_number()
            self.expect(")")
            if self.peek() != ",":
                break
            self.next()
        self.expect("}")
        return EnumerationType(members)

    def _choice(self) -> ChoiceType:
        self.expect("{")
        arms: List[Tuple[str, int, TypeNode]] = []
        while True:
            arm = self.expect_name()
            self.expect("(")
            tag = self.expect_number()
            self.expect(")")
            self.expect("=>")
            arms.append((arm, tag, self._type()))
            if self.peek() != ",":
                break
            self.next()
        self.expect("}")
        return ChoiceType(arms)


def parse_interface(text: str) -> InterfaceSpec:
    """Parse an interface definition into an :class:`InterfaceSpec`."""
    return _Parser(text).parse()
