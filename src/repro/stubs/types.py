"""The IDL type system and external representation (§7.1.1).

"The Courier protocol specifies how objects of each type are represented
when transmitted in call and return messages.  Most of the work of the
stub routines consists of translating parameters and results between
their external and internal representations."

Following Courier, everything is built from 16-bit words, most significant
byte first:

- BOOLEAN            one word, 0 or 1
- CARDINAL           one word, unsigned
- LONG CARDINAL      two words, unsigned
- INTEGER            one word, two's complement
- LONG INTEGER       two words, two's complement
- UNSPECIFIED        one word, uninterpreted
- STRING             length word + UTF-8 bytes, padded to a word boundary
- ENUMERATION        one word, the declared value
- ARRAY n OF T       n elements, no count
- SEQUENCE OF T      length word + elements
- RECORD [f: T,...]  fields in declaration order
- CHOICE             designator word + the chosen arm

Python mappings: booleans, ints, strings, lists (arrays and sequences),
dicts (records), enumerations as their member name (a string), and
choices as a ``(arm_name, value)`` tuple.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, Sequence, Tuple

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I16 = struct.Struct("!h")
_I32 = struct.Struct("!i")


class MarshalError(Exception):
    """A value does not conform to its declared IDL type."""


class TypeNode:
    """Base class: every IDL type can externalize and internalize."""

    def encode(self, value: Any, out: bytearray) -> None:
        raise NotImplementedError

    def decode(self, data: bytes, offset: int) -> Tuple[Any, int]:
        raise NotImplementedError

    def check(self, value: Any) -> None:
        """Validate without encoding (used in error messages)."""
        self.encode(value, bytearray())

    def externalize(self, value: Any) -> bytes:
        out = bytearray()
        self.encode(value, out)
        return bytes(out)

    def internalize(self, data: bytes) -> Any:
        value, offset = self.decode(data, 0)
        if offset != len(data):
            raise MarshalError("trailing bytes after %r" % self)
        return value


class BooleanType(TypeNode):
    def encode(self, value, out):
        if not isinstance(value, bool):
            raise MarshalError("BOOLEAN expects bool, got %r" % (value,))
        out += _U16.pack(1 if value else 0)

    def decode(self, data, offset):
        (word,) = _U16.unpack_from(data, offset)
        if word not in (0, 1):
            raise MarshalError("bad BOOLEAN word: %d" % word)
        return bool(word), offset + 2

    def __repr__(self):
        return "BOOLEAN"


class _IntType(TypeNode):
    packer = _U16
    name = "CARDINAL"
    lo, hi = 0, 0xFFFF

    def encode(self, value, out):
        if not isinstance(value, int) or isinstance(value, bool):
            raise MarshalError("%s expects int, got %r" % (self.name, value))
        if not self.lo <= value <= self.hi:
            raise MarshalError("%s out of range: %d" % (self.name, value))
        out += self.packer.pack(value)

    def decode(self, data, offset):
        (value,) = self.packer.unpack_from(data, offset)
        return value, offset + self.packer.size

    def __repr__(self):
        return self.name


class CardinalType(_IntType):
    pass


class LongCardinalType(_IntType):
    packer = _U32
    name = "LONG CARDINAL"
    lo, hi = 0, 0xFFFFFFFF


class IntegerType(_IntType):
    packer = _I16
    name = "INTEGER"
    lo, hi = -0x8000, 0x7FFF


class LongIntegerType(_IntType):
    packer = _I32
    name = "LONG INTEGER"
    lo, hi = -0x80000000, 0x7FFFFFFF


class UnspecifiedType(_IntType):
    name = "UNSPECIFIED"


class StringType(TypeNode):
    def encode(self, value, out):
        if not isinstance(value, str):
            raise MarshalError("STRING expects str, got %r" % (value,))
        raw = value.encode("utf-8")
        if len(raw) > 0xFFFF:
            raise MarshalError("STRING too long: %d bytes" % len(raw))
        out += _U16.pack(len(raw))
        out += raw
        if len(raw) % 2:
            out += b"\x00"  # pad to a word boundary, as Courier does

    def decode(self, data, offset):
        (length,) = _U16.unpack_from(data, offset)
        offset += 2
        raw = data[offset:offset + length]
        if len(raw) != length:
            raise MarshalError("truncated STRING")
        offset += length + (length % 2)
        return raw.decode("utf-8"), offset

    def __repr__(self):
        return "STRING"


class EnumerationType(TypeNode):
    """ENUMERATION {name(value), ...}: encoded as the declared word."""

    def __init__(self, members: Dict[str, int]):
        if not members:
            raise ValueError("empty enumeration")
        self.members = dict(members)
        self.by_value = {v: k for k, v in members.items()}
        if len(self.by_value) != len(self.members):
            raise ValueError("duplicate enumeration values")

    def encode(self, value, out):
        if value not in self.members:
            raise MarshalError("not an enumeration member: %r" % (value,))
        out += _U16.pack(self.members[value])

    def decode(self, data, offset):
        (word,) = _U16.unpack_from(data, offset)
        if word not in self.by_value:
            raise MarshalError("bad enumeration value: %d" % word)
        return self.by_value[word], offset + 2

    def __repr__(self):
        return "ENUMERATION {%s}" % ", ".join(
            "%s(%d)" % kv for kv in sorted(self.members.items(),
                                           key=lambda kv: kv[1]))


class ArrayType(TypeNode):
    """ARRAY n OF T: fixed length, no count on the wire."""

    def __init__(self, length: int, element: TypeNode):
        if length < 0:
            raise ValueError("negative array length")
        self.length = length
        self.element = element

    def encode(self, value, out):
        if not isinstance(value, (list, tuple)) or len(value) != self.length:
            raise MarshalError("ARRAY %d expects %d elements, got %r" % (
                self.length, self.length, value))
        for item in value:
            self.element.encode(item, out)

    def decode(self, data, offset):
        items = []
        for _ in range(self.length):
            item, offset = self.element.decode(data, offset)
            items.append(item)
        return items, offset

    def __repr__(self):
        return "ARRAY %d OF %r" % (self.length, self.element)


class SequenceType(TypeNode):
    """SEQUENCE OF T: length word + elements."""

    def __init__(self, element: TypeNode):
        self.element = element

    def encode(self, value, out):
        if not isinstance(value, (list, tuple)):
            raise MarshalError("SEQUENCE expects list, got %r" % (value,))
        if len(value) > 0xFFFF:
            raise MarshalError("SEQUENCE too long")
        out += _U16.pack(len(value))
        for item in value:
            self.element.encode(item, out)

    def decode(self, data, offset):
        (count,) = _U16.unpack_from(data, offset)
        offset += 2
        items = []
        for _ in range(count):
            item, offset = self.element.decode(data, offset)
            items.append(item)
        return items, offset

    def __repr__(self):
        return "SEQUENCE OF %r" % (self.element,)


class RecordType(TypeNode):
    """RECORD [field: T, ...]: fields in declaration order."""

    def __init__(self, fields: Sequence[Tuple[str, TypeNode]]):
        self.fields = list(fields)

    def encode(self, value, out):
        if not isinstance(value, dict):
            raise MarshalError("RECORD expects dict, got %r" % (value,))
        extra = set(value) - {name for name, _ in self.fields}
        if extra:
            raise MarshalError("unknown record fields: %s" % sorted(extra))
        for name, field_type in self.fields:
            if name not in value:
                raise MarshalError("missing record field: %s" % name)
            field_type.encode(value[name], out)

    def decode(self, data, offset):
        record = {}
        for name, field_type in self.fields:
            record[name], offset = field_type.decode(data, offset)
        return record, offset

    def __repr__(self):
        return "RECORD [%s]" % ", ".join(
            "%s: %r" % (name, t) for name, t in self.fields)


class ChoiceType(TypeNode):
    """CHOICE OF {arm(designator) => T, ...}: a discriminated union,
    represented in Python as an (arm_name, value) pair."""

    def __init__(self, arms: Sequence[Tuple[str, int, TypeNode]]):
        self.arms = list(arms)
        self.by_name = {name: (tag, t) for name, tag, t in arms}
        self.by_tag = {tag: (name, t) for name, tag, t in arms}
        if len(self.by_name) != len(self.arms) or \
                len(self.by_tag) != len(self.arms):
            raise ValueError("duplicate choice arms")

    def encode(self, value, out):
        if (not isinstance(value, tuple) or len(value) != 2
                or value[0] not in self.by_name):
            raise MarshalError("CHOICE expects (arm, value), got %r"
                               % (value,))
        arm, payload = value
        tag, arm_type = self.by_name[arm]
        out += _U16.pack(tag)
        arm_type.encode(payload, out)

    def decode(self, data, offset):
        (tag,) = _U16.unpack_from(data, offset)
        offset += 2
        if tag not in self.by_tag:
            raise MarshalError("bad CHOICE designator: %d" % tag)
        name, arm_type = self.by_tag[tag]
        payload, offset = arm_type.decode(data, offset)
        return (name, payload), offset

    def __repr__(self):
        return "CHOICE OF {%s}" % ", ".join(
            "%s(%d) => %r" % (name, tag, t) for name, tag, t in self.arms)


class VoidType(TypeNode):
    """The empty argument/result list."""

    def encode(self, value, out):
        if value not in (None, {}):
            raise MarshalError("VOID expects None")

    def decode(self, data, offset):
        return None, offset

    def __repr__(self):
        return "VOID"
