"""The stub compiler: interfaces to client and server stubs (§7.1).

Given an :class:`~repro.stubs.idl.InterfaceSpec`, the compiler produces:

- :class:`ClientStub` — transparent (implicitly bound) client stubs: each
  interface procedure becomes a method; arguments are externalized, the
  replicated call is made through the run-time system, and results are
  internalized.  Declared errors come back as typed
  :class:`CourierError` exceptions.
- :class:`ServerStub` — the server skeleton: an
  :class:`~repro.core.runtime.ExportedModule` that internalizes
  arguments, invokes the implementation object, and externalizes results
  and errors.
- :class:`ExplicitBindingStub` — the §7.3 variant: procedures take an
  explicit binding handle (a troupe descriptor) as their first argument,
  so a client can talk to several instances of the same interface
  (Figure 7.5's third-party file transfer).
- :func:`generate_source` — the textual artifact: a Python module
  defining the same stubs, for inspection or checked-in generated code.

Calls are generators (``yield from stub.Lookup(name="x")``), because the
underlying replicated call suspends the calling thread.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.collators import Collator
from repro.core.runtime import ExportedModule, TroupeRuntime
from repro.core.troupe import TroupeDescriptor
from repro.rpc.messages import RemoteError
from repro.stubs.idl import InterfaceSpec, ProcedureSpec
from repro.stubs.types import MarshalError


class CourierError(Exception):
    """An error declared in the interface and reported by the server."""

    def __init__(self, name: str, code: int, detail: str = ""):
        super().__init__("%s(%d)%s" % (name, code,
                                       ": " + detail if detail else ""))
        self.name = name
        self.code = code
        self.detail = detail


def _unmarshal_results(proc: ProcedureSpec, raw: bytes) -> Any:
    results = proc.result_record.internalize(raw)
    if not proc.results:
        return None
    if len(proc.results) == 1:
        return results[proc.results[0][0]]
    return results


class _BoundMethod:
    """One procedure of a client stub."""

    def __init__(self, stub: "ClientStub", proc: ProcedureSpec):
        self.stub = stub
        self.proc = proc

    def __call__(self, **kwargs):
        return self.stub._call(self.proc, kwargs)


class ClientStub:
    """Transparent client stubs with implicit binding (§7.1).

    ``binding`` may be a troupe descriptor, or a zero-argument callable
    returning one (so a BindingClient cache lookup can supply it).
    Procedures appear as attributes:

        result = yield from stub.Lookup(name="printer")
    """

    def __init__(self, spec: InterfaceSpec, runtime: TroupeRuntime,
                 binding, collator: Optional[Collator] = None,
                 module: Optional[int] = None):
        self._spec = spec
        self._runtime = runtime
        self._binding = binding
        self._collator = collator
        self._module = module
        for name, proc in spec.procedures.items():
            setattr(self, name, _BoundMethod(self, proc))

    def _descriptor(self) -> TroupeDescriptor:
        if callable(self._binding):
            return self._binding()
        return self._binding

    def _call(self, proc: ProcedureSpec, kwargs: Dict[str, Any]):
        args = proc.arg_record.externalize(kwargs)
        # The collator is reset by the runtime at the start of each call,
        # and calls from one (single-threaded) stub never overlap, so the
        # instance can be reused.
        try:
            raw = yield from self._runtime.call_troupe(
                self._descriptor(), self._module, proc.number, args,
                collator=self._collator)
        except RemoteError as exc:
            raise _to_courier_error(self._spec, proc, exc)
        return _unmarshal_results(proc, raw)


def _to_courier_error(spec: InterfaceSpec, proc: ProcedureSpec,
                      exc: RemoteError) -> Exception:
    if exc.kind in spec.errors and exc.kind in proc.reports:
        return CourierError(exc.kind, spec.errors[exc.kind], exc.detail)
    return exc


class ExplicitBindingStub:
    """The §7.3 variant: every procedure takes the binding handle first.

        binding1 = yield from binding_client.import_troupe("fs-a")
        page = yield from stub.Read(binding1, file="f")
    """

    def __init__(self, spec: InterfaceSpec, runtime: TroupeRuntime,
                 collator: Optional[Collator] = None,
                 module: Optional[int] = None):
        self._spec = spec
        self._runtime = runtime
        self._collator = collator
        self._module = module
        for name, proc in spec.procedures.items():
            setattr(self, name, self._make_method(proc))

    def _make_method(self, proc: ProcedureSpec):
        def method(binding: TroupeDescriptor, **kwargs):
            args = proc.arg_record.externalize(kwargs)
            try:
                raw = yield from self._runtime.call_troupe(
                    binding, self._module, proc.number, args,
                    collator=self._collator)
            except RemoteError as exc:
                raise _to_courier_error(self._spec, proc, exc)
            return _unmarshal_results(proc, raw)
        method.__name__ = proc.name
        return method


class ServerStub:
    """The server skeleton: dispatches calls into an implementation object.

    The implementation provides one method per interface procedure,
    receiving ``(ctx, **args)`` and returning a dict of results (or the
    bare value when the procedure declares exactly one result, or None
    for no results).  Declared errors are raised as
    ``CourierError(name, code)`` — anything else becomes InternalError.
    Methods may be generators (to make nested calls or block on locks).
    """

    def __init__(self, spec: InterfaceSpec, implementation: Any):
        self.spec = spec
        self.implementation = implementation
        procedures = {}
        for name, proc in spec.procedures.items():
            handler = getattr(implementation, name, None)
            if handler is None:
                raise TypeError("implementation lacks procedure %r" % name)
            procedures[proc.number] = self._make_handler(proc, handler)
        self.module = ExportedModule(spec.name, procedures)

    def _make_handler(self, proc: ProcedureSpec, impl):
        spec = self.spec

        def handler(ctx, raw_args: bytes):
            try:
                kwargs = proc.arg_record.internalize(raw_args)
            except MarshalError as exc:
                raise RemoteError("MarshalError", str(exc))
            try:
                result = impl(ctx, **kwargs)
                if hasattr(result, "send"):
                    result = yield from result
            except CourierError as exc:
                if exc.name not in proc.reports:
                    raise RemoteError("InternalError",
                                      "undeclared error %s" % exc.name)
                raise RemoteError(exc.name, exc.detail)
            return _externalize_result(proc, result)

        handler.__name__ = proc.name
        return handler


def _externalize_result(proc: ProcedureSpec, result: Any) -> bytes:
    if not proc.results:
        if result is not None:
            raise RemoteError("InternalError",
                              "%s returns no results" % proc.name)
        return proc.result_record.externalize({})
    if len(proc.results) == 1 and not isinstance(result, dict):
        result = {proc.results[0][0]: result}
    try:
        return proc.result_record.externalize(result)
    except MarshalError as exc:
        raise RemoteError("InternalError", "bad results: %s" % exc)


def compile_interface(spec: InterfaceSpec, implementation: Any) -> ExportedModule:
    """Convenience: an ExportedModule serving ``implementation``."""
    return ServerStub(spec, implementation).module


def generate_source(spec: InterfaceSpec) -> str:
    """Emit Python source text for the stubs of an interface.

    The generated module defines ``make_client_stub(runtime, binding)``
    and ``make_server_module(implementation)`` in terms of this package —
    the traditional checked-in artifact of a stub compiler.
    """
    lines = [
        '"""Generated by the repro stub compiler — do not edit.',
        "",
        "Interface %s: PROGRAM %d VERSION %d" % (
            spec.name, spec.program_number, spec.version),
        '"""',
        "",
        "from repro.stubs.compiler import ClientStub, ServerStub",
        "from repro.stubs.idl import parse_interface",
        "",
        "INTERFACE_TEXT = '''\\",
        _render_interface(spec),
        "'''",
        "",
        "SPEC = parse_interface(INTERFACE_TEXT)",
        "",
        "",
        "def make_client_stub(runtime, binding, collator=None):",
        '    """Client stubs for %s; procedures: %s."""' % (
            spec.name, ", ".join(sorted(spec.procedures))),
        "    return ClientStub(SPEC, runtime, binding, collator=collator)",
        "",
        "",
        "def make_server_module(implementation):",
        '    """Server skeleton for %s."""' % spec.name,
        "    return ServerStub(SPEC, implementation).module",
        "",
    ]
    return "\n".join(lines)


def _render_interface(spec: InterfaceSpec) -> str:
    """Re-render a spec as IDL text (used to embed it in generated code).

    Type declarations are inlined into procedures during parsing, so the
    rendering declares procedures with structural types.
    """
    out = ["%s: PROGRAM %d VERSION %d =" % (
        spec.name, spec.program_number, spec.version), "BEGIN"]
    for name, code in sorted(spec.errors.items(), key=lambda kv: kv[1]):
        out.append("    %s: ERROR = %d;" % (name, code))
    for name, proc in sorted(spec.procedures.items(),
                             key=lambda kv: kv[1].number):
        parts = ["    %s: PROCEDURE" % name]
        if proc.args:
            parts.append(" [%s]" % ", ".join(
                "%s: %s" % (f, _render_type(t)) for f, t in proc.args))
        if proc.results:
            parts.append(" RETURNS [%s]" % ", ".join(
                "%s: %s" % (f, _render_type(t)) for f, t in proc.results))
        if proc.reports:
            parts.append(" REPORTS [%s]" % ", ".join(proc.reports))
        parts.append(" = %d;" % proc.number)
        out.append("".join(parts))
    out.append("END.")
    return "\n".join(out)


def _render_type(node) -> str:
    from repro.stubs import types as t
    if isinstance(node, t.BooleanType):
        return "BOOLEAN"
    if isinstance(node, t.StringType):
        return "STRING"
    if isinstance(node, t.LongCardinalType):
        return "LONG CARDINAL"
    if isinstance(node, t.LongIntegerType):
        return "LONG INTEGER"
    if isinstance(node, t.IntegerType):
        return "INTEGER"
    if isinstance(node, t.UnspecifiedType):
        return "UNSPECIFIED"
    if isinstance(node, t.CardinalType):
        return "CARDINAL"
    if isinstance(node, t.EnumerationType):
        return "ENUMERATION {%s}" % ", ".join(
            "%s(%d)" % kv for kv in sorted(node.members.items(),
                                           key=lambda kv: kv[1]))
    if isinstance(node, t.ArrayType):
        return "ARRAY %d OF %s" % (node.length, _render_type(node.element))
    if isinstance(node, t.SequenceType):
        return "SEQUENCE OF %s" % _render_type(node.element)
    if isinstance(node, t.RecordType):
        return "RECORD [%s]" % ", ".join(
            "%s: %s" % (f, _render_type(ft)) for f, ft in node.fields)
    if isinstance(node, t.ChoiceType):
        return "CHOICE OF {%s}" % ", ".join(
            "%s(%d) => %s" % (name, tag, _render_type(arm))
            for name, tag, arm in node.arms)
    raise TypeError("cannot render %r" % (node,))
