"""Collators: reducing a set of messages to a single result (§4.3.6).

A collator is a function that maps a set of messages into a single result.
To improve performance, computation should proceed as soon as enough
messages have arrived for the collator to make a decision (the lazy
evaluation of §4.3.6 / the generators of §7.4).

The three protocol-level collators view message contents as uninterpreted
bits:

- *unanimous* — requires all messages identical; raises otherwise
  (transparent error correction plus error detection, §4.3.4);
- *majority* — majority voting on the messages;
- *first-come* — accepts the first message that arrives.

Programmers define application-specific collators by subclassing
:class:`Collator` or by wrapping a plain function over the complete set
(:class:`FunctionCollator`); §7.4's generator-based scheme is provided by
the explicit-replication stubs in :mod:`repro.stubs.explicit`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, List, Optional, Tuple


class CollationError(Exception):
    """The collator could not produce a result (disagreement, no majority,
    or the set of responses was exhausted before a decision)."""


class Collator:
    """Incremental collation: feed values as they arrive, stop early.

    ``add(source, value)`` returns ``(decided, result)``; once ``decided``
    is True the caller may stop waiting for further messages.  ``finish()``
    is called when no more values will arrive (all received or senders
    crashed) and must either return the result or raise
    :class:`CollationError`.

    ``expected`` is the number of senders; collators that need it (e.g.
    majority) receive it at reset time.
    """

    #: True if the collator can never decide before all values arrive.
    needs_all = False

    def __init__(self):
        self.values: List[Tuple[Any, Any]] = []
        self.expected = 0

    def reset(self, expected: int) -> None:
        self.values = []
        self.expected = expected

    def add(self, source: Any, value: Any) -> Tuple[bool, Optional[Any]]:
        raise NotImplementedError

    def finish(self) -> Any:
        raise NotImplementedError


class UnanimousCollator(Collator):
    """All messages must be identical; disagreement is an error (§4.3.4's
    default: error detection as well as transparent error correction)."""

    needs_all = True

    def add(self, source, value):
        if self.values and value != self.values[0][1]:
            raise CollationError(
                "disagreement between replicas: %r from %r vs %r from %r" % (
                    self.values[0][1], self.values[0][0], value, source))
        self.values.append((source, value))
        return (False, None)  # must hear from everyone

    def finish(self):
        if not self.values:
            raise CollationError("no responses to collate")
        return self.values[0][1]


class FirstComeCollator(Collator):
    """Accept the first message that arrives; forfeits error detection but
    runs at the speed of the fastest troupe member (§4.3.4)."""

    def add(self, source, value):
        self.values.append((source, value))
        return (True, value)

    def finish(self):
        if not self.values:
            raise CollationError("no responses to collate")
        return self.values[0][1]


class MajorityCollator(Collator):
    """Majority voting: decide as soon as one value has more than half of
    the expected votes; fail if the full set has no majority."""

    def add(self, source, value):
        self.values.append((source, value))
        counts = Counter(v for _, v in self.values)
        value_, count = counts.most_common(1)[0]
        if count * 2 > self.expected:
            return (True, value_)
        return (False, None)

    def finish(self):
        if not self.values:
            raise CollationError("no responses to collate")
        counts = Counter(v for _, v in self.values)
        value, count = counts.most_common(1)[0]
        # A majority of those who responded is not enough: the paper's
        # majority collator raises "no majority" unless count > n/2.
        if count * 2 > self.expected:
            return value
        raise CollationError(
            "no majority among %d expected responses" % self.expected)


class QuorumCollator(Collator):
    """Decide once ``quorum`` identical values have arrived — the building
    block for weighted-voting style schemes (§4.3.6 cites Gifford)."""

    def __init__(self, quorum: int):
        super().__init__()
        if quorum < 1:
            raise ValueError("quorum must be at least 1")
        self.quorum = quorum

    def add(self, source, value):
        self.values.append((source, value))
        counts = Counter(v for _, v in self.values)
        value_, count = counts.most_common(1)[0]
        if count >= self.quorum:
            return (True, value_)
        return (False, None)

    def finish(self):
        counts = Counter(v for _, v in self.values)
        if counts:
            value, count = counts.most_common(1)[0]
            if count >= self.quorum:
                return value
        raise CollationError(
            "quorum of %d not reached (%d responses)" % (
                self.quorum, len(self.values)))


class WeightedVotingCollator(Collator):
    """Gifford-style weighted voting (§4.3.6: "the framework of replicated
    calls and collators is sufficiently general to express weighted
    voting").

    Each source carries a weight; a value wins as soon as the weights of
    its supporters reach the quorum.  Sources absent from ``weights`` get
    ``default_weight``.
    """

    def __init__(self, quorum: int, weights=None, default_weight: int = 1):
        super().__init__()
        if quorum < 1:
            raise ValueError("quorum must be at least 1")
        self.quorum = quorum
        self.weights = dict(weights or {})
        self.default_weight = default_weight

    def _tally(self):
        tally = {}
        for source, value in self.values:
            weight = self.weights.get(source, self.default_weight)
            tally[value] = tally.get(value, 0) + weight
        return tally

    def add(self, source, value):
        self.values.append((source, value))
        tally = self._tally()
        winner = max(tally, key=lambda v: tally[v])
        if tally[winner] >= self.quorum:
            return (True, winner)
        return (False, None)

    def finish(self):
        tally = self._tally()
        if tally:
            winner = max(tally, key=lambda v: tally[v])
            if tally[winner] >= self.quorum:
                return winner
        raise CollationError(
            "weighted quorum of %d not reached (votes: %r)"
            % (self.quorum, sorted(tally.values(), reverse=True)))


class FunctionCollator(Collator):
    """Wrap an application-specific function over the complete value set.

    The function receives the list of (source, value) pairs.  It cannot
    decide early — use a custom :class:`Collator` subclass for laziness.
    """

    needs_all = True

    def __init__(self, fn: Callable[[List[Tuple[Any, Any]]], Any]):
        super().__init__()
        self.fn = fn

    def add(self, source, value):
        self.values.append((source, value))
        return (False, None)

    def finish(self):
        if not self.values:
            raise CollationError("no responses to collate")
        return self.fn(self.values)


# -- collator factories (the spellable names used in call options) ---------

def unanimous() -> Collator:
    return UnanimousCollator()


def first_come() -> Collator:
    return FirstComeCollator()


def majority() -> Collator:
    return MajorityCollator()
