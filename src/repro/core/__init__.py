"""Troupes and replicated procedure call — the paper's primary contribution.

A *troupe* is a set of replicas of a module executing on machines with
independent failure modes (§3.5.1).  Members never communicate among
themselves and are unaware of one another's existence; a thread moves
between troupes by *replicated procedure call*, whose semantics are
exactly-once execution at all replicas (§4.1).

- :mod:`repro.core.troupe` — troupe descriptors and IDs
- :mod:`repro.core.collators` — unanimous / first-come / majority and
  user-defined collation of message sets (§4.3.6)
- :mod:`repro.core.runtime` — the Circus run-time system: the one-to-many
  and many-to-one call algorithms (§4.3.1–§4.3.3), wait policies
  (§4.3.4), crash handling, and the server loop
"""

from repro.core.troupe import TroupeDescriptor, TroupeId, new_troupe_id
from repro.core.collators import (
    CollationError,
    Collator,
    FirstComeCollator,
    MajorityCollator,
    QuorumCollator,
    UnanimousCollator,
    WeightedVotingCollator,
    first_come,
    majority,
    unanimous,
)
from repro.core.runtime import (
    CallResult,
    CallerCrashed,
    ExplicitProcedure,
    ExportedModule,
    ReplicatedCallError,
    StaleBindingError,
    TroupeFailure,
    TroupeRuntime,
    RuntimeConfig,
)

__all__ = [
    "CallResult",
    "CallerCrashed",
    "CollationError",
    "ExplicitProcedure",
    "Collator",
    "ExportedModule",
    "FirstComeCollator",
    "MajorityCollator",
    "QuorumCollator",
    "ReplicatedCallError",
    "RuntimeConfig",
    "StaleBindingError",
    "TroupeDescriptor",
    "TroupeFailure",
    "TroupeId",
    "TroupeRuntime",
    "UnanimousCollator",
    "WeightedVotingCollator",
    "first_come",
    "majority",
    "new_troupe_id",
    "unanimous",
]
