"""The Circus run-time system: replicated procedure call (§4.3).

A many-to-many call from an m-member client troupe to an n-member server
troupe factors into two sub-algorithms that this runtime implements:

*One-to-many* (client half, §4.3.1): send the same call message — with the
same call number — to every server troupe member, then collect the return
messages, feeding them to a :class:`~repro.core.collators.Collator`.  With
the default unanimous collator the client waits for every available member
and checks the responses for agreement; first-come and majority collators
let computation proceed early (§4.3.4).  Crashed members are detected by
the paired message layer's probing and excluded.

*Many-to-one* (server half, §4.3.2): call messages bearing the same thread
ID and call sequence number belong to the same replicated call.  The
client troupe ID in the call header is mapped to the set of client troupe
members (via the resolver — "consulting a local cache or contacting the
binding agent"), which tells the server how many call messages to expect.
The procedure executes exactly once, and a return message goes to every
member of the client troupe.

The runtime also enforces the §6.2 incarnation rule: every call carries
the destination troupe ID, and a member rejects calls bearing a stale one,
which is how clients discover that their cached binding is out of date.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.collators import (
    CollationError,
    Collator,
    UnanimousCollator,
)
from repro.core.troupe import NO_TROUPE, TroupeDescriptor, TroupeId
from repro.host.process import OsProcess
from repro.net.addresses import ModuleAddress, ProcessAddress
from repro.obs import events as obs_events
from repro.pairedmsg.endpoint import (
    PairedEndpoint,
    PairedMessageConfig,
    PeerCrashed,
)
from repro.pairedmsg.segments import MSG_CALL, MSG_RETURN
from repro.rpc.messages import (
    CallHeader,
    RemoteError,
    decode_call,
    decode_return,
    encode_call,
    encode_error,
    encode_return,
    raise_if_error,
)
from repro.rpc.threads import ThreadContext, ThreadId
from repro.sim.events import Queue
from repro.sim.kernel import AnyOf

STALE_BINDING_ERROR = "StaleBinding"
BAD_MODULE_ERROR = "BadModule"
BAD_PROCEDURE_ERROR = "BadProcedure"
INTERNAL_ERROR = "InternalError"

#: Reserved module number for the runtime's control interface; its
#: procedure 0 is the automatically generated set_troupe_id of §6.2.
CONTROL_MODULE = 0xFFFF
SET_TROUPE_ID_PROC = 0


class ReplicatedCallError(Exception):
    """Base class for replicated-call failures."""


class TroupeFailure(ReplicatedCallError):
    """Every member of the server troupe crashed: a total failure (§3.5.1)."""

    def __init__(self, troupe_name: str):
        super().__init__("total failure of troupe %r" % troupe_name)
        self.troupe_name = troupe_name


class StaleBindingError(ReplicatedCallError):
    """The server rejected our destination troupe ID: our cached binding is
    out of date and we must rebind (§6.1/§6.2)."""

    def __init__(self, troupe_name: str):
        super().__init__("stale binding for troupe %r" % troupe_name)
        self.troupe_name = troupe_name


class CallerCrashed(ReplicatedCallError):
    """The *calling* process's host fail-stopped mid-call.

    The reply waiters died with their parent process, so the call's
    outcome is unknowable to whoever was driving the call generator from
    another machine (protocol helpers such as §6.4.1 ``join_troupe`` run
    one runtime's call loop from a coordinator elsewhere)."""

    def __init__(self, troupe_name: str):
        super().__init__(
            "caller crashed during replicated call to %r" % troupe_name)
        self.troupe_name = troupe_name


@dataclasses.dataclass
class RuntimeConfig:
    """Tunables for the replicated call algorithms."""

    #: 'serial' executes incoming calls one at a time by arrival order
    #: (what Circus did, §4.3.7); 'parallel' gives each call its own
    #: thread (the invocation semantics Nelson argues for).
    execution: str = "serial"
    #: use hardware multicast for one-to-many sends (§4.3.3).
    use_multicast: bool = False
    #: 'all' waits for the call messages of every expected client troupe
    #: member; 'first' executes on the first and broadcasts the return
    #: (the client-side-buffering variant of §4.3.4); 'majority' proceeds
    #: once a majority of the expected set has arrived — the §4.3.5 rule
    #: that stops members in different network partitions from diverging.
    server_wait: str = "all"
    #: how long a server waits for the remaining call messages of a
    #: replicated call before proceeding without them (covers crashed
    #: client members), in ms.
    gather_timeout: float = 1000.0
    #: executed calls remembered so that late/slow client members can be
    #: sent the buffered return message (§4.3.4).
    finished_memory: int = 256
    paired: PairedMessageConfig = dataclasses.field(
        default_factory=PairedMessageConfig)


class ExportedModule:
    """A module's implementation as registered with the runtime.

    ``procedures`` maps procedure numbers (assigned by the stub compiler,
    §4.3) to handlers.  A handler is called as ``handler(ctx, args)`` with
    the raw argument bytes and may be a plain function returning bytes or
    a generator (so it can make nested calls / sleep); it signals
    application errors by raising :class:`RemoteError`.
    """

    def __init__(self, name: str,
                 procedures: Optional[Dict[int, Callable]] = None):
        self.name = name
        self.procedures: Dict[int, Callable] = dict(procedures or {})

    def define(self, number: int, handler: Callable) -> None:
        if number in self.procedures:
            raise ValueError("procedure %d already defined in %s" % (
                number, self.name))
        self.procedures[number] = handler


@dataclasses.dataclass
class CallResult:
    """One member's response in a result stream (explicit replication)."""

    member: ProcessAddress
    status: str          # 'ok' | 'error' | 'crashed'
    data: Optional[bytes] = None
    error: Optional[RemoteError] = None


class ExplicitProcedure:
    """Marks a server procedure that wants *explicit replication* (§7.4):
    instead of the unanimity-collated arguments, the handler receives the
    whole mapping of caller address -> argument bytes (the "argument
    generator" of Figure 7.7) and can collate it itself — averaging,
    voting, or, as the §5.3 commit protocol does, AND-ing votes.
    """

    def __init__(self, handler: Callable):
        self.handler = handler

    def __call__(self, ctx: "CallContext", args_by_peer: Dict) -> Any:
        return self.handler(ctx, args_by_peer)


class CallContext:
    """Execution context of one incoming replicated call.

    Handlers receive this as their first argument; it carries the adopted
    thread ID (§3.4.1) and lets the handler make nested replicated calls
    and call back the client troupe (the §5.3 commit protocol does this).
    """

    def __init__(self, runtime: "TroupeRuntime", header: CallHeader,
                 call_number: int, callers: Sequence[ProcessAddress],
                 expected: Optional[frozenset] = None,
                 group_complete: bool = True):
        self.runtime = runtime
        self.thread_id = header.thread_id
        self.client_troupe_id = header.client_troupe_id
        self.call_number = call_number
        self.callers = tuple(callers)
        #: the client troupe members this call was expected from (None if
        #: membership was unknown to the resolver).
        self.expected = expected
        #: False when the gather timed out before every expected client
        #: member's call message arrived (§4.3.5 partition/crash handling).
        self.group_complete = group_complete

    def call(self, troupe: TroupeDescriptor, module: int, procedure: int,
             args: bytes, collator: Optional[Collator] = None):
        """Generator: a nested replicated call on behalf of this thread."""
        return (yield from self.runtime.call_troupe(
            troupe, module, procedure, args, collator=collator,
            thread_id=self.thread_id))

    def compute(self, ms: float):
        """Generator: charge user-mode CPU for procedure execution."""
        return (yield from self.runtime.process.compute(ms))


class _ManyToOneCall:
    """Server-side state for one replicated call being gathered (§4.3.2)."""

    def __init__(self, key, header: CallHeader, call_number: int,
                 expected: Optional[frozenset]):
        self.key = key
        self.header = header
        self.call_number = call_number
        self.expected = expected          # None if membership unknown
        self.args_by_peer: Dict[ProcessAddress, bytes] = {}
        self.executed = False
        self.timed_out = False

    def add(self, peer: ProcessAddress, args: bytes) -> None:
        self.args_by_peer.setdefault(peer, args)

    def complete(self) -> bool:
        if self.expected is None:
            return True  # no membership information: execute on first
        return self.expected.issubset(self.args_by_peer.keys())

    def collate_args(self) -> bytes:
        """Unanimity check over the argument messages (error detection)."""
        values = list(self.args_by_peer.values())
        first = values[0]
        for other in values[1:]:
            if other != first:
                raise RemoteError(
                    INTERNAL_ERROR,
                    "client troupe members disagree on arguments")
        return first


class TroupeRuntime:
    """One troupe member's (or client's) Circus run-time system."""

    def __init__(self, process: OsProcess, port: Optional[int] = None,
                 config: Optional[RuntimeConfig] = None,
                 resolver: Optional[Callable[[TroupeId],
                                             Optional[List[ProcessAddress]]]] = None,
                 troupe_id: TroupeId = NO_TROUPE,
                 thread_id: Optional[ThreadId] = None):
        self.process = process
        self.sim = process.sim
        self.config = config or RuntimeConfig()
        self.endpoint = PairedEndpoint(process, port, self.config.paired)
        self.troupe_id = troupe_id
        if thread_id is None:
            thread_id = ThreadId(process.host, process.pid)
        self.threads = ThreadContext(default=thread_id)
        #: maps a client troupe ID to its member process addresses
        #: ("consulting a local cache or contacting the binding agent").
        self.resolver = resolver or (lambda tid: None)
        self.exports: Dict[int, ExportedModule] = {}
        self._next_module_number = 0
        # The §6.2 control interface: the binding agent informs members of
        # their new troupe ID when the membership changes.
        self.exports[CONTROL_MODULE] = ExportedModule(
            "control", {SET_TROUPE_ID_PROC: self._set_troupe_id_proc})
        # keyed (thread_id, client_troupe_id, call_number) — see the
        # grouping note in _dispatch_loop.
        self._groups: Dict[Tuple[ThreadId, TroupeId, int],
                           _ManyToOneCall] = {}
        self._finished: "collections.OrderedDict" = collections.OrderedDict()
        self._ready: Queue = Queue(self.sim, "ready-calls")
        self._server_threads = []
        self.calls_executed = 0

    @property
    def addr(self) -> ProcessAddress:
        return self.endpoint.addr

    def __repr__(self) -> str:
        return "<TroupeRuntime %s troupe_id=%d>" % (self.addr, self.troupe_id)

    # ------------------------------------------------------------------
    # Exporting modules and serving calls
    # ------------------------------------------------------------------

    def export(self, module: ExportedModule) -> ModuleAddress:
        """Register a module; returns its module address.  The module
        number is an index into the table of exported interfaces (§4.3)."""
        number = self._next_module_number
        self._next_module_number += 1
        self.exports[number] = module
        return ModuleAddress(self.addr, number)

    def set_troupe_id(self, troupe_id: TroupeId) -> None:
        """Installed by the binding agent when troupe membership changes
        (the generated set_troupe_id procedure of §6.2)."""
        self.troupe_id = troupe_id

    def _set_troupe_id_proc(self, ctx: "CallContext", args: bytes) -> bytes:
        import struct as _struct
        (new_id,) = _struct.unpack("!Q", args)
        self.set_troupe_id(new_id)
        return b""

    def start_server(self) -> None:
        """Begin accepting incoming calls (idempotent)."""
        if self._server_threads:
            return
        self._server_threads.append(
            self.process.spawn(self._dispatch_loop(), name="rpc-dispatch",
                               daemon=True))
        if self.config.execution == "serial":
            self._server_threads.append(
                self.process.spawn(self._serial_executor(), name="rpc-exec",
                                   daemon=True))

    def _dispatch_loop(self):
        while True:
            msg = yield from self.endpoint.next_call()
            try:
                header, args = decode_call(msg.data)
            except Exception:
                continue  # not a well-formed call: drop
            if (header.dest_troupe_id != NO_TROUPE
                    and self.troupe_id != NO_TROUPE
                    and header.dest_troupe_id != self.troupe_id):
                # §6.2: stale destination troupe ID — reject so the client
                # rebinds; never execute a call meant for an old incarnation.
                if self.sim.bus.active:
                    self.sim.bus.emit(obs_events.StaleCallRejected(
                        t=self.sim.now, host=self.process.host,
                        proc=self.process.name,
                        call_number=msg.call_number,
                        expected_id=self.troupe_id))
                self.process.spawn(
                    self.endpoint.send_return(
                        msg.peer, msg.call_number,
                        encode_error(STALE_BINDING_ERROR,
                                     "expected troupe %d" % self.troupe_id)),
                    daemon=True)
                continue
            # §4.3.2 matches call messages on (thread ID, call sequence
            # number).  Call numbers are per *process pair*, so two
            # different caller processes acting for the same thread at
            # different call depths can reuse a number; including the
            # client troupe ID in the key keeps their calls distinct
            # (members of one replicated call always share it).
            key = (header.thread_id, header.client_troupe_id,
                   msg.call_number)
            if key in self._finished:
                # A slow client troupe member whose call arrived after the
                # procedure ran: retransmit the buffered return (§4.3.4).
                self.process.spawn(
                    self._send_return_if_new(msg.peer, msg.call_number,
                                             self._finished[key]),
                    daemon=True)
                continue
            group = self._groups.get(key)
            if group is None:
                expected = self._expected_callers(header)
                group = _ManyToOneCall(key, header, msg.call_number, expected)
                self._groups[key] = group
                if self.sim.bus.active:
                    self.sim.bus.emit(obs_events.GatherStarted(
                        t=self.sim.now, host=self.process.host,
                        proc=self.process.name,
                        thread_id=str(header.thread_id),
                        call_number=msg.call_number,
                        expected=-1 if expected is None else len(expected)))
                if (expected is not None and len(expected) > 1
                        and self.config.server_wait == "all"):
                    self.sim.schedule(self.config.gather_timeout,
                                      self._gather_timed_out, key)
            group.add(msg.peer, args)
            if group.executed:
                continue
            if self._gather_satisfied(group):
                self._enqueue(group)

    def _gather_satisfied(self, group: _ManyToOneCall) -> bool:
        mode = self.config.server_wait
        if mode == "first" or group.expected is None:
            return True
        if mode == "majority":
            # §4.3.5: proceed only with a majority of the expected set of
            # messages, so a minority partition can never execute.
            return 2 * len(group.args_by_peer) > len(group.expected)
        return group.complete()

    def _expected_callers(self, header: CallHeader) -> Optional[frozenset]:
        if header.client_troupe_id == NO_TROUPE:
            return None
        members = self.resolver(header.client_troupe_id)
        if members is None:
            return None
        return frozenset(members)

    def _gather_timed_out(self, key) -> None:
        group = self._groups.get(key)
        if group is not None and not group.executed:
            # Some expected client members never called (crashed or
            # partitioned): under 'all', proceed with the ones that did;
            # under 'majority', never execute a minority (§4.3.5) — the
            # group stays pending until more call messages arrive.
            if (self.config.server_wait == "majority"
                    and not self._gather_satisfied(group)):
                return
            group.timed_out = True
            self._enqueue(group)

    def _enqueue(self, group: _ManyToOneCall) -> None:
        if group.executed:
            return
        group.executed = True
        if self.config.execution == "serial":
            self._ready.put(group)
        else:
            self.process.spawn(self._run_group(group),
                               name="rpc-call-%d" % group.call_number,
                               daemon=True)

    def _serial_executor(self):
        while True:
            group = yield self._ready.get()
            yield from self._run_group(group)

    def _run_group(self, group: _ManyToOneCall):
        header = group.header
        key = group.key
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.ExecutionStarted(
                t=self.sim.now, host=self.process.host,
                proc=self.process.name, thread_id=str(header.thread_id),
                call_number=group.call_number, troupe_id=self.troupe_id,
                module=header.module, procedure=header.procedure,
                callers=len(group.args_by_peer),
                group_complete=group.complete()))
        exec_outcome = "ok"
        try:
            module = self.exports.get(header.module)
            if module is None:
                raise RemoteError(BAD_MODULE_ERROR,
                                  "module %d" % header.module)
            handler = module.procedures.get(header.procedure)
            if handler is None:
                raise RemoteError(BAD_PROCEDURE_ERROR, "procedure %d of %s"
                                  % (header.procedure, module.name))
            if isinstance(handler, ExplicitProcedure):
                # §7.4 explicit replication: the handler collates.
                args = dict(group.args_by_peer)
            else:
                args = group.collate_args()
            ctx = CallContext(self, header, group.call_number,
                              sorted(group.args_by_peer.keys()),
                              expected=group.expected,
                              group_complete=group.complete())
            # Thread ID adoption (§3.4.1).  The shared stack is only
            # coherent under serial execution; parallel handlers carry the
            # thread ID in their CallContext instead.
            adopt = self.config.execution == "serial"
            if adopt:
                self.threads.adopt(header.thread_id)
            try:
                result = handler(ctx, args)
                if hasattr(result, "send"):  # a generator: run it
                    result = yield from result
                if result is None:
                    result = b""
                payload = encode_return(result)
            finally:
                if adopt:
                    self.threads.release(header.thread_id)
        except RemoteError as exc:
            exec_outcome = exc.kind
            payload = encode_error(exc.kind, exc.detail)
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.ExecutionFinished(
                t=self.sim.now, host=self.process.host,
                proc=self.process.name, thread_id=str(header.thread_id),
                call_number=group.call_number, module=header.module,
                procedure=header.procedure, outcome=exec_outcome))
        if header.module != CONTROL_MODULE:
            # calls_executed counts application procedure executions; the
            # runtime's own control traffic (set_troupe_id) is excluded.
            self.calls_executed += 1
        self._remember_finished(key, payload)
        self._groups.pop(key, None)
        yield from self._send_returns(group, payload)

    def _send_returns(self, group: _ManyToOneCall, payload: bytes):
        """Return the results to every member of the client troupe.

        With 'first' server wait, the return is broadcast to all known
        members so slow members find it already waiting (client-side
        buffering, §4.3.4); otherwise it goes to everyone who called.
        """
        recipients = set(group.args_by_peer.keys())
        if group.expected is not None:
            recipients |= set(group.expected)
        recipients = sorted(recipients)
        if self.sim.bus.active:
            self.sim.bus.emit(obs_events.ReturnSent(
                t=self.sim.now, host=self.process.host,
                proc=self.process.name,
                thread_id=str(group.header.thread_id),
                call_number=group.call_number,
                recipients=len(recipients)))
        if self.config.use_multicast and len(recipients) > 1:
            yield from self.endpoint.send_message_multicast(
                recipients, MSG_RETURN, group.call_number, payload)
        else:
            for peer in recipients:
                yield from self._send_return_if_new(peer, group.call_number,
                                                    payload)

    def _send_return_if_new(self, peer: ProcessAddress, call_number: int,
                            payload: bytes):
        """Send a return unless a transfer for it already exists (a late
        duplicate call message must not restart a finished transfer)."""
        if (peer, MSG_RETURN, call_number) in self.endpoint._sends:
            return
        yield from self.endpoint.send_return(peer, call_number, payload)

    def _remember_finished(self, key, payload: bytes) -> None:
        self._finished[key] = payload
        while len(self._finished) > self.config.finished_memory:
            self._finished.popitem(last=False)

    # ------------------------------------------------------------------
    # One-to-many calls (client half, §4.3.1)
    # ------------------------------------------------------------------

    def call_troupe(self, troupe: TroupeDescriptor, module: int,
                    procedure: int, args: bytes,
                    collator: Optional[Collator] = None,
                    thread_id: Optional[ThreadId] = None,
                    call_number: Optional[int] = None):
        """Generator: a replicated procedure call to a troupe.

        Sends the call message to every member (same call number at the
        paired message level), collects the return messages through the
        collator (unanimous by default), and returns the collated result
        bytes.  Raises:

        - :class:`TroupeFailure` if every member crashed,
        - :class:`StaleBindingError` if the members rejected our troupe ID,
        - :class:`RemoteError` if the procedure raised remotely,
        - :class:`CollationError` on replica disagreement.
        """
        if collator is None:
            collator = UnanimousCollator()
        if not troupe.members:
            raise TroupeFailure(troupe.name)
        if thread_id is None:
            thread_id = self.threads.current
        if call_number is None:
            call_number = self.threads.next_call_number()
        bus = self.sim.bus
        if bus.active:
            bus.emit(obs_events.CallStarted(
                t=self.sim.now, host=self.process.host,
                proc=self.process.name, thread_id=str(thread_id),
                call_number=call_number, troupe=troupe.name,
                troupe_id=troupe.troupe_id, members=len(troupe.members),
                module=-1 if module is None else module,
                procedure=procedure))
        try:
            members, payloads = self._build_payloads(
                troupe, module, procedure, args, thread_id)
            yield from self._send_call(members, call_number, payloads)
            outcome = yield from self._collect(troupe, members, call_number,
                                               collator, thread_id)
            return_header, body = decode_return(outcome)
            try:
                result = raise_if_error(return_header, body)
            except RemoteError as exc:
                if exc.kind == STALE_BINDING_ERROR:
                    raise StaleBindingError(troupe.name) from exc
                raise
        except BaseException as exc:
            if bus.active:
                bus.emit(obs_events.CallCompleted(
                    t=self.sim.now, host=self.process.host,
                    proc=self.process.name, thread_id=str(thread_id),
                    call_number=call_number, troupe=troupe.name,
                    outcome=self._classify_failure(exc)))
                if isinstance(exc, StaleBindingError):
                    bus.emit(obs_events.StaleBindingInvalidated(
                        t=self.sim.now, host=self.process.host,
                        proc=self.process.name, troupe=troupe.name))
            raise
        if bus.active:
            bus.emit(obs_events.CallCompleted(
                t=self.sim.now, host=self.process.host,
                proc=self.process.name, thread_id=str(thread_id),
                call_number=call_number, troupe=troupe.name, outcome="ok"))
        return result

    @staticmethod
    def _classify_failure(exc: BaseException) -> str:
        if isinstance(exc, StaleBindingError):
            return "stale_binding"
        if isinstance(exc, TroupeFailure):
            return "troupe_failure"
        if isinstance(exc, CollationError):
            return "collation_error"
        if isinstance(exc, RemoteError):
            return "remote_error:%s" % exc.kind
        return type(exc).__name__

    def _build_payloads(self, troupe: TroupeDescriptor, module: Optional[int],
                        procedure: int, args: bytes, thread_id: ThreadId):
        """Per-member call payloads.  When ``module`` is None, each call
        message carries the member's own module number (members of a
        troupe may export the interface under different indices)."""
        members = []
        payloads = {}
        for member in troupe.members:
            member_module = member.module if module is None else module
            header = CallHeader(thread_id, self.troupe_id, troupe.troupe_id,
                                member_module, procedure)
            members.append(member.process)
            payloads[member.process] = encode_call(header, args)
        return members, payloads

    def _send_call(self, members: List[ProcessAddress], call_number: int,
                   payloads: Dict[ProcessAddress, bytes]):
        distinct = set(payloads.values())
        if (self.config.use_multicast and len(members) > 1
                and len(distinct) == 1):
            yield from self.endpoint.send_message_multicast(
                members, MSG_CALL, call_number, next(iter(distinct)))
        else:
            for member in members:
                yield from self.endpoint.send_message(
                    member, MSG_CALL, call_number, payloads[member])

    def _collect(self, troupe: TroupeDescriptor,
                 members: List[ProcessAddress], call_number: int,
                 collator: Collator, thread_id: Optional[ThreadId] = None):
        """Wait for return messages, feeding the collator as they arrive."""
        bus = self.sim.bus
        tid = str(thread_id) if thread_id is not None else ""
        collator.reset(expected=len(members))
        waiters = {}
        for member in members:
            waiters[member] = self.process.spawn(
                self._await_one(member, call_number),
                name="await-%s" % (member,), daemon=True)
        pending = dict(waiters)
        #: deterministic wake order, sorted once — removing the fired
        #: member keeps the remainder sorted, so each round avoids the
        #: old per-iteration re-sort.
        order = sorted(pending.keys())
        crashed = []
        responses = 0
        decided = False
        result = None
        while pending:
            index, value = yield AnyOf(*[pending[m] for m in order])
            member = order.pop(index)
            del pending[member]
            if value is None:
                # The waiter was killed out from under us: our own host
                # process fail-stopped mid-call (a killed process resolves
                # joins with None).  The reply's fate is unknowable.
                raise CallerCrashed(troupe.name)
            status, data = value
            if bus.active:
                bus.emit(obs_events.ReplicaResult(
                    t=self.sim.now, host=self.process.host,
                    proc=self.process.name, thread_id=tid,
                    call_number=call_number, member=member,
                    status="crashed" if status == "crashed" else "ok"))
            if status == "crashed":
                crashed.append(member)
                continue
            responses += 1
            try:
                done, early = collator.add(member, data)
            except CollationError:
                if bus.active:
                    bus.emit(self._collation_event(
                        tid, call_number, troupe, "disagreement", responses))
                raise
            if done and not collator.needs_all:
                decided = True
                result = early
                break
        if decided:
            if bus.active:
                bus.emit(self._collation_event(
                    tid, call_number, troupe, "decided_early", responses))
            # Tell the endpoint to drop the stragglers' returns.
            for member, waiter in pending.items():
                waiter.kill()
                self.endpoint.forget_return(member, call_number)
            return result
        if len(crashed) == len(members):
            raise TroupeFailure(troupe.name)
        try:
            final = collator.finish()
        except CollationError:
            if bus.active:
                bus.emit(self._collation_event(
                    tid, call_number, troupe, "failed", responses))
            raise
        if bus.active:
            bus.emit(self._collation_event(
                tid, call_number, troupe, "agreed", responses))
        return final

    def _collation_event(self, tid: str, call_number: int,
                         troupe: TroupeDescriptor, verdict: str,
                         responses: int) -> obs_events.Collated:
        return obs_events.Collated(
            t=self.sim.now, host=self.process.host, proc=self.process.name,
            thread_id=tid, call_number=call_number, troupe=troupe.name,
            verdict=verdict, responses=responses)

    def _await_one(self, member: ProcessAddress, call_number: int):
        try:
            data = yield from self.endpoint.wait_return(member, call_number)
            return ("ok", data)
        except PeerCrashed:
            return ("crashed", None)

    # ------------------------------------------------------------------
    # The watchdog scheme (§4.3.4)
    # ------------------------------------------------------------------

    def call_troupe_watchdog(self, troupe: TroupeDescriptor, module: int,
                             procedure: int, args: bytes,
                             thread_id: Optional[ThreadId] = None):
        """Generator: proceed with the first response; a watchdog thread
        waits for the remaining responses and compares them with it
        (§4.3.4: error detection *and* early computation).

        Returns ``(result_bytes, report)``; ``report.done`` fires once
        every member has answered (or crashed), with
        ``report.consistent`` set.  Structuring the main computation as a
        transaction and aborting it on an inconsistency report is the
        paper's full recipe; the report hook is the mechanism.
        """
        stream = yield from self.call_troupe_stream(
            troupe, module, procedure, args, thread_id=thread_id)
        report = WatchdogReport(self.sim, len(troupe.members))
        first = None
        while True:
            result = yield from stream.next()
            if result is None:
                report.consistent = True
                report.done.fire(True)
                raise TroupeFailure(troupe.name)
            if result.status == "crashed":
                report.crashed.append(result.member)
                continue
            first = result
            break
        self.process.spawn(
            self._watchdog(stream, _response_signature(first), report),
            name="watchdog", daemon=True)
        if first.status == "error":
            raise first.error
        return first.data, report

    def _watchdog(self, stream: "_ResultStream", signature,
                  report: WatchdogReport):
        consistent = True
        while True:
            result = yield from stream.next()
            if result is None:
                break
            if result.status == "crashed":
                report.crashed.append(result.member)
                continue
            report.compared += 1
            if _response_signature(result) != signature:
                consistent = False
                report.mismatches.append(result.member)
        report.consistent = consistent
        report.done.fire(consistent)

    # ------------------------------------------------------------------
    # Explicit replication: a stream of per-member results (§7.4)
    # ------------------------------------------------------------------

    def call_troupe_stream(self, troupe: TroupeDescriptor, module: int,
                           procedure: int, args: bytes,
                           thread_id: Optional[ThreadId] = None):
        """Generator: start a replicated call and return a result stream.

        The stream yields one :class:`CallResult` per troupe member, in
        arrival order — the "generator of messages from a troupe" of
        Figure 7.11.  The caller may stop early; unconsumed returns are
        discarded.
        """
        if not troupe.members:
            raise TroupeFailure(troupe.name)
        if thread_id is None:
            thread_id = self.threads.current
        call_number = self.threads.next_call_number()
        members, payloads = self._build_payloads(troupe, module, procedure,
                                                 args, thread_id)
        yield from self._send_call(members, call_number, payloads)
        return _ResultStream(self, troupe, members, call_number)


class WatchdogReport:
    """Outcome of the §4.3.4 watchdog: did the stragglers agree with the
    response the computation proceeded with?"""

    def __init__(self, sim, expected: int):
        from repro.sim.events import Event as _Event
        self.done = _Event(sim, "watchdog-done")
        self.expected = expected
        self.consistent: Optional[bool] = None
        self.mismatches: List[ProcessAddress] = []
        self.crashed: List[ProcessAddress] = []
        self.compared = 0


def _response_signature(result: CallResult):
    if result.status == "ok":
        return ("ok", result.data)
    if result.status == "error":
        return ("error", result.error.kind, result.error.detail)
    return ("crashed",)


class _ResultStream:
    """Lazily yields per-member results of an in-progress replicated call."""

    def __init__(self, runtime: TroupeRuntime, troupe: TroupeDescriptor,
                 members: List[ProcessAddress], call_number: int):
        self.runtime = runtime
        self.troupe = troupe
        self.members = members
        self.call_number = call_number
        self._queue = Queue(runtime.sim, "result-stream")
        self._remaining = len(members)
        self._waiters = []
        for member in members:
            waiter = runtime.process.spawn(self._pump(member),
                                           name="stream-%s" % (member,),
                                           daemon=True)
            self._waiters.append(waiter)

    def _pump(self, member: ProcessAddress):
        try:
            data = yield from self.runtime.endpoint.wait_return(
                member, self.call_number)
        except PeerCrashed:
            self._queue.put(CallResult(member, "crashed"))
            return
        return_header, body = decode_return(data)
        if return_header.is_error:
            try:
                raise_if_error(return_header, body)
            except RemoteError as exc:
                self._queue.put(CallResult(member, "error", error=exc))
        else:
            self._queue.put(CallResult(member, "ok", data=body))

    def next(self):
        """Generator: the next CallResult, or None when exhausted."""
        if self._remaining == 0:
            return None
        result = yield self._queue.get()
        self._remaining -= 1
        return result

    def cancel(self) -> None:
        """Stop waiting for the remaining members (early loop exit, §7.4)."""
        for waiter in self._waiters:
            if waiter.alive:
                waiter.kill()
        for member in self.members:
            self.runtime.endpoint.forget_return(member, self.call_number)
        self._remaining = 0
